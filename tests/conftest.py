"""Shared fixtures: canonical graphs and protocol factories."""

from __future__ import annotations

import pytest

from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    paper_figure_1a,
    paper_figure_1b,
    petersen_graph,
)


@pytest.fixture
def c4() -> Graph:
    """The 4-cycle: the smallest 2f-connected graph for f = 1."""
    return cycle_graph(4)


@pytest.fixture
def c5() -> Graph:
    """Figure 1(a): the 5-cycle, tight for f = 1."""
    return paper_figure_1a()


@pytest.fixture
def k4() -> Graph:
    return complete_graph(4)


@pytest.fixture
def k5() -> Graph:
    """K_{2f+1} for f = 2: the smallest local-broadcast graph at f = 2."""
    return complete_graph(5)


@pytest.fixture
def fig1b() -> Graph:
    """Figure 1(b) stand-in: C_8(1,2), tight for f = 2."""
    return paper_figure_1b()


@pytest.fixture
def petersen() -> Graph:
    return petersen_graph()
