"""The experiment runner: wiring, verdicts, and input validation."""

import pytest

from repro.consensus import algorithm1_factory, run_consensus
from repro.graphs import cycle_graph
from repro.net import SilentAdversary, TamperForwardAdversary


class TestValidation:
    def test_unknown_faulty_node(self, c5):
        with pytest.raises(ValueError):
            run_consensus(
                c5, algorithm1_factory(c5, 1), {v: 0 for v in c5.nodes},
                f=1, faulty=[99], adversary=SilentAdversary(),
            )

    def test_too_many_faults(self, c5):
        with pytest.raises(ValueError):
            run_consensus(
                c5, algorithm1_factory(c5, 1), {v: 0 for v in c5.nodes},
                f=1, faulty=[0, 1], adversary=SilentAdversary(),
            )

    def test_adversary_required(self, c5):
        with pytest.raises(ValueError):
            run_consensus(
                c5, algorithm1_factory(c5, 1), {v: 0 for v in c5.nodes},
                f=1, faulty=[0],
            )

    def test_missing_inputs(self, c5):
        with pytest.raises(ValueError):
            run_consensus(c5, algorithm1_factory(c5, 1), {0: 1}, f=1)


class TestVerdicts:
    def test_result_fields(self, c5):
        res = run_consensus(
            c5, algorithm1_factory(c5, 1), {v: v % 2 for v in c5.nodes},
            f=1, faulty=[4], adversary=TamperForwardAdversary(),
        )
        assert res.honest == frozenset({0, 1, 2, 3})
        assert res.faulty == frozenset({4})
        assert res.honest_inputs == {0: 0, 1: 1, 2: 0, 3: 1}
        assert res.terminated
        assert res.transmissions > 0
        assert res.deliveries >= res.transmissions

    def test_decision_none_without_agreement(self, c5):
        res = run_consensus(
            c5, algorithm1_factory(c5, 1), {v: 0 for v in c5.nodes}, f=1
        )
        assert res.agreement and res.decision == 0

    def test_validity_uses_honest_inputs_only(self, c5):
        # All honest nodes hold 0; the faulty node's input 1 is not a
        # legal output.
        inputs = {v: 0 for v in c5.nodes}
        inputs[2] = 1
        res = run_consensus(
            c5, algorithm1_factory(c5, 1), inputs, f=1,
            faulty=[2], adversary=TamperForwardAdversary(),
        )
        assert res.validity and res.decision == 0

    def test_honest_outputs_view(self, c5):
        res = run_consensus(
            c5, algorithm1_factory(c5, 1), {v: 1 for v in c5.nodes}, f=1,
            faulty=[0], adversary=SilentAdversary(),
        )
        assert set(res.honest_outputs) == {1, 2, 3, 4}

    def test_non_termination_reported_not_raised(self):
        """A protocol that never decides yields terminated=False."""
        from repro.net import Protocol

        class Never(Protocol):
            total_rounds = 3

            def on_round(self, ctx):
                return

            def output(self):
                return None

        g = cycle_graph(3)
        res = run_consensus(g, lambda v, x: Never(), {v: 0 for v in g.nodes}, f=0)
        assert not res.terminated
        assert not res.agreement
        assert not res.consensus

    def test_explicit_max_rounds(self, c5):
        res = run_consensus(
            c5, algorithm1_factory(c5, 1), {v: 0 for v in c5.nodes}, f=1,
            max_rounds=30,
        )
        assert res.consensus
