"""The experiment runner: wiring, verdicts, and input validation."""

import pytest

from repro.consensus import algorithm1_factory, run_consensus
from repro.graphs import cycle_graph
from repro.net import (
    Protocol,
    SchedulerSpec,
    SilentAdversary,
    TamperForwardAdversary,
)


class TestValidation:
    def test_unknown_faulty_node(self, c5):
        with pytest.raises(ValueError):
            run_consensus(
                c5, algorithm1_factory(c5, 1), {v: 0 for v in c5.nodes},
                f=1, faulty=[99], adversary=SilentAdversary(),
            )

    def test_too_many_faults(self, c5):
        with pytest.raises(ValueError):
            run_consensus(
                c5, algorithm1_factory(c5, 1), {v: 0 for v in c5.nodes},
                f=1, faulty=[0, 1], adversary=SilentAdversary(),
            )

    def test_adversary_required(self, c5):
        with pytest.raises(ValueError):
            run_consensus(
                c5, algorithm1_factory(c5, 1), {v: 0 for v in c5.nodes},
                f=1, faulty=[0],
            )

    def test_missing_inputs(self, c5):
        with pytest.raises(ValueError):
            run_consensus(c5, algorithm1_factory(c5, 1), {0: 1}, f=1)


class TestVerdicts:
    def test_result_fields(self, c5):
        res = run_consensus(
            c5, algorithm1_factory(c5, 1), {v: v % 2 for v in c5.nodes},
            f=1, faulty=[4], adversary=TamperForwardAdversary(),
        )
        assert res.honest == frozenset({0, 1, 2, 3})
        assert res.faulty == frozenset({4})
        assert res.honest_inputs == {0: 0, 1: 1, 2: 0, 3: 1}
        assert res.terminated
        assert res.transmissions > 0
        assert res.deliveries >= res.transmissions

    def test_decision_none_without_agreement(self, c5):
        res = run_consensus(
            c5, algorithm1_factory(c5, 1), {v: 0 for v in c5.nodes}, f=1
        )
        assert res.agreement and res.decision == 0

    def test_validity_uses_honest_inputs_only(self, c5):
        # All honest nodes hold 0; the faulty node's input 1 is not a
        # legal output.
        inputs = {v: 0 for v in c5.nodes}
        inputs[2] = 1
        res = run_consensus(
            c5, algorithm1_factory(c5, 1), inputs, f=1,
            faulty=[2], adversary=TamperForwardAdversary(),
        )
        assert res.validity and res.decision == 0

    def test_honest_outputs_view(self, c5):
        res = run_consensus(
            c5, algorithm1_factory(c5, 1), {v: 1 for v in c5.nodes}, f=1,
            faulty=[0], adversary=SilentAdversary(),
        )
        assert set(res.honest_outputs) == {1, 2, 3, 4}

    def test_non_termination_reported_not_raised(self):
        """A protocol that never decides yields terminated=False."""
        from repro.net import Protocol

        class Never(Protocol):
            total_rounds = 3

            def on_round(self, ctx):
                return

            def output(self):
                return None

        g = cycle_graph(3)
        res = run_consensus(g, lambda v, x: Never(), {v: 0 for v in g.nodes}, f=0)
        assert not res.terminated
        assert not res.agreement
        assert not res.consensus

    def test_explicit_max_rounds(self, c5):
        res = run_consensus(
            c5, algorithm1_factory(c5, 1), {v: 0 for v in c5.nodes}, f=1,
            max_rounds=30,
        )
        assert res.consensus


class _PingDecide(Protocol):
    """Decides on hearing any neighbor's round-1 ping.

    Synchronously this takes exactly ``total_rounds = 2`` rounds; under
    per-link delays up to ``d`` the ping may land as late as tick
    ``1 + d`` — past the synchronous budget, but well within the
    protocol's actual (delay-adjusted) schedule.
    """

    total_rounds = 2

    def __init__(self):
        self._out = None

    def on_round(self, ctx):
        if ctx.round_no == 1:
            ctx.broadcast("ping")
        if self._out is None and any(m == "ping" for _, m in ctx.inbox):
            self._out = 1

    def output(self):
        return self._out


class TestOutcome:
    def test_decided(self, c5):
        res = run_consensus(
            c5, algorithm1_factory(c5, 1), {v: 0 for v in c5.nodes}, f=1
        )
        assert res.outcome == "decided"

    def test_budget_exhausted_when_undecided(self):
        class Never(Protocol):
            total_rounds = 3

            def on_round(self, ctx):
                return

            def output(self):
                return None

        g = cycle_graph(3)
        res = run_consensus(g, lambda v, x: Never(), {v: 0 for v in g.nodes}, f=0)
        assert res.outcome == "budget_exhausted"

    def test_disagreed_when_outputs_split(self):
        class Stubborn(Protocol):
            """Every node decides its own input — terminates, disagrees."""

            total_rounds = 1

            def __init__(self, value):
                self.value = value

            def on_round(self, ctx):
                return

            def output(self):
                return self.value

        g = cycle_graph(4)
        res = run_consensus(
            g, lambda v, x: Stubborn(x), {v: v % 2 for v in g.nodes}, f=0
        )
        assert res.terminated and not res.agreement
        assert res.outcome == "disagreed"


class TestDelayAwareBudget:
    """Regression: the virtual-tick budget must scale with the
    scheduler's declared delay bound, so an asynchronous run that merely
    needs more *time* (not more rounds) is not misreported as failed."""

    SPEC = SchedulerSpec("seeded-async", seed=3, max_delay=3)

    def test_async_run_decides_past_the_synchronous_budget(self):
        g = cycle_graph(4)
        res = run_consensus(
            g,
            lambda v, x: _PingDecide(),
            {v: 1 for v in g.nodes},
            f=0,
            scheduler=self.SPEC,
        )
        assert res.outcome == "decided"
        # The decisive delivery landed *after* the synchronous budget of
        # total_rounds = 2 ticks — the run the old accounting aborted.
        assert res.rounds > _PingDecide.total_rounds

    def test_capping_at_the_synchronous_budget_reproduces_the_bug(self):
        g = cycle_graph(4)
        res = run_consensus(
            g,
            lambda v, x: _PingDecide(),
            {v: 1 for v in g.nodes},
            f=0,
            scheduler=self.SPEC,
            max_rounds=_PingDecide.total_rounds,  # the old conflation
        )
        assert res.outcome == "budget_exhausted"

    def test_explicit_max_rounds_is_not_scaled(self, c5):
        res = run_consensus(
            c5,
            algorithm1_factory(c5, 1),
            {v: 0 for v in c5.nodes},
            f=1,
            max_rounds=1,
            scheduler=self.SPEC,
        )
        assert res.rounds == 1  # caller's budget is taken literally

    def test_unbounded_scheduler_requires_explicit_budget(self, c5):
        class UnboundedSpec:
            name = "unbounded-stub"
            bounded = False

        with pytest.raises(ValueError, match="no delay bound"):
            run_consensus(
                c5,
                algorithm1_factory(c5, 1),
                {v: 0 for v in c5.nodes},
                f=1,
                scheduler=UnboundedSpec(),
            )


class _Mute(Protocol):
    """Message-driven stub: initiates nothing, waits forever, never arms."""

    message_driven = True
    total_rounds = None
    budget_hint = 50
    armed = False

    def on_round(self, ctx):
        return

    def output(self):
        return None


class TestMessageDrivenAccounting:
    """Protocols with no round schedule: budget by hint, stop on
    quiescence, report genuine fixpoints as ``stalled``."""

    def test_quiescent_undecided_run_is_stalled(self):
        g = cycle_graph(4)
        res = run_consensus(g, lambda v, x: _Mute(), {v: 0 for v in g.nodes},
                            f=0, scheduler=SchedulerSpec("lockstep"))
        assert not res.terminated
        assert res.stalled
        assert res.outcome == "stalled"
        # Quiescence fired on the very first silent tick, not at the cap.
        assert res.rounds == 1

    def test_stall_detection_works_on_the_synchronous_engine(self):
        g = cycle_graph(4)
        res = run_consensus(g, lambda v, x: _Mute(), {v: 0 for v in g.nodes},
                            f=0)
        assert res.outcome == "stalled"

    def test_armed_protocols_are_not_stalled(self):
        """A pending local timer means the run may still progress: the
        loop must keep ticking (to the cap) instead of declaring a
        stall."""

        class Stubborn(_Mute):
            armed = True

        g = cycle_graph(4)
        res = run_consensus(g, lambda v, x: Stubborn(),
                            {v: 0 for v in g.nodes}, f=0)
        assert res.outcome == "budget_exhausted"
        assert res.rounds == Stubborn.budget_hint

    def test_budget_hint_scales_with_the_declared_bound(self):
        class Counter(_Mute):
            armed = True

        g = cycle_graph(4)
        spec = SchedulerSpec("seeded-async", seed=1, max_delay=3)
        res = run_consensus(g, lambda v, x: Counter(),
                            {v: 0 for v in g.nodes}, f=0, scheduler=spec)
        assert res.rounds == Counter.budget_hint * 3  # horizon(hint)

    def test_mixed_with_fixed_round_protocols_uses_the_classic_loop(self):
        """Quiescence stops require *every* honest protocol to be
        message-driven; a fixed-round protocol in the mix falls back to
        the classic budget-bounded loop."""
        c5 = cycle_graph(5)
        res = run_consensus(
            c5, algorithm1_factory(c5, 1), {v: 0 for v in c5.nodes}, f=1
        )
        assert res.outcome == "decided"
        assert not res.stalled
