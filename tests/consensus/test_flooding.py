"""The flooding rules (i)-(iv), defaults, and the local-broadcast lemma.

These tests drive :class:`FloodInstance` directly through hand-built
contexts, then check the emergent guarantees (Observation B.1,
equivocation prevention) through full simulator runs.
"""

from repro.consensus import FloodInstance, flood_rounds
from repro.consensus.runner import run_consensus
from repro.graphs import Graph, cycle_graph, is_path, paper_figure_1a
from repro.net import (
    Context,
    FloodMessage,
    Protocol,
    SilentAdversary,
    SynchronousNetwork,
    ValuePayload,
    local_broadcast_model,
)


def ctx_for(graph, node, round_no, inbox):
    return Context(
        node=node,
        graph=graph,
        round_no=round_no,
        channel=local_broadcast_model(),
        inbox=inbox,
    )


def msg(phase, value, path):
    return FloodMessage(phase, ValuePayload(value), tuple(path))


class TestRules:
    def test_initiate_records_trivial_path_and_broadcasts(self, c5):
        flood = FloodInstance(c5, 0, phase="p")
        ctx = ctx_for(c5, 0, 1, [])
        flood.initiate(ctx, ValuePayload(1))
        assert flood.delivered[(0,)] == ValuePayload(1)
        assert len(ctx.outbox) == 1
        sent = ctx.outbox[0].message
        assert sent.path == ()

    def test_accept_and_forward(self, c5):
        flood = FloodInstance(c5, 1, phase="p")
        ctx = ctx_for(c5, 1, 2, [(0, msg("p", 0, ()))])
        accepted = flood.process_round(ctx)
        assert accepted == 1
        assert flood.delivered[(0, 1)] == ValuePayload(0)
        forwarded = [o.message for o in ctx.outbox]
        assert FloodMessage("p", ValuePayload(0), (0,)) in forwarded

    def test_rule_i_invalid_path_discarded(self, c5):
        flood = FloodInstance(c5, 1, phase="p")
        # (3, 0) claims path 3-0; but message comes from 0 with path (3,):
        # 3-0 is an edge... use a NON-path: (2, 0) — 2 and 0 not adjacent.
        ctx = ctx_for(c5, 1, 2, [(0, msg("p", 0, (2,)))])
        assert flood.process_round(ctx) == 0
        assert (2, 0, 1) not in flood.delivered

    def test_rule_i_nonexistent_node(self, c5):
        flood = FloodInstance(c5, 1, phase="p")
        ctx = ctx_for(c5, 1, 2, [(0, msg("p", 0, (99,)))])
        assert flood.process_round(ctx) == 0

    def test_rule_ii_duplicate_slot_discarded(self, c5):
        flood = FloodInstance(c5, 1, phase="p")
        first = msg("p", 0, ())
        second = msg("p", 1, ())  # same (sender, path) slot, flipped value
        ctx = ctx_for(c5, 1, 2, [(0, first), (0, second)])
        assert flood.process_round(ctx) == 1
        assert flood.delivered[(0, 1)] == ValuePayload(0)  # first wins

    def test_rule_iii_own_id_in_path_discarded(self, c5):
        flood = FloodInstance(c5, 1, phase="p")
        ctx = ctx_for(c5, 1, 2, [(0, msg("p", 0, (1, 2, 3, 4)))])
        assert flood.process_round(ctx) == 0

    def test_rule_iv_delivery_key_includes_self(self, c5):
        flood = FloodInstance(c5, 2, phase="p")
        ctx = ctx_for(c5, 2, 3, [(1, msg("p", 1, (0,)))])
        flood.process_round(ctx)
        assert flood.delivered[(0, 1, 2)] == ValuePayload(1)

    def test_wrong_phase_ignored(self, c5):
        flood = FloodInstance(c5, 1, phase="p")
        ctx = ctx_for(c5, 1, 2, [(0, msg("other", 0, ()))])
        assert flood.process_round(ctx) == 0

    def test_non_flood_junk_ignored(self, c5):
        flood = FloodInstance(c5, 1, phase="p")
        ctx = ctx_for(c5, 1, 2, [(0, "garbage"), (0, 42)])
        assert flood.process_round(ctx) == 0

    def test_validator_rejects_payload(self, c5):
        flood = FloodInstance(
            c5, 1, phase="p",
            validator=lambda payload, path: isinstance(payload, ValuePayload),
        )
        ctx = ctx_for(c5, 1, 2, [(0, FloodMessage("p", "junk", ()))])
        assert flood.process_round(ctx) == 0

    def test_invalid_message_does_not_burn_slot(self, c5):
        flood = FloodInstance(
            c5, 1, phase="p",
            validator=lambda payload, path: isinstance(payload, ValuePayload),
        )
        garbage = FloodMessage("p", "junk", ())
        good = msg("p", 0, ())
        ctx = ctx_for(c5, 1, 2, [(0, garbage), (0, good)])
        assert flood.process_round(ctx) == 1
        assert flood.delivered[(0, 1)] == ValuePayload(0)


class TestDefaults:
    def test_silent_neighbor_substituted(self, c5):
        flood = FloodInstance(c5, 1, phase="p", default_payload=ValuePayload(1))
        # Neighbor 0 initiates; neighbor 2 stays silent.
        ctx = ctx_for(c5, 1, 2, [(0, msg("p", 0, ()))])
        accepted = flood.process_round(ctx)
        assert accepted == 2
        assert flood.delivered[(0, 1)] == ValuePayload(0)
        assert flood.delivered[(2, 1)] == ValuePayload(1)  # substituted

    def test_substitute_is_forwarded(self, c5):
        flood = FloodInstance(c5, 1, phase="p", default_payload=ValuePayload(1))
        ctx = ctx_for(c5, 1, 2, [])
        flood.process_round(ctx)
        forwarded = {o.message for o in ctx.outbox}
        assert FloodMessage("p", ValuePayload(1), (0,)) in forwarded
        assert FloodMessage("p", ValuePayload(1), (2,)) in forwarded

    def test_defaults_applied_once(self, c5):
        flood = FloodInstance(c5, 1, phase="p", default_payload=ValuePayload(1))
        flood.process_round(ctx_for(c5, 1, 2, []))
        ctx3 = ctx_for(c5, 1, 3, [])
        assert flood.process_round(ctx3) == 0

    def test_late_init_loses_to_default(self, c5):
        flood = FloodInstance(c5, 1, phase="p", default_payload=ValuePayload(1))
        flood.process_round(ctx_for(c5, 1, 2, []))  # substitution happens
        late = ctx_for(c5, 1, 3, [(0, msg("p", 0, ()))])
        assert flood.process_round(late) == 0
        assert flood.delivered[(0, 1)] == ValuePayload(1)

    def test_no_default_no_substitution(self, c5):
        flood = FloodInstance(c5, 1, phase="p", default_payload=None)
        flood.process_round(ctx_for(c5, 1, 2, []))
        assert (0, 1) not in flood.delivered


class _FloodDriver(Protocol):
    """Minimal protocol: flood own value once, keep forwarding."""

    def __init__(self, graph, node, value):
        self.graph = graph
        self.node = node
        self.value = value
        self.flood = FloodInstance(
            graph, node, phase="only", default_payload=ValuePayload(1)
        )

    def on_round(self, ctx):
        if ctx.round_no == 1:
            self.flood.initiate(ctx, ValuePayload(self.value))
        else:
            self.flood.process_round(ctx)

    def output(self):
        return None


class TestEmergentProperties:
    def run_flood(self, graph, values, faulty_protocols=None):
        protos = {
            v: _FloodDriver(graph, v, values[v]) for v in graph.nodes
        }
        if faulty_protocols:
            protos.update(faulty_protocols)
        net = SynchronousNetwork(graph, protos, local_broadcast_model())
        net.run(flood_rounds(graph))
        return protos

    def test_every_simple_path_delivers(self, c5):
        """In a fault-free flood every simple path carries a value."""
        from repro.graphs import all_simple_paths

        values = {v: v % 2 for v in c5.nodes}
        protos = self.run_flood(c5, values)
        for v in c5.nodes:
            delivered = protos[v].flood.delivered
            for u in c5.nodes - {v}:
                for p in all_simple_paths(c5, u, v):
                    assert p in delivered
                    assert delivered[p] == ValuePayload(values[u])

    def test_observation_b1_fault_free_paths_carry_true_value(self):
        """Observation B.1: a fault-free path delivers what the origin
        actually broadcast — even when other nodes are Byzantine."""
        g = paper_figure_1a()
        values = {v: 1 for v in g.nodes}

        class Tamper(_FloodDriver):
            def on_round(self, ctx):
                if ctx.round_no == 1:
                    self.flood.initiate(ctx, ValuePayload(self.value))
                else:
                    shadow = ctx_for(ctx.graph, ctx.node, ctx.round_no, ctx.inbox)
                    self.flood.process_round(shadow)
                    for out in shadow.outbox:
                        m = out.message
                        if m.path:
                            m = FloodMessage(m.phase, ValuePayload(0), m.path)
                        ctx.broadcast(m)

        protos = self.run_flood(
            g, values, faulty_protocols={3: Tamper(g, 3, 1)}
        )
        for v in g.nodes - {3}:
            delivered = protos[v].flood.delivered
            for path, payload in delivered.items():
                if len(path) < 2:
                    continue
                if 3 not in path[1:-1]:  # fault-free path
                    assert payload == ValuePayload(values[path[0]]), path

    def test_equivocation_impossible_on_fault_free_paths(self):
        """Rule (ii) + local broadcast: two nodes reached by fault-free
        paths from the same (faulty) origin see the same value."""
        g = cycle_graph(4)
        values = {v: 0 for v in g.nodes}

        class DoubleInit(_FloodDriver):
            def on_round(self, ctx):
                if ctx.round_no == 1:
                    # Attempt to equivocate by double-initiating: under
                    # local broadcast both messages go to both neighbors.
                    ctx.broadcast(FloodMessage("only", ValuePayload(0), ()))
                    ctx.broadcast(FloodMessage("only", ValuePayload(1), ()))
                else:
                    self.flood.process_round(ctx)

        protos = self.run_flood(
            g, values, faulty_protocols={0: DoubleInit(g, 0, 0)}
        )
        seen = {
            v: protos[v].flood.delivered.get((0, v))
            for v in g.neighbors(0)
        }
        assert set(seen.values()) == {ValuePayload(0)}  # first one only

    def test_flood_rounds_budget(self, c5, fig1b):
        assert flood_rounds(c5) == 5
        assert flood_rounds(fig1b) == 8
