"""PathOracle: cached answers must equal the uncached machinery."""

import pickle
from itertools import combinations

import pytest

from repro.consensus import Algorithm1Factory, PathOracle, algorithm1_factory
from repro.consensus.runner import run_consensus
from repro.graphs import (
    cycle_graph,
    disjoint_paths_excluding,
    harary_graph,
    petersen_graph,
    wheel_graph,
)


def uncached_path_excluding(graph, u, v, excluded):
    """The original ExactConsensusProtocol._path_excluding computation."""
    pruned = graph.remove_nodes(set(excluded) - {u, v})
    if u not in pruned.nodes or v not in pruned.nodes:
        return None
    return pruned.shortest_path(u, v)


class TestPathExcluding:
    @pytest.mark.parametrize("graph", [
        cycle_graph(6), petersen_graph(), wheel_graph(6), harary_graph(3, 8),
    ], ids=["c6", "petersen", "w6", "h38"])
    def test_matches_uncached_connectivity_calls(self, graph):
        oracle = PathOracle(graph)
        nodes = sorted(graph.nodes, key=repr)
        for excluded in [frozenset(), frozenset(nodes[:1]), frozenset(nodes[:2])]:
            for u, v in combinations(nodes, 2):
                expected = uncached_path_excluding(graph, u, v, excluded)
                got = oracle.path_excluding(u, v, excluded)
                if expected is None:
                    assert got is None, (u, v, excluded)
                    continue
                # Same existence and same (shortest) length; the concrete
                # tie-break may differ, but the path must be real and
                # avoid the excluded set internally.
                assert got is not None
                assert len(got) == len(expected)
                assert got[0] == u and got[-1] == v
                assert all(graph.has_edge(x, y) for x, y in zip(got, got[1:]))
                assert not (set(got[1:-1]) & excluded)

    def test_excluded_endpoints_stay_usable(self):
        graph = cycle_graph(5)
        oracle = PathOracle(graph)
        path = oracle.path_excluding(0, 2, frozenset({0, 2}))
        assert path is not None and path[0] == 0 and path[-1] == 2

    def test_disconnection_returns_none(self):
        graph = cycle_graph(6)
        oracle = PathOracle(graph)
        assert oracle.path_excluding(0, 3, frozenset({1, 5})) is None

    def test_caching_counters(self):
        graph = cycle_graph(5)
        oracle = PathOracle(graph)
        oracle.path_excluding(0, 2, frozenset({4}))
        assert oracle.cache_info()["misses"] == 1
        oracle.path_excluding(0, 2, frozenset({4}))
        assert oracle.cache_info()["hits"] == 1
        # Different query, same pruned graph: BFS tree is reused.
        oracle.path_excluding(1, 2, frozenset({4}))
        assert oracle.cache_info()["bfs_trees"] == 1
        assert oracle.cache_info()["pruned_graphs"] == 1


class TestDisjointPathsExcluding:
    def test_matches_uncached(self):
        graph = petersen_graph()
        oracle = PathOracle(graph)
        sources, sink, exclude = {0, 1, 2}, 7, {4}
        expected = disjoint_paths_excluding(graph, sources, sink, exclude, 2)
        got = oracle.disjoint_paths_excluding(sources, sink, exclude, 2)
        assert got == expected
        assert oracle.disjoint_paths_excluding(sources, sink, exclude, 2) == expected
        assert oracle.cache_info()["hits"] == 1

    def test_infeasible_packing_is_none_and_cached(self):
        graph = cycle_graph(5)
        oracle = PathOracle(graph)
        assert oracle.disjoint_paths_excluding({0}, 2, set(), 3) is None
        assert oracle.disjoint_paths_excluding({0}, 2, set(), 3) is None
        assert oracle.cache_info()["hits"] == 1

    def test_reliable_payload_routes_through_the_packing_cache(self):
        """The asynchronous algorithm's certificate checks ask the oracle
        for packing feasibility before packing delivered paths — the
        answer must not change, and repeated checks about the same
        origin must hit the cache."""
        from repro.consensus import reliable_payload

        graph = cycle_graph(5)  # κ = 2: f+1 = 2 disjoint paths exist
        oracle = PathOracle(graph)
        delivered = {
            (0, 1, 2): "payload",
            (0, 4, 3, 2): "payload",
        }
        with_oracle = reliable_payload(graph, 1, 2, delivered, 0, oracle=oracle)
        without = reliable_payload(graph, 1, 2, delivered, 0)
        assert with_oracle == without == "payload"
        assert oracle.cache_info()["packings"] == 1
        reliable_payload(graph, 1, 2, delivered, 0, oracle=oracle)
        assert oracle.cache_info()["hits"] == 1
        # An origin the graph cannot certify is cut off by the oracle
        # before any delivered-path packing runs — and cached as None.
        from repro.graphs import path_graph

        line = path_graph(4)  # κ = 1: no 2-packing exists to anyone
        line_oracle = PathOracle(line)
        assert reliable_payload(
            line, 1, 3, {(0, 1, 2, 3): "x"}, 0, oracle=line_oracle
        ) is None
        assert line_oracle.cache_info()["packings"] == 1


class TestSharing:
    def test_factory_shares_one_oracle(self):
        graph = cycle_graph(5)
        factory = Algorithm1Factory(graph, 1)
        p0 = factory(0, 0)
        p1 = factory(1, 1)
        assert p0.oracle is p1.oracle is factory.oracle

    def test_wrong_graph_rejected(self):
        from repro.consensus import Algorithm1Protocol

        oracle = PathOracle(cycle_graph(5))
        with pytest.raises(ValueError):
            Algorithm1Protocol(cycle_graph(4), 0, 1, 0, oracle=oracle)

    def test_pickled_factory_ships_warm_oracle(self):
        """The factory's oracle crosses the process boundary with its
        structural memos (pruned graphs, BFS trees) intact; the
        per-query caches and counters start fresh in the worker."""
        graph = cycle_graph(5)
        factory = algorithm1_factory(graph, 1)
        factory.oracle.path_excluding(0, 2, frozenset({4}))
        before = factory.oracle.cache_info()
        assert before["pruned_graphs"] == 1 and before["bfs_trees"] == 1
        clone = pickle.loads(pickle.dumps(factory))
        assert clone.graph == graph
        info = clone.oracle.cache_info()
        assert info["pruned_graphs"] == 1
        assert info["bfs_trees"] == 1
        # Per-query result caches and counters are per-process state.
        assert info["paths"] == 0
        assert info["hits"] == 0 and info["misses"] == 0

    def test_unpickled_oracle_reuses_warm_memos(self):
        """Cache-hit assertion for the warm reduce path: a repeated
        query in the 'worker' reuses the shipped pruned graph and BFS
        tree instead of recomputing them."""
        graph = petersen_graph()
        oracle = PathOracle(graph)
        excluded = frozenset({3})
        warm_path = oracle.path_excluding(0, 2, excluded)
        clone = pickle.loads(pickle.dumps(oracle))
        assert clone.cache_info()["pruned_graphs"] == 1
        assert clone.cache_info()["bfs_trees"] == 1
        # The same query against the clone answers identically without
        # growing the structural memos — they were reused, not rebuilt.
        assert clone.path_excluding(0, 2, excluded) == warm_path
        assert clone.cache_info()["pruned_graphs"] == 1
        assert clone.cache_info()["bfs_trees"] == 1
        # A same-phase query for a different origin rides the shipped
        # BFS tree: no new tree is built either.
        clone.path_excluding(1, 2, excluded)
        assert clone.cache_info()["bfs_trees"] == 1

    def test_shared_oracle_run_matches_fresh_oracles(self):
        """A full consensus run behaves identically whether instances
        share the factory oracle or each build their own."""
        graph = cycle_graph(4)
        inputs = {v: v % 2 for v in graph.nodes}

        shared = run_consensus(graph, algorithm1_factory(graph, 1), inputs, f=1)

        def fresh_factory(node, input_value):
            from repro.consensus import Algorithm1Protocol
            return Algorithm1Protocol(graph, node, 1, input_value)

        fresh = run_consensus(graph, fresh_factory, inputs, f=1)
        assert shared.honest_outputs == fresh.honest_outputs
        assert shared.rounds == fresh.rounds
        assert shared.transmissions == fresh.transmissions


class TestObsCounters:
    """The hit/miss tallies live on an obs registry; ``hits``/``misses``
    are property shims over the labeled counters, split by query kind."""

    def test_shims_sum_the_labeled_counters(self):
        graph = petersen_graph()
        oracle = PathOracle(graph)
        oracle.path_excluding(0, 2, frozenset())       # path miss
        oracle.path_excluding(0, 2, frozenset())       # path hit
        oracle.disjoint_paths_excluding([0, 1], 2, frozenset(), 2)  # packing miss
        assert oracle.metrics.counter("oracle.misses", kind="path") == 1
        assert oracle.metrics.counter("oracle.hits", kind="path") == 1
        assert oracle.metrics.counter("oracle.misses", kind="packing") == 1
        assert oracle.hits == 1
        assert oracle.misses == 2
        assert oracle.cache_info()["hits"] == oracle.hits
        assert oracle.cache_info()["misses"] == oracle.misses

    def test_snapshot_keys_are_canonical(self):
        graph = cycle_graph(5)
        oracle = PathOracle(graph)
        oracle.path_excluding(0, 2, frozenset())
        counters = oracle.metrics.snapshot()["counters"]
        assert counters == {"oracle.misses{kind=path}": 1}

    def test_warm_shipped_oracle_starts_with_zeroed_registry(self):
        graph = petersen_graph()
        oracle = PathOracle(graph)
        for _ in range(3):
            oracle.path_excluding(0, 2, frozenset({4}))
        clone = pickle.loads(pickle.dumps(oracle))
        # Memos travel; the per-process registry does not.
        assert clone.metrics.snapshot()["counters"] == {}
        assert clone.hits == 0 and clone.misses == 0
