"""Algorithm 2 vs its phase-specific attack surface and mixed faults."""

import pytest

from repro.consensus import algorithm2_factory, run_consensus
from repro.graphs import complete_graph, cycle_graph
from repro.net import (
    CrashAdversary,
    DecisionForgeAdversary,
    LyingReporterAdversary,
    SilentReporterAdversary,
    TamperForwardAdversary,
    algorithm2_attack_battery,
)
from repro.net.adversary import CompositeAdversary


class TestPhaseSpecificAttacks:
    @pytest.mark.parametrize(
        "adversary", algorithm2_attack_battery(), ids=lambda a: a.name
    )
    @pytest.mark.parametrize("inputs_kind", ["mixed", "unanimous"])
    def test_c4_survives(self, c4, adversary, inputs_kind):
        inputs = (
            {v: v % 2 for v in c4.nodes}
            if inputs_kind == "mixed"
            else {v: 1 for v in c4.nodes}
        )
        res = run_consensus(
            c4, algorithm2_factory(c4, 1), inputs, f=1,
            faulty=[2], adversary=adversary,
        )
        assert res.consensus, adversary.name
        if inputs_kind == "unanimous":
            assert res.decision == 1

    @pytest.mark.parametrize(
        "adversary", algorithm2_attack_battery(), ids=lambda a: a.name
    )
    def test_c5_survives(self, c5, adversary):
        inputs = {v: 0 for v in c5.nodes}
        res = run_consensus(
            c5, algorithm2_factory(c5, 1), inputs, f=1,
            faulty=[1], adversary=adversary,
        )
        assert res.consensus and res.decision == 0

    def test_forged_decision_never_adopted(self, c4):
        """A forged decision of 1 cannot flip a forced-0 instance."""
        res = run_consensus(
            c4, algorithm2_factory(c4, 1), {v: 0 for v in c4.nodes}, f=1,
            faulty=[3], adversary=DecisionForgeAdversary(value=1),
        )
        assert res.consensus and res.decision == 0

    def test_lying_reporter_cannot_frame_honest_nodes(self, c4):
        """Detection soundness against active report forgery."""
        from repro.net import FaultSpec, SynchronousNetwork
        from repro.net.channels import local_broadcast_model

        fac = algorithm2_factory(c4, 1)
        ch = local_broadcast_model()
        protos = {}
        for v in sorted(c4.nodes):
            if v == 1:
                spec = FaultSpec(
                    node=v, graph=c4, channel=ch, input_value=1, f=1,
                    faulty=frozenset({1}), honest_factory=fac,
                )
                protos[v] = LyingReporterAdversary().build(spec)
            else:
                protos[v] = fac(v, 0)
        net = SynchronousNetwork(c4, protos, ch)
        net.run(12)
        for v in {0, 2, 3}:
            assert protos[v].detected <= {1}


class TestMixedMultiFault:
    def test_k5_f2_mixed_behaviors(self, k5):
        adversary = CompositeAdversary(
            {1: TamperForwardAdversary(), 4: SilentReporterAdversary()}
        )
        res = run_consensus(
            k5, algorithm2_factory(k5, 2), {v: v % 2 for v in k5.nodes},
            f=2, faulty=[1, 4], adversary=adversary,
        )
        assert res.consensus

    def test_k5_f2_forge_and_crash(self, k5):
        adversary = CompositeAdversary(
            {0: DecisionForgeAdversary(), 2: CrashAdversary(crash_round=3)}
        )
        res = run_consensus(
            k5, algorithm2_factory(k5, 2), {v: 1 for v in k5.nodes},
            f=2, faulty=[0, 2], adversary=adversary,
        )
        assert res.consensus and res.decision == 1

    def test_c6_circulant_f2_mixed(self):
        from repro.graphs import circulant_graph

        g = circulant_graph(6, [1, 2])  # 4-connected: 2f for f = 2
        adversary = CompositeAdversary(
            {0: LyingReporterAdversary(), 3: TamperForwardAdversary()}
        )
        res = run_consensus(
            g, algorithm2_factory(g, 2), {v: v % 2 for v in g.nodes},
            f=2, faulty=[0, 3], adversary=adversary,
        )
        assert res.consensus


class TestEarlyFabricationSoundness:
    """Regression: a faulty node fabricating a correct-valued forward
    *ahead of schedule* must not get its honest downstream victims
    blamed.  Found by hypothesis (C4, RandomAdversary seed 562, faulty
    node 3): the honest neighbor accepted the early copy, forwarded one
    round early, rule (ii) swallowed the on-schedule duplicate, and the
    exact-round omission check marked the honest node faulty — two
    honest nodes each 'detected' two faults with f = 1 and disagreed."""

    def test_seed_562_falsifying_example(self, c4):
        from repro.net import RandomAdversary

        seed, faulty = 562, 3
        inputs = {v: (seed >> v) & 1 for v in c4.nodes}
        res = run_consensus(
            c4, algorithm2_factory(c4, 1), inputs, f=1,
            faulty=[faulty], adversary=RandomAdversary(seed=seed),
        )
        assert res.consensus

    def test_detection_never_exceeds_f_and_never_blames_honest(self, c4):
        from repro.net import RandomAdversary

        for seed in (562, 563, 1201, 4077, 9900):
            for faulty in range(4):
                inputs = {v: (seed >> v) & 1 for v in c4.nodes}
                factory = algorithm2_factory(c4, 1)
                res = run_consensus(
                    c4, factory, inputs, f=1,
                    faulty=[faulty], adversary=RandomAdversary(seed=seed),
                )
                assert res.consensus, (seed, faulty)

    def test_early_fabricator_is_the_one_detected(self, c4):
        """A surgical early fabricator: in round 1, alongside its honest
        initiation, it also broadcasts a forward of its neighbor's true
        value — physically impossible for an honest node.  Localization
        must blame the fabricator, never the honest forwarders."""
        from repro.consensus.algorithm2 import Algorithm2Protocol
        from repro.net import Adversary, FloodMessage, ValuePayload
        from repro.net.adversary import _WrapperProtocol

        class EarlyFabricator(Adversary):
            name = "early-fabricate"

            def build(self, spec):
                neighbor = min(spec.graph.neighbors(spec.node))

                class _Early(_WrapperProtocol):
                    def transform(self, outbox, ctx):
                        if ctx.round_no == 1:
                            outbox = outbox + [(
                                FloodMessage(
                                    Algorithm2Protocol.PHASE1,
                                    ValuePayload(0),
                                    (neighbor,),
                                ),
                                None,
                            )]
                        return outbox

                return _Early(spec.honest())

        inputs = {0: 0, 1: 1, 2: 0, 3: 0}
        factory = algorithm2_factory(c4, 1)
        res = run_consensus(
            c4, factory, inputs, f=1, faulty=[3],
            adversary=EarlyFabricator(),
        )
        assert res.consensus
