"""Algorithm 2 (Appendix C): O(n) rounds on 2f-connected graphs.

Covers consensus under the adversary battery, the type A/B mechanics,
fault-localization soundness, and the appendix lemmas (C.2, C.4, C.5)
observed on live runs.
"""

import pytest

from repro.analysis import consensus_sweep
from repro.consensus import (
    Algorithm2Protocol,
    algorithm2_factory,
    majority,
    run_consensus,
)
from repro.graphs import complete_graph, cycle_graph, paper_figure_1b
from repro.net import (
    FaultSpec,
    LyingInitAdversary,
    RandomAdversary,
    SilentAdversary,
    SynchronousNetwork,
    TamperForwardAdversary,
    local_broadcast_model,
    standard_adversaries,
)


def run_instrumented(graph, f, inputs, faulty, adversary):
    """Run and return the protocol objects for state inspection."""
    fac = algorithm2_factory(graph, f)
    ch = local_broadcast_model()
    protos = {}
    for v in sorted(graph.nodes):
        if v in faulty:
            spec = FaultSpec(
                node=v, graph=graph, channel=ch, input_value=inputs[v],
                f=f, faulty=frozenset(faulty), honest_factory=fac,
            )
            protos[v] = adversary.build(spec)
        else:
            protos[v] = fac(v, inputs[v])
    net = SynchronousNetwork(graph, protos, ch)
    net.run(3 * graph.n)
    return protos, net


class TestMajority:
    def test_majority_basic(self):
        assert majority([1, 1, 0]) == 1
        assert majority([0, 0, 1]) == 0

    def test_tie_decides_zero(self):
        assert majority([0, 1]) == 0
        assert majority([]) == 0


class TestConsensus:
    @pytest.mark.parametrize(
        "adversary", standard_adversaries(seed=2), ids=lambda a: a.name
    )
    @pytest.mark.parametrize("faulty", [1, 3])
    def test_c4_every_adversary(self, c4, adversary, faulty):
        inputs = {v: v % 2 for v in c4.nodes}
        res = run_consensus(
            c4, algorithm2_factory(c4, 1), inputs, f=1,
            faulty=[faulty], adversary=adversary,
        )
        assert res.consensus, (adversary.name, faulty)

    def test_c5_tamper(self, c5):
        res = run_consensus(
            c5, algorithm2_factory(c5, 1), {v: 0 for v in c5.nodes}, f=1,
            faulty=[2], adversary=TamperForwardAdversary(),
        )
        assert res.consensus and res.decision == 0

    @pytest.mark.parametrize(
        "adversary",
        [TamperForwardAdversary(), SilentAdversary(), LyingInitAdversary(),
         RandomAdversary(seed=6)],
        ids=lambda a: a.name,
    )
    def test_k5_two_faults(self, k5, adversary):
        inputs = {0: 0, 1: 1, 2: 0, 3: 1, 4: 1}
        res = run_consensus(
            k5, algorithm2_factory(k5, 2), inputs, f=2,
            faulty=[0, 3], adversary=adversary,
        )
        assert res.consensus

    def test_exhaustive_battery_c4(self, c4):
        report = consensus_sweep(c4, algorithm2_factory(c4, 1), f=1, seed=3)
        assert report.all_consensus, report.failures[:3]

    @pytest.mark.slow
    def test_fig1b_f2_battery_sampled(self, fig1b):
        report = consensus_sweep(
            fig1b, algorithm2_factory(fig1b, 2), f=2,
            fault_limit=2, patterns=["split"], seed=4,
        )
        assert report.all_consensus, report.failures[:3]

    def test_no_faults(self, c4):
        res = run_consensus(
            c4, algorithm2_factory(c4, 1), {0: 1, 1: 1, 2: 0, 3: 1}, f=1
        )
        assert res.consensus and res.decision == 1


class TestRoundComplexity:
    @pytest.mark.parametrize("n", [4, 5, 6, 7])
    def test_exactly_3n_rounds(self, n):
        g = cycle_graph(n) if n <= 5 else complete_graph(n)
        res = run_consensus(
            g, algorithm2_factory(g, 1), {v: 0 for v in g.nodes}, f=1,
            faulty=[0], adversary=SilentAdversary(),
        )
        assert res.consensus
        assert res.rounds <= 3 * n

    def test_budget_attribute(self, c4):
        assert Algorithm2Protocol(c4, 0, 1, 0).total_rounds == 12


class TestFaultLocalization:
    def test_tamperer_detected_and_type_a(self, c4):
        protos, _net = run_instrumented(
            c4, 1, {v: (1 if v != 0 else 0) for v in c4.nodes},
            faulty={2}, adversary=TamperForwardAdversary(),
        )
        for v in set(c4.nodes) - {2}:
            assert protos[v].detected == {2}
            assert protos[v].node_type == "A"

    def test_detection_is_sound(self, c5):
        """Detected sets only ever contain actually faulty nodes."""
        for adversary in standard_adversaries(seed=9):
            protos, _ = run_instrumented(
                c5, 1, {v: v % 2 for v in c5.nodes},
                faulty={4}, adversary=adversary,
            )
            for v in set(c5.nodes) - {4}:
                assert protos[v].detected <= {4}, adversary.name

    def test_benign_fault_leaves_everyone_type_b(self, c4):
        """A faulty node that only lies about its input is consistent:
        nobody can localize it, everyone stays type B — and consensus
        still holds via the majority of reliable values."""
        protos, _ = run_instrumented(
            c4, 1, {v: 1 for v in c4.nodes},
            faulty={1}, adversary=LyingInitAdversary(),
        )
        for v in set(c4.nodes) - {1}:
            assert protos[v].node_type == "B"
            assert protos[v].detected == set()

    def test_mixed_types_still_agree(self, c5):
        """Tampering on C5 leaves some nodes type A and possibly some
        type B; their decisions must coincide regardless."""
        protos, _ = run_instrumented(
            c5, 1, {v: 0 for v in c5.nodes},
            faulty={3}, adversary=TamperForwardAdversary(),
        )
        outputs = {protos[v].output() for v in set(c5.nodes) - {3}}
        assert len(outputs) == 1


class TestAppendixLemmas:
    def test_lemma_c2_faulty_transmissions_reliably_received(self, c4):
        """Every honest node reliably receives a (tampering) faulty
        node's value — Definition C.1 case 3 kicks in."""
        protos, _ = run_instrumented(
            c4, 1, {v: 1 for v in c4.nodes},
            faulty={2}, adversary=LyingInitAdversary(),
        )
        for v in set(c4.nodes) - {2}:
            assert 2 in protos[v].reliable_values

    def test_lemma_c5_at_least_2f_plus_own(self, c4, k5):
        for g, f in [(c4, 1), (k5, 2)]:
            protos, _ = run_instrumented(
                g, f, {v: 0 for v in g.nodes},
                faulty=set(), adversary=SilentAdversary(),
            )
            for v in g.nodes:
                assert len(protos[v].reliable_values) >= 2 * f + 1

    def test_lemma_c4_type_b_nodes_share_reliable_sets(self, c5):
        for adversary in [TamperForwardAdversary(), SilentAdversary(),
                          RandomAdversary(seed=1)]:
            protos, _ = run_instrumented(
                c5, 1, {v: v % 2 for v in c5.nodes},
                faulty={1}, adversary=adversary,
            )
            type_b = [
                v for v in set(c5.nodes) - {1}
                if protos[v].node_type == "B"
            ]
            sets = {frozenset(protos[v].reliable_values.items()) for v in type_b}
            assert len(sets) <= 1, adversary.name
