"""The α-synchronizer: degenerate equivalence, recovery, both modes.

Three layers of claims:

* **degenerate case** — wrapping with ``window=1`` under lockstep (max
  delay 1) is decision-identical to the unwrapped protocol, for every
  protocol factory in the library (the property the issue requires);
* **recovery** — under the asynchronous schedulers that break the bare
  fixed-round algorithms, the alpha-wrapped run reaches the *same*
  decisions as the synchronous run (time-division makes the wrapped
  execution simulate the synchronous one);
* **mechanics** — ack-mode marker handshake, factory pickling, sweep
  integration, validation.
"""

import pickle

import pytest

from repro.analysis import consensus_sweep
from repro.consensus import (
    AlphaSynchronizer,
    RoundMarker,
    SynchronizedFactory,
    algorithm1_factory,
    algorithm2_factory,
    algorithm3_factory,
    dolev_eig_factory,
    eig_factory,
    run_consensus,
    synchronize_factory,
)
from repro.graphs import complete_graph, cycle_graph, paper_figure_1a
from repro.net import (
    Protocol,
    SchedulerSpec,
    SilentAdversary,
    TamperForwardAdversary,
    hybrid_model,
    point_to_point_model,
)

LOCKSTEP = SchedulerSpec("lockstep")
SEEDED = SchedulerSpec("seeded-async", seed=7, max_delay=3)
ADVERSARIAL = SchedulerSpec("adversarial", max_delay=3)


def case_id(case):
    return case[0]


# (name, graph builder, factory builder, channel builder, faulty) — the
# same five factories the lockstep-equivalence suite covers.
CASES = [
    (
        "algorithm1",
        paper_figure_1a,
        lambda g: algorithm1_factory(g, 1),
        lambda g: None,
        [2],
    ),
    (
        "algorithm2",
        lambda: cycle_graph(4),
        lambda g: algorithm2_factory(g, 1),
        lambda g: None,
        [1],
    ),
    (
        "algorithm3",
        lambda: complete_graph(4),
        lambda g: algorithm3_factory(g, 1, 1),
        lambda g: hybrid_model({0}),
        [0],
    ),
    (
        "eig",
        lambda: complete_graph(4),
        lambda g: eig_factory(g, 1),
        lambda g: point_to_point_model(),
        [2],
    ),
    (
        "dolev-eig",
        lambda: complete_graph(5),
        lambda g: dolev_eig_factory(g, 1),
        lambda g: point_to_point_model(),
        [3],
    ),
]


def run_case(case, factory_wrap, scheduler, with_fault=True):
    _, graph_builder, factory_builder, channel_builder, faulty = case
    graph = graph_builder()
    inputs = {v: i % 2 for i, v in enumerate(sorted(graph.nodes, key=repr))}
    return run_consensus(
        graph,
        factory_wrap(factory_builder(graph)),
        inputs,
        f=1,
        faulty=faulty if with_fault else [],
        adversary=TamperForwardAdversary() if with_fault else None,
        channel=channel_builder(graph),
        scheduler=scheduler,
    )


def verdict(result):
    return (
        result.outputs,
        result.decision,
        result.consensus,
        result.agreement,
        result.validity,
        result.outcome,
    )


class TestDegenerateLockstep:
    """window=1 under max-delay-1 timing == the unwrapped protocol."""

    @pytest.mark.parametrize("case", CASES, ids=case_id)
    @pytest.mark.parametrize("mode", ["alpha", "ack"])
    @pytest.mark.parametrize("with_fault", [False, True], ids=["honest", "faulty"])
    def test_decision_identical_to_bare(self, case, mode, with_fault):
        bare = run_case(case, lambda f: f, None, with_fault)
        wrapped = run_case(
            case,
            lambda f: SynchronizedFactory(f, window=1, mode=mode),
            LOCKSTEP,
            with_fault,
        )
        assert verdict(wrapped) == verdict(bare)

    @pytest.mark.parametrize("case", CASES, ids=case_id)
    def test_alpha_window_one_is_trace_identical(self, case):
        """Alpha with window=1 is a strict pass-through: even the wire
        traffic matches the bare lockstep run transmission-for-
        transmission (no extra messages, no reordering)."""
        bare = run_case(case, lambda f: f, LOCKSTEP)
        wrapped = run_case(
            case, lambda f: SynchronizedFactory(f, window=1), LOCKSTEP
        )
        assert wrapped.trace.transmissions == bare.trace.transmissions
        assert wrapped.trace.deliveries == bare.trace.deliveries


class TestAlphaRecovery:
    """The headline: asynchrony breaks bare Algorithm 2, the wrapper
    restores it — with the synchronous run's exact decisions."""

    @pytest.mark.parametrize(
        "spec", [SEEDED, ADVERSARIAL], ids=["seeded-async", "adversarial"]
    )
    def test_alg2_c4_recovered(self, spec):
        # A scenario both async schedulers genuinely break (verified by
        # the sweep): node 0 tampering forwards, all-zero inputs.
        g = cycle_graph(4)
        inputs = {v: 0 for v in g.nodes}

        def run(factory_wrap, scheduler):
            return run_consensus(
                g,
                factory_wrap(algorithm2_factory(g, 1)),
                inputs,
                f=1,
                faulty=[0],
                adversary=TamperForwardAdversary(),
                scheduler=scheduler,
            )

        bare_async = run(lambda f: f, spec)
        sync = run(lambda f: f, None)
        wrapped = run(lambda f: synchronize_factory(f, spec), spec)
        assert sync.consensus
        assert not bare_async.consensus  # asynchrony genuinely bites
        assert bare_async.outcome == "disagreed"  # ...not clock exhaustion
        assert wrapped.consensus
        assert verdict(wrapped) == verdict(sync)

    @pytest.mark.parametrize("case", CASES, ids=case_id)
    def test_honest_runs_decision_identical_to_sync(self, case):
        """Fault-free alpha-wrapped asynchronous execution simulates the
        synchronous one exactly, for every factory in the library."""
        sync = run_case(case, lambda f: f, None, with_fault=False)
        wrapped = run_case(
            case,
            lambda f: synchronize_factory(f, SEEDED),
            SEEDED,
            with_fault=False,
        )
        assert verdict(wrapped) == verdict(sync)

    def test_wrapped_budget_scales_with_window(self):
        g = cycle_graph(4)
        inner = algorithm2_factory(g, 1)(0, 1)
        wrapper = AlphaSynchronizer(
            algorithm2_factory(g, 1)(0, 1), window=3
        )
        assert wrapper.total_rounds == inner.total_rounds * 3


class TestAckMode:
    def test_fault_free_async_decides(self):
        """The marker handshake needs no delay bound to terminate."""
        g = cycle_graph(4)
        inputs = {v: v % 2 for v in g.nodes}
        sync = run_consensus(g, algorithm2_factory(g, 1), inputs, f=1)
        ack = run_consensus(
            g,
            synchronize_factory(algorithm2_factory(g, 1), SEEDED, mode="ack"),
            inputs,
            f=1,
            scheduler=SEEDED,
        )
        assert ack.consensus
        assert ack.decision == sync.decision

    def test_silent_fault_stalls_the_classical_handshake(self):
        """With no fault allowance (f = 0, the pre-fix behavior), a
        Byzantine node that withholds markers blocks round advance —
        the classical synchronizer's documented fault-intolerance,
        surfaced as a budget_exhausted outcome (never as disagreement)."""
        g = cycle_graph(4)
        inputs = {v: v % 2 for v in g.nodes}
        res = run_consensus(
            g,
            synchronize_factory(
                algorithm2_factory(g, 1), SEEDED, mode="ack", f=0
            ),
            inputs,
            f=1,
            faulty=[1],
            adversary=SilentAdversary(),
            scheduler=SEEDED,
        )
        assert res.outcome == "budget_exhausted"
        assert not res.terminated

    @pytest.mark.parametrize(
        "spec", [SEEDED, ADVERSARIAL], ids=["seeded-async", "adversarial"]
    )
    def test_marker_withholding_fault_decides_with_quorum(self, spec):
        """The regression the fix exists for: alg2/C4 + ack + one
        marker-withholding Byzantine node must reach ``decided`` (with
        the synchronous run's exact decision), not ``budget_exhausted``.
        The ``deg − f`` marker quorum advances past the withholder; the
        α-window gate keeps honest payloads from ever being skipped."""
        g = cycle_graph(4)
        inputs = {v: v % 2 for v in g.nodes}
        sync = run_consensus(
            g, algorithm2_factory(g, 1), inputs, f=1,
            faulty=[1], adversary=SilentAdversary(),
        )
        fixed = run_consensus(
            g,
            synchronize_factory(
                algorithm2_factory(g, 1), spec, mode="ack", f=1
            ),
            inputs,
            f=1,
            faulty=[1],
            adversary=SilentAdversary(),
            scheduler=spec,
        )
        assert fixed.outcome == "decided"
        assert fixed.consensus
        assert fixed.decision == sync.decision

    def test_quorum_advance_never_skips_honest_payloads(self):
        """Fault-free, the fault-tolerant handshake must still be
        decision-identical to the synchronous run — the α-window gate is
        what guarantees slow honest neighbors are waited for."""
        g = cycle_graph(4)
        inputs = {v: v % 2 for v in g.nodes}
        sync = run_consensus(g, algorithm2_factory(g, 1), inputs, f=1)
        ack = run_consensus(
            g,
            synchronize_factory(
                algorithm2_factory(g, 1), SEEDED, mode="ack", f=1
            ),
            inputs,
            f=1,
            scheduler=SEEDED,
        )
        assert ack.consensus
        assert ack.decision == sync.decision

    def test_quorum_needs_the_declared_bound(self):
        """Under a scheduler that declares no delay bound there is no
        sound timeout gate, so the quorum path stays off and the
        withholding fault stalls the run even with f = 1 — the native
        asynchronous algorithm is the answer in that regime."""
        g = cycle_graph(4)
        inputs = {v: v % 2 for v in g.nodes}
        unbounded = SchedulerSpec("seeded-async", seed=7, max_delay=3,
                                  unbounded=True)
        factory = synchronize_factory(
            algorithm2_factory(g, 1), unbounded, mode="ack", window=3, f=1
        )
        assert not factory.ack_timeout
        res = run_consensus(
            g, factory, inputs, f=1,
            faulty=[1], adversary=SilentAdversary(), scheduler=unbounded,
        )
        assert res.outcome == "budget_exhausted"

    def test_markers_trail_their_round_payloads(self):
        """Per-link FIFO: every round-r payload precedes marker r."""
        g = cycle_graph(4)
        inputs = {v: v % 2 for v in g.nodes}
        res = run_consensus(
            g,
            synchronize_factory(algorithm2_factory(g, 1), SEEDED, mode="ack"),
            inputs,
            f=1,
            scheduler=SEEDED,
        )
        # Reconstruct per-link arrival order; markers partition payloads.
        per_link = {}
        for d in sorted(
            res.trace.deliveries, key=lambda d: (d.delivered_at, d.send_index)
        ):
            per_link.setdefault((d.sender, d.recipient), []).append(d.message)
        assert per_link
        for messages in per_link.values():
            marker_rounds = [
                m.round_no for m in messages if isinstance(m, RoundMarker)
            ]
            assert marker_rounds == sorted(marker_rounds)


class TestFactoryIntegration:
    def test_synchronized_factories_pickle(self):
        g = cycle_graph(4)
        factory = SynchronizedFactory(algorithm2_factory(g, 1), window=3)
        clone = pickle.loads(pickle.dumps(factory))
        assert isinstance(clone, SynchronizedFactory)
        assert (clone.window, clone.mode) == (3, "alpha")
        protocol = clone(0, 1)
        assert isinstance(protocol, AlphaSynchronizer)
        assert protocol.total_rounds == 3 * 3 * g.n

    @pytest.mark.parametrize("workers", [2])
    def test_wrapped_sweep_byte_identical_across_workers(self, workers):
        g = cycle_graph(4)

        def sweep(n):
            return consensus_sweep(
                g,
                synchronize_factory(algorithm2_factory(g, 1), SEEDED),
                f=1,
                patterns=["split"],
                workers=n,
                schedulers=[SEEDED],
            )

        serial, parallel = sweep(1), sweep(workers)
        assert parallel.records == serial.records
        assert parallel.to_json() == serial.to_json()
        assert serial.all_consensus

    def test_wrapped_sweep_full_battery_recovers_consensus(self):
        g = cycle_graph(4)
        bare = consensus_sweep(
            g, algorithm2_factory(g, 1), f=1, schedulers=[SEEDED]
        )
        wrapped = consensus_sweep(
            g,
            synchronize_factory(algorithm2_factory(g, 1), SEEDED),
            f=1,
            schedulers=[SEEDED],
        )
        assert not bare.all_consensus  # the jitter finding, still real
        assert wrapped.all_consensus  # ...and the synchronizer erases it
        assert {r.outcome for r in wrapped.records} == {"decided"}


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(ValueError):
            AlphaSynchronizer(object(), window=0)
        with pytest.raises(ValueError):
            SynchronizedFactory(lambda v, x: None, window=0)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            AlphaSynchronizer(object(), window=1, mode="beta")
        with pytest.raises(ValueError):
            SynchronizedFactory(lambda v, x: None, window=1, mode="beta")

    def test_window_defaults_from_scheduler_spec(self):
        g = cycle_graph(4)
        factory = synchronize_factory(algorithm2_factory(g, 1), SEEDED)
        assert factory.window == SEEDED.worst_case_delay == 3
        bare = synchronize_factory(algorithm2_factory(g, 1), None)
        assert bare.window == 1
        explicit = synchronize_factory(
            algorithm2_factory(g, 1), SEEDED, window=5
        )
        assert explicit.window == 5

    def test_window_below_declared_bound_rejected(self):
        """A window smaller than the scheduler's worst-case delay would
        leak round-r messages into round r+2 — refused, not run."""
        g = cycle_graph(4)
        with pytest.raises(ValueError, match="below scheduler"):
            synchronize_factory(algorithm2_factory(g, 1), SEEDED, window=2)

    def test_wrapped_budget_not_double_scaled(self):
        """The wrapper's total_rounds is tick-denominated; the runner
        must take it as-is instead of multiplying by the delay bound
        again (R·d², triple the simulation for stalled runs)."""
        g = cycle_graph(4)
        inner_rounds = 3 * g.n
        res = run_consensus(
            g,
            synchronize_factory(algorithm2_factory(g, 1), SEEDED, mode="ack"),
            {v: v % 2 for v in g.nodes},
            f=1,
            faulty=[1],
            adversary=SilentAdversary(),
            scheduler=SEEDED,
        )
        assert res.outcome == "budget_exhausted"
        assert res.rounds == inner_rounds * SEEDED.worst_case_delay


class TestSchedulerContract:
    def test_declared_bounds(self):
        assert LOCKSTEP.bounded and LOCKSTEP.worst_case_delay == 1
        assert SEEDED.bounded and SEEDED.worst_case_delay == 3
        assert ADVERSARIAL.bounded and ADVERSARIAL.worst_case_delay == 3
        g = cycle_graph(4)
        for spec in (LOCKSTEP, SEEDED, ADVERSARIAL):
            scheduler = spec.build(g)
            assert scheduler.bounded
            assert scheduler.worst_case_delay == spec.worst_case_delay

    def test_horizon_scaling(self):
        assert LOCKSTEP.horizon(12) == 12
        assert SEEDED.horizon(12) == 36
        with pytest.raises(ValueError):
            SEEDED.horizon(-1)

    def test_overdeclared_delay_is_rejected(self):
        """A scheduler whose delays exceed its declared bound violates
        the contract the synchronizer and runner budget rely on."""
        from repro.net import EventDrivenNetwork, SchedulingError
        from repro.net.sched import LockstepScheduler

        class Liar(LockstepScheduler):
            def delay(self, send, recipient):
                return 2  # declared worst_case_delay is 1

        g = cycle_graph(4)

        class Chatter(Protocol):
            def on_round(self, ctx):
                ctx.broadcast("hi")

            def output(self):
                return None

        net = EventDrivenNetwork(g, {v: Chatter() for v in g.nodes}, Liar())
        with pytest.raises(SchedulingError):
            net.run(2)
