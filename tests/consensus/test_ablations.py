"""Ablations: the design choices DESIGN.md calls out are load-bearing."""

import pytest

from repro.consensus import algorithm1_factory, run_consensus
from repro.consensus.ablation import (
    ReInitAdversary,
    ablated_algorithm1_factory,
    reliable_value_with_threshold,
)
from repro.graphs import cycle_graph, paper_figure_1a
from repro.net import ValuePayload

# The deterministic witness found by searching C5 instances: all honest
# inputs 0, faulty node 0 re-initiating with value 1 two rounds into
# each phase.
WITNESS_INPUTS = {v: 0 for v in range(5)}
WITNESS_FAULTY = 0
WITNESS_DELAY = 2


class TestRuleIIAblation:
    def test_attack_harmless_with_rule_ii(self, c5):
        res = run_consensus(
            c5, algorithm1_factory(c5, 1), WITNESS_INPUTS, f=1,
            faulty=[WITNESS_FAULTY], adversary=ReInitAdversary(WITNESS_DELAY),
        )
        assert res.consensus and res.decision == 0

    def test_attack_breaks_without_rule_ii(self, c5):
        res = run_consensus(
            c5, ablated_algorithm1_factory(c5, 1), WITNESS_INPUTS, f=1,
            faulty=[WITNESS_FAULTY], adversary=ReInitAdversary(WITNESS_DELAY),
        )
        # All honest inputs are 0, yet the ablated protocol outputs 1:
        # the faulty node successfully delivered mismatching views.
        assert not res.validity

    def test_ablated_protocol_fine_without_faults(self, c5):
        """The ablation only matters under attack: fault-free runs of the
        rule-(ii)-less protocol still reach consensus."""
        res = run_consensus(
            c5, ablated_algorithm1_factory(c5, 1),
            {v: v % 2 for v in c5.nodes}, f=1,
        )
        assert res.consensus

    def test_rule_ii_blocks_duplicate_slots_directly(self, c5):
        from repro.consensus import FloodInstance
        from repro.net import Context, FloodMessage, local_broadcast_model

        def ctx(inbox):
            return Context(
                node=1, graph=c5, round_no=2,
                channel=local_broadcast_model(), inbox=inbox,
            )

        first = FloodMessage("p", ValuePayload(0), ())
        second = FloodMessage("p", ValuePayload(1), ())
        guarded = FloodInstance(c5, 1, "p")
        guarded.process_round(ctx([(0, first), (0, second)]))
        assert guarded.delivered[(0, 1)] == ValuePayload(0)

        ablated = FloodInstance(c5, 1, "p", enable_rule_ii=False)
        ablated.process_round(ctx([(0, first), (0, second)]))
        assert ablated.delivered[(0, 1)] == ValuePayload(1)  # overwritten


class TestDefinitionC1ThresholdAblation:
    def _delivered_forged(self):
        """Node 2's true value 1 reaches node 0 on one honest path; a
        single faulty relay (node 1) forges value 0 on the other."""
        return {
            (2, 3, 0): ValuePayload(1),   # honest path
            (2, 1, 0): ValuePayload(0),   # forged by faulty node 1
        }

    def test_paper_threshold_rejects_forgery(self, c4):
        value = reliable_value_with_threshold(
            c4, 2, 0, self._delivered_forged(), 2
        )  # threshold f+1 = 2
        assert value is None  # conflict: nothing reliably received

    def test_lower_threshold_is_spoofable(self, c4):
        value = reliable_value_with_threshold(
            c4, 1, 0, self._delivered_forged(), 2
        )  # threshold f = 1
        # With threshold 1 the forged value 0 qualifies (checked first):
        # a single faulty relay controls the outcome.
        assert value == 0

    def test_threshold_matches_reference_implementation(self, c4):
        from repro.consensus import reliable_value

        delivered = {(2, 1, 0): ValuePayload(1), (2, 3, 0): ValuePayload(1)}
        assert reliable_value(c4, 1, 0, delivered, 2) == (
            reliable_value_with_threshold(c4, 2, 0, delivered, 2)
        )
