"""Property tests: the bitmask fast paths decide exactly like the
label-space implementations they replaced.

Three oracles are kept in this file or in the shipped tree:

* ``LegacyFlood`` below is the pre-refactor :class:`FloodInstance`
  acceptance logic (hash-and-walk ``is_path``, label-space rule-(ii)
  slots) — hypothesis feeds both implementations identical adversarial
  message streams and the delivered dicts, per-origin sub-indexes and
  metric snapshots must match byte for byte;
* :meth:`PathFloodEngine.naive_deliveries_at` is the retained
  enumerate-and-rewalk reference for the prefix-sharing DFS;
* :func:`has_disjoint_path_packing` is the frozenset twin of the mask
  packing, and a fresh :func:`reliable_payload` call is the oracle for
  :class:`ReceiptTracker`'s incremental verdicts.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus import (
    FloodInstance,
    NodeBehavior,
    PathFloodEngine,
    ReportBundle,
    reliable_payload,
)
from repro.consensus.reliable import ReceiptTracker
from repro.graphs import (
    all_simple_paths,
    cycle_graph,
    has_disjoint_mask_packing,
    has_disjoint_path_packing,
    is_path,
    max_disjoint_path_packing,
    paper_figure_1a,
    wheel_graph,
)
from repro.net import (
    Context,
    FloodMessage,
    ValuePayload,
    local_broadcast_model,
)
from repro.obs import NULL_METRICS, MetricsRegistry

BATTERY = [
    ("cycle:4", cycle_graph(4)),
    ("cycle:5", cycle_graph(5)),
    ("wheel:5", wheel_graph(5)),
    ("wheel:6", wheel_graph(6)),
    ("fig1a", paper_figure_1a()),
]


def ctx_for(graph, node, round_no, inbox, metrics=NULL_METRICS):
    return Context(
        node=node,
        graph=graph,
        round_no=round_no,
        channel=local_broadcast_model(),
        inbox=inbox,
        metrics=metrics,
    )


class LegacyFlood:
    """The pre-refactor acceptance logic, verbatim: label-space rule
    checks, ``(sender, Π)`` tuple slots, per-accept gauge updates."""

    def __init__(self, graph, me, phase, default_payload=None,
                 validator=None, enable_rule_ii=True):
        self.graph = graph
        self.me = me
        self.phase = phase
        self.default_payload = default_payload
        self.validator = validator
        self.enable_rule_ii = enable_rule_ii
        self.delivered = {}
        self._seen = set()
        self._defaults_applied = False

    def initiate(self, ctx, payload):
        self.delivered[(self.me,)] = payload
        ctx.broadcast(FloodMessage(self.phase, payload, ()))
        ctx.metrics.inc("flood.initiated", phase=self.phase)

    def process_round(self, ctx):
        accepted = 0
        for sender, message in ctx.inbox:
            if not isinstance(message, FloodMessage) or message.phase != self.phase:
                continue
            if self._accept(ctx, sender, message):
                accepted += 1
        if not self._defaults_applied:
            self._defaults_applied = True
            if self.default_payload is not None:
                for nbr in sorted(self.graph.neighbors(self.me), key=repr):
                    substitute = FloodMessage(self.phase, self.default_payload, ())
                    if self._accept(ctx, nbr, substitute):
                        accepted += 1
                        ctx.metrics.inc(
                            "flood.default_substituted", phase=self.phase
                        )
        return accepted

    def _accept(self, ctx, sender, message):
        metrics = ctx.metrics
        extended = message.extended_by(sender)
        if not is_path(self.graph, extended):
            metrics.inc("flood.rejected", phase=self.phase, rule="i")
            return False
        if self.me in message.path:
            metrics.inc("flood.rejected", phase=self.phase, rule="iii")
            return False
        if self.validator is not None and not self.validator(
            message.payload, extended
        ):
            metrics.inc("flood.rejected", phase=self.phase, rule="validator")
            return False
        key = (sender, message.path)
        if self.enable_rule_ii:
            if key in self._seen:
                metrics.inc("flood.rejected", phase=self.phase, rule="ii")
                return False
            self._seen.add(key)
        self.delivered[extended + (self.me,)] = message.payload
        ctx.broadcast(FloodMessage(self.phase, message.payload, extended))
        metrics.inc("flood.accepted", phase=self.phase)
        metrics.gauge_max(
            "flood.path_set.max", len(self.delivered), phase=self.phase
        )
        return True

    def paths_from(self, origin):
        return {
            p: payload for p, payload in self.delivered.items() if p[0] == origin
        }


@st.composite
def message_streams(draw):
    """(graph, me, options, rounds-of-inboxes): a mix of genuine
    forwarded traffic (random walks), the empty initiation path, junk
    sequences with off-graph labels, duplicate slots, and wrong-phase
    noise — every branch of rules (i)-(iv)."""
    name, graph = draw(st.sampled_from(BATTERY))
    nodes = sorted(graph.nodes)
    me = draw(st.sampled_from(nodes))
    nbrs = sorted(graph.neighbors(me))
    rounds = []
    for round_no in range(draw(st.integers(1, 3))):
        inbox = []
        for _ in range(draw(st.integers(0, 7))):
            sender = draw(st.sampled_from(nbrs))
            kind = draw(st.integers(0, 5))
            if kind <= 1:
                path = ()
            elif kind <= 3:
                walk = [draw(st.sampled_from(nodes))]
                for _ in range(draw(st.integers(0, 3))):
                    walk.append(
                        draw(st.sampled_from(sorted(graph.neighbors(walk[-1]))))
                    )
                path = tuple(walk)
            else:
                path = tuple(
                    draw(st.lists(st.integers(0, len(nodes)), max_size=4))
                )
            phase = draw(st.sampled_from(["p", "p", "p", "q"]))
            value = draw(st.integers(0, 1))
            inbox.append((sender, FloodMessage(phase, ValuePayload(value), path)))
        rounds.append(inbox)
    default = draw(st.sampled_from([None, ValuePayload(1)]))
    use_validator = draw(st.booleans())
    rule_ii = draw(st.booleans())
    initiate = draw(st.booleans())
    return graph, me, default, use_validator, rule_ii, initiate, rounds


class TestFloodEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(message_streams())
    def test_bitmask_flood_matches_legacy(self, stream):
        """Identical adversarial inboxes → identical delivered dicts
        (insertion order included), per-origin sub-indexes, accepted
        counts and metric snapshots."""
        graph, me, default, use_validator, rule_ii, initiate, rounds = stream
        validator = (
            (lambda payload, path: getattr(payload, "value", None) != 1)
            if use_validator
            else None
        )
        new_metrics, old_metrics = MetricsRegistry(), MetricsRegistry()
        new = FloodInstance(
            graph, me, phase="p", default_payload=default,
            validator=validator, enable_rule_ii=rule_ii,
        )
        old = LegacyFlood(
            graph, me, phase="p", default_payload=default,
            validator=validator, enable_rule_ii=rule_ii,
        )
        round_no = 1
        if initiate:
            new.initiate(ctx_for(graph, me, 1, [], new_metrics), ValuePayload(0))
            old.initiate(ctx_for(graph, me, 1, [], old_metrics), ValuePayload(0))
            round_no = 2
        for inbox in rounds:
            nctx = ctx_for(graph, me, round_no, list(inbox), new_metrics)
            octx = ctx_for(graph, me, round_no, list(inbox), old_metrics)
            assert new.process_round(nctx) == old.process_round(octx)
            sent = [o.message for o in nctx.outbox]
            assert sent == [o.message for o in octx.outbox]
            round_no += 1
        assert new.delivered == old.delivered
        assert list(new.delivered) == list(old.delivered)
        assert new_metrics.snapshot() == old_metrics.snapshot()
        for origin in sorted(graph.nodes, key=repr):
            assert new.paths_from(origin) == old.paths_from(origin)
            assert list(new.paths_from(origin)) == list(old.paths_from(origin))
            assert new.origin_count(origin) == len(old.paths_from(origin))

    @settings(max_examples=60, deadline=None)
    @given(message_streams())
    def test_path_mask_matches_label_sets(self, stream):
        """Every recorded visited-set mask decodes to exactly the path's
        node set."""
        graph, me, default, _, rule_ii, initiate, rounds = stream
        flood = FloodInstance(
            graph, me, phase="p", default_payload=default,
            enable_rule_ii=rule_ii,
        )
        round_no = 1
        if initiate:
            flood.initiate(ctx_for(graph, me, 1, []), ValuePayload(0))
            round_no = 2
        for inbox in rounds:
            flood.process_round(ctx_for(graph, me, round_no, list(inbox)))
            round_no += 1
        index = graph.node_index()
        for path in flood.delivered:
            assert flood.path_mask(path) == index.mask_of(path)


BEHAVIOR_MAKERS = [
    NodeBehavior.honest,
    NodeBehavior.lying_init,
    NodeBehavior.tamper_forward,
    NodeBehavior.drop_forward,
    lambda value: NodeBehavior.silent(),
]


class TestEngineEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from(BATTERY),
        st.integers(0, 10**6),
    )
    def test_prefix_dfs_matches_naive_walk(self, battery, seed):
        """The prefix-sharing DFS delivers exactly what enumerating all
        simple paths and re-walking each one delivers — same keys, same
        values, same insertion order — under every behavior mix."""
        name, graph = battery
        nodes = sorted(graph.nodes, key=repr)
        behaviors = {}
        for i, v in enumerate(nodes):
            maker = BEHAVIOR_MAKERS[(seed // (5**i)) % len(BEHAVIOR_MAKERS)]
            behaviors[v] = maker(i % 2)
        engine = PathFloodEngine(graph, behaviors)
        for receiver in nodes:
            fast = engine.deliveries_at(receiver)
            naive = engine.naive_deliveries_at(receiver)
            assert fast == naive
            assert list(fast) == list(naive)

    def test_dfs_metrics_track_deliveries_and_prunes(self):
        graph = cycle_graph(5)
        behaviors = {v: NodeBehavior.honest(v % 2) for v in graph.nodes}
        behaviors[2] = NodeBehavior.drop_forward(0)
        metrics = MetricsRegistry()
        engine = PathFloodEngine(graph, behaviors, metrics=metrics)
        out = engine.deliveries_at(0)
        counters = metrics.snapshot()["counters"]
        assert counters["path_engine.paths_delivered"] == len(out) - 1
        assert counters["path_engine.prefixes_pruned"] > 0
        assert metrics.snapshot()["gauges"]["path_engine.path_set.max"] == len(out)


def drive_flood(graph, me, inputs):
    """Run one full fault-free flood phase at ``me`` through the
    simulator contract: initiation round, then n rounds of everyone's
    honest forwarding, computed via the analytic engine's delivery set
    (identical traffic, no scheduler needed)."""
    flood = FloodInstance(graph, me, phase="p")
    flood.initiate(ctx_for(graph, me, 1, []), ValuePayload(inputs[me]))
    engine = PathFloodEngine(
        graph, {v: NodeBehavior.honest(inputs[v]) for v in graph.nodes}
    )
    # Feed deliveries as the messages that would produce them: a path
    # (o, ..., u, me) arrives from neighbor u carrying path (o, ..).
    pending = [
        (path, value)
        for path, value in engine.deliveries_at(me).items()
        if len(path) >= 2
    ]
    # Shorter paths arrive earlier; ties in canonical order (that is the
    # deterministic synchronous schedule).
    pending.sort(key=lambda pv: (len(pv[0]), tuple(map(repr, pv[0]))))
    return flood, pending


class TestReceiptTracker:
    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from(BATTERY), st.integers(0, 10**6))
    def test_incremental_verdicts_match_fresh_calls(self, battery, seed):
        """After every delivery burst, the tracker's verdict for every
        origin equals a fresh ``reliable_payload`` call, and re-asking
        without new deliveries serves the cached verdict (counted under
        ``reliable.dirty_skips``) without changing it."""
        name, graph = battery
        nodes = sorted(graph.nodes, key=repr)
        me = nodes[seed % len(nodes)]
        inputs = {v: (seed >> i) & 1 for i, v in enumerate(nodes)}
        flood, pending = drive_flood(graph, me, inputs)
        tracker = ReceiptTracker(graph, 1, me, flood)
        # Deliver in bursts; check the tracker between bursts.
        burst = max(1, len(pending) // 3)
        round_no = 2
        while True:
            chunk, pending = pending[:burst], pending[burst:]
            inbox = [
                (path[-2], FloodMessage("p", ValuePayload(value), path[:-2]))
                for path, value in chunk
            ]
            flood.process_round(ctx_for(graph, me, round_no, inbox))
            round_no += 1
            for origin in nodes:
                fresh = reliable_payload(
                    graph, 1, me, flood.paths_from(origin), origin
                )
                metrics = MetricsRegistry()
                assert tracker.payload_from(origin, metrics=metrics) == fresh
                # Second ask with no new deliveries: cached, one skip.
                again = MetricsRegistry()
                assert tracker.payload_from(origin, metrics=again) == fresh
                assert again.snapshot()["counters"] == {
                    "reliable.dirty_skips": 1
                }
            if not pending:
                break


def path_pool(graph, u, v, cap=14):
    pool = []
    for path in all_simple_paths(graph, u, v):
        pool.append(tuple(path))
        if len(pool) >= cap:
            break
    return pool


class TestMaskPacking:
    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(BATTERY), st.integers(0, 10**6), st.integers(1, 4))
    def test_mask_packing_matches_frozenset_packing(self, battery, seed, k):
        """``has_disjoint_mask_packing`` over interior-node masks decides
        exactly like the frozenset packing (and brackets the exact
        maximum packing) on real uv-path pools."""
        name, graph = battery
        nodes = sorted(graph.nodes, key=repr)
        u = nodes[seed % len(nodes)]
        v = nodes[(seed // 7) % len(nodes)]
        if u == v:
            return
        pool = path_pool(graph, u, v)
        # Drop a pseudo-random subset so pools of every shape appear.
        pool = [p for i, p in enumerate(pool) if (seed >> i) & 1 or i == 0]
        index = graph.node_index()
        masks = [index.interior_mask(p) for p in pool]
        expected = has_disjoint_path_packing(pool, k, mode="uv")
        assert has_disjoint_mask_packing(masks, k) == expected
        best = max_disjoint_path_packing(pool, mode="uv")
        assert has_disjoint_mask_packing(masks, best)
        assert not has_disjoint_mask_packing(masks, best + 1)


class TestReportBundleCache:
    def test_first_entry_wins_for_duplicate_subjects(self):
        bundle = ReportBundle(
            reporter=0,
            entries=((1, ("early",)), (1, ("late",)), (2, ("only",))),
        )
        assert bundle.transcript_of(1) == ("early",)
        assert bundle.transcript_of(2) == ("only",)
        assert bundle.transcript_of(9) is None

    def test_cache_does_not_break_equality_or_pickle(self):
        a = ReportBundle(reporter=0, entries=((1, ("m",)),))
        b = ReportBundle(reporter=0, entries=((1, ("m",)),))
        assert a == b
        a.transcript_of(1)  # populate a's cache only
        assert a == b
        assert hash(a) == hash(b)
        clone = pickle.loads(pickle.dumps(a))
        assert clone == a
        assert clone.transcript_of(1) == ("m",)
