"""Directed feasibility conditions and their symmetric-view collapse.

Two layers of guarantees:

* on every *undirected* graph (equivalently, its symmetric digraph
  lift), the directed checkers agree clause-for-clause with the
  historical undirected ones — directedness is a strict generalization;
* on genuinely one-way graphs the verdicts *move*: ``oneway:9:2`` is
  the canonical witness, feasible for f = 1 under local broadcast but
  with directed max f strictly below its symmetric closure's.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus import (
    check_directed_decomposition,
    check_directed_local_broadcast,
    check_local_broadcast,
    max_f_directed_local_broadcast,
    max_f_local_broadcast,
)
from repro.graphs import (
    Digraph,
    complete_graph,
    cycle_graph,
    gnp_supercritical_graph,
    oneway_ring,
    paper_figure_1a,
    paper_figure_1b,
    path_graph,
    random_digraph,
    star_graph,
    wheel_graph,
)

BATTERY = [
    cycle_graph(4),
    cycle_graph(5),
    wheel_graph(5),
    wheel_graph(6),
    complete_graph(4),
    path_graph(5),
    star_graph(5),
    paper_figure_1a(),
    paper_figure_1b(),
]


class TestDirectedChecker:
    def test_oneway_9_2_feasible_f1(self):
        report = check_directed_local_broadcast(oneway_ring(9, 2), 1)
        assert report.feasible

    def test_oneway_9_2_infeasible_f2(self):
        report = check_directed_local_broadcast(oneway_ring(9, 2), 2)
        assert not report.feasible

    def test_verdict_gap_against_symmetric_closure(self):
        """The acceptance witness: the directed form changes max f."""
        d = oneway_ring(9, 2)
        assert max_f_directed_local_broadcast(d) == 1
        assert max_f_local_broadcast(d.to_undirected()) == 2

    def test_not_strongly_connected_infeasible(self):
        d = Digraph.from_arcs([(0, 1), (1, 2), (0, 2), (2, 1)])
        assert not check_directed_local_broadcast(d, 1).feasible

    def test_clause_names_directed(self):
        report = check_directed_local_broadcast(oneway_ring(9, 2), 1)
        names = [c.name for c in report.clauses]
        assert any("in-degree" in n for n in names)
        assert any("strong connectivity" in n for n in names)


class TestDecompositionChecker:
    def test_strong_digraph_is_its_own_core(self):
        report = check_directed_decomposition(oneway_ring(9, 2), 1)
        assert report.feasible

    def test_two_sources_infeasible(self):
        # Two source components can never agree: neither hears the other.
        d = Digraph.from_arcs([(0, 2), (1, 2), (2, 3)])
        report = check_directed_decomposition(d, 1)
        assert not report.feasible
        clause = next(c for c in report.clauses if "source" in c.name)
        assert not clause.holds

    def test_relay_nodes_need_disjoint_core_paths(self):
        # Strong core K4 feeding one relay through a single arc: the
        # relay cannot reliably receive with f = 1 (needs 3 paths).
        core = complete_graph(4).to_digraph()
        d = Digraph(set(core.nodes) | {"relay"},
                    list(core.arcs()) + [(0, "relay")])
        report = check_directed_decomposition(d, 1)
        assert not report.feasible
        clause = next(c for c in report.clauses if "core paths" in c.name)
        assert clause.measured == 1 and clause.required == 3

    def test_well_fed_relay_is_feasible(self):
        core = complete_graph(5).to_digraph()
        arcs = list(core.arcs()) + [(v, "relay") for v in range(3)]
        d = Digraph(set(core.nodes) | {"relay"}, arcs)
        report = check_directed_decomposition(d, 1)
        assert report.feasible


class TestSymmetricCollapse:
    def test_battery_verdicts_match(self):
        for g in BATTERY:
            for f in (1, 2, 3):
                undirected = check_local_broadcast(g, f)
                directed = check_directed_local_broadcast(g.to_digraph(), f)
                assert undirected.feasible == directed.feasible, (g, f)
                for cu, cd in zip(undirected.clauses, directed.clauses):
                    assert cu.measured == cd.measured, (g, f, cu.name)
                    assert cu.required == cd.required, (g, f, cu.name)

    def test_battery_max_f_matches(self):
        for g in BATTERY:
            assert (max_f_directed_local_broadcast(g.to_digraph())
                    == max_f_local_broadcast(g)), g

    def test_disconnected_symmetric_views_agree(self):
        two_cliques = Digraph(
            range(10),
            [(u, v) for u in range(5) for v in range(5) if u != v]
            + [(u, v) for u in range(5, 10) for v in range(5, 10) if u != v],
        )
        assert not check_directed_local_broadcast(two_cliques, 1).feasible
        assert not check_local_broadcast(two_cliques.to_undirected(), 1).feasible

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=100),
           st.integers(min_value=1, max_value=3))
    def test_random_graphs_verdicts_match(self, seed, f):
        g = gnp_supercritical_graph(8, 2.4, seed)
        undirected = check_local_broadcast(g, f)
        directed = check_directed_local_broadcast(g.to_digraph(), f)
        assert undirected.feasible == directed.feasible

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=60))
    def test_undirected_checker_accepts_digraph_symmetric_lift(self, seed):
        """check_local_broadcast measures through directed primitives,
        so a symmetric *Digraph* gets the same verdict as its Graph."""
        g = gnp_supercritical_graph(8, 2.4, seed)
        assert (check_local_broadcast(g, 1).feasible
                == check_directed_local_broadcast(g.to_digraph(), 1).feasible)


class TestDirectedFamiliesUnderCheckers:
    def test_random_digraph_checkable(self):
        d = random_digraph(8, 0.45, 5)
        report = check_directed_local_broadcast(d, 2)
        assert not report.feasible  # sparse one-way arcs: in-degree short

    def test_max_f_zero_on_weak_digraph(self):
        assert max_f_directed_local_broadcast(oneway_ring(5)) == 0
