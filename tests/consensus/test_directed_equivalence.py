"""Symmetric-lift equivalence: a Graph and its true Digraph lift are
indistinguishable to every layer of the stack.

``Graph`` *is* a symmetric ``Digraph`` by construction, but the lift
(`to_digraph()`) is a genuinely different object — class ``Digraph``,
separate in/out adjacency dicts, per-direction index masks.  These
tests pin the refactor's core promise: lifting any battery graph
changes nothing observable — checker verdicts (covered in
``test_directed_conditions``), flood delivery maps, and full
``run_consensus`` outcomes under both the synchronous simulator and the
lockstep scheduler.
"""

import pytest

from repro.consensus import (
    NodeBehavior,
    PathFloodEngine,
    algorithm1_factory,
    algorithm2_factory,
    run_consensus,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    paper_figure_1a,
    wheel_graph,
)
from repro.net import TamperForwardAdversary
from repro.net.sched import parse_scheduler

BATTERY = [
    ("cycle:4", cycle_graph(4)),
    ("cycle:5", cycle_graph(5)),
    ("wheel:5", wheel_graph(5)),
    ("complete:4", complete_graph(4)),
    ("fig1a", paper_figure_1a()),
]


def result_fields(res):
    return (
        res.consensus,
        res.agreement,
        res.validity,
        res.decision,
        res.rounds,
        res.transmissions,
        res.outcome,
    )


@pytest.mark.parametrize("name,graph", BATTERY)
class TestFloodEquivalence:
    def test_honest_flood_deliveries_identical(self, name, graph):
        behaviors = {v: NodeBehavior.honest(i % 2)
                     for i, v in enumerate(sorted(graph.nodes, key=repr))}
        plain = PathFloodEngine(graph, dict(behaviors)).all_deliveries()
        lifted = PathFloodEngine(
            graph.to_digraph(), dict(behaviors)
        ).all_deliveries()
        assert plain == lifted

    def test_faulty_flood_deliveries_identical(self, name, graph):
        nodes = sorted(graph.nodes, key=repr)
        behaviors = {v: NodeBehavior.honest(1) for v in nodes}
        behaviors[nodes[0]] = NodeBehavior.tamper_forward(0)
        behaviors[nodes[-1]] = NodeBehavior.silent()
        plain = PathFloodEngine(graph, dict(behaviors)).all_deliveries()
        lifted = PathFloodEngine(
            graph.to_digraph(), dict(behaviors)
        ).all_deliveries()
        assert plain == lifted


@pytest.mark.parametrize("name,graph", BATTERY)
class TestRunEquivalence:
    def run_pair(self, graph, factory_fn, scheduler=None):
        nodes = sorted(graph.nodes, key=repr)
        inputs = {v: i % 2 for i, v in enumerate(nodes)}
        kwargs = dict(
            f=1,
            faulty=[nodes[0]],
            adversary=TamperForwardAdversary(),
        )
        if scheduler is not None:
            kwargs["scheduler"] = scheduler
        plain = run_consensus(
            graph, factory_fn(graph, 1), inputs, **kwargs
        )
        lift = graph.to_digraph()
        lifted = run_consensus(
            lift, factory_fn(lift, 1), inputs, **kwargs
        )
        return plain, lifted

    def test_algorithm2_sync(self, name, graph):
        plain, lifted = self.run_pair(graph, algorithm2_factory)
        assert result_fields(plain) == result_fields(lifted)

    def test_algorithm2_lockstep(self, name, graph):
        sched = parse_scheduler("lockstep", seed=0, max_delay=1)
        plain, lifted = self.run_pair(graph, algorithm2_factory, sched)
        assert result_fields(plain) == result_fields(lifted)

    def test_algorithm1_sync(self, name, graph):
        plain, lifted = self.run_pair(graph, algorithm1_factory)
        assert result_fields(plain) == result_fields(lifted)
