"""Algorithm 1: correctness under every modeled adversary, plus the
proof invariants (Lemmas 5.2, 5.3) observed on live executions."""

import pytest

from repro.analysis import consensus_sweep
from repro.consensus import (
    Algorithm1Protocol,
    algorithm1_factory,
    candidate_fault_sets,
    candidate_pairs,
    phase_count,
    run_consensus,
)
from repro.graphs import complete_graph, cycle_graph, paper_figure_1a, petersen_graph
from repro.net import (
    CrashAdversary,
    DropForwardAdversary,
    LyingInitAdversary,
    RandomAdversary,
    SilentAdversary,
    SynchronousNetwork,
    TamperForwardAdversary,
    WrongInputAdversary,
    local_broadcast_model,
    standard_adversaries,
)
from repro.net.adversary import FaultSpec


class TestPhaseEnumeration:
    def test_candidate_sets_count(self, c5):
        sets = candidate_fault_sets(c5, 1)
        assert len(sets) == 6  # empty + 5 singletons
        assert sets[0] == frozenset()

    def test_candidate_sets_deterministic(self, c5):
        assert candidate_fault_sets(c5, 1) == candidate_fault_sets(c5, 1)

    def test_candidate_pairs_t0_matches_algorithm1(self, c5):
        pairs = candidate_pairs(c5, 1, 0)
        assert [p[0] for p in pairs] == candidate_fault_sets(c5, 1)
        assert all(p[1] == frozenset() for p in pairs)

    @pytest.mark.parametrize(
        "n,f,expected", [(5, 1, 6), (5, 2, 16), (8, 2, 37), (10, 3, 176)]
    )
    def test_phase_count_closed_form(self, n, f, expected):
        assert phase_count(n, f) == expected

    def test_phase_count_hybrid(self):
        # n=4, f=1, t=1: (F,T) pairs = T=∅: 1+4 = 5; |T|=1: 4·1 = 4.
        assert phase_count(4, 1, 1) == 9

    def test_total_rounds_budget(self, c5):
        p = Algorithm1Protocol(c5, 0, 1, 0)
        assert p.total_rounds == 6 * 5

    def test_bad_input_rejected(self, c5):
        with pytest.raises(ValueError):
            Algorithm1Protocol(c5, 0, 1, 2)


class TestNoFaults:
    @pytest.mark.parametrize("inputs_name", ["all-zero", "all-one", "mixed"])
    def test_consensus_without_faults(self, c5, inputs_name):
        patterns = {
            "all-zero": {v: 0 for v in c5.nodes},
            "all-one": {v: 1 for v in c5.nodes},
            "mixed": {v: v % 2 for v in c5.nodes},
        }
        res = run_consensus(c5, algorithm1_factory(c5, 1), patterns[inputs_name], f=1)
        assert res.consensus
        if inputs_name != "mixed":
            assert res.decision == patterns[inputs_name][0]

    def test_f_zero_trivial(self):
        g = cycle_graph(3)
        res = run_consensus(g, algorithm1_factory(g, 0), {0: 1, 1: 0, 2: 1}, f=0)
        assert res.consensus


class TestSingleFault:
    @pytest.mark.parametrize(
        "adversary",
        standard_adversaries(seed=11),
        ids=lambda a: a.name,
    )
    @pytest.mark.parametrize("faulty", [0, 2])
    def test_c5_tolerates_every_adversary(self, c5, adversary, faulty):
        inputs = {v: v % 2 for v in c5.nodes}
        res = run_consensus(
            c5, algorithm1_factory(c5, 1), inputs, f=1,
            faulty=[faulty], adversary=adversary,
        )
        assert res.consensus, (adversary.name, faulty)

    def test_validity_forced_when_honest_agree(self, c5):
        """All honest inputs 0 and a faulty node pushing 1: output must be 0."""
        inputs = {v: 0 for v in c5.nodes}
        inputs[3] = 1
        res = run_consensus(
            c5, algorithm1_factory(c5, 1), inputs, f=1,
            faulty=[3], adversary=LyingInitAdversary(),
        )
        assert res.consensus and res.decision == 0

    def test_c4_is_also_feasible_for_f1(self, c4):
        res = run_consensus(
            c4, algorithm1_factory(c4, 1), {v: v % 2 for v in c4.nodes}, f=1,
            faulty=[1], adversary=TamperForwardAdversary(),
        )
        assert res.consensus

    def test_fewer_faults_than_f_allowed(self, c5):
        res = run_consensus(
            c5, algorithm1_factory(c5, 1), {v: 1 for v in c5.nodes}, f=1,
        )
        assert res.consensus and res.decision == 1


class TestTwoFaults:
    """f = 2 on K5 = K_{2f+1}, the smallest legal graph."""

    @pytest.mark.parametrize(
        "adversary",
        [TamperForwardAdversary(), SilentAdversary(), LyingInitAdversary(),
         RandomAdversary(seed=3)],
        ids=lambda a: a.name,
    )
    def test_k5_two_faults(self, k5, adversary):
        inputs = {0: 0, 1: 1, 2: 0, 3: 1, 4: 0}
        res = run_consensus(
            k5, algorithm1_factory(k5, 2), inputs, f=2,
            faulty=[1, 3], adversary=adversary,
        )
        assert res.consensus

    def test_k5_validity_all_zero(self, k5):
        inputs = {v: 0 for v in k5.nodes}
        res = run_consensus(
            k5, algorithm1_factory(k5, 2), inputs, f=2,
            faulty=[0, 4], adversary=LyingInitAdversary(),
        )
        assert res.consensus and res.decision == 0


class TestExhaustiveSweep:
    def test_c5_full_battery(self, c5):
        """Every fault position x every adversary x every input pattern."""
        report = consensus_sweep(
            c5, algorithm1_factory(c5, 1), f=1, seed=5,
        )
        assert report.runs == 5 * len(standard_adversaries()) * 4
        assert report.all_consensus, report.failures[:3]

    @pytest.mark.slow
    def test_petersen_sampled_battery(self, petersen):
        report = consensus_sweep(
            petersen,
            algorithm1_factory(petersen, 1),
            f=1,
            fault_limit=3,
            patterns=["alternating", "all-one"],
            seed=7,
        )
        assert report.all_consensus, report.failures[:3]


class TestProofInvariants:
    def _run_with_history(self, graph, f, inputs, faulty, adversary):
        fac = algorithm1_factory(graph, f)
        protos = {}
        ch = local_broadcast_model()
        for v in sorted(graph.nodes):
            if v in faulty:
                spec = FaultSpec(
                    node=v, graph=graph, channel=ch, input_value=inputs[v],
                    f=f, faulty=frozenset(faulty), honest_factory=fac,
                )
                protos[v] = adversary.build(spec)
            else:
                protos[v] = fac(v, inputs[v])
        net = SynchronousNetwork(graph, protos, ch)
        net.run(next(iter(protos.values())).total_rounds if not faulty
                else protos[sorted(set(graph.nodes) - set(faulty))[0]].total_rounds)
        return protos

    def test_lemma_5_2_state_always_some_honest_start_state(self, c5):
        """γ_v at each phase end equals some honest node's state at the
        phase start (Lemma 5.2) — checked on a live adversarial run."""
        inputs = {0: 0, 1: 1, 2: 0, 3: 1, 4: 0}
        faulty = {3}
        protos = self._run_with_history(
            c5, 1, inputs, faulty, TamperForwardAdversary()
        )
        honest = sorted(c5.nodes - faulty)
        histories = {v: protos[v].gamma_history for v in honest}
        phases = len(histories[honest[0]]) - 1
        for k in range(phases):
            starts = {histories[u][k] for u in honest}
            for v in honest:
                assert histories[v][k + 1] in starts

    def test_lemma_5_3_agreement_after_true_fault_phase(self, c5):
        """Once the phase with F = actual faults has run, all honest
        states agree and never change again (Lemma 5.3 + 5.2)."""
        inputs = {0: 0, 1: 1, 2: 0, 3: 1, 4: 0}
        faulty = {3}
        protos = self._run_with_history(
            c5, 1, inputs, faulty, TamperForwardAdversary()
        )
        pairs = candidate_fault_sets(c5, 1)
        true_phase = pairs.index(frozenset(faulty))
        honest = sorted(c5.nodes - faulty)
        for k in range(true_phase + 1, len(pairs) + 1):
            states = {protos[v].gamma_history[k] for v in honest}
            assert len(states) == 1

    def test_outputs_reported_only_at_end(self, c5):
        proto = Algorithm1Protocol(c5, 0, 1, 1)
        assert proto.output() is None
        assert not proto.finished
