"""The analytic flood engine, cross-validated against the simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus import FloodInstance, NodeBehavior, PathFloodEngine, flood_rounds
from repro.graphs import cycle_graph, paper_figure_1a, random_connected_graph
from repro.net import (
    Context,
    DropForwardAdversary,
    FaultSpec,
    LyingInitAdversary,
    Protocol,
    SilentAdversary,
    SynchronousNetwork,
    TamperForwardAdversary,
    ValuePayload,
    local_broadcast_model,
)


class _FloodOnly(Protocol):
    """One flood phase, nothing else: the simulator-side ground truth."""

    total_rounds = 0  # set per instance

    def __init__(self, graph, node, value):
        self.flood = FloodInstance(
            graph, node, phase="x", default_payload=ValuePayload(1)
        )
        self.value = value
        self.total_rounds = flood_rounds(graph)

    def on_round(self, ctx):
        if ctx.round_no == 1:
            self.flood.initiate(ctx, ValuePayload(self.value))
        else:
            self.flood.process_round(ctx)

    def output(self):
        return None


BEHAVIOR_MAKERS = {
    "honest": NodeBehavior.honest,
    "silent": lambda v: NodeBehavior.silent(),
    "lying-init": NodeBehavior.lying_init,
    "tamper-forward": NodeBehavior.tamper_forward,
    "drop-forward": NodeBehavior.drop_forward,
}

ADVERSARY_MAKERS = {
    "silent": SilentAdversary,
    "lying-init": LyingInitAdversary,
    "tamper-forward": TamperForwardAdversary,
    "drop-forward": DropForwardAdversary,
}


def simulate_flood(graph, values, fault_kind=None, faulty_node=None):
    """Run the message-level flood; return honest nodes' deliveries."""
    ch = local_broadcast_model()
    factory = lambda v, x: _FloodOnly(graph, v, x)
    protos = {}
    for v in graph.nodes:
        if v == faulty_node:
            spec = FaultSpec(
                node=v, graph=graph, channel=ch, input_value=values[v],
                f=1, faulty=frozenset({v}), honest_factory=factory,
            )
            protos[v] = ADVERSARY_MAKERS[fault_kind]().build(spec)
        else:
            protos[v] = factory(v, values[v])
    net = SynchronousNetwork(graph, protos, ch)
    net.run(flood_rounds(graph))
    return {
        v: {
            path: payload.value
            for path, payload in protos[v].flood.delivered.items()
        }
        for v in graph.nodes
        if v != faulty_node
    }


def engine_flood(graph, values, fault_kind=None, faulty_node=None):
    behaviors = {}
    for v in graph.nodes:
        kind = fault_kind if v == faulty_node else "honest"
        behaviors[v] = BEHAVIOR_MAKERS[kind](values[v])
    engine = PathFloodEngine(graph, behaviors)
    return {
        v: engine.deliveries_at(v)
        for v in graph.nodes
        if v != faulty_node
    }


class TestEngineBasics:
    def test_fault_free_path_value(self, c5):
        behaviors = {v: NodeBehavior.honest(v % 2) for v in c5.nodes}
        engine = PathFloodEngine(c5, behaviors)
        assert engine.value_along((0, 1, 2)) == 0
        assert engine.value_along((1, 2)) == 1
        assert engine.value_along((3,)) == 1

    def test_tamper_flips_along_path(self, c5):
        behaviors = {v: NodeBehavior.honest(0) for v in c5.nodes}
        behaviors[1] = NodeBehavior.tamper_forward(0)
        engine = PathFloodEngine(c5, behaviors)
        assert engine.value_along((0, 1, 2)) == 1  # flipped at node 1
        assert engine.value_along((0, 4, 3)) == 0  # untouched path

    def test_drop_kills_path(self, c5):
        behaviors = {v: NodeBehavior.honest(0) for v in c5.nodes}
        behaviors[1] = NodeBehavior.drop_forward(0)
        engine = PathFloodEngine(c5, behaviors)
        assert engine.value_along((0, 1, 2)) is None

    def test_silent_origin_substituted(self, c5):
        behaviors = {v: NodeBehavior.honest(0) for v in c5.nodes}
        behaviors[0] = NodeBehavior.silent()
        engine = PathFloodEngine(c5, behaviors)
        assert engine.effective_initial(0) == 1
        assert engine.value_along((0, 1)) == 1
        assert engine.value_along((0, 1, 2)) == 1

    def test_missing_behavior_rejected(self, c5):
        with pytest.raises(ValueError):
            PathFloodEngine(c5, {0: NodeBehavior.honest(0)})


class TestEngineEquivalence:
    """The headline property: both engines deliver identical values."""

    @pytest.mark.parametrize("fault_kind", sorted(ADVERSARY_MAKERS))
    @pytest.mark.parametrize("faulty_node", [0, 2])
    def test_c5_with_each_fault(self, fault_kind, faulty_node):
        g = paper_figure_1a()
        values = {v: v % 2 for v in g.nodes}
        assert simulate_flood(g, values, fault_kind, faulty_node) == engine_flood(
            g, values, fault_kind, faulty_node
        )

    def test_fault_free(self, c4):
        values = {0: 1, 1: 0, 2: 1, 3: 0}
        assert simulate_flood(c4, values) == engine_flood(c4, values)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        fault_kind=st.sampled_from(sorted(ADVERSARY_MAKERS)),
    )
    def test_random_graphs_agree(self, seed, fault_kind):
        g = random_connected_graph(n=6, extra_edges=seed % 5, seed=seed)
        values = {v: (seed >> v) & 1 for v in g.nodes}
        faulty = sorted(g.nodes)[seed % 6]
        assert simulate_flood(g, values, fault_kind, faulty) == engine_flood(
            g, values, fault_kind, faulty
        )
