"""Definition C.1 machinery: reliable values, claims, fault detection."""

import pytest

from repro.consensus import ClaimIndex, ReportBundle, reliable_value
from repro.consensus.reliable import detect_faults
from repro.graphs import complete_graph, cycle_graph
from repro.net import FloodMessage, ValuePayload


def vp(x):
    return ValuePayload(x)


class TestReliableValue:
    def test_own_value(self, c4):
        delivered = {(0,): vp(1)}
        assert reliable_value(c4, 1, 0, delivered, 0) == 1

    def test_neighbor_direct(self, c4):
        delivered = {(1, 0): vp(0)}
        assert reliable_value(c4, 1, 0, delivered, 1) == 0

    def test_f_plus_1_disjoint_paths(self, c4):
        # Node 2 is not adjacent to 0; both two-hop paths deliver 1.
        delivered = {(2, 1, 0): vp(1), (2, 3, 0): vp(1)}
        assert reliable_value(c4, 1, 0, delivered, 2) == 1

    def test_single_path_insufficient(self, c4):
        delivered = {(2, 1, 0): vp(1)}
        assert reliable_value(c4, 1, 0, delivered, 2) is None

    def test_conflicting_paths_insufficient(self, c4):
        delivered = {(2, 1, 0): vp(1), (2, 3, 0): vp(0)}
        assert reliable_value(c4, 1, 0, delivered, 2) is None

    def test_non_disjoint_paths_do_not_count(self):
        g = cycle_graph(6).add_edges([(1, 5)])
        delivered = {
            (3, 2, 1, 0): vp(1),
            (3, 4, 5, 1, 0): vp(1),  # shares internal node 1
        }
        assert reliable_value(g, 1, 0, delivered, 3) is None

    def test_direct_wins_over_paths(self, c4):
        delivered = {(1, 0): vp(0), (1, 2, 3, 0): vp(1)}
        assert reliable_value(c4, 1, 0, delivered, 1) == 0


def make_bundle(reporter, subject, transcript):
    return ReportBundle.build(reporter, {subject: list(transcript)})


class TestClaimIndex:
    def test_direct_neighbor_observation(self, c4):
        m = FloodMessage("p1", vp(1), ())
        idx = ClaimIndex(
            c4, 1, 0,
            bundle_deliveries={},
            own_transcripts={1: ((1, m),)},
        )
        assert idx.reliably_transmitted(1, m)
        assert idx.reliable_transcript(1) == ((1, m),)

    def test_own_transcript(self, c4):
        m = FloodMessage("p1", vp(0), ())
        idx = ClaimIndex(c4, 1, 0, {}, {}, own_sent=((1, m),))
        assert idx.reliably_transmitted(0, m)
        assert not idx.reliably_transmitted(0, FloodMessage("p1", vp(1), ()))

    def test_remote_claim_needs_f_plus_1_disjoint(self, c4):
        m = FloodMessage("p1", vp(1), ())
        transcript = ((1, m),)
        b1 = make_bundle(1, 2, transcript)
        b3 = make_bundle(3, 2, transcript)
        idx = ClaimIndex(
            c4, 1, 0,
            bundle_deliveries={(1, 0): b1, (3, 0): b3},
            own_transcripts={},
        )
        assert idx.reliably_transmitted(2, m)
        assert idx.reliable_transcript(2) == transcript

    def test_single_remote_report_insufficient(self, c4):
        m = FloodMessage("p1", vp(1), ())
        b1 = make_bundle(1, 2, ((1, m),))
        idx = ClaimIndex(c4, 1, 0, {(1, 0): b1}, {})
        assert not idx.reliably_transmitted(2, m)

    def test_mismatched_reporter_origin_rejected(self, c4):
        m = FloodMessage("p1", vp(1), ())
        bundle = make_bundle(3, 2, ((1, m),))  # claims reporter 3
        # ... but the flood path says it came from node 1.
        idx = ClaimIndex(c4, 1, 0, {(1, 0): bundle}, {})
        assert not idx.reliably_transmitted(2, m)

    def test_reporter_must_neighbor_subject(self, c4):
        m = FloodMessage("p1", vp(1), ())
        # Node 0 and 2 are NOT adjacent in C4: 0 cannot attest about 2.
        bundle = make_bundle(0, 2, ((1, m),))
        idx = ClaimIndex(c4, 1, 1, {(0, 1): bundle}, {})
        assert not idx.reliably_transmitted(2, m)

    def test_disagreeing_transcripts_can_agree_per_message(self):
        """Per-message claims use containment: transcripts may differ in
        other entries and still jointly support one message.  On C4,
        node 2's neighbors (reporters) are 1 and 3."""
        m = FloodMessage("p1", vp(1), ())
        extra = FloodMessage("p1", vp(0), (0,))
        t_a = ((1, m),)
        t_b = ((1, m), (2, extra))
        bundles = {
            (1, 0): make_bundle(1, 2, t_a),
            (3, 0): make_bundle(3, 2, t_b),
        }
        idx = ClaimIndex(cycle_graph(4), 1, 0, bundles, {})
        assert idx.reliably_transmitted(2, m)
        # The *full transcript* is not reliable: claims disagree.
        assert idx.reliable_transcript(2) is None


class TestDetectFaults:
    def _claims_with_transcripts(self, graph, me, transcripts):
        """Direct-neighbor transcripts only (me adjacent to everyone)."""
        return ClaimIndex(graph, 1, me, {}, transcripts)

    def test_detects_wrong_value_forwarder(self, k4):
        """Node 2 forwarded (0, (1,)) while 1 flooded 1: detected."""
        phase = "p1"
        init1 = FloodMessage(phase, vp(1), ())
        bad_fwd = FloodMessage(phase, vp(0), (1,))
        transcripts = {
            1: ((1, init1),),
            2: ((1, FloodMessage(phase, vp(0), ())), (2, bad_fwd)),
            3: ((1, FloodMessage(phase, vp(1), ())),
                (2, FloodMessage(phase, vp(1), (1,)))),
        }
        claims = self._claims_with_transcripts(k4, 0, transcripts)
        detected = detect_faults(
            k4, 1, 0, {1: 1}, claims, phase1_tag=phase, first_round=1
        )
        assert 2 in detected

    def test_no_detection_when_everyone_behaves(self, k4):
        phase = "p1"
        transcripts = {}
        for v in [1, 2, 3]:
            msgs = [(1, FloodMessage(phase, vp(1), ()))]
            for other in [1, 2, 3]:
                if other != v:
                    msgs.append((2, FloodMessage(phase, vp(1), (other,))))
            transcripts[v] = tuple(msgs)
        claims = self._claims_with_transcripts(k4, 0, transcripts)
        detected = detect_faults(
            k4, 1, 0, {1: 1, 2: 1, 3: 1}, claims, phase1_tag=phase
        )
        assert detected == set()

    def test_never_suspects_self(self, k4):
        phase = "p1"
        claims = self._claims_with_transcripts(k4, 0, {})
        detected = detect_faults(k4, 1, 0, {1: 1}, claims, phase1_tag=phase)
        assert 0 not in detected


class TestReportBundle:
    def test_entries_sorted_and_canonical(self):
        a = ReportBundle.build(0, {2: [(1, "m2")], 1: [(1, "m1")]})
        b = ReportBundle.build(0, {1: [(1, "m1")], 2: [(1, "m2")]})
        assert a == b
        assert [s for s, _ in a.entries] == [1, 2]

    def test_transcript_of(self):
        b = ReportBundle.build(0, {1: [(1, "x")]})
        assert b.transcript_of(1) == ((1, "x"),)
        assert b.transcript_of(9) is None

    def test_hashable(self):
        b = ReportBundle.build(0, {1: [(1, "x")]})
        assert len({b, ReportBundle.build(0, {1: [(1, "x")]})}) == 1
