"""Algorithm 3 (hybrid model): equivocation budget t, bridging the models."""

import pytest

from repro.consensus import (
    Algorithm1Protocol,
    Algorithm3Protocol,
    algorithm3_factory,
    candidate_pairs,
    check_hybrid,
    run_consensus,
)
from repro.graphs import complete_graph
from repro.net import (
    EquivocatingAdversary,
    LyingInitAdversary,
    SilentAdversary,
    TamperForwardAdversary,
    hybrid_model,
    local_broadcast_model,
)
from repro.net.adversary import CompositeAdversary


class TestStructure:
    def test_pair_budget_respected(self, k4):
        pairs = candidate_pairs(k4, 2, 1)
        for fault_set, equiv_set in pairs:
            assert len(equiv_set) <= 1
            assert len(fault_set) <= 2 - len(equiv_set)
            assert not fault_set & equiv_set

    def test_t0_behaves_like_algorithm1(self, c5):
        a3 = Algorithm3Protocol(c5, 0, 1, 0, 1)
        a1 = Algorithm1Protocol(c5, 0, 1, 1)
        assert a3.pairs == a1.pairs
        assert a3.total_rounds == a1.total_rounds

    def test_invalid_t(self, k4):
        with pytest.raises(ValueError):
            Algorithm3Protocol(k4, 0, 1, 2, 0)


class TestHybridConsensus:
    def test_k4_f1_t1_feasible(self, k4):
        assert check_hybrid(k4, 1, 1).feasible

    @pytest.mark.parametrize("faulty", [0, 2])
    def test_k4_equivocator(self, k4, faulty):
        inputs = {v: v % 2 for v in k4.nodes}
        res = run_consensus(
            k4, algorithm3_factory(k4, 1, 1), inputs, f=1,
            faulty=[faulty], adversary=EquivocatingAdversary(),
            channel=hybrid_model({faulty}),
        )
        assert res.consensus

    def test_k4_validity_with_equivocator(self, k4):
        inputs = {v: 1 for v in k4.nodes}
        res = run_consensus(
            k4, algorithm3_factory(k4, 1, 1), inputs, f=1,
            faulty=[3], adversary=EquivocatingAdversary(),
            channel=hybrid_model({3}),
        )
        assert res.consensus and res.decision == 1

    def test_k4_non_equivocating_fault_under_hybrid(self, k4):
        """A fault that merely tampers (no equivocation) is also covered."""
        res = run_consensus(
            k4, algorithm3_factory(k4, 1, 1), {v: 0 for v in k4.nodes}, f=1,
            faulty=[1], adversary=TamperForwardAdversary(),
            channel=hybrid_model(set()),
        )
        assert res.consensus and res.decision == 0

    def test_t0_run_equals_local_broadcast_model(self, c5):
        res = run_consensus(
            c5, algorithm3_factory(c5, 1, 0), {v: v % 2 for v in c5.nodes},
            f=1, faulty=[2], adversary=TamperForwardAdversary(),
            channel=local_broadcast_model(),
        )
        assert res.consensus

    @pytest.mark.slow
    def test_k6_f2_t1_mixed_faults(self):
        """One equivocating + one broadcast-restricted fault on K6
        (κ = 5 ≥ 4, every small set has ≥ 5 = 2f+1 neighbors)."""
        g = complete_graph(6)
        assert check_hybrid(g, 2, 1).feasible
        adversary = CompositeAdversary(
            {0: EquivocatingAdversary(), 3: TamperForwardAdversary()}
        )
        res = run_consensus(
            g, algorithm3_factory(g, 2, 1), {v: v % 2 for v in g.nodes},
            f=2, faulty=[0, 3], adversary=adversary,
            channel=hybrid_model({0}),
        )
        assert res.consensus

    def test_silent_equivocator_slot(self, k4):
        res = run_consensus(
            k4, algorithm3_factory(k4, 1, 1), {v: 1 for v in k4.nodes}, f=1,
            faulty=[2], adversary=SilentAdversary(),
            channel=hybrid_model({2}),
        )
        assert res.consensus and res.decision == 1

    def test_lying_equivocator(self, k4):
        res = run_consensus(
            k4, algorithm3_factory(k4, 1, 1), {v: 0 for v in k4.nodes}, f=1,
            faulty=[1], adversary=LyingInitAdversary(),
            channel=hybrid_model({1}),
        )
        assert res.consensus and res.decision == 0
