"""Native asynchronous algorithm: equivalence, quorums, composition.

Four layers of claims:

* **fault-free equivalence** — across the same five factory scenarios
  the synchronizer suite covers, the asynchronous algorithm decides the
  same value under the lockstep scheduler as under the synchronous
  simulator (trace-identically, in fact), and that value is the
  majority (ties → 0) of all inputs — the same rule the synchronous
  Algorithm 2 applies;
* **quorum mechanics** — single-valued reliable receipt, the silent
  fault's patient-quorum escape, decision certificates, the stalled
  verdict on genuinely stuck topologies;
* **asynchrony for real** — everything works under a scheduler that
  *declares no delay bound* (the runner's ``bounded=False`` path), where
  the fixed-round protocols are refused outright;
* **composition** — picklable factory, byte-identical parallel sweeps,
  full battery × schedulers deciding on the headline wheel:5 point where
  bare Algorithm 2 demonstrably disagrees.
"""

import pickle

import pytest

from repro.analysis import consensus_sweep
from repro.consensus import (
    AsyncConsensusProtocol,
    AsyncFactory,
    algorithm2_factory,
    async_factory,
    check_async_local_broadcast,
    majority,
    run_consensus,
)
from repro.graphs import Graph, complete_graph, cycle_graph, paper_figure_1a, wheel_graph
from repro.net import (
    SchedulerSpec,
    SilentAdversary,
    TamperForwardAdversary,
    hybrid_model,
    point_to_point_model,
)

LOCKSTEP = SchedulerSpec("lockstep")
SEEDED = SchedulerSpec("seeded-async", seed=7, max_delay=3)
ADVERSARIAL = SchedulerSpec("adversarial", max_delay=3)
#: Same delays as SEEDED on the wire, but no bound declared anywhere.
UNBOUNDED = SchedulerSpec("seeded-async", seed=7, max_delay=3, unbounded=True)


def case_id(case):
    return case[0]


# The five scenario setups the lockstep-equivalence and synchronizer
# suites use — here they supply (graph, channel) environments for the
# asynchronous algorithm itself.
CASES = [
    ("algorithm1", paper_figure_1a, lambda g: None),
    ("algorithm2", lambda: cycle_graph(4), lambda g: None),
    ("algorithm3", lambda: complete_graph(4), lambda g: hybrid_model({0})),
    ("eig", lambda: complete_graph(4), lambda g: point_to_point_model()),
    ("dolev-eig", lambda: complete_graph(5), lambda g: point_to_point_model()),
]


def run_case(case, scheduler):
    _, graph_builder, channel_builder = case
    graph = graph_builder()
    inputs = {v: i % 2 for i, v in enumerate(sorted(graph.nodes, key=repr))}
    return run_consensus(
        graph,
        async_factory(graph, 1),
        inputs,
        f=1,
        channel=channel_builder(graph),
        scheduler=scheduler,
    ), inputs


def verdict(result):
    return (
        result.outputs,
        result.decision,
        result.consensus,
        result.agreement,
        result.validity,
        result.outcome,
    )


class TestFaultFreeEquivalence:
    """The satellite property: async under lockstep == the synchronous
    run, for the five factory scenarios — and both equal the majority
    rule the synchronous algorithms share."""

    @pytest.mark.parametrize("case", CASES, ids=case_id)
    def test_lockstep_matches_synchronous_run(self, case):
        sync, _ = run_case(case, None)
        lockstep, _ = run_case(case, LOCKSTEP)
        assert verdict(lockstep) == verdict(sync)
        # Stronger: the two engines produce the same wire traffic.
        assert lockstep.trace.transmissions == sync.trace.transmissions

    @pytest.mark.parametrize("case", CASES, ids=case_id)
    def test_decision_is_the_synchronous_majority(self, case):
        sync, inputs = run_case(case, None)
        assert sync.consensus
        assert sync.decision == majority(sorted(inputs.values()))

    @pytest.mark.parametrize("case", CASES, ids=case_id)
    def test_seeded_async_decides_the_same_value(self, case):
        """Fault-free asynchrony changes the timing, never the value."""
        sync, _ = run_case(case, None)
        seeded, _ = run_case(case, SEEDED)
        assert seeded.consensus
        assert seeded.decision == sync.decision


class TestQuorumMechanics:
    def test_silent_fault_patient_quorum(self):
        """A never-initiating fault blocks the complete-table trigger
        forever; the ``n − f`` patient quorum must carry the run."""
        g = wheel_graph(5)
        inputs = {v: v % 2 for v in g.nodes}
        res = run_consensus(
            g, async_factory(g, 1), inputs, f=1,
            faulty=[1], adversary=SilentAdversary(), scheduler=UNBOUNDED,
        )
        assert res.consensus
        honest_values = [inputs[v] for v in sorted(res.honest, key=repr)]
        assert res.decision == majority(sorted(honest_values))

    def test_reliable_tables_are_pairwise_consistent(self):
        """Single-valuedness, observed: after an adversarial run, no two
        honest nodes hold conflicting entries for any origin — in the
        value table or any vote round."""
        from repro.net import EventDrivenNetwork
        from repro.net.adversary import FaultSpec
        from repro.net.channels import local_broadcast_model

        g = wheel_graph(5)
        factory = async_factory(g, 1)
        channel = local_broadcast_model()
        adversary = TamperForwardAdversary()
        protocols = {}
        for v in sorted(g.nodes, key=repr):
            if v == 2:
                protocols[v] = adversary.build(FaultSpec(
                    node=v, graph=g, channel=channel, input_value=v % 2,
                    f=1, faulty=frozenset([2]), honest_factory=factory,
                ))
            else:
                protocols[v] = factory(v, v % 2)
        net = EventDrivenNetwork(g, protocols, SEEDED.build(g), channel)
        net.run(60)
        honest = [protocols[v] for v in sorted(g.nodes, key=repr) if v != 2]
        for i, p in enumerate(honest):
            for q in honest[i + 1:]:
                shared = p.reliable_values.keys() & q.reliable_values.keys()
                assert all(p.reliable_values[w] == q.reliable_values[w]
                           for w in shared)
                for r in p.vote_tallies.keys() & q.vote_tallies.keys():
                    shared_votes = (p.vote_tallies[r].keys()
                                    & q.vote_tallies[r].keys())
                    assert all(p.vote_tallies[r][w] == q.vote_tallies[r][w]
                               for w in shared_votes)
        assert all(p.output() is not None for p in honest)
        assert len({p.output() for p in honest}) == 1

    def test_stalled_outcome_on_disconnected_graph(self):
        """No quorum can ever assemble across components: the run must
        go quiescent and be reported as *stalled*, not burn the whole
        tick budget as ``budget_exhausted``."""
        g = Graph(range(4), [(0, 1), (2, 3)])
        inputs = {0: 0, 1: 1, 2: 0, 3: 1}
        res = run_consensus(g, async_factory(g, 1), inputs, f=1,
                            scheduler=LOCKSTEP)
        assert not res.terminated
        assert res.stalled
        assert res.outcome == "stalled"
        # Quiescence detection stopped well before the tick cap.
        assert res.rounds < 40

    def test_decision_certificates_accelerate(self):
        """Every decided node floods exactly one decision certificate."""
        from repro.net.messages import DecisionPayload, FloodMessage

        g = wheel_graph(5)
        inputs = {v: v % 2 for v in g.nodes}
        res = run_consensus(g, async_factory(g, 1), inputs, f=1,
                            scheduler=SEEDED)
        assert res.consensus
        initiations = [
            t for t in res.trace.transmissions
            if isinstance(t.message, FloodMessage)
            and isinstance(t.message.payload, DecisionPayload)
            and t.message.phase == ("async", "decide")
            and t.message.path == ()
        ]
        assert len(initiations) == g.n
        assert {t.message.payload.value for t in initiations} == {res.decision}

    def test_validation(self):
        g = cycle_graph(4)
        with pytest.raises(ValueError):
            AsyncConsensusProtocol(g, 0, 1, input_value=2)
        with pytest.raises(ValueError):
            AsyncConsensusProtocol(g, 0, -1, input_value=1)
        from repro.consensus import PathOracle

        with pytest.raises(ValueError):
            AsyncConsensusProtocol(
                g, 0, 1, 1, oracle=PathOracle(cycle_graph(5))
            )

    def test_feasibility_report(self):
        assert check_async_local_broadcast(wheel_graph(5), 1).feasible
        # C4 misses the 2f+1 connectivity clause.
        report = check_async_local_broadcast(cycle_graph(4), 1)
        assert not report.feasible
        assert any("connectivity" in c.name for c in report.failing())


class TestUnboundedScheduler:
    """The scheduler contract's ``bounded=False`` path, exercised for real."""

    def test_spec_contract(self):
        assert not UNBOUNDED.bounded
        assert UNBOUNDED.worst_case_delay is None
        assert UNBOUNDED.name == "seeded-async-unbounded"
        with pytest.raises(ValueError):
            UNBOUNDED.horizon(12)
        with pytest.raises(ValueError):
            SchedulerSpec("lockstep", unbounded=True)

    def test_same_delays_on_the_wire(self):
        """Withdrawing the declaration must not change the physics."""
        g = wheel_graph(5)
        inputs = {v: v % 2 for v in g.nodes}
        bounded = run_consensus(g, async_factory(g, 1), inputs, f=1,
                                scheduler=SEEDED)
        unbounded = run_consensus(g, async_factory(g, 1), inputs, f=1,
                                  scheduler=UNBOUNDED)
        assert unbounded.trace.deliveries == bounded.trace.deliveries
        assert verdict(unbounded) == verdict(bounded)

    def test_fixed_round_protocols_are_refused(self):
        """The runner cannot scale a round budget with no bound — the
        async algorithm is the only protocol that runs here."""
        g = cycle_graph(4)
        inputs = {v: 0 for v in g.nodes}
        with pytest.raises(ValueError, match="no delay bound"):
            run_consensus(g, algorithm2_factory(g, 1), inputs, f=1,
                          scheduler=UNBOUNDED)

    def test_async_decides_with_a_fault_and_no_bound(self):
        g = wheel_graph(5)
        inputs = {v: v % 2 for v in g.nodes}
        res = run_consensus(
            g, async_factory(g, 1), inputs, f=1,
            faulty=[3], adversary=TamperForwardAdversary(),
            scheduler=UNBOUNDED,
        )
        assert res.consensus


class TestComposition:
    def test_factory_pickles(self):
        factory = async_factory(wheel_graph(5), 1)
        clone = pickle.loads(pickle.dumps(factory))
        assert isinstance(clone, AsyncFactory)
        assert (clone.f, clone.graph) == (1, factory.graph)
        protocol = clone(0, 1)
        assert isinstance(protocol, AsyncConsensusProtocol)
        assert protocol.oracle is clone.oracle  # shared per factory

    @pytest.mark.parametrize("workers", [2])
    def test_sweep_byte_identical_across_workers(self, workers):
        g = wheel_graph(5)

        def sweep(n):
            return consensus_sweep(
                g, async_factory(g, 1), f=1, patterns=["split"],
                workers=n, schedulers=[SEEDED, ADVERSARIAL],
            )

        serial, parallel = sweep(1), sweep(workers)
        assert parallel.records == serial.records
        assert parallel.to_json() == serial.to_json()
        assert serial.all_consensus

    def test_full_battery_decides_where_alg2_disagrees(self):
        """The headline point: wheel:5, f = 1.  Bare Algorithm 2
        demonstrably loses consensus there under seeded-async timing;
        the native asynchronous algorithm decides the *entire* battery
        under both asynchronous schedulers with no bound declared."""
        g = wheel_graph(5)
        # One concrete scenario the sweep flags for bare Algorithm 2.
        broken = run_consensus(
            g, algorithm2_factory(g, 1), {v: 0 for v in g.nodes}, f=1,
            faulty=[0], adversary=SilentAdversary(), scheduler=SEEDED,
        )
        assert broken.outcome == "disagreed"
        for spec in (UNBOUNDED, ADVERSARIAL):
            report = consensus_sweep(
                g, async_factory(g, 1), f=1, schedulers=[spec]
            )
            assert report.all_consensus, spec.name
            assert {r.outcome for r in report.records} == {"decided"}

    def test_oracle_wiring_sees_cache_hits(self):
        """The satellite: certificate checks route their packing
        feasibility through the factory's shared PathOracle."""
        g = wheel_graph(5)
        factory = async_factory(g, 1)
        inputs = {v: v % 2 for v in g.nodes}
        res = run_consensus(g, factory, inputs, f=1, faulty=[1],
                            adversary=SilentAdversary(), scheduler=SEEDED)
        assert res.consensus
        info = factory.oracle.cache_info()
        assert info["packings"] > 0
        assert info["hits"] > 0
