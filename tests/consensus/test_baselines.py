"""Point-to-point baselines: EIG correctness and the classical attack."""

import pytest

from repro.consensus import (
    DolevEIGProtocol,
    EIGEquivocatingAdversary,
    EIGProtocol,
    dolev_eig_factory,
    eig_factory,
    run_consensus,
)
from repro.graphs import circulant_graph, complete_graph, cycle_graph
from repro.net import (
    SilentAdversary,
    WrongInputAdversary,
    point_to_point_model,
)

P2P = point_to_point_model()


class TestEIGOnCompleteGraphs:
    def test_requires_complete_graph(self):
        with pytest.raises(ValueError):
            EIGProtocol(cycle_graph(4), 0, 1, 0)

    def test_no_fault_agreement(self):
        g = complete_graph(4)
        res = run_consensus(
            g, eig_factory(g, 1), {0: 1, 1: 1, 2: 0, 3: 1}, f=1, channel=P2P
        )
        assert res.consensus and res.decision == 1

    @pytest.mark.parametrize(
        "adversary",
        [SilentAdversary(), WrongInputAdversary(), EIGEquivocatingAdversary()],
        ids=lambda a: a.name,
    )
    def test_k4_f1_tolerates(self, adversary):
        g = complete_graph(4)
        res = run_consensus(
            g, eig_factory(g, 1), {v: v % 2 for v in g.nodes}, f=1,
            faulty=[2], adversary=adversary, channel=P2P,
        )
        assert res.consensus, adversary.name

    def test_k7_f2_equivocators(self):
        g = complete_graph(7)
        for inputs in [{v: v % 2 for v in g.nodes}, {v: 1 for v in g.nodes}]:
            res = run_consensus(
                g, eig_factory(g, 2), inputs, f=2,
                faulty=[1, 4], adversary=EIGEquivocatingAdversary(), channel=P2P,
            )
            assert res.consensus

    def test_rounds_are_f_plus_2(self):
        g = complete_graph(4)
        res = run_consensus(
            g, eig_factory(g, 1), {v: 0 for v in g.nodes}, f=1, channel=P2P
        )
        assert res.rounds <= 3


class TestClassicalImpossibility:
    def test_k3_f1_broken_by_equivocation(self):
        """n = 3 < 3f + 1: the classical attack defeats EIG — the exact
        spot where the local-broadcast model (K3 = K_{2f+1}) wins."""
        g = complete_graph(3)
        res = run_consensus(
            g, eig_factory(g, 1), {v: 1 for v in g.nodes}, f=1,
            faulty=[2], adversary=EIGEquivocatingAdversary(), channel=P2P,
        )
        assert not (res.agreement and res.validity)

    def test_k3_f1_fine_under_local_broadcast_algorithm(self):
        from repro.consensus import algorithm1_factory
        from repro.net import TamperForwardAdversary

        g = complete_graph(3)
        res = run_consensus(
            g, algorithm1_factory(g, 1), {v: 1 for v in g.nodes}, f=1,
            faulty=[2], adversary=TamperForwardAdversary(),
        )
        assert res.consensus and res.decision == 1


class TestDolevEIG:
    def test_incomplete_graph_relay(self):
        g = circulant_graph(7, [1, 2])  # kappa = 4 >= 2f+1 = 3, n = 7 >= 4
        res = run_consensus(
            g, dolev_eig_factory(g, 1), {v: v % 2 for v in g.nodes}, f=1,
            faulty=[3], adversary=EIGEquivocatingAdversary(), channel=P2P,
        )
        assert res.consensus

    def test_validity_all_same(self):
        g = circulant_graph(7, [1, 2])
        res = run_consensus(
            g, dolev_eig_factory(g, 1), {v: 1 for v in g.nodes}, f=1,
            faulty=[5], adversary=WrongInputAdversary(), channel=P2P,
        )
        assert res.consensus and res.decision == 1

    def test_silent_fault(self):
        g = circulant_graph(7, [1, 2])
        res = run_consensus(
            g, dolev_eig_factory(g, 1), {v: 0 for v in g.nodes}, f=1,
            faulty=[2], adversary=SilentAdversary(), channel=P2P,
        )
        assert res.consensus and res.decision == 0

    def test_rounds_budget(self):
        g = circulant_graph(7, [1, 2])
        p = DolevEIGProtocol(g, 0, 1, 0)
        assert p.total_rounds == 2 * 7  # (f+1) super-rounds of n

    def test_works_on_complete_graph_too(self):
        g = complete_graph(4)
        res = run_consensus(
            g, dolev_eig_factory(g, 1), {0: 0, 1: 1, 2: 1, 3: 0}, f=1,
            faulty=[1], adversary=SilentAdversary(), channel=P2P,
        )
        assert res.consensus
