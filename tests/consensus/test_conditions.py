"""Theorem 4.1/5.1, Dolev, and Theorem 6.1 condition checkers."""

import pytest

from repro.consensus import (
    check_hybrid,
    check_local_broadcast,
    check_point_to_point,
    hybrid_threshold_connectivity,
    local_broadcast_threshold_connectivity,
    max_f_hybrid,
    max_f_local_broadcast,
    max_f_point_to_point,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    degree_deficient_graph,
    harary_graph,
    hybrid_neighborhood_deficient_graph,
    low_connectivity_graph,
    paper_figure_1a,
    paper_figure_1b,
    path_graph,
    petersen_graph,
    star_graph,
)


class TestThresholds:
    @pytest.mark.parametrize(
        "f,expected", [(0, 1), (1, 2), (2, 4), (3, 5), (4, 7), (5, 8)]
    )
    def test_local_broadcast_connectivity_formula(self, f, expected):
        assert local_broadcast_threshold_connectivity(f) == expected

    @pytest.mark.parametrize(
        "f,t,expected",
        [
            (2, 0, 4),   # local broadcast bound
            (2, 1, 4),   # floor(3/2) + 2 + 1
            (2, 2, 5),   # point-to-point bound 2f + 1
            (3, 0, 5),
            (3, 1, 6),
            (3, 2, 6),
            (3, 3, 7),
            (4, 0, 7),
            (4, 4, 9),
        ],
    )
    def test_hybrid_connectivity_formula(self, f, t, expected):
        assert hybrid_threshold_connectivity(f, t) == expected

    def test_hybrid_interpolates_between_models(self):
        for f in range(1, 8):
            assert hybrid_threshold_connectivity(f, 0) == (
                local_broadcast_threshold_connectivity(f)
            )
            assert hybrid_threshold_connectivity(f, f) == 2 * f + 1
            values = [hybrid_threshold_connectivity(f, t) for t in range(f + 1)]
            assert values == sorted(values)  # monotone in t

    def test_hybrid_threshold_rejects_bad_t(self):
        with pytest.raises(ValueError):
            hybrid_threshold_connectivity(2, 3)


class TestLocalBroadcast:
    @pytest.mark.parametrize(
        "graph,f,feasible",
        [
            (paper_figure_1a(), 1, True),    # Figure 1(a)
            (paper_figure_1a(), 2, False),
            (paper_figure_1b(), 2, True),    # Figure 1(b)
            (paper_figure_1b(), 3, False),
            (cycle_graph(4), 1, True),
            (complete_graph(3), 1, True),    # K_{2f+1}
            (complete_graph(5), 2, True),
            (complete_graph(4), 2, False),   # degree 3 < 4
            (petersen_graph(), 1, True),
            (petersen_graph(), 2, False),    # degree 3 < 4
            (path_graph(4), 1, False),       # degree 1 < 2
            (star_graph(5), 1, False),
        ],
    )
    def test_known_feasibility(self, graph, f, feasible):
        assert check_local_broadcast(graph, f).feasible is feasible

    def test_f_zero_only_needs_connectivity(self):
        assert check_local_broadcast(path_graph(3), 0).feasible
        from repro.graphs import Graph

        assert not check_local_broadcast(Graph(nodes=[0, 1]), 0).feasible

    def test_failing_clause_identified(self):
        report = check_local_broadcast(degree_deficient_graph(1), 1)
        assert not report.feasible
        assert any("degree" in c.name for c in report.failing())

    def test_connectivity_clause_identified(self):
        report = check_local_broadcast(low_connectivity_graph(2), 2)
        names = [c.name for c in report.failing()]
        assert names == ["connectivity >= floor(3f/2) + 1"]

    def test_report_str_mentions_verdict(self):
        text = str(check_local_broadcast(paper_figure_1a(), 1))
        assert "FEASIBLE" in text
        assert "minimum degree" in text

    def test_negative_f_rejected(self):
        with pytest.raises(ValueError):
            check_local_broadcast(cycle_graph(4), -1)


class TestPointToPoint:
    @pytest.mark.parametrize(
        "graph,f,feasible",
        [
            (complete_graph(4), 1, True),
            (complete_graph(3), 1, False),   # n < 3f+1
            (complete_graph(7), 2, True),
            (complete_graph(6), 2, False),
            (paper_figure_1a(), 1, False),   # kappa 2 < 3
            (harary_graph(3, 7), 1, True),
        ],
    )
    def test_known_feasibility(self, graph, f, feasible):
        assert check_point_to_point(graph, f).feasible is feasible

    def test_paper_headline_gap(self):
        """Graphs feasible under local broadcast but provably not p2p."""
        for g in [paper_figure_1a(), paper_figure_1b(), complete_graph(3)]:
            f = 1 if g.n <= 5 else 2
            assert check_local_broadcast(g, f).feasible
            assert not check_point_to_point(g, f).feasible


class TestHybrid:
    def test_t_zero_equals_local_broadcast(self):
        for g in [paper_figure_1a(), complete_graph(5), cycle_graph(4)]:
            for f in (1, 2):
                assert (
                    check_hybrid(g, f, 0).feasible
                    == check_local_broadcast(g, f).feasible
                )

    def test_t_equals_f_matches_point_to_point_on_families(self):
        # Theorem 6.1 at t = f: kappa >= 2f+1 and |N(S)| >= 2f+1 for small
        # S, which on these families coincides with n >= 3f+1 + kappa bound.
        for g in [complete_graph(4), complete_graph(7), complete_graph(3),
                  complete_graph(6), harary_graph(3, 7)]:
            for f in (1, 2):
                if f > (g.n - 1) // 3 + 1:
                    continue
                assert (
                    check_hybrid(g, f, f).feasible
                    == check_point_to_point(g, f).feasible
                ), (g, f)

    def test_condition_iii_detects_small_neighborhoods(self):
        g = hybrid_neighborhood_deficient_graph(2, 1)
        report = check_hybrid(g, 2, 1)
        assert not report.feasible
        assert any("neighbors" in c.name for c in report.failing())

    def test_k4_f1_t1(self):
        assert check_hybrid(complete_graph(4), 1, 1).feasible
        assert not check_hybrid(complete_graph(3), 1, 1).feasible

    def test_invalid_t_rejected(self):
        with pytest.raises(ValueError):
            check_hybrid(complete_graph(4), 1, 2)


class TestMaxF:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (paper_figure_1a(), 1),
            (paper_figure_1b(), 2),
            (complete_graph(5), 2),
            (complete_graph(7), 3),
            (path_graph(5), 0),
            (petersen_graph(), 1),
        ],
    )
    def test_max_f_local_broadcast(self, graph, expected):
        assert max_f_local_broadcast(graph) == expected

    @pytest.mark.parametrize(
        "graph,expected",
        [
            (complete_graph(4), 1),
            (complete_graph(7), 2),
            (complete_graph(10), 3),
            (paper_figure_1a(), 0),
        ],
    )
    def test_max_f_point_to_point(self, graph, expected):
        assert max_f_point_to_point(graph) == expected

    def test_local_broadcast_dominates_p2p(self):
        """The paper's claim: LB never tolerates fewer faults than p2p."""
        for g in [
            complete_graph(4),
            complete_graph(7),
            paper_figure_1a(),
            paper_figure_1b(),
            petersen_graph(),
            harary_graph(4, 9),
        ]:
            assert max_f_local_broadcast(g) >= max_f_point_to_point(g)

    def test_max_f_hybrid_monotone_in_t(self):
        g = complete_graph(7)
        values = [max_f_hybrid(g, t) for t in range(3)]
        assert values[0] >= values[1] >= values[2]
        assert values[0] == 3  # local broadcast on K7
        assert max_f_hybrid(g, 2) == 2

    def test_max_f_hybrid_infeasible_marker(self):
        g = cycle_graph(5)
        assert max_f_hybrid(g, 1) == 0  # below t: no valid f
