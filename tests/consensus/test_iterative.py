"""W-MSR iterative baseline: robustness checker and the §2 contrast."""

import pytest

from repro.consensus import (
    algorithm1_factory,
    check_local_broadcast,
    is_r_robust,
    max_robustness,
    run_consensus,
    run_wmsr,
    wmsr_requirement,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    paper_figure_1a,
    path_graph,
    star_graph,
    wheel_graph,
)
from repro.net import TamperForwardAdversary

INPUTS = {0: 0.0, 1: 1.0, 2: 0.2, 3: 0.8, 4: 0.5}
PIN_HIGH = {0: (lambda r: 100.0)}


class TestRobustness:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (complete_graph(3), 2),
            (complete_graph(5), 3),
            (cycle_graph(5), 1),
            (cycle_graph(4), 1),
            (path_graph(4), 1),
            (star_graph(3), 1),
            (wheel_graph(5), 2),
        ],
    )
    def test_max_robustness_known_values(self, graph, expected):
        assert max_robustness(graph) == expected

    def test_robustness_monotone(self):
        g = complete_graph(5)
        top = max_robustness(g)
        for r in range(top + 1):
            assert is_r_robust(g, r)
        assert not is_r_robust(g, top + 1)

    def test_zero_robustness_trivial(self):
        assert is_r_robust(cycle_graph(3), 0)

    def test_requirement_formula(self):
        assert wmsr_requirement(1) == 3
        assert wmsr_requirement(2) == 5


class TestWMSRDynamics:
    def test_fault_free_convergence_on_robust_graph(self, k5):
        res = run_wmsr(k5, INPUTS, f=1, rounds=80)
        assert res.converged
        assert res.within_initial_range(INPUTS)

    def test_fault_free_c5_still_clusters(self, c5):
        """Below the robustness bar the trimming dynamics cluster even
        with zero faults — the iterative restriction alone costs the
        convergence that Algorithm 1 gets for free on this graph."""
        res = run_wmsr(c5, INPUTS, f=1, rounds=80)
        assert not res.converged
        assert res.within_initial_range(INPUTS)

    def test_k5_converges_under_attack(self, k5):
        res = run_wmsr(k5, INPUTS, f=1, rounds=80, faulty=PIN_HIGH)
        assert res.converged
        assert res.within_initial_range(INPUTS)

    def test_c5_stalls_under_attack(self, c5):
        """C5 is 1-robust < 3 = 2f+1: the pinned node never moves and
        approximate agreement fails."""
        res = run_wmsr(c5, INPUTS, f=1, rounds=100, faulty=PIN_HIGH)
        assert not res.converged
        assert res.final_range >= 0.2
        # Safety still holds (trimming keeps states in the honest hull).
        assert res.within_initial_range(INPUTS)

    def test_history_shape(self, k5):
        res = run_wmsr(k5, INPUTS, f=1, rounds=10, faulty=PIN_HIGH)
        assert all(len(h) == 11 for h in res.history.values())
        assert sorted(res.honest) == [1, 2, 3, 4]

    def test_too_many_faults_rejected(self, c5):
        with pytest.raises(ValueError):
            run_wmsr(c5, INPUTS, f=1, rounds=5,
                     faulty={0: lambda r: 1.0, 1: lambda r: 0.0})


class TestSection2Contrast:
    def test_exact_beats_iterative_on_c5(self, c5):
        """The paper's point: C5 satisfies the exact-consensus conditions
        (Theorem 5.1) yet falls short of W-MSR's robustness requirement —
        the restriction to iterative dynamics costs real tolerance."""
        assert check_local_broadcast(c5, 1).feasible
        assert max_robustness(c5) < wmsr_requirement(1)

        exact = run_consensus(
            c5, algorithm1_factory(c5, 1), {v: v % 2 for v in c5.nodes},
            f=1, faulty=[0], adversary=TamperForwardAdversary(),
        )
        assert exact.consensus  # exact agreement, finite time

        approx = run_wmsr(c5, INPUTS, f=1, rounds=100, faulty=PIN_HIGH)
        assert not approx.converged  # not even approximate agreement

    def test_iterative_needs_more_than_tight_conditions(self):
        """Graphs at the exact-consensus threshold are below the W-MSR
        threshold; K_{2f+1} clears both."""
        for g in [paper_figure_1a(), cycle_graph(4)]:
            assert check_local_broadcast(g, 1).feasible
            assert max_robustness(g) < wmsr_requirement(1)
        assert max_robustness(complete_graph(3)) >= wmsr_requirement(1) - 1
        assert max_robustness(complete_graph(5)) >= wmsr_requirement(1)
