"""Cross-cutting property-based tests (hypothesis).

These encode the paper's quantified statements as randomized searches
for counterexamples: seeded adversaries and fault placements on
condition-satisfying graphs must never break consensus; structural
identities must hold on arbitrary random graphs.
"""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import predicted_costs
from repro.consensus import (
    algorithm1_factory,
    algorithm2_factory,
    check_local_broadcast,
    majority,
    phase_count,
    run_consensus,
)
from repro.graphs import (
    all_simple_paths,
    complete_graph,
    cycle_graph,
    harary_graph,
    max_disjoint_paths,
    min_set_neighborhood,
    neighbors_of_set,
    paper_figure_1a,
    random_connected_graph,
    vertex_connectivity,
)
from repro.net import RandomAdversary


def to_nx(g):
    h = nx.Graph()
    h.add_nodes_from(g.nodes)
    h.add_edges_from(g.edges())
    return h


class TestStructuralIdentities:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_menger_identity(self, seed):
        """κ(u,v) computed by flow equals networkx's on random graphs."""
        g = random_connected_graph(n=7, extra_edges=seed % 10, seed=seed)
        h = to_nx(g)
        nodes = sorted(g.nodes)
        u, v = nodes[seed % 7], nodes[(seed // 7) % 7]
        if u == v:
            return
        assert max_disjoint_paths(g, u, v) == nx.node_connectivity(h, u, v)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100_000))
    def test_connectivity_lower_bounds_degree(self, seed):
        g = random_connected_graph(n=8, extra_edges=seed % 12, seed=seed)
        assert vertex_connectivity(g) <= g.min_degree()

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 100_000))
    def test_neighborhood_of_singleton_is_degree(self, seed):
        g = random_connected_graph(n=8, extra_edges=seed % 8, seed=seed)
        for v in sorted(g.nodes)[:3]:
            assert len(neighbors_of_set(g, [v])) == g.degree(v)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 100_000))
    def test_min_set_neighborhood_bounded_by_min_degree(self, seed):
        g = random_connected_graph(n=7, extra_edges=seed % 8, seed=seed)
        value, _ = min_set_neighborhood(g, 2)
        assert value <= g.min_degree()

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 100_000))
    def test_simple_paths_symmetric(self, seed):
        g = random_connected_graph(n=6, extra_edges=seed % 6, seed=seed)
        nodes = sorted(g.nodes)
        u, v = nodes[0], nodes[-1]
        forward = {tuple(reversed(p)) for p in all_simple_paths(g, u, v)}
        backward = set(all_simple_paths(g, v, u))
        assert forward == backward


class TestConsensusNeverBreaks:
    """Seeded randomized adversaries cannot break feasible instances."""

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 100_000), faulty=st.integers(0, 4))
    def test_algorithm1_on_c5(self, seed, faulty):
        g = paper_figure_1a()
        inputs = {v: (seed >> v) & 1 for v in g.nodes}
        res = run_consensus(
            g, algorithm1_factory(g, 1), inputs, f=1,
            faulty=[faulty], adversary=RandomAdversary(seed=seed),
        )
        assert res.consensus

    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(0, 100_000), faulty=st.integers(0, 3))
    def test_algorithm2_on_c4(self, seed, faulty):
        g = cycle_graph(4)
        inputs = {v: (seed >> v) & 1 for v in g.nodes}
        res = run_consensus(
            g, algorithm2_factory(g, 1), inputs, f=1,
            faulty=[faulty], adversary=RandomAdversary(seed=seed),
        )
        assert res.consensus

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 100_000))
    def test_harary_f1_random_adversary(self, seed):
        g = harary_graph(3, 6)  # kappa 3, degree 3: feasible for f = 1
        assert check_local_broadcast(g, 1).feasible
        inputs = {v: (seed >> v) & 1 for v in g.nodes}
        res = run_consensus(
            g, algorithm1_factory(g, 1), inputs, f=1,
            faulty=[seed % 6], adversary=RandomAdversary(seed=seed),
        )
        assert res.consensus


class TestClosedForms:
    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(2, 12), f=st.integers(0, 3))
    def test_phase_count_matches_enumeration(self, n, f):
        g = complete_graph(n)
        from repro.consensus import candidate_fault_sets

        assert len(candidate_fault_sets(g, f)) == phase_count(n, f)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(3, 10), f=st.integers(1, 2))
    def test_cost_model_consistency(self, n, f):
        cm = predicted_costs(complete_graph(n), f)
        assert cm.rounds_algorithm1 == cm.phases * n
        assert cm.rounds_algorithm2 == 3 * n
        assert cm.round_blowup >= 1.0 or cm.phases * n < 3 * n

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(0, 1), max_size=15))
    def test_majority_properties(self, bits):
        result = majority(bits)
        assert result in (0, 1)
        if bits.count(1) > len(bits) / 2:
            assert result == 1
        if bits.count(0) >= len(bits) / 2:
            assert result == 0

    @settings(max_examples=30, deadline=None)
    @given(f=st.integers(0, 20))
    def test_threshold_orderings(self, f):
        from repro.consensus import (
            hybrid_threshold_connectivity,
            local_broadcast_threshold_connectivity,
        )

        lb = local_broadcast_threshold_connectivity(f)
        p2p = 2 * f + 1
        assert lb <= p2p
        for t in range(f + 1):
            assert lb <= hybrid_threshold_connectivity(f, t) <= p2p
