"""Connectivity machinery vs first principles and networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    GraphError,
    complete_graph,
    cycle_graph,
    disjoint_paths_excluding,
    harary_graph,
    is_k_connected,
    is_path,
    local_connectivity,
    max_disjoint_paths,
    max_set_disjoint_paths,
    minimum_vertex_cut,
    paper_figure_1b,
    petersen_graph,
    random_connected_graph,
    set_paths_disjoint,
    vertex_connectivity,
)


def to_nx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(g.nodes)
    h.add_edges_from(g.edges())
    return h


class TestVertexConnectivity:
    @pytest.mark.parametrize(
        "graph,expected",
        [
            (cycle_graph(5), 2),
            (cycle_graph(8), 2),
            (complete_graph(4), 3),
            (complete_graph(7), 6),
            (petersen_graph(), 3),
            (paper_figure_1b(), 4),
            (Graph(nodes=[0, 1]), 0),
            (Graph(nodes=[0]), 0),
        ],
    )
    def test_known_values(self, graph, expected):
        assert vertex_connectivity(graph) == expected

    def test_path_graph_is_1_connected(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert vertex_connectivity(g) == 1

    def test_harary_graphs_hit_designed_connectivity(self):
        for k, n in [(2, 7), (3, 8), (3, 9), (4, 9), (5, 10), (6, 11)]:
            g = harary_graph(k, n)
            assert vertex_connectivity(g) == k, (k, n)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matches_networkx_on_random_graphs(self, seed):
        g = random_connected_graph(n=7, extra_edges=seed % 9, seed=seed)
        assert vertex_connectivity(g) == nx.node_connectivity(to_nx(g))

    def test_is_k_connected_thresholds(self):
        g = cycle_graph(6)
        assert is_k_connected(g, 1)
        assert is_k_connected(g, 2)
        assert not is_k_connected(g, 3)

    def test_is_k_connected_requires_n_greater_than_k(self):
        # By the paper's definition K_4 is 3-connected but not 4-connected.
        g = complete_graph(4)
        assert is_k_connected(g, 3)
        assert not is_k_connected(g, 4)

    def test_k_nonpositive(self):
        assert is_k_connected(cycle_graph(3), 0)


class TestMenger:
    def test_disjoint_paths_cycle(self):
        g = cycle_graph(5)
        assert max_disjoint_paths(g, 0, 2) == 2

    def test_disjoint_paths_complete(self):
        g = complete_graph(5)
        # Adjacent pair: direct edge plus 3 two-hop paths.
        assert max_disjoint_paths(g, 0, 1) == 4

    def test_menger_equals_local_connectivity_vs_networkx(self):
        g = petersen_graph()
        h = to_nx(g)
        for u, v in [(0, 7), (1, 8), (2, 6)]:
            assert local_connectivity(g, u, v) == nx.node_connectivity(h, u, v)

    def test_paths_returned_are_disjoint_and_valid(self):
        g = paper_figure_1b()
        count, paths = max_disjoint_paths(g, 0, 4, want_paths=True)
        assert count == 4
        assert len(paths) == 4
        for p in paths:
            assert is_path(g, p)
            assert p[0] == 0 and p[-1] == 4
        internals = [set(p[1:-1]) for p in paths]
        for i in range(len(internals)):
            for j in range(i + 1, len(internals)):
                assert not internals[i] & internals[j]

    def test_exclude_internal_respected(self):
        g = cycle_graph(5)
        # Excluding node 1 leaves only the path through 4, 3.
        assert max_disjoint_paths(g, 0, 2, exclude_internal=[1]) == 1
        count, paths = max_disjoint_paths(
            g, 0, 2, exclude_internal=[1], want_paths=True
        )
        assert paths == [(0, 4, 3, 2)]

    def test_excluded_endpoint_still_usable(self):
        g = cycle_graph(5)
        # Excluding an endpoint must not remove it from the path.
        assert max_disjoint_paths(g, 0, 2, exclude_internal=[0, 2]) == 2

    def test_identical_endpoints_rejected(self):
        with pytest.raises(GraphError):
            max_disjoint_paths(cycle_graph(4), 1, 1)

    def test_unknown_endpoint_rejected(self):
        with pytest.raises(GraphError):
            max_disjoint_paths(cycle_graph(4), 0, 77)


class TestFanLemma:
    def test_set_paths_complete(self):
        g = complete_graph(5)
        assert max_set_disjoint_paths(g, [0, 1, 2], 4) == 3

    def test_set_paths_share_only_sink(self):
        g = paper_figure_1b()
        count, paths = max_set_disjoint_paths(
            g, [0, 1, 2, 3], 5, want_paths=True
        )
        assert count == 4
        for i in range(len(paths)):
            for j in range(i + 1, len(paths)):
                assert set_paths_disjoint(paths[i], paths[j])

    def test_set_paths_distinct_sources(self):
        g = cycle_graph(6)
        count, paths = max_set_disjoint_paths(g, [1, 5], 3, want_paths=True)
        assert count == 2
        assert {p[0] for p in paths} == {1, 5}

    def test_sink_in_sources_ignored(self):
        g = cycle_graph(5)
        assert max_set_disjoint_paths(g, [0, 2], 2) == max_set_disjoint_paths(
            g, [0, 2, 2], 2
        )

    def test_empty_sources(self):
        assert max_set_disjoint_paths(cycle_graph(4), [], 0) == 0

    def test_disjoint_paths_excluding_threshold(self):
        g = cycle_graph(5)
        paths = disjoint_paths_excluding(g, [1, 4], 3, exclude=[0], k=2)
        assert paths is not None and len(paths) == 2
        assert disjoint_paths_excluding(g, [1], 3, exclude=[2, 4], k=1) is None

    def test_fan_lemma_property(self):
        # k-connected graph: any k sources reach any sink disjointly.
        g = harary_graph(4, 9)
        for sink in [0, 4]:
            sources = [v for v in sorted(g.nodes) if v != sink][:4]
            assert max_set_disjoint_paths(g, sources, sink) == 4


class TestMinimumCut:
    def test_cut_size_matches_connectivity(self):
        g = cycle_graph(6)
        cut = minimum_vertex_cut(g)
        assert len(cut) == 2
        assert not g.remove_nodes(cut).is_connected()

    def test_cut_on_harary(self):
        g = harary_graph(3, 8)
        cut = minimum_vertex_cut(g)
        assert len(cut) == 3
        assert not g.remove_nodes(cut).is_connected()

    def test_complete_graph_has_no_cut(self):
        with pytest.raises(GraphError):
            minimum_vertex_cut(complete_graph(4))

    def test_disconnected_graph_rejected(self):
        with pytest.raises(GraphError):
            minimum_vertex_cut(Graph(nodes=[0, 1]))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_cut_disconnects_random_graphs(self, seed):
        g = random_connected_graph(n=8, extra_edges=seed % 6, seed=seed)
        if vertex_connectivity(g) == g.n - 1:
            return  # complete: no cut
        cut = minimum_vertex_cut(g)
        assert len(cut) == vertex_connectivity(g)
        assert not g.remove_nodes(cut).is_connected()


class TestConnectivityMemo:
    def test_repeat_queries_hit_the_lru(self):
        g = petersen_graph()
        vertex_connectivity.cache_clear()
        first = vertex_connectivity(g)
        before = vertex_connectivity.cache_info()
        # An equal-but-distinct Graph object must hit the same cache line
        # (the cache is keyed on graph value, not identity).
        again = vertex_connectivity(petersen_graph())
        after = vertex_connectivity.cache_info()
        assert first == again == 3
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_cached_results_match_fresh_computation(self):
        from repro.graphs.connectivity import _vertex_connectivity_uncached

        for g in (cycle_graph(5), complete_graph(6), harary_graph(4, 9),
                  Graph(nodes=[0, 1]), Graph()):
            vertex_connectivity.cache_clear()
            assert vertex_connectivity(g) == vertex_connectivity(g)
            assert (
                vertex_connectivity(g)
                == _vertex_connectivity_uncached.__wrapped__(g)
            )

    def test_feasibility_checks_reuse_the_cache(self):
        from repro.consensus import check_local_broadcast

        g = paper_figure_1b()
        vertex_connectivity.cache_clear()
        check_local_broadcast(g, 2)
        misses_after_first = vertex_connectivity.cache_info().misses
        check_local_broadcast(g, 2)
        check_local_broadcast(g, 1)
        assert vertex_connectivity.cache_info().misses == misses_after_first
