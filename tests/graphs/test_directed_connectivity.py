"""Directed connectivity: strong reachability, SCCs, source components,
and the directed vertex connectivity that backs the feasibility checks.

The load-bearing property is Menger agreement on symmetric views: for
any undirected graph, the directed machinery run on its symmetric lift
must reproduce the undirected answers exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Digraph,
    complete_graph,
    cycle_graph,
    directed_local_connectivity,
    directed_vertex_connectivity,
    gnp_supercritical_graph,
    is_strongly_connected,
    is_strongly_k_connected,
    local_connectivity,
    max_disjoint_paths,
    oneway_ring,
    paper_figure_1a,
    path_graph,
    random_digraph,
    source_components,
    strongly_connected_components,
    vertex_connectivity,
    wheel_graph,
)


class TestStrongConnectivity:
    def test_oneway_ring_is_strong(self):
        assert is_strongly_connected(oneway_ring(5))

    def test_dag_is_not_strong(self):
        assert not is_strongly_connected(Digraph.from_arcs([(0, 1), (1, 2)]))

    def test_single_node(self):
        assert is_strongly_connected(Digraph(nodes=[0]))

    def test_scc_partition(self):
        d = Digraph.from_arcs([
            (0, 1), (1, 0),          # component {0, 1}
            (1, 2), (2, 3), (3, 2),  # component {2, 3}, fed from {0, 1}
        ])
        comps = strongly_connected_components(d)
        # Topological order of the condensation: sources first.
        assert [set(c) for c in comps] == [{0, 1}, {2, 3}]

    def test_scc_deterministic(self):
        d = random_digraph(12, 0.15, 4)
        assert (strongly_connected_components(d)
                == strongly_connected_components(d))

    def test_source_components(self):
        d = Digraph.from_arcs([(0, 1), (1, 0), (1, 2), (3, 2)])
        # {0,1} and {3} both have no incoming cross-component arc.
        assert [set(c) for c in source_components(d)] == [{0, 1}, {3}]

    def test_strong_digraph_has_one_source(self):
        d = oneway_ring(7, 2)
        sources = source_components(d)
        assert len(sources) == 1
        assert set(sources[0]) == set(range(7))


class TestDirectedConnectivity:
    def test_oneway_ring_kappa(self):
        assert directed_vertex_connectivity(oneway_ring(9, 2)) == 2

    def test_not_strong_means_zero(self):
        assert directed_vertex_connectivity(
            Digraph.from_arcs([(0, 1), (1, 2)])
        ) == 0

    def test_complete_digraph(self):
        d = complete_graph(5).to_digraph()
        assert directed_vertex_connectivity(d) == 4

    def test_local_connectivity_directed(self):
        d = oneway_ring(6)
        assert directed_local_connectivity(d, 0, 3) == 1
        assert max_disjoint_paths(d, 0, 3) == 1

    def test_is_strongly_k_connected(self):
        d = oneway_ring(9, 2)
        assert is_strongly_k_connected(d, 2)
        assert not is_strongly_k_connected(d, 3)

    def test_asymmetric_example(self):
        """Symmetric closure of oneway:9:2 is C9(1,2): κ jumps 2 → 4."""
        d = oneway_ring(9, 2)
        assert directed_vertex_connectivity(d) == 2
        assert vertex_connectivity(d.to_undirected()) == 4


class TestSymmetricViewAgreement:
    BATTERY = [
        cycle_graph(5),
        wheel_graph(5),
        complete_graph(4),
        path_graph(5),
        paper_figure_1a(),
    ]

    def test_battery_kappa_matches(self):
        for g in self.BATTERY:
            lifted = g.to_digraph()
            assert (directed_vertex_connectivity(lifted)
                    == vertex_connectivity(g)), g

    def test_battery_strong_iff_connected(self):
        for g in self.BATTERY:
            assert is_strongly_connected(g.to_digraph()) == g.is_connected()

    def test_undirected_input_delegates(self):
        g = wheel_graph(6)
        assert directed_vertex_connectivity(g) == vertex_connectivity(g)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=200))
    def test_random_graphs_kappa_matches(self, seed):
        g = gnp_supercritical_graph(8, 2.2, seed)
        lifted = g.to_digraph()
        assert directed_vertex_connectivity(lifted) == vertex_connectivity(g)

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=7),
        st.integers(min_value=0, max_value=7),
    )
    def test_random_local_connectivity_matches(self, seed, s, t):
        g = gnp_supercritical_graph(8, 2.5, seed)
        if s == t or s not in g or t not in g:
            return
        lifted = g.to_digraph()
        assert (directed_local_connectivity(lifted, s, t)
                == local_connectivity(g, s, t))
