"""Path objects, enumeration, and the disjoint-packing decision."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    GraphError,
    all_simple_paths,
    complete_graph,
    concat_path,
    count_simple_paths,
    cycle_graph,
    has_disjoint_path_packing,
    internal_nodes,
    internally_disjoint,
    is_fault_free,
    is_path,
    max_disjoint_path_packing,
    max_disjoint_paths,
    paper_figure_1b,
    path_excludes,
    random_connected_graph,
    set_paths_disjoint,
)


class TestPathPredicates:
    def test_is_path_basic(self, c5):
        assert is_path(c5, (0, 1, 2))
        assert is_path(c5, (0,))
        assert not is_path(c5, (0, 2))      # not adjacent
        assert not is_path(c5, (0, 1, 0))   # repeat
        assert not is_path(c5, ())          # empty
        assert not is_path(c5, (0, 99))     # unknown node

    def test_internal_nodes(self):
        assert internal_nodes((0, 1, 2, 3)) == (1, 2)
        assert internal_nodes((0, 1)) == ()
        assert internal_nodes((0,)) == ()

    def test_path_excludes_internal_only(self):
        # Endpoints may belong to the excluded set (paper, Section 3).
        assert path_excludes((0, 1, 2), {0, 2})
        assert not path_excludes((0, 1, 2), {1})
        assert path_excludes((0, 2), {0, 1, 2})

    def test_is_fault_free(self):
        assert is_fault_free((0, 1, 2), faulty={0, 2})
        assert not is_fault_free((0, 1, 2), faulty={1})

    def test_internally_disjoint(self):
        assert internally_disjoint((0, 1, 2), (0, 3, 2))
        assert not internally_disjoint((0, 1, 2), (4, 1, 5))

    def test_set_paths_disjoint(self):
        assert set_paths_disjoint((1, 2, 9), (3, 4, 9))
        assert not set_paths_disjoint((1, 2, 9), (2, 5, 9))
        assert not set_paths_disjoint((1, 2, 9), (1, 9))

    def test_set_paths_disjoint_requires_common_sink(self):
        with pytest.raises(GraphError):
            set_paths_disjoint((1, 2), (3, 4))

    def test_concat_path(self):
        assert concat_path((0, 1), 2) == (0, 1, 2)
        assert concat_path((), 5) == (5,)


class TestEnumeration:
    def test_cycle_has_two_paths_between_any_pair(self, c5):
        for u in range(5):
            for v in range(u + 1, 5):
                assert count_simple_paths(c5, u, v) == 2

    def test_complete_graph_path_count(self):
        # K_4: paths 0->1 = 1 direct + 2 length-2 + 2 length-3 = 5.
        assert count_simple_paths(complete_graph(4), 0, 1) == 5

    def test_all_paths_are_simple_and_valid(self, fig1b):
        paths = all_simple_paths(fig1b, 0, 5)
        assert paths
        for p in paths:
            assert is_path(fig1b, p)
            assert p[0] == 0 and p[-1] == 5
        assert len(set(paths)) == len(paths)

    def test_trivial_path(self, c5):
        assert all_simple_paths(c5, 3, 3) == [(3,)]

    def test_max_length_cap(self, c5):
        short = all_simple_paths(c5, 0, 2, max_length=3)
        assert short == [(0, 1, 2)]

    def test_avoid_internal(self, c5):
        paths = all_simple_paths(c5, 0, 2, avoid_internal=[1])
        assert paths == [(0, 4, 3, 2)]

    def test_avoid_internal_does_not_block_endpoints(self, c5):
        paths = all_simple_paths(c5, 0, 2, avoid_internal=[0, 2])
        assert len(paths) == 2

    def test_unknown_endpoint(self, c5):
        with pytest.raises(GraphError):
            all_simple_paths(c5, 0, 44)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 1000))
    def test_enumeration_bounded_by_menger(self, seed):
        # The max disjoint packing over all simple paths equals Menger's
        # count: flow and enumeration must agree.
        g = random_connected_graph(n=6, extra_edges=seed % 6, seed=seed)
        nodes = sorted(g.nodes)
        u, v = nodes[0], nodes[-1]
        paths = all_simple_paths(g, u, v)
        assert max_disjoint_path_packing(paths, mode="uv") == max_disjoint_paths(
            g, u, v
        )


class TestPacking:
    def test_threshold_trivial(self):
        assert has_disjoint_path_packing([], 0)
        assert not has_disjoint_path_packing([], 1)

    def test_uv_mode(self):
        paths = [(0, 1, 2), (0, 3, 2), (0, 1, 3, 2)]
        assert has_disjoint_path_packing(paths, 2, mode="uv")
        assert not has_disjoint_path_packing(paths, 3, mode="uv")

    def test_direct_edges_never_conflict(self):
        # Direct edges have no internal nodes: all mutually disjoint (uv mode).
        paths = [(0, 2)] * 4
        assert has_disjoint_path_packing(paths, 4, mode="uv")

    def test_set_mode_counts_endpoints(self):
        paths = [(1, 9), (1, 2, 9)]  # share U-side endpoint 1
        assert not has_disjoint_path_packing(paths, 2, mode="set")
        paths = [(1, 9), (2, 9), (3, 4, 9)]
        assert has_disjoint_path_packing(paths, 3, mode="set")

    def test_unknown_mode(self):
        with pytest.raises(GraphError):
            has_disjoint_path_packing([(0, 1)], 1, mode="zigzag")

    def test_max_packing_binary_search(self):
        paths = [(0, 1, 5), (0, 2, 5), (0, 3, 5), (0, 1, 2, 5)]
        assert max_disjoint_path_packing(paths, mode="uv") == 3

    def test_packing_needs_search_not_greedy(self):
        # A greedy shortest-first choice would pick (0, 1, 9) and (0, 2, 9)
        # is blocked... construct a case where one specific pairing works.
        paths = [
            (0, 1, 2, 9),   # blocks both below
            (0, 1, 9),
            (0, 2, 9),
        ]
        assert has_disjoint_path_packing(paths, 2, mode="uv")
        assert not has_disjoint_path_packing(paths, 3, mode="uv")

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 1000))
    def test_packing_monotone_in_threshold(self, seed):
        g = random_connected_graph(n=6, extra_edges=seed % 5, seed=seed)
        nodes = sorted(g.nodes)
        paths = all_simple_paths(g, nodes[0], nodes[-1])
        best = max_disjoint_path_packing(paths, mode="uv")
        for k in range(best + 1):
            assert has_disjoint_path_packing(paths, k, mode="uv")
        assert not has_disjoint_path_packing(paths, best + 1, mode="uv")
