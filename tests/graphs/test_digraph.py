"""Unit tests for the directed primitive: Digraph, its symmetric Graph
view, and the per-direction NodeIndex masks."""

import pickle

import pytest

from repro.graphs import (
    Digraph,
    Graph,
    GraphError,
    cycle_graph,
    oneway_ring,
    random_digraph,
    wheel_graph,
)


class TestConstruction:
    def test_empty(self):
        d = Digraph()
        assert d.n == 0
        assert d.arc_count == 0
        assert list(d.arcs()) == []

    def test_arcs_imply_nodes(self):
        d = Digraph.from_arcs([(1, 2), (2, 3)])
        assert d.nodes == {1, 2, 3}
        assert d.arc_count == 2
        assert d.edge_count == 2  # alias on a digraph

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Digraph.from_arcs([(1, 1)])

    def test_parallel_arcs_collapse(self):
        d = Digraph.from_arcs([(1, 2), (1, 2)])
        assert d.arc_count == 1

    def test_antiparallel_arcs_are_distinct(self):
        d = Digraph.from_arcs([(1, 2), (2, 1)])
        assert d.arc_count == 2
        assert d.is_symmetric()

    def test_directedness_flags(self):
        assert Digraph().directed is True
        assert Graph().directed is False


class TestDirection:
    def test_out_and_in_neighbors(self):
        d = Digraph.from_arcs([(0, 1), (0, 2), (2, 1)])
        assert d.out_neighbors(0) == {1, 2}
        assert d.in_neighbors(0) == set()
        assert d.in_neighbors(1) == {0, 2}
        # neighbors() is the out-direction: "who hears v".
        assert d.neighbors(0) == d.out_neighbors(0)

    def test_degrees(self):
        d = oneway_ring(5, 2)
        assert d.min_in_degree() == 2
        assert d.min_out_degree() == 2
        assert d.in_degree(0) == 2
        assert d.out_degree(0) == 2

    def test_has_arc_is_directed(self):
        d = Digraph.from_arcs([(0, 1)])
        assert d.has_arc(0, 1)
        assert not d.has_arc(1, 0)
        assert d.has_edge(0, 1) and not d.has_edge(1, 0)

    def test_sorted_in_neighbors_deterministic(self):
        d = Digraph.from_arcs([(3, 0), (1, 0), (2, 0)])
        assert d.sorted_in_neighbors(0) == (1, 2, 3)

    def test_reverse(self):
        d = Digraph.from_arcs([(0, 1), (1, 2)])
        r = d.reverse()
        assert r.has_arc(1, 0) and r.has_arc(2, 1)
        assert not r.has_arc(0, 1)
        assert r.reverse() == d

    def test_bfs_reachable_and_reaching(self):
        d = Digraph.from_arcs([(0, 1), (1, 2), (3, 2)])
        assert d.bfs_reachable(0) == {0, 1, 2}
        assert d.bfs_reaching(2) == {0, 1, 2, 3}

    def test_shortest_path_follows_arcs(self):
        d = oneway_ring(5)
        assert d.shortest_path(0, 1) == (0, 1)
        # Backwards means all the way around the one-way ring.
        assert d.shortest_path(1, 0) == (1, 2, 3, 4, 0)


class TestSymmetricView:
    """Graph is exactly a symmetric Digraph: in == out everywhere."""

    def test_graph_directions_are_shared_objects(self):
        g = cycle_graph(4)
        assert g.in_neighbors(0) is g.out_neighbors(0)
        assert g.sorted_in_neighbors(0) == g.sorted_neighbors(0)
        assert g.min_in_degree() == g.min_degree()
        assert g.min_out_degree() == g.min_degree()

    def test_graph_arcs_yield_both_orientations(self):
        g = cycle_graph(3)
        arcs = set(g.arcs())
        assert arcs == {(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)}
        assert g.arc_count == 2 * g.edge_count

    def test_to_digraph_lift(self):
        g = wheel_graph(5)
        d = g.to_digraph()
        assert type(d) is Digraph and d.directed
        assert d.is_symmetric()
        assert d.arc_count == 2 * g.edge_count
        assert d.to_undirected() == g

    def test_to_undirected_closure(self):
        d = oneway_ring(5)
        g = d.to_undirected()
        assert type(g) is Graph and not g.directed
        assert g == cycle_graph(5)

    def test_graph_is_its_own_symmetric_forms(self):
        g = cycle_graph(4)
        assert g.to_undirected() is g
        assert g.reverse() is g

    def test_graph_never_equals_digraph(self):
        g = cycle_graph(4)
        assert g != g.to_digraph()
        assert g.to_digraph() != g

    def test_digraph_equality_and_hash(self):
        a = oneway_ring(5, 2)
        b = Digraph(range(5), [(i, (i + d) % 5) for i in range(5)
                               for d in (1, 2)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != a.reverse()


class TestDerivedGraphs:
    def test_digraph_subgraph_keeps_direction(self):
        d = Digraph.from_arcs([(0, 1), (1, 2), (2, 0), (0, 3)])
        s = d.subgraph([0, 1, 2])
        assert set(s.arcs()) == {(0, 1), (1, 2), (2, 0)}

    def test_digraph_relabeled(self):
        d = Digraph.from_arcs([(0, 1)])
        r = d.relabeled({0: "a", 1: "b"})
        assert r.has_arc("a", "b") and not r.has_arc("b", "a")

    def test_relabeled_graph_index_maps_new_labels(self):
        """Regression: a NodeIndex attached to the original must not be
        copied stale onto the relabeled graph — the relabeled graph's
        index covers the *new* labels."""
        g = cycle_graph(4)
        old_index = g.node_index()
        h = g.relabeled({i: i + 10 for i in range(4)})
        new_index = h.node_index()
        assert new_index is not old_index
        assert new_index.nodes == (10, 11, 12, 13)
        assert all(v in new_index.index_of for v in h.nodes)
        # The original keeps its own index untouched.
        assert g.node_index() is old_index
        assert old_index.nodes == (0, 1, 2, 3)

    def test_subgraph_index_invalidated(self):
        g = wheel_graph(5)
        g.node_index()
        s = g.subgraph([0, 1, 2])
        assert s.node_index().nodes == (0, 1, 2)

    def test_remove_nodes_index_invalidated(self):
        d = oneway_ring(5)
        d.node_index()
        s = d.remove_nodes([4])
        assert s.node_index().nodes == (0, 1, 2, 3)


class TestNodeIndexDirections:
    def test_digraph_in_masks_differ_from_out(self):
        d = Digraph.from_arcs([(0, 1), (1, 2), (2, 0)])
        idx = d.node_index()
        assert idx.adj_masks[0] == 1 << 1   # 0 → 1
        assert idx.in_masks[0] == 1 << 2    # 2 → 0
        assert idx.in_neighbor_indices[1] == (0,)

    def test_graph_in_masks_alias_out_masks(self):
        idx = cycle_graph(4).node_index()
        assert idx.in_masks is idx.adj_masks
        assert idx.in_neighbor_indices is idx.neighbor_indices

    def test_walk_validates_forward_arcs_only(self):
        d = oneway_ring(4)
        idx = d.node_index()
        assert idx.walk((0, 1, 2)) is not None
        assert idx.walk((2, 1, 0)) is None

    def test_index_pickles_with_directions(self):
        d = oneway_ring(5, 2)
        idx = d.node_index()
        revived = pickle.loads(pickle.dumps(d)).node_index()
        assert revived == idx
        assert revived.in_masks == idx.in_masks

    def test_symmetric_lift_index_equates_directions(self):
        g = wheel_graph(5)
        lifted = g.to_digraph().node_index()
        assert lifted.in_masks == lifted.adj_masks
        assert lifted.adj_masks == g.node_index().adj_masks


class TestFamilies:
    def test_oneway_ring_shape(self):
        d = oneway_ring(9, 2)
        assert d.n == 9 and d.arc_count == 18
        assert d.has_arc(0, 1) and d.has_arc(0, 2)
        assert not d.has_arc(1, 0)

    def test_oneway_ring_validation(self):
        with pytest.raises(ValueError):
            oneway_ring(2)
        with pytest.raises(ValueError):
            oneway_ring(5, 0)
        with pytest.raises(ValueError):
            oneway_ring(5, 5)

    def test_random_digraph_seeded(self):
        a = random_digraph(8, 0.3, 7)
        b = random_digraph(8, 0.3, 7)
        c = random_digraph(8, 0.3, 8)
        assert a == b
        assert a != c

    def test_random_digraph_validation(self):
        with pytest.raises(ValueError):
            random_digraph(0, 0.5)
        with pytest.raises(ValueError):
            random_digraph(5, 1.5)

    def test_random_digraph_extremes(self):
        assert random_digraph(5, 0.0).arc_count == 0
        full = random_digraph(5, 1.0)
        assert full.arc_count == 5 * 4
