"""Set neighborhoods and cut partitions (Theorem 6.1(iii) machinery)."""

import pytest

from repro.graphs import (
    Graph,
    GraphError,
    complete_graph,
    cut_partition,
    cycle_graph,
    every_small_set_has_neighbors,
    find_cut_partition,
    hybrid_neighborhood_deficient_graph,
    min_set_neighborhood,
    neighbors_of_set,
    split_into_parts,
    star_graph,
)


class TestNeighborhoods:
    def test_single_node(self, c5):
        assert neighbors_of_set(c5, [0]) == {1, 4}

    def test_set_excludes_itself(self, c5):
        assert neighbors_of_set(c5, [0, 1]) == {2, 4}

    def test_whole_graph_has_no_neighbors(self, c5):
        assert neighbors_of_set(c5, range(5)) == set()

    def test_min_set_neighborhood_singleton(self):
        g = star_graph(4)
        value, witness = min_set_neighborhood(g, 1)
        assert value == 1
        assert witness != {0}  # a leaf, not the hub

    def test_min_set_neighborhood_pairs(self, c5):
        value, witness = min_set_neighborhood(c5, 2)
        # Singletons and adjacent pairs both expose exactly two neighbors;
        # the first minimizer found (a singleton) wins.
        assert value == 2
        assert 1 <= len(witness) <= 2

    def test_min_over_sizes_prefers_smaller_witness_value(self):
        g = complete_graph(5)
        value, witness = min_set_neighborhood(g, 2)
        assert value == 3  # removing |S|=2 from K5 leaves 3 neighbors
        assert len(witness) == 2

    def test_invalid_max_size(self, c5):
        with pytest.raises(GraphError):
            min_set_neighborhood(c5, 0)

    def test_every_small_set_threshold(self):
        g = hybrid_neighborhood_deficient_graph(f=2, t=2)
        assert not every_small_set_has_neighbors(g, 2, 2 * 2 + 1)
        assert every_small_set_has_neighbors(complete_graph(6), 2, 4)


class TestCutPartition:
    def test_partition_shape(self):
        g = cycle_graph(6)
        a, b = cut_partition(g, {0, 3})
        assert a | b == {1, 2, 4, 5}
        assert not a & b
        # No edge between the halves.
        for x in a:
            assert not g.neighbors(x) & b

    def test_non_cut_rejected(self, c5):
        with pytest.raises(GraphError):
            cut_partition(c5, {0})

    def test_cut_removing_everything_rejected(self):
        with pytest.raises(GraphError):
            cut_partition(cycle_graph(3), {0, 1, 2})

    def test_find_cut_partition_respects_bound(self):
        g = cycle_graph(6)
        parts = find_cut_partition(g, 2)
        assert parts is not None
        a, b, c = parts
        assert len(c) == 2
        assert a and b

    def test_find_cut_partition_none_when_too_connected(self):
        assert find_cut_partition(complete_graph(5), 3) is None
        assert find_cut_partition(cycle_graph(5), 1) is None

    def test_find_cut_partition_disconnected(self):
        g = Graph(nodes=[0, 1])
        a, b, c = find_cut_partition(g, 0)
        assert c == set()
        assert a | b == {0, 1}


class TestSplitIntoParts:
    def test_exact_split(self):
        parts = split_into_parts([3, 1, 2], [1, 2])
        assert parts == [[1], [2, 3]]

    def test_empty_parts_allowed(self):
        parts = split_into_parts([1], [0, 2, 3])
        assert parts == [[], [1], []]

    def test_overflow_rejected(self):
        with pytest.raises(GraphError):
            split_into_parts([1, 2, 3], [1, 1])

    def test_deterministic(self):
        a = split_into_parts(["b", "a", "c"], [2, 1])
        b = split_into_parts(["c", "b", "a"], [2, 1])
        assert a == b
