"""Every graph family delivers its designed degree/connectivity."""

import pytest

from repro.graphs import (
    GraphError,
    circulant_graph,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    degree_deficient_graph,
    grid_graph,
    harary_graph,
    hybrid_neighborhood_deficient_graph,
    low_connectivity_graph,
    min_set_neighborhood,
    paper_figure_1a,
    paper_figure_1b,
    gnp_supercritical_graph,
    path_graph,
    petersen_graph,
    random_connected_graph,
    random_regular_graph,
    star_graph,
    tight_local_broadcast_graph,
    vertex_connectivity,
    wheel_graph,
)
from repro.consensus import check_local_broadcast


class TestClassicalFamilies:
    def test_path(self):
        g = path_graph(5)
        assert g.n == 5 and g.edge_count == 4
        assert g.min_degree() == 1

    def test_cycle(self):
        g = cycle_graph(7)
        assert g.edge_count == 7
        assert g.min_degree() == g.max_degree() == 2

    def test_complete(self):
        g = complete_graph(6)
        assert g.edge_count == 15
        assert vertex_connectivity(g) == 5

    def test_complete_bipartite(self):
        g = complete_bipartite(2, 3)
        assert g.edge_count == 6
        assert vertex_connectivity(g) == 2

    def test_star(self):
        g = star_graph(5)
        assert g.degree(0) == 5
        assert vertex_connectivity(g) == 1

    def test_wheel(self):
        g = wheel_graph(6)
        assert g.degree(0) == 5
        assert vertex_connectivity(g) == 3

    def test_circulant_regularity(self):
        g = circulant_graph(9, [1, 2])
        assert g.min_degree() == g.max_degree() == 4
        assert vertex_connectivity(g) == 4

    def test_circulant_bad_offset(self):
        with pytest.raises(GraphError):
            circulant_graph(6, [4])

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.min_degree() == 2
        assert vertex_connectivity(g) == 2

    def test_petersen(self):
        g = petersen_graph()
        assert g.n == 10 and g.edge_count == 15
        assert vertex_connectivity(g) == 3

    @pytest.mark.parametrize("k,n", [(2, 6), (3, 7), (4, 10), (5, 9)])
    def test_harary_minimum_edges(self, k, n):
        g = harary_graph(k, n)
        assert vertex_connectivity(g) == k
        assert g.edge_count == (k * n + 1) // 2

    def test_harary_bad_args(self):
        with pytest.raises(GraphError):
            harary_graph(5, 5)
        with pytest.raises(GraphError):
            harary_graph(0, 5)


class TestPaperFigures:
    def test_figure_1a_is_tight_for_f1(self):
        g = paper_figure_1a()
        assert g.n == 5
        report = check_local_broadcast(g, 1)
        assert report.feasible
        # Tight: both conditions hold with zero margin.
        assert all(c.margin == 0 for c in report.clauses if "degree" in c.name)
        assert not check_local_broadcast(g, 2).feasible

    def test_figure_1b_is_tight_for_f2(self):
        g = paper_figure_1b()
        report = check_local_broadcast(g, 2)
        assert report.feasible
        assert g.min_degree() == 4
        assert vertex_connectivity(g) == 4
        assert not check_local_broadcast(g, 3).feasible

    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_tight_family_satisfies_conditions(self, f):
        g = tight_local_broadcast_graph(f)
        assert check_local_broadcast(g, f).feasible

    def test_tight_family_needs_enough_nodes(self):
        with pytest.raises(GraphError):
            tight_local_broadcast_graph(2, n=4)


class TestDeficientFamilies:
    @pytest.mark.parametrize("f", [1, 2])
    def test_degree_deficient(self, f):
        g = degree_deficient_graph(f)
        assert g.min_degree() == 2 * f - 1
        assert not check_local_broadcast(g, f).feasible

    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_low_connectivity(self, f):
        g = low_connectivity_graph(f)
        assert vertex_connectivity(g) == (3 * f) // 2
        assert g.min_degree() >= 2 * f
        report = check_local_broadcast(g, f)
        failing = [c.name for c in report.failing()]
        assert failing == ["connectivity >= floor(3f/2) + 1"]

    @pytest.mark.parametrize("f,t", [(1, 1), (2, 1), (2, 2)])
    def test_hybrid_neighborhood_deficient(self, f, t):
        g = hybrid_neighborhood_deficient_graph(f, t)
        value, witness = min_set_neighborhood(g, t)
        assert value == 2 * f
        assert len(witness) <= t


class TestRandomGraphs:
    def test_connected_and_deterministic(self):
        g1 = random_connected_graph(10, 5, seed=42)
        g2 = random_connected_graph(10, 5, seed=42)
        assert g1 == g2
        assert g1.is_connected()

    def test_different_seeds_differ(self):
        g1 = random_connected_graph(10, 8, seed=1)
        g2 = random_connected_graph(10, 8, seed=2)
        assert g1 != g2

    def test_edge_budget(self):
        g = random_connected_graph(8, 3, seed=0)
        assert g.edge_count == 7 + 3


class TestRandomRegular:
    def test_regular_and_deterministic(self):
        g1 = random_regular_graph(10, 4, seed=7)
        g2 = random_regular_graph(10, 4, seed=7)
        assert g1 == g2
        assert all(g1.degree(v) == 4 for v in g1.nodes)
        assert g1.n == 10

    def test_different_seeds_differ(self):
        assert random_regular_graph(12, 4, seed=1) != random_regular_graph(
            12, 4, seed=2
        )

    def test_odd_stub_count_rejected(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 3, seed=0)

    def test_degree_bounds_enforced(self):
        with pytest.raises(GraphError):
            random_regular_graph(4, 4, seed=0)

    def test_feasible_instances_exist(self):
        """Degree-4 random regular graphs routinely satisfy the f = 1
        local-broadcast conditions — the sweep workload they exist for."""
        g = random_regular_graph(10, 4, seed=7)
        assert check_local_broadcast(g, 1).feasible


class TestGnpSupercritical:
    def test_deterministic(self):
        assert gnp_supercritical_graph(20, 2.0, seed=5) == (
            gnp_supercritical_graph(20, 2.0, seed=5)
        )

    def test_different_seeds_differ(self):
        assert gnp_supercritical_graph(20, 2.0, seed=5) != (
            gnp_supercritical_graph(20, 2.0, seed=6)
        )

    def test_subcritical_rejected(self):
        with pytest.raises(GraphError):
            gnp_supercritical_graph(20, 1.0, seed=0)

    def test_giant_component_emerges(self):
        from repro.graphs import Graph

        g = gnp_supercritical_graph(60, 3.0, seed=2)
        components = g.connected_components()
        assert max(len(c) for c in components) > 60 // 2

    def test_dense_regime_caps_probability(self):
        g = gnp_supercritical_graph(4, 8.0, seed=0)  # p capped at 1
        assert g.edge_count == 6
