"""Unit and property tests for the canonical integer node index."""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    NodeIndex,
    cycle_graph,
    is_path,
    paper_figure_1a,
    petersen_graph,
    random_connected_graph,
    wheel_graph,
)


class TestConstruction:
    def test_nodes_are_repr_sorted(self):
        g = Graph.from_edges([("b", "a"), ("a", "c"), ("c", "b")])
        idx = g.node_index()
        assert idx.nodes == tuple(sorted(g.nodes, key=repr))
        assert idx.index_of == {v: i for i, v in enumerate(idx.nodes)}
        assert idx.n == g.n
        assert idx.all_mask == (1 << g.n) - 1

    def test_adj_masks_match_neighbors(self):
        g = petersen_graph()
        idx = g.node_index()
        for i, v in enumerate(idx.nodes):
            assert idx.members(idx.adj_masks[i]) == tuple(
                sorted(g.neighbors(v), key=repr)
            )
            assert idx.neighbor_indices[i] == tuple(
                sorted(idx.index_of[u] for u in g.neighbors(v))
            )

    def test_shift_covers_every_chunk(self):
        for g in (cycle_graph(3), wheel_graph(6), petersen_graph()):
            idx = g.node_index()
            # Each packed chunk holds index + 1 <= n, which must fit.
            assert idx.n < (1 << idx.shift)

    def test_lazily_attached_and_cached(self):
        g = cycle_graph(5)
        assert g.node_index() is g.node_index()

    def test_equality_tracks_structure(self):
        assert cycle_graph(4).node_index() == cycle_graph(4).node_index()
        assert cycle_graph(4).node_index() != cycle_graph(5).node_index()
        assert hash(cycle_graph(4).node_index()) == hash(
            cycle_graph(4).node_index()
        )


class TestSetRepresentation:
    def test_bit_and_mask_of(self):
        idx = cycle_graph(4).node_index()
        assert idx.bit(2) == 1 << idx.index_of[2]
        assert idx.mask_of([0, 2]) == idx.bit(0) | idx.bit(2)
        assert idx.mask_of([]) == 0

    def test_bit_unknown_raises(self):
        idx = cycle_graph(4).node_index()
        try:
            idx.bit(99)
        except KeyError:
            pass
        else:  # pragma: no cover - defends the strictness contract
            raise AssertionError("bit() must raise on unknown labels")

    def test_mask_of_lenient_vs_strict(self):
        idx = cycle_graph(4).node_index()
        assert idx.mask_of([0, 99]) == idx.bit(0)
        assert idx.mask_of_strict([0, 99]) is None
        assert idx.mask_of_strict([0, 1]) == idx.bit(0) | idx.bit(1)

    def test_members_round_trip(self):
        idx = paper_figure_1a().node_index()
        for subset in ([], [idx.nodes[0]], list(idx.nodes[1:4]), list(idx.nodes)):
            assert idx.members(idx.mask_of(subset)) == tuple(
                sorted(subset, key=repr)
            )


class TestWalk:
    def test_empty_path_is_valid_prefix(self):
        assert cycle_graph(4).node_index().walk(()) == (0, 0, -1)

    def test_valid_path(self):
        g = cycle_graph(5)
        idx = g.node_index()
        mask, packed, last = idx.walk((0, 1, 2))
        assert mask == idx.mask_of([0, 1, 2])
        assert last == idx.index_of[2]
        assert packed != 0

    def test_rejects_repeats_offgraph_nonedges(self):
        idx = cycle_graph(5).node_index()
        assert idx.walk((0, 1, 0)) is None
        assert idx.walk((0, 99)) is None
        assert idx.walk((0, 2)) is None  # not an edge of C5

    def test_interior_mask(self):
        g = cycle_graph(5)
        idx = g.node_index()
        assert idx.interior_mask((0, 1, 2, 3)) == idx.mask_of([1, 2])
        assert idx.interior_mask((0, 1)) == 0

    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 100_000), st.lists(st.integers(0, 8), max_size=6))
    def test_walk_agrees_with_is_path(self, seed, labels):
        """walk() validates exactly the sequences is_path accepts, and on
        acceptance its mask equals the label-set mask."""
        g = random_connected_graph(n=7, extra_edges=seed % 10, seed=seed)
        idx = g.node_index()
        path = tuple(labels)
        info = idx.walk(path)
        if path and is_path(g, path):
            assert info is not None
            mask, packed, last = info
            assert mask == idx.mask_of(path)
            assert last == idx.index_of[path[-1]]
        elif path:
            # is_path rejects, or the sequence repeats a node (is_path on
            # a single node is True; walk agrees there).
            if len(path) == 1 and path[0] in g.nodes:
                assert info == (idx.bit(path[0]), idx.index_of[path[0]] + 1,
                                idx.index_of[path[0]])
            else:
                assert info is None

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 100_000))
    def test_packed_encoding_injective(self, seed):
        """Distinct simple paths never share a packed encoding — the
        rule-(ii) slot-key soundness property."""
        g = random_connected_graph(n=6, extra_edges=seed % 8, seed=seed)
        idx = g.node_index()
        from repro.graphs import all_simple_paths

        seen = {}
        nodes = sorted(g.nodes, key=repr)
        for u in nodes:
            for v in nodes:
                if u == v:
                    continue
                for path in all_simple_paths(g, u, v):
                    info = idx.walk(path)
                    assert info is not None
                    packed = info[1]
                    assert seen.setdefault(packed, path) == path
        # Sanity: the sweep saw more than one path.
        assert len(seen) > 1


class TestPickling:
    def test_node_index_round_trip(self):
        idx = petersen_graph().node_index()
        clone = pickle.loads(pickle.dumps(idx))
        assert clone == idx
        assert clone.index_of == idx.index_of
        assert clone.neighbor_indices == idx.neighbor_indices
        assert clone.shift == idx.shift

    def test_graph_ships_warm_index(self):
        g = wheel_graph(6)
        g.node_index()  # force construction before pickling
        clone = pickle.loads(pickle.dumps(g))
        assert clone._index is not None
        assert clone._index == g.node_index()
        assert clone.node_index() is clone._index

    def test_cold_graph_pickles_without_index(self):
        g = wheel_graph(6)
        clone = pickle.loads(pickle.dumps(g))
        assert clone == g
        assert clone.node_index() == NodeIndex(g)
