"""Dinic's max-flow against the retained Edmonds–Karp reference.

The connectivity layer swapped its augmenting-path engine for Dinic's
algorithm; the old Edmonds–Karp loop survives as
``_FlowNetwork.max_flow_reference`` purely so this suite can
cross-validate values, min cuts, and path decompositions on the families
the consensus experiments actually use.
"""

from itertools import combinations

import pytest

from repro.graphs import (
    circulant_graph,
    complete_graph,
    cycle_graph,
    gnp_supercritical_graph,
    grid_graph,
    harary_graph,
    local_connectivity,
    max_disjoint_paths,
    max_set_disjoint_paths,
    minimum_vertex_cut,
    path_graph,
    petersen_graph,
    random_regular_graph,
    vertex_connectivity,
)
from repro.graphs.connectivity import _build_split_network

FAMILIES = [
    ("harary_3_8", harary_graph(3, 8)),
    ("harary_4_10", harary_graph(4, 10)),
    ("circulant_9_12", circulant_graph(9, [1, 2])),
    ("petersen", petersen_graph()),
    ("complete_5", complete_graph(5)),
    ("grid_3x3", grid_graph(3, 3)),
    ("random_regular", random_regular_graph(10, 4, seed=5)),
    ("gnp", gnp_supercritical_graph(12, 2.5, seed=3)),
]


@pytest.mark.parametrize("name,graph", FAMILIES, ids=[n for n, _ in FAMILIES])
class TestDinicMatchesEdmondsKarp:
    def test_all_pairs_flow_values_match(self, name, graph):
        for u, v in combinations(sorted(graph.nodes, key=repr), 2):
            net_dinic = _build_split_network(graph, [u], v)
            net_ref = _build_split_network(graph, [u], v)
            value, _ = net_dinic.max_flow()
            ref_value, _ = net_ref.max_flow_reference()
            assert value == ref_value, (name, u, v)

    def test_set_flow_values_match(self, name, graph):
        nodes = sorted(graph.nodes, key=repr)
        sink = nodes[-1]
        sources = nodes[: min(4, len(nodes) - 1)]
        net_dinic = _build_split_network(graph, sources, sink)
        net_ref = _build_split_network(graph, sources, sink)
        assert net_dinic.max_flow()[0] == net_ref.max_flow_reference()[0]


class TestConnectivityStillCorrect:
    """Known κ values survive the engine swap end-to-end."""

    KNOWN_KAPPA = [
        (harary_graph(3, 8), 3),
        (harary_graph(4, 10), 4),
        (circulant_graph(9, [1, 2]), 4),
        (petersen_graph(), 3),
        (complete_graph(5), 4),
        (cycle_graph(7), 2),
        (grid_graph(3, 4), 2),
    ]

    @pytest.mark.parametrize("graph,kappa", KNOWN_KAPPA)
    def test_vertex_connectivity(self, graph, kappa):
        assert vertex_connectivity(graph) == kappa

    @pytest.mark.parametrize("graph,kappa", [
        (harary_graph(3, 8), 3),
        (petersen_graph(), 3),
        (grid_graph(3, 3), 2),
    ])
    def test_minimum_cut_disconnects(self, graph, kappa):
        cut = minimum_vertex_cut(graph)
        assert len(cut) == kappa
        assert not graph.remove_nodes(cut).is_connected()

    def test_disjoint_path_decomposition_valid(self):
        graph = petersen_graph()
        value, paths = max_disjoint_paths(graph, 0, 7, want_paths=True)
        assert value == 3 == len(paths)
        interiors = [set(p[1:-1]) for p in paths]
        for a, b in combinations(interiors, 2):
            assert not (a & b)
        for path in paths:
            assert path[0] == 0 and path[-1] == 7
            assert all(graph.has_edge(x, y) for x, y in zip(path, path[1:]))

    def test_fan_lemma_paths_still_disjoint(self):
        graph = harary_graph(4, 10)
        value, paths = max_set_disjoint_paths(
            graph, [0, 1, 2, 3], 7, want_paths=True
        )
        assert value == 4
        seen = set()
        for path in paths:
            body = set(path[:-1])
            assert not (body & seen)
            seen |= body


class TestLongAugmentingPaths:
    """The blocking-flow DFS is iterative: augmenting paths of Θ(n)
    nodes must not hit Python's recursion limit."""

    def test_long_path_graph(self):
        assert vertex_connectivity(path_graph(600)) == 1

    def test_long_cycle_paths(self):
        graph = cycle_graph(800)
        value, paths = max_disjoint_paths(graph, 0, 400, want_paths=True)
        assert value == 2
        assert sorted(len(p) for p in paths) == [401, 401]


class TestDeterminism:
    """The flow engine must be a pure function of the graph — the
    cross-process sweep relies on it."""

    def test_repeated_runs_identical(self):
        graph = harary_graph(3, 9)
        first = max_disjoint_paths(graph, 0, 4, want_paths=True)
        second = max_disjoint_paths(graph, 0, 4, want_paths=True)
        assert first == second

    def test_string_labeled_graph_edges_sorted(self):
        """Edge iteration order is repr-sorted even for string labels
        (the covering-graph naming scheme)."""
        graph = cycle_graph(6).relabeled({i: f"u{i}@0" for i in range(6)})
        edges = list(graph.edges())
        assert edges == sorted(edges, key=lambda e: (repr(e[0]), repr(e[1])))

    def test_string_labeled_flow_deterministic(self):
        graph = cycle_graph(6).relabeled({i: f"u{i}@1" for i in range(6)})
        a = max_disjoint_paths(graph, "u0@1", "u3@1", want_paths=True)
        b = max_disjoint_paths(graph, "u0@1", "u3@1", want_paths=True)
        assert a == b
