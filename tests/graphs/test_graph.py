"""Unit tests for the core Graph type."""

import pytest

from repro.graphs import Graph, GraphError, cycle_graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph()
        assert g.n == 0
        assert g.edge_count == 0
        assert list(g.edges()) == []

    def test_nodes_without_edges(self):
        g = Graph(nodes=[1, 2, 3])
        assert g.n == 3
        assert g.edge_count == 0
        assert g.degree(1) == 0

    def test_edges_imply_nodes(self):
        g = Graph.from_edges([(1, 2), (2, 3)])
        assert g.nodes == {1, 2, 3}
        assert g.edge_count == 2

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph.from_edges([(1, 1)])

    def test_parallel_edges_collapse(self):
        g = Graph.from_edges([(1, 2), (2, 1), (1, 2)])
        assert g.edge_count == 1

    def test_from_adjacency(self):
        g = Graph.from_adjacency({0: [1, 2], 1: [0], 2: []})
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 2)
        assert g.edge_count == 2

    def test_string_and_tuple_nodes(self):
        g = Graph.from_edges([("a", ("b", 1))])
        assert g.has_edge("a", ("b", 1))


class TestAccessors:
    def test_neighbors(self):
        g = cycle_graph(4)
        assert g.neighbors(0) == {1, 3}

    def test_neighbors_unknown_node(self):
        with pytest.raises(GraphError):
            cycle_graph(4).neighbors(99)

    def test_degree_and_min_max(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(1) == 1
        assert g.min_degree() == 1
        assert g.max_degree() == 3

    def test_min_degree_empty(self):
        assert Graph().min_degree() == 0

    def test_contains_len_iter(self):
        g = cycle_graph(3)
        assert 0 in g
        assert 99 not in g
        assert len(g) == 3
        assert sorted(g) == [0, 1, 2]

    def test_edges_listed_once(self):
        g = cycle_graph(5)
        edges = list(g.edges())
        assert len(edges) == 5
        normalized = {frozenset(e) for e in edges}
        assert len(normalized) == 5

    def test_equality_and_hash(self):
        g1 = cycle_graph(4)
        g2 = Graph(range(4), [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != cycle_graph(5)


class TestDerivedGraphs:
    def test_subgraph(self):
        g = cycle_graph(5)
        sub = g.subgraph([0, 1, 2])
        assert sub.nodes == {0, 1, 2}
        assert sub.edge_count == 2

    def test_remove_nodes(self):
        g = cycle_graph(5)
        h = g.remove_nodes([0])
        assert h.n == 4
        assert not h.has_node(0)
        assert h.edge_count == 3

    def test_add_edges_idempotent(self):
        g = cycle_graph(4)
        h = g.add_edges([(0, 2), (0, 1)])
        assert h.edge_count == 5
        assert h.has_edge(0, 2)

    def test_add_nodes(self):
        g = cycle_graph(3).add_nodes(["x"])
        assert g.has_node("x")
        assert g.degree("x") == 0

    def test_relabeled(self):
        g = cycle_graph(3).relabeled({0: "a"})
        assert g.has_edge("a", 1)
        assert not g.has_node(0)

    def test_relabeled_collision_rejected(self):
        with pytest.raises(GraphError):
            cycle_graph(3).relabeled({0: 1})

    def test_original_untouched_by_derivation(self):
        g = cycle_graph(4)
        g.remove_nodes([0])
        assert g.n == 4


class TestTraversal:
    def test_bfs_reachable(self):
        g = cycle_graph(6)
        assert g.bfs_reachable(0) == set(range(6))

    def test_bfs_with_forbidden(self):
        g = cycle_graph(6)
        reach = g.bfs_reachable(0, forbidden=[1, 5])
        assert reach == {0}

    def test_bfs_forbidden_source_rejected(self):
        with pytest.raises(GraphError):
            cycle_graph(4).bfs_reachable(0, forbidden=[0])

    def test_is_connected(self):
        assert cycle_graph(5).is_connected()
        assert not Graph(nodes=[0, 1]).is_connected()
        assert Graph().is_connected()
        assert Graph(nodes=[7]).is_connected()

    def test_connected_components(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        comps = sorted(map(sorted, g.connected_components()))
        assert comps == [[0, 1], [2, 3]]

    def test_shortest_path(self):
        g = cycle_graph(6)
        path = g.shortest_path(0, 3)
        assert path is not None
        assert len(path) == 4
        assert path[0] == 0 and path[-1] == 3

    def test_shortest_path_trivial(self):
        assert cycle_graph(4).shortest_path(2, 2) == (2,)

    def test_shortest_path_disconnected(self):
        g = Graph(nodes=[0, 1])
        assert g.shortest_path(0, 1) is None

    def test_shortest_path_unknown_node(self):
        with pytest.raises(GraphError):
            cycle_graph(3).shortest_path(0, 42)


class TestSortedTraversalDeterminism:
    """Traversals iterate repr-sorted adjacency by construction, so their
    results never depend on PYTHONHASHSEED (string-labeled nodes would
    otherwise leak frozenset iteration order)."""

    DIAMOND = [("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")]

    def test_sorted_neighbors_order_and_cache(self):
        g = Graph.from_edges(self.DIAMOND)
        assert g.sorted_neighbors("s") == ("a", "b")
        assert g.sorted_neighbors("s") is g.sorted_neighbors("s")  # cached

    def test_sorted_neighbors_unknown_node(self):
        with pytest.raises(GraphError):
            Graph.from_edges(self.DIAMOND).sorted_neighbors("zz")

    def test_shortest_path_prefers_repr_smallest_parent(self):
        g = Graph.from_edges(self.DIAMOND)
        # Two equal-length s-t paths exist; BFS over sorted adjacency
        # must always discover t via "a".
        assert g.shortest_path("s", "t") == ("s", "a", "t")

    def test_traversals_stable_across_subprocess_hash_seeds(self):
        import subprocess
        import sys

        code = (
            "from repro.graphs import Graph\n"
            "g = Graph.from_edges(%r)\n"
            "print(g.shortest_path('s', 't'))\n"
            "print(sorted(g.bfs_reachable('s'), key=repr))\n"
        ) % (self.DIAMOND,)
        outputs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": str(seed)},
            ).stdout
            for seed in (0, 1, 42)
        }
        assert len(outputs) == 1
