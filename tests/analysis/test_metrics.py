"""Cost models vs measured traces."""

from repro.analysis import (
    expected_flood_deliveries,
    phase_count_table,
    predicted_costs,
)
from repro.consensus import algorithm1_factory, algorithm2_factory, run_consensus
from repro.graphs import complete_graph, cycle_graph, paper_figure_1a


class TestPredictions:
    def test_costs_for_c5(self):
        cm = predicted_costs(paper_figure_1a(), 1)
        assert cm.phases == 6
        assert cm.rounds_algorithm1 == 30
        assert cm.rounds_algorithm2 == 15
        assert cm.round_blowup == 2.0

    def test_costs_hybrid(self):
        cm = predicted_costs(complete_graph(4), 1, t=1)
        assert cm.phases == 9

    def test_phase_count_table_monotone(self):
        table = phase_count_table(10, 4)
        values = list(table.values())
        assert values == sorted(values)
        assert table[0] == 1
        assert table[1] == 11

    def test_exponential_blowup_visible(self):
        table = phase_count_table(20, 5)
        assert table[5] > 20_000


class TestMeasuredAgainstPredicted:
    def test_algorithm1_rounds_match(self):
        g = paper_figure_1a()
        cm = predicted_costs(g, 1)
        res = run_consensus(g, algorithm1_factory(g, 1), {v: v % 2 for v in g.nodes}, f=1)
        assert res.rounds == cm.rounds_algorithm1

    def test_algorithm2_rounds_within_3n(self):
        g = cycle_graph(4)
        cm = predicted_costs(g, 1)
        res = run_consensus(g, algorithm2_factory(g, 1), {v: 0 for v in g.nodes}, f=1)
        assert res.rounds <= cm.rounds_algorithm2

    def test_flood_deliveries_formula(self):
        g = cycle_graph(4)
        # Per pair: 2 simple paths; 12 ordered pairs; plus 4 trivial paths.
        assert expected_flood_deliveries(g) == 12 * 2 + 4

    def test_flood_deliveries_match_fault_free_phase(self):
        """In a fault-free Algorithm 1 run, each phase accepts exactly
        the predicted number of messages (all simple paths deliver)."""
        from repro.consensus import Algorithm1Protocol
        from repro.net import SynchronousNetwork, local_broadcast_model

        g = cycle_graph(4)
        protos = {v: Algorithm1Protocol(g, v, 1, v % 2) for v in g.nodes}
        net = SynchronousNetwork(g, protos, local_broadcast_model())
        net.run(g.n)  # exactly one phase
        delivered = sum(len(p._flood.delivered) for p in protos.values())
        assert delivered == expected_flood_deliveries(g)
