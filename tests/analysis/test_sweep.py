"""Sweep driver mechanics."""

from repro.analysis import consensus_sweep, fault_subsets, input_patterns
from repro.consensus import algorithm1_factory
from repro.graphs import cycle_graph
from repro.net import SilentAdversary, TamperForwardAdversary


class TestInputPatterns:
    def test_patterns_cover_graph(self, c5):
        patterns = input_patterns(c5)
        assert set(patterns) == {"all-zero", "all-one", "alternating", "split"}
        for assignment in patterns.values():
            assert set(assignment) == c5.nodes
            assert set(assignment.values()) <= {0, 1}

    def test_split_is_balanced(self, c5):
        split = input_patterns(c5)["split"]
        assert sorted(split.values()) == [0, 0, 1, 1, 1]


class TestFaultSubsets:
    def test_sizes_respected(self, c5):
        subsets = fault_subsets(c5, 2)
        assert all(1 <= len(s) <= 2 for s in subsets)
        assert len(subsets) == 10 + 5

    def test_include_empty(self, c5):
        subsets = fault_subsets(c5, 1, include_empty=True)
        assert () in subsets

    def test_limit_is_deterministic(self, c5):
        a = fault_subsets(c5, 2, limit=4, seed=1)
        b = fault_subsets(c5, 2, limit=4, seed=1)
        assert a == b and len(a) == 4
        c = fault_subsets(c5, 2, limit=4, seed=2)
        assert a != c

    def test_largest_subsets_first_without_limit(self, c5):
        subsets = fault_subsets(c5, 2)
        assert len(subsets[0]) == 2


class TestConsensusSweep:
    def test_sweep_shape_and_verdict(self, c4):
        report = consensus_sweep(
            c4,
            algorithm1_factory(c4, 1),
            f=1,
            adversaries=[SilentAdversary(), TamperForwardAdversary()],
            patterns=["all-one", "alternating"],
        )
        assert report.runs == 4 * 2 * 2
        assert report.all_consensus
        assert report.failures == []
        assert report.max_rounds > 0
        assert report.max_transmissions > 0

    def test_records_carry_metadata(self, c4):
        report = consensus_sweep(
            c4,
            algorithm1_factory(c4, 1),
            f=1,
            adversaries=[SilentAdversary()],
            patterns=["all-one"],
        )
        record = report.records[0]
        assert record.adversary == "silent"
        assert record.inputs_name == "all-one"
        assert record.decision == 1
