"""Requirement tables and trade-off curves."""

import pytest

from repro.analysis import (
    equivocation_price,
    feasibility_matrix,
    hybrid_tradeoff_table,
    requirement_table,
    smallest_feasible_complete_graph,
)
from repro.graphs import complete_graph, paper_figure_1a, paper_figure_1b


class TestRequirementTable:
    def test_headline_numbers(self):
        rows = {r.f: r for r in requirement_table(4)}
        # Paper Section 1: LB needs floor(3f/2)+1 connectivity vs 2f+1.
        assert rows[1].lb_connectivity == 2 and rows[1].p2p_connectivity == 3
        assert rows[2].lb_connectivity == 4 and rows[2].p2p_connectivity == 5
        assert rows[4].lb_connectivity == 7 and rows[4].p2p_connectivity == 9

    def test_min_nodes_2f1_vs_3f1(self):
        for row in requirement_table(4):
            assert row.lb_min_nodes == 2 * row.f + 1
            assert row.p2p_min_nodes == 3 * row.f + 1
            assert row.node_saving == row.f

    def test_savings_grow_with_f(self):
        rows = requirement_table(6)
        savings = [r.connectivity_saving for r in rows]
        assert savings == sorted(savings)
        assert savings[-1] >= 3

    def test_min_degree_column(self):
        assert all(r.lb_min_degree == 2 * r.f for r in requirement_table(3))


class TestSmallestComplete:
    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_lb_matches_rabin_ben_or(self, f):
        assert smallest_feasible_complete_graph(f, "local-broadcast") == 2 * f + 1

    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_p2p_matches_pease_shostak_lamport(self, f):
        assert smallest_feasible_complete_graph(f, "point-to-point") == 3 * f + 1


class TestHybridTradeoff:
    def test_endpoints(self):
        rows = hybrid_tradeoff_table(3)
        assert rows[0].connectivity_required == 5   # floor(9/2)+1
        assert rows[-1].connectivity_required == 7  # 2f+1

    def test_monotone_and_annotated(self):
        rows = hybrid_tradeoff_table(4)
        values = [r.connectivity_required for r in rows]
        assert values == sorted(values)
        assert rows[0].min_degree_requirement == 8
        assert rows[0].set_neighbor_requirement is None
        assert rows[1].set_neighbor_requirement == 9
        assert rows[1].min_degree_requirement is None

    def test_equivocation_price_starts_at_zero(self):
        price = equivocation_price(4)
        assert price[0] == (0, 0)
        assert price[-1] == (4, 2)  # 2f+1 - (floor(3f/2)+1) = ceil(f/2)
        extras = [p for _, p in price]
        assert extras == sorted(extras)


class TestFeasibilityMatrix:
    def test_figure_1a(self):
        matrix = feasibility_matrix(paper_figure_1a(), 2)
        f1 = matrix[0]
        assert f1[1] is True      # LB feasible at f=1
        assert f1[2] is False     # p2p not
        assert f1[3][0] is True   # hybrid t=0
        assert f1[3][1] is False  # hybrid t=1 needs kappa 3
        f2 = matrix[1]
        assert f2[1] is False

    def test_k7_tolerates_more_under_lb(self):
        matrix = feasibility_matrix(complete_graph(7), 3)
        by_f = {row[0]: row for row in matrix}
        assert by_f[3][1] is True    # LB: f = 3 on K7 (= K_{2f+1})
        assert by_f[3][2] is False   # p2p caps at f = 2
        assert by_f[2][2] is True
