"""Parallel sweep equivalence: same report, any worker count."""

import pytest

from repro.analysis import consensus_sweep, input_patterns, sweep_tasks
from repro.consensus import algorithm1_factory, algorithm2_factory
from repro.graphs import cycle_graph
from repro.net import SilentAdversary, TamperForwardAdversary
from repro.net.adversary import standard_adversaries


def small_sweep(graph, workers):
    return consensus_sweep(
        graph,
        algorithm1_factory(graph, 1),
        f=1,
        adversaries=[SilentAdversary(), TamperForwardAdversary()],
        patterns=["all-one", "alternating"],
        workers=workers,
    )


class TestEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_identical_to_serial(self, c4, workers):
        serial = small_sweep(c4, workers=1)
        parallel = small_sweep(c4, workers=workers)
        assert parallel.records == serial.records
        assert parallel.to_json() == serial.to_json()

    def test_full_battery_parallel(self, c4):
        """The standard battery (including the seeded RandomAdversary)
        is picklable and reproduces serial results across processes."""
        factory = algorithm2_factory(c4, 1)
        serial = consensus_sweep(
            c4, factory, f=1, patterns=["split"], seed=3, workers=1
        )
        parallel = consensus_sweep(
            c4, factory, f=1, patterns=["split"], seed=3, workers=2
        )
        assert parallel.records == serial.records

    def test_unpicklable_context_falls_back_to_serial(self, c4):
        trap = TamperForwardAdversary(selector=lambda m, s: True)
        with pytest.warns(RuntimeWarning, match="not picklable"):
            report = consensus_sweep(
                c4,
                algorithm1_factory(c4, 1),
                f=1,
                adversaries=[trap],
                patterns=["all-one"],
                workers=2,
            )
        serial = consensus_sweep(
            c4,
            algorithm1_factory(c4, 1),
            f=1,
            adversaries=[TamperForwardAdversary(selector=None)],
            patterns=["all-one"],
        )
        assert report.records == serial.records

    def test_workers_must_be_positive(self, c4):
        with pytest.raises(ValueError):
            small_sweep(c4, workers=0)


class TestWorkList:
    def test_canonical_order_and_indices(self, c4):
        adversaries = standard_adversaries(0)
        patterns = input_patterns(c4)
        tasks = sweep_tasks(c4, 1, adversaries, patterns)
        assert [t.index for t in tasks] == list(range(len(tasks)))
        assert len(tasks) == 4 * len(adversaries) * 4
        # Faults outermost, patterns innermost — the report's record order.
        assert tasks[0].faulty == tasks[len(patterns) - 1].faulty
        assert tasks[0].adversary_index == 0
        assert tasks[len(patterns)].adversary_index == 1

    def test_task_list_matches_report_order(self, c4):
        adversaries = [SilentAdversary()]
        patterns = {k: v for k, v in input_patterns(c4).items() if k == "all-one"}
        tasks = sweep_tasks(c4, 1, adversaries, patterns)
        report = consensus_sweep(
            c4,
            algorithm1_factory(c4, 1),
            f=1,
            adversaries=adversaries,
            patterns=["all-one"],
        )
        assert [t.faulty for t in tasks] == [r.faulty for r in report.records]


class TestReportSerialization:
    def test_to_dict_shape(self, c4):
        report = small_sweep(c4, workers=1)
        payload = report.to_dict()
        assert payload["runs"] == report.runs == len(payload["records"])
        assert payload["all_consensus"] is True
        assert payload["failures"] == 0
        record = payload["records"][0]
        assert set(record) == {
            "faulty", "adversary", "inputs_name", "consensus", "agreement",
            "validity", "rounds", "transmissions", "decision", "scheduler",
            "outcome",
        }
        assert record["scheduler"] == "sync"
        assert record["outcome"] == "decided"

    def test_json_round_trip(self, c4):
        import json

        report = small_sweep(c4, workers=1)
        decoded = json.loads(report.to_json())
        assert decoded["runs"] == report.runs

    def test_string_labeled_nodes_serialize(self):
        graph = cycle_graph(4).relabeled({i: f"n{i}" for i in range(4)})
        report = consensus_sweep(
            graph,
            algorithm1_factory(graph, 1),
            f=1,
            adversaries=[SilentAdversary()],
            patterns=["all-one"],
        )
        assert "n0" in report.to_json()
