"""Metered sweeps are deterministic content plus quarantined commentary.

The contract: a metered sweep's canonical payload — records (each with
its per-run metric snapshot), outcome tallies, and the merged registry —
is *byte-identical* at any worker count, because records are slotted by
task index and the merge folds them in slot order.  Wall-clock data
exists only under ``timings`` keys, and ``strip_timings`` removes every
one of them; un-metered sweeps keep their historical JSON shape exactly.
"""

import json

import pytest

from repro.analysis import consensus_sweep
from repro.analysis.metrics import expected_flood_deliveries
from repro.consensus import algorithm2_factory, run_consensus
from repro.graphs import wheel_graph
from repro.obs import render_key, strip_timings

PATTERNS = ["alternating", "split"]


def metered_sweep(workers):
    graph = wheel_graph(5)
    return consensus_sweep(
        graph,
        algorithm2_factory(graph, 1),
        f=1,
        patterns=PATTERNS,
        seed=7,
        workers=workers,
        metrics=True,
    )


class TestWorkerCountInvariance:
    @pytest.fixture(scope="class")
    def reports(self):
        return {w: metered_sweep(w) for w in (1, 2, 4)}

    def test_reports_byte_identical_minus_timings(self, reports):
        canonical = {
            w: json.dumps(
                strip_timings(r.to_dict()), sort_keys=True, default=repr
            )
            for w, r in reports.items()
        }
        assert canonical[2] == canonical[1]
        assert canonical[4] == canonical[1]

    def test_outcomes_and_merge_come_from_slot_order(self, reports):
        serial = reports[1]
        for w in (2, 4):
            assert reports[w].outcomes == serial.outcomes
            assert reports[w].metrics == serial.metrics
            assert [r.faulty for r in reports[w].records] == [
                r.faulty for r in serial.records
            ]

    def test_every_record_carries_a_snapshot(self, reports):
        for r in reports[1].records:
            assert r.metrics is not None
            assert r.metrics["counters"]

    def test_merge_aggregates_match_records(self, reports):
        report = reports[1]
        assert report.metrics["runs"] == report.runs
        assert report.metrics["counters"]["net.ticks"] == sum(
            r.metrics["counters"]["net.ticks"] for r in report.records
        )

    def test_timings_populated_and_quarantined(self, reports):
        for w, report in reports.items():
            timings = report.timings
            assert timings["workers"] == w
            assert timings["total_s"] > 0
            assert len(timings["tasks_s"]) == report.runs
            assert 0 < timings["utilization"] <= 1.0
            assert "timings" not in strip_timings(report.to_dict())


class TestUnmeteredShape:
    def test_unmetered_report_keeps_historical_shape(self):
        graph = wheel_graph(5)
        report = consensus_sweep(
            graph,
            algorithm2_factory(graph, 1),
            f=1,
            patterns=["alternating"],
            seed=7,
        )
        assert report.metrics is None
        assert report.timings is None
        payload = report.to_dict()
        assert "metrics" not in payload
        assert "timings" not in payload
        assert all("metrics" not in r for r in payload["records"])


class TestClosedForms:
    """Instrumentation lines up with ``analysis.metrics`` closed forms."""

    def test_phase1_accepted_matches_simple_path_count(self):
        graph = wheel_graph(5)
        inputs = {v: i % 2 for i, v in enumerate(sorted(graph.nodes))}
        result = run_consensus(
            graph, algorithm2_factory(graph, 1), inputs, f=1, metrics=True
        )
        assert result.consensus
        accepted = result.metrics["counters"][
            render_key("flood.accepted", {"phase": ("efficient", 1)})
        ]
        # Every delivery in a fault-free flood is one accepted simple
        # path; the n trivial own-paths are not deliveries.
        assert accepted == expected_flood_deliveries(graph) - graph.n

    def test_rounds_within_3n_budget(self):
        graph = wheel_graph(5)
        inputs = {v: i % 2 for i, v in enumerate(sorted(graph.nodes))}
        result = run_consensus(
            graph, algorithm2_factory(graph, 1), inputs, f=1, metrics=True
        )
        assert result.rounds <= 3 * graph.n
        assert result.metrics["counters"]["net.ticks"] == result.rounds
