"""Directed sweeps and flight recordings.

The directed axis must ride the existing determinism machinery: a
digraph sweep is byte-identical at any worker count, its records carry
``directed: true``, undirected report JSON keeps its historical bytes
(no ``directed`` key), and a digraph flight recording replays onto a
reconstructed ``Digraph`` — byte-identically.
"""

import json

import pytest

from repro.analysis import (
    SweepRecord,
    consensus_sweep,
    graph_from_flight,
    replay_flight,
)
from repro.consensus import algorithm2_factory, run_consensus
from repro.graphs import Digraph, Graph, cycle_graph, oneway_ring
from repro.net import SilentAdversary, TamperForwardAdversary
from repro.obs import strip_timings


def directed_sweep(workers, metrics=False):
    d = oneway_ring(9, 2)
    return consensus_sweep(
        d,
        algorithm2_factory(d, 1),
        f=1,
        adversaries=[SilentAdversary(), TamperForwardAdversary()],
        patterns=["all-one", "alternating"],
        fault_limit=4,
        workers=workers,
        metrics=metrics,
    )


class TestDirectedSweep:
    def test_oneway_9_2_decides(self):
        """The acceptance scenario: feasible in directed form (f = 1),
        and the sweep actually decides every run."""
        report = directed_sweep(workers=1)
        assert report.runs > 0
        assert report.all_consensus

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_identical_to_serial(self, workers):
        serial = directed_sweep(workers=1)
        parallel = directed_sweep(workers=workers)
        assert parallel.records == serial.records
        assert parallel.to_json() == serial.to_json()

    def test_metered_parallel_identical_minus_timings(self):
        serial = directed_sweep(workers=1, metrics=True)
        parallel = directed_sweep(workers=2, metrics=True)
        assert (strip_timings(serial.to_dict())
                == strip_timings(parallel.to_dict()))

    def test_records_carry_directed_flag(self):
        report = directed_sweep(workers=1)
        assert all(r.directed for r in report.records)
        payload = json.loads(report.to_json())
        assert all(rec["directed"] for rec in payload["records"])

    def test_undirected_records_keep_historical_shape(self):
        g = cycle_graph(4)
        report = consensus_sweep(
            g,
            algorithm2_factory(g, 1),
            f=1,
            adversaries=[SilentAdversary()],
            patterns=["all-one"],
            workers=1,
        )
        assert all(not r.directed for r in report.records)
        payload = json.loads(report.to_json())
        assert all("directed" not in rec for rec in payload["records"])

    def test_record_dataclass_default(self):
        rec = SweepRecord(
            faulty=(), adversary="silent", inputs_name="all-one",
            consensus=True, agreement=True, validity=True,
            rounds=3, transmissions=9, decision=1,
        )
        assert rec.directed is False


class TestDirectedFlight:
    def record(self):
        d = oneway_ring(9, 2)
        nodes = sorted(d.nodes, key=repr)
        result = run_consensus(
            d, algorithm2_factory(d, 1),
            {v: i % 2 for i, v in enumerate(nodes)},
            f=1, faulty=[0], adversary=TamperForwardAdversary(),
            flight=True,
        )
        assert result.flight is not None
        return result.flight

    def test_header_marks_directed_and_keeps_arcs(self):
        record = self.record()
        spec = record.header["graph"]
        assert spec["directed"] is True
        arcs = {(u, v) for u, v in spec["edges"]}
        assert (0, 1) in arcs and (1, 0) not in arcs

    def test_graph_from_flight_rebuilds_digraph(self):
        record = self.record()
        rebuilt = graph_from_flight(record.header)
        assert type(rebuilt) is Digraph
        assert rebuilt == oneway_ring(9, 2)

    def test_undirected_header_unchanged(self):
        g = cycle_graph(4)
        result = run_consensus(
            g, algorithm2_factory(g, 1), {v: 1 for v in g.nodes},
            f=1, flight=True,
        )
        spec = result.flight.header["graph"]
        assert "directed" not in spec
        rebuilt = graph_from_flight(result.flight.header)
        assert type(rebuilt) is Graph and rebuilt == g

    def test_directed_replay_byte_identical(self):
        record = self.record()
        outcome = replay_flight(record)
        assert outcome.identical, outcome.diff
