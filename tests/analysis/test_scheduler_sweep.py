"""The sweep's scheduler axis: canonical order, determinism, CLI flag."""

import json

import pytest

from repro.__main__ import main
from repro.analysis import consensus_sweep, input_patterns, sweep_tasks
from repro.consensus import algorithm1_factory
from repro.net import SchedulerSpec, SilentAdversary, TamperForwardAdversary

SEEDED = SchedulerSpec("seeded-async", seed=17, max_delay=3)
ADVERSARIAL = SchedulerSpec("adversarial", max_delay=3)


def axis_sweep(graph, schedulers, workers=1, adversaries=None):
    return consensus_sweep(
        graph,
        algorithm1_factory(graph, 1),
        f=1,
        adversaries=adversaries or [SilentAdversary(), TamperForwardAdversary()],
        patterns=["all-one", "split"],
        workers=workers,
        schedulers=schedulers,
    )


class TestAxis:
    def test_axis_multiplies_the_work_list(self, c4):
        base = axis_sweep(c4, schedulers=None)
        tripled = axis_sweep(c4, schedulers=[None, SEEDED, ADVERSARIAL])
        assert tripled.runs == 3 * base.runs
        names = [r.scheduler for r in tripled.records]
        assert set(names) == {"sync", "seeded-async", "adversarial"}

    def test_task_nesting_scheduler_between_faults_and_adversaries(self, c4):
        adversaries = [SilentAdversary(), TamperForwardAdversary()]
        patterns = input_patterns(c4)
        tasks = sweep_tasks(
            c4, 1, adversaries, patterns, schedulers=[None, SEEDED]
        )
        assert [t.index for t in tasks] == list(range(len(tasks)))
        per_fault = 2 * len(adversaries) * len(patterns)
        assert tasks[0].scheduler_index == 0
        # The second scheduler block starts after one full adversaries x
        # patterns block, still within the same fault set.
        block = len(adversaries) * len(patterns)
        assert tasks[block].scheduler_index == 1
        assert tasks[block].faulty == tasks[0].faulty
        assert tasks[per_fault].faulty != tasks[0].faulty

    def test_sync_and_lockstep_records_agree(self, c4):
        """The event-driven core under lockstep reproduces the classic
        engine record-for-record inside a sweep."""
        report = axis_sweep(c4, schedulers=[None, SchedulerSpec("lockstep")])
        by_scheduler = {"sync": [], "lockstep": []}
        for r in report.records:
            key = (r.faulty, r.adversary, r.inputs_name)
            by_scheduler[r.scheduler].append((key, r.consensus, r.agreement,
                                              r.validity, r.rounds,
                                              r.transmissions, r.decision))
        assert by_scheduler["sync"] == by_scheduler["lockstep"]

    def test_empty_axis_rejected(self, c4):
        with pytest.raises(ValueError):
            axis_sweep(c4, schedulers=[])


class TestDeterminism:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_async_axis_byte_identical_across_worker_counts(self, c4, workers):
        serial = axis_sweep(c4, schedulers=[SEEDED, ADVERSARIAL], workers=1)
        parallel = axis_sweep(
            c4, schedulers=[SEEDED, ADVERSARIAL], workers=workers
        )
        assert parallel.records == serial.records
        assert parallel.to_json() == serial.to_json()

    def test_seeded_axis_byte_identical_across_runs(self, c4):
        a = axis_sweep(c4, schedulers=[SEEDED])
        b = axis_sweep(c4, schedulers=[SEEDED])
        assert a.to_json() == b.to_json()


class TestChunkedSubmission:
    def test_chunking_covers_every_task_exactly_once(self, c4):
        from repro.analysis.sweep import _chunked
        from repro.net.adversary import standard_adversaries

        tasks = sweep_tasks(
            c4, 1, standard_adversaries(0), input_patterns(c4),
            schedulers=[None, SEEDED],
        )
        for n_workers in (1, 2, 3, 8, len(tasks), len(tasks) + 5):
            chunks = _chunked(tasks, n_workers)
            flat = [t for chunk in chunks for t in chunk]
            assert flat == tasks  # partition, canonical order preserved

    def test_full_battery_chunked_parallel_matches_serial(self, c4):
        """The real battery through the chunked pool (not one future per
        task) still lands every record in its canonical slot."""
        factory = algorithm1_factory(c4, 1)
        serial = consensus_sweep(
            c4, factory, f=1, patterns=["split"], seed=3, workers=1,
            schedulers=[None, SEEDED],
        )
        parallel = consensus_sweep(
            c4, factory, f=1, patterns=["split"], seed=3, workers=2,
            schedulers=[None, SEEDED],
        )
        assert parallel.records == serial.records


class TestCLI:
    def run_cli(self, capsys, extra):
        args = [
            "sweep", "--graph", "cycle:4", "--f", "1",
            "--patterns", "all-one,split", "--fault-limit", "2",
            "--exit-zero",
        ] + extra
        assert main(args) == 0
        return json.loads(capsys.readouterr().out)

    def test_scheduler_flag_round_trips(self, capsys):
        payload = self.run_cli(
            capsys, ["--scheduler", "seeded-async", "--seed", "7"]
        )
        assert payload["scheduler"] == "seeded-async"
        assert {r["scheduler"] for r in payload["records"]} == {"seeded-async"}

    def test_scheduler_axis_deterministic_across_workers(self, capsys):
        extra = ["--scheduler", "seeded-async,adversarial", "--seed", "5"]
        one = self.run_cli(capsys, extra)
        two = self.run_cli(capsys, extra + ["--workers", "2"])
        one.pop("workers"), two.pop("workers")
        assert one == two

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--graph", "cycle:4", "--f", "1",
                  "--scheduler", "chrono"])
