"""Unit tests for the observability core: registry, spans, events,
timings, bench records.

The load-bearing properties: snapshots are *canonical* (fully sorted,
insertion-order independent), merges are lossless and order-insensitive,
``NULL_METRICS`` is a true no-op, and the wall-clock quarantine
(``strip_timings``) removes every ``"timings"`` section wherever it
hides.
"""

import io
import json

import pytest

from repro.obs import (
    NULL_METRICS,
    EventLog,
    MetricsRegistry,
    NullMetrics,
    SpanTracer,
    Stopwatch,
    WallTimings,
    bench_json,
    bench_record,
    check,
    merge_snapshots,
    render_key,
    strip_timings,
    write_bench,
)


class TestRenderKey:
    def test_plain_name(self):
        assert render_key("net.ticks", {}) == "net.ticks"

    def test_labels_sorted(self):
        assert render_key("x", {"b": 1, "a": 2}) == "x{a=2,b=1}"

    def test_non_string_values_use_repr(self):
        key = render_key("flood.accepted", {"phase": ("efficient", 1)})
        assert key == "flood.accepted{phase=('efficient', 1)}"


class TestRegistry:
    def test_counters_accumulate(self):
        m = MetricsRegistry()
        m.inc("hits")
        m.inc("hits", 2)
        m.inc("hits", kind="path")
        assert m.counter("hits") == 3
        assert m.counter("hits", kind="path") == 1
        assert m.counter("absent") == 0

    def test_gauge_keeps_max(self):
        m = MetricsRegistry()
        m.gauge_max("depth", 3)
        m.gauge_max("depth", 7)
        m.gauge_max("depth", 5)
        assert m.snapshot()["gauges"] == {"depth": 7}

    def test_histogram_snapshot_is_lossless(self):
        m = MetricsRegistry()
        for v in (3, 1, 3, 2):
            m.observe("delay", v)
        hist = m.snapshot()["histograms"]["delay"]
        assert hist == {
            "count": 4,
            "sum": 9,
            "min": 1,
            "max": 3,
            "values": [[1, 1], [2, 1], [3, 2]],
        }

    def test_snapshot_is_insertion_order_independent(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.inc("x")
        a.inc("y")
        b.inc("y")
        b.inc("x")
        assert a.snapshot() == b.snapshot()
        assert list(a.snapshot()["counters"]) == ["x", "y"]

    def test_snapshot_includes_spans(self):
        m = MetricsRegistry()
        m.span("phase", 1, 4, node=0)
        snap = m.snapshot()
        assert snap["spans"] == [
            {"name": "phase", "start": 1, "end": 4, "labels": {"node": 0}}
        ]

    def test_enabled_flag(self):
        assert MetricsRegistry().enabled is True
        assert NULL_METRICS.enabled is False


class TestNullMetrics:
    def test_all_operations_are_noops(self):
        n = NullMetrics()
        n.inc("x")
        n.gauge_max("g", 5)
        n.observe("h", 1)
        n.span("s", 0, 1)
        n.emit("e", value=1)
        assert n.counter("x") == 0
        assert n.snapshot() == {}

    def test_singleton_is_shared_default(self):
        assert isinstance(NULL_METRICS, NullMetrics)


class TestMerge:
    def _one(self, seed):
        m = MetricsRegistry()
        m.inc("runs.c", seed)
        m.gauge_max("g", seed)
        m.observe("h", seed)
        m.span("work", 0, seed)
        return m.snapshot()

    def test_merge_sums_counters_and_maxes_gauges(self):
        merged = merge_snapshots([self._one(1), self._one(3)])
        assert merged["runs"] == 2
        assert merged["counters"]["runs.c"] == 4
        assert merged["gauges"]["g"] == 3

    def test_merge_unions_histograms(self):
        merged = merge_snapshots([self._one(1), self._one(3), self._one(1)])
        assert merged["histograms"]["h"] == {
            "count": 3,
            "sum": 5,
            "min": 1,
            "max": 3,
            "values": [[1, 2], [3, 1]],
        }

    def test_merge_folds_spans_into_duration_histograms(self):
        merged = merge_snapshots([self._one(2), self._one(5)])
        spans = merged["histograms"]["span.work.ticks"]
        assert spans["count"] == 2
        assert spans["values"] == [[2, 1], [5, 1]]

    def test_merge_is_order_insensitive(self):
        parts = [self._one(s) for s in (4, 1, 2)]
        assert merge_snapshots(parts) == merge_snapshots(parts[::-1])


class TestStripTimings:
    def test_removes_nested_timings_keys(self):
        payload = {
            "metrics": {"counters": {"x": 1}},
            "timings": {"total_s": 0.5},
            "records": [
                {"rounds": 3, "timings": {"seconds": 0.1}},
                {"rounds": 4},
            ],
        }
        stripped = strip_timings(payload)
        assert "timings" not in stripped
        assert all("timings" not in r for r in stripped["records"])
        assert stripped["records"][0]["rounds"] == 3

    def test_does_not_mutate_input(self):
        payload = {"timings": {"t": 1}, "keep": 2}
        strip_timings(payload)
        assert "timings" in payload


class TestSpanTracer:
    def test_record_and_canonical_order(self):
        t = SpanTracer()
        t.record("b", 5, 9)
        t.record("a", 2, 3, node=1)
        snap = t.snapshot()
        assert [s["name"] for s in snap] == ["a", "b"]
        assert snap[0]["labels"] == {"node": 1}

    def test_open_close_nesting(self):
        t = SpanTracer()
        outer = t.open("outer", at=0)
        inner = t.open("inner", at=1)
        assert t.depth == 2
        t.close(inner, at=2)
        t.close(outer, at=5)
        assert t.depth == 0
        assert len(t) == 2
        ends = {s["name"]: s["end"] for s in t.snapshot()}
        assert ends == {"inner": 2, "outer": 5}

    def test_negative_duration_rejected(self):
        t = SpanTracer()
        with pytest.raises(ValueError):
            t.record("bad", 5, 3)


class TestEventLog:
    def test_emits_sorted_ndjson_lines(self):
        stream = io.StringIO()
        log = EventLog(stream)
        log.emit("tick", tick=1, sends=5)
        log.emit("decide", node=0, value=("a", 1))
        lines = stream.getvalue().splitlines()
        assert json.loads(lines[0]) == {"event": "tick", "sends": 5, "tick": 1}
        # Non-JSON values fall back to repr — deterministic, not lossy.
        assert json.loads(lines[1])["value"] == [u"a", 1]
        assert log.count == 2

    def test_closed_log_refuses_emits(self):
        log = EventLog(io.StringIO())
        log.close()
        with pytest.raises(ValueError):
            log.emit("late")

    def test_registry_forwards_events(self):
        stream = io.StringIO()
        m = MetricsRegistry(events=EventLog(stream))
        m.emit("custom", x=1)
        m.span("s", 0, 2)
        kinds = [json.loads(l)["event"] for l in stream.getvalue().splitlines()]
        assert kinds == ["custom", "span"]


class TestTimings:
    def test_stopwatch_elapsed_is_nonnegative(self):
        watch = Stopwatch()
        assert watch.elapsed() >= 0.0

    def test_walltimings_accumulates_calls(self):
        t = WallTimings()
        with t.time("step"):
            pass
        with t.time("step"):
            pass
        snap = t.snapshot()
        assert snap["step"]["calls"] == 2
        assert snap["step"]["seconds"] >= 0.0


class TestBench:
    def test_check_rows(self):
        assert check("n", 5, 5)["ok"] is True
        assert check("n", 5, 6)["ok"] is False

    def test_record_shape_and_canonical_json(self):
        record = bench_record("demo", spec={"f": 1}, checks=[check("a", 1, 1)])
        assert record["bench"] == "demo"
        assert record["schema"] == 1
        parsed = json.loads(bench_json(record))
        assert parsed["spec"] == {"f": 1}

    def test_write_bench_names_file(self, tmp_path):
        record = bench_record("demo", spec={})
        path = write_bench(record, tmp_path)
        assert path.name == "BENCH_demo.json"
        assert json.loads(path.read_text())["bench"] == "demo"


class TestCells:
    """Pre-rendered hot-path cells must be snapshot-neutral until used."""

    def test_counter_cell_creates_no_key_until_called(self):
        reg = MetricsRegistry()
        cell = reg.counter_cell("flood.accepted", phase="p")
        assert reg.snapshot()["counters"] == {}
        cell()
        cell(3)
        assert reg.snapshot()["counters"] == {"flood.accepted{phase=p}": 4}

    def test_counter_cell_matches_inc_key(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter_cell("x", rule="ii", phase=1)(2)
        b.inc("x", 2, phase=1, rule="ii")
        assert a.snapshot()["counters"] == b.snapshot()["counters"]

    def test_gauge_cell_keeps_max_and_no_key_until_called(self):
        reg = MetricsRegistry()
        cell = reg.gauge_cell("flood.path_set.max", phase="p")
        assert reg.snapshot()["gauges"] == {}
        cell(5)
        cell(3)
        cell(9)
        assert reg.snapshot()["gauges"] == {"flood.path_set.max{phase=p}": 9}

    def test_observe_zero_count_records_nothing(self):
        reg = MetricsRegistry()
        reg.observe("sched.delay", 1, 0)
        reg.observe("sched.delay", 1, -2)
        assert reg.snapshot()["histograms"] == {}

    def test_observe_bulk_equals_repeated_singles(self):
        bulk, singles = MetricsRegistry(), MetricsRegistry()
        bulk.observe("sched.delay", 1, 4)
        for _ in range(4):
            singles.observe("sched.delay", 1)
        assert bulk.snapshot() == singles.snapshot()

    def test_null_metrics_cells_are_noops(self):
        cell = NULL_METRICS.counter_cell("x")
        gauge = NULL_METRICS.gauge_cell("y")
        cell()
        cell(5)
        gauge(7)
        assert NULL_METRICS.snapshot() == {}
