"""Flight recorder: causal laws, byte-identical replay, and forensics.

Three layers of contract:

* **Causal laws** — every recording is a happened-before DAG: each
  parent edge points strictly backwards in the canonical event order
  (which proves acyclicity), delivery timestamps respect their send,
  and the stamped primary cause of each send is the last delivery its
  node drained at that tick.  ``CausalDag.check`` owns the laws; these
  tests assert it returns no violations across every engine and
  factory, and spot-check the laws independently so a bug in ``check``
  itself cannot hide one.

* **Replayability** — the header is a recipe, and re-executing it must
  reproduce the recording *byte for byte*.  Any drift is a determinism
  bug, so this is asserted on clean runs, faulty runs, async runs, and
  metered runs alike.

* **Forensics** — on a disagreed or stalled run, ``blame`` must name
  only faulty nodes.  Blaming an honest node would be a false
  accusation; the test asserts ``blamed ⊆ faulty`` and non-emptiness
  across the known disagreement corpus under both the seeded-async and
  adversarial schedulers.
"""

from __future__ import annotations

import pytest

from repro.analysis import consensus_sweep, replay_flight
from repro.consensus import (
    OUTCOME_DECIDED,
    OUTCOME_DISAGREED,
    algorithm1_factory,
    algorithm2_factory,
    algorithm3_factory,
    async_factory,
    run_consensus,
)
from repro.consensus.baselines import DolevEIGFactory, EIGFactory
from repro.graphs import complete_graph, wheel_graph
from repro.net import standard_adversaries
from repro.net import trace as net_trace
from repro.net.sched import SchedulerSpec
from repro.obs import (
    CausalDag,
    FlightRecord,
    blame,
    critical_path,
    label_key,
    summarize,
)
from repro.obs import trace as obs_trace
from repro.obs.trace import event_order


def adversary(name: str, seed: int = 7):
    for candidate in standard_adversaries(seed):
        if candidate.name == name:
            return candidate
    raise LookupError(name)


def record_run(graph, factory, *, f=1, faulty=(), adversary=None,
               scheduler=None, metrics=False) -> FlightRecord:
    nodes = sorted(graph.nodes, key=repr)
    inputs = {v: i % 2 for i, v in enumerate(nodes)}
    result = run_consensus(
        graph, factory, inputs, f=f, faulty=list(faulty),
        adversary=adversary, scheduler=scheduler, metrics=metrics,
        flight=True,
    )
    assert result.flight is not None
    return result.flight


def scenario_factories(graph, k4):
    """Five fixed-round factories plus the native async algorithm."""
    return [
        ("alg1", graph, algorithm1_factory(graph, 1)),
        ("alg2", graph, algorithm2_factory(graph, 1)),
        ("alg3", graph, algorithm3_factory(graph, 1, 0)),
        ("async", graph, async_factory(graph, 1)),
        ("eig", k4, EIGFactory(k4, 1)),
        ("dolev-eig", k4, DolevEIGFactory(k4, 1)),
    ]


class TestCausalLaws:
    def test_cause_constants_match_engine(self):
        """obs re-declares the cause vocabulary to stay import-pure;
        the two copies must never drift."""
        assert obs_trace.CAUSE_DELIVERY == net_trace.CAUSE_DELIVERY
        assert obs_trace.CAUSE_INPUT == net_trace.CAUSE_INPUT
        assert obs_trace.CAUSE_TIMER == net_trace.CAUSE_TIMER

    @pytest.mark.parametrize("scheduler", [
        None, SchedulerSpec("lockstep"),
        SchedulerSpec("seeded-async", seed=7, max_delay=3),
    ], ids=["sync", "lockstep", "seeded-async"])
    def test_dag_laws_all_factories(self, scheduler):
        w5, k4 = wheel_graph(5), complete_graph(4)
        for name, graph, factory in scenario_factories(w5, k4):
            record = record_run(graph, factory, scheduler=scheduler)
            dag = CausalDag(record)
            assert dag.check() == [], name
            # Independent spot-checks of the laws check() enforces:
            # acyclicity via strictly-backward edges, and deliveries
            # that never precede their send.
            for event in record.events:
                for parent in dag.parents(event):
                    assert event_order(parent) < event_order(event), name
            for deliver in record.delivers:
                assert deliver["t"] >= deliver["sent"], name

    def test_dag_laws_under_faults(self):
        w5 = wheel_graph(5)
        record = record_run(
            w5, algorithm2_factory(w5, 1), faulty=[0],
            adversary=adversary("tamper-forward"),
            scheduler=SchedulerSpec("seeded-async", seed=7, max_delay=3),
        )
        assert record.outcome["outcome"] == OUTCOME_DISAGREED
        assert CausalDag(record).check() == []

    def test_sync_and_lockstep_record_identical_events(self):
        """The lockstep engine is trace-identical to the synchronous
        simulator — their flights differ only in the header's declared
        scheduler, never in the event stream or outcome."""
        w5, k4 = wheel_graph(5), complete_graph(4)
        for name, graph, factory in scenario_factories(w5, k4):
            sync = record_run(graph, factory, scheduler=None)
            lock = record_run(graph, factory, scheduler=SchedulerSpec("lockstep"))
            assert list(sync.lines())[1:] == list(lock.lines())[1:], name

    def test_critical_path_accounting(self):
        w5 = wheel_graph(5)
        record = record_run(w5, algorithm2_factory(w5, 1))
        data = critical_path(record)
        assert data["consistent"]
        assert data["span"] == data["latency_sum"]
        assert data["root_cause"] == obs_trace.CAUSE_INPUT
        # Lockstep timing: every delivery hop has latency exactly 1.
        hops = [h for h in data["hops"] if h["type"] == "deliver"]
        assert all(h["latency"] == 1 for h in hops)


class TestReplay:
    @pytest.mark.parametrize("scheduler", [
        None, SchedulerSpec("seeded-async", seed=7, max_delay=3),
    ], ids=["sync", "seeded-async"])
    def test_record_replay_byte_identical(self, scheduler):
        w5, k4 = wheel_graph(5), complete_graph(4)
        for name, graph, factory in scenario_factories(w5, k4):
            record = record_run(graph, factory, scheduler=scheduler)
            outcome = replay_flight(record)
            assert outcome.identical, (name, outcome.diff)

    def test_replay_of_disagreed_run(self):
        w5 = wheel_graph(5)
        record = record_run(
            w5, algorithm2_factory(w5, 1), faulty=[0],
            adversary=adversary("tamper-forward"),
            scheduler=SchedulerSpec("seeded-async", seed=7, max_delay=3),
        )
        assert record.outcome["outcome"] == OUTCOME_DISAGREED
        outcome = replay_flight(record)
        assert outcome.identical, outcome.diff
        assert outcome.result.outcome == OUTCOME_DISAGREED

    def test_replay_of_metered_run_keeps_spans(self):
        # The async algorithm is the span emitter (per-phase spans land
        # in the registry snapshot), so its metered flight pins the
        # spans-in-header path end to end.
        w5 = wheel_graph(5)
        record = record_run(w5, async_factory(w5, 1), metrics=True)
        assert record.header["metered"]
        assert record.header["spans"]
        outcome = replay_flight(record)
        assert outcome.identical, outcome.diff

    def test_save_load_round_trip(self, tmp_path):
        w5 = wheel_graph(5)
        record = record_run(w5, algorithm2_factory(w5, 1))
        path = tmp_path / "flight.ndjson"
        record.save(str(path))
        loaded = FlightRecord.load(str(path))
        assert loaded.to_ndjson() == record.to_ndjson()


class TestBlame:
    # The known-disagreement corpus: wheel:5/f=1, bare Algorithm 2.
    # Under seeded-async, alternating inputs with the hub faulty; under
    # the adversarial scheduler, one-hot inputs (hub=1, rim=0) with the
    # hub faulty — both empirically disagreed, pinned by assertion.
    def _flight(self, scheduler, inputs_kind):
        w5 = wheel_graph(5)
        nodes = sorted(w5.nodes, key=repr)
        if inputs_kind == "alternating":
            inputs = {v: i % 2 for i, v in enumerate(nodes)}
        else:
            inputs = {v: 1 if i == 0 else 0 for i, v in enumerate(nodes)}
        result = run_consensus(
            w5, algorithm2_factory(w5, 1), inputs, f=1, faulty=[0],
            adversary=adversary("tamper-forward"), scheduler=scheduler,
            flight=True,
        )
        assert result.outcome == OUTCOME_DISAGREED
        return result.flight

    @pytest.mark.parametrize("scheduler,inputs_kind", [
        (SchedulerSpec("seeded-async", seed=7, max_delay=3), "alternating"),
        (SchedulerSpec("adversarial", max_delay=2), "one-hot"),
    ], ids=["seeded-async", "adversarial"])
    def test_blame_names_only_faulty_nodes(self, scheduler, inputs_kind):
        record = self._flight(scheduler, inputs_kind)
        report = blame(record)
        assert report["verdict"] == "attributed"
        faulty = {label_key(x) for x in report["faulty"]}
        blamed = {label_key(x) for x in report["blamed"]}
        assert blamed, "a disagreed run must blame someone"
        assert blamed <= faulty, "an honest node was blamed"

    def test_blame_clean_run(self):
        w5 = wheel_graph(5)
        record = record_run(w5, algorithm2_factory(w5, 1))
        assert record.outcome["outcome"] == OUTCOME_DECIDED
        report = blame(record)
        assert report["verdict"] == "clean"
        assert report["blamed"] == []

    def test_blame_catches_silent_fault_by_omission(self):
        """A silent adversary leaves no sends to taint — attribution
        must come from the omission analysis, not the frontier."""
        w5 = wheel_graph(5)
        nodes = sorted(w5.nodes, key=repr)
        inputs = {v: 1 if i == 0 else 0 for i, v in enumerate(nodes)}
        result = run_consensus(
            w5, algorithm2_factory(w5, 1), inputs, f=1, faulty=[0],
            adversary=adversary("silent"),
            scheduler=SchedulerSpec("adversarial", max_delay=2),
            flight=True,
        )
        assert result.outcome == OUTCOME_DISAGREED
        report = blame(result.flight)
        assert report["verdict"] == "attributed"
        assert [label_key(x) for x in report["blamed"]] == [label_key(0)]
        assert report["omissions"], "silent fault must surface as omission"

    def test_summary_counts_and_roles(self):
        w5 = wheel_graph(5)
        record = record_run(
            w5, algorithm2_factory(w5, 1), faulty=[0],
            adversary=adversary("tamper-forward"),
            scheduler=SchedulerSpec("seeded-async", seed=7, max_delay=3),
        )
        data = summarize(record)
        assert data["run"]["causal_violations"] == 0
        assert data["run"]["sends"] == len(record.sends)
        assert data["run"]["deliveries"] == len(record.delivers)
        roles = {row["node"]: row["faulty"] for row in data["nodes"]}
        assert roles == {0: True, 1: False, 2: False, 3: False, 4: False}


class TestSweepCapture:
    def _sweep(self, workers):
        w5 = wheel_graph(5)
        return consensus_sweep(
            w5, algorithm2_factory(w5, 1), f=1, workers=workers,
            schedulers=[SchedulerSpec("seeded-async", seed=7, max_delay=3)],
            patterns=["alternating"], fault_limit=2, seed=7,
            capture="anomalies",
        )

    def test_capture_is_worker_count_invariant(self):
        serial = self._sweep(1)
        parallel = self._sweep(2)
        assert serial.flights, "corpus must contain at least one anomaly"
        assert serial.flights == parallel.flights
        assert serial.to_dict() == parallel.to_dict()
        assert "flights" not in serial.to_dict()

    def test_captured_blobs_replay_and_blame(self):
        report = self._sweep(1)
        for index, blob in sorted(report.flights.items()):
            record = FlightRecord.loads(blob)
            assert record.header["spec"] == {"task": index}
            assert replay_flight(record).identical
            verdict = blame(record)
            faulty = {label_key(x) for x in verdict["faulty"]}
            blamed = {label_key(x) for x in verdict["blamed"]}
            assert blamed <= faulty

    def test_flight_off_by_default(self):
        w5 = wheel_graph(5)
        nodes = sorted(w5.nodes, key=repr)
        inputs = {v: i % 2 for i, v in enumerate(nodes)}
        result = run_consensus(w5, algorithm2_factory(w5, 1), inputs, f=1)
        assert result.flight is None
