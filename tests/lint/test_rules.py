"""Every lint rule against its fixture corpus.

True-positive fixtures mark each line the rule must flag with a
trailing ``# EXPECT`` comment; the tests assert the flagged line set
matches the marker set exactly (correct file *and* line, no extras).
False-positive fixtures must produce zero active findings.
"""

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_source
from repro.lint.rules import RULES, rule_catalog

FIXTURES = Path(__file__).parent / "fixtures"

#: Fixture linting treats every module as trace-affecting so REPRO001
#: applies outside the src/repro tree.
FIXTURE_CONFIG = LintConfig(trace_all=True)


def expected_lines(source: str) -> set:
    return {
        i
        for i, line in enumerate(source.splitlines(), start=1)
        if line.rstrip().endswith("# EXPECT")
    }


def lint_fixture(name: str):
    path = FIXTURES / name
    source = path.read_text(encoding="utf-8")
    active, suppressed = lint_source(source, path.as_posix(), FIXTURE_CONFIG)
    return source, active, suppressed


TRUE_POSITIVE_FIXTURES = [
    ("REPRO001", "repro001_tp.py"),
    ("REPRO002", "repro002_tp.py"),
    ("REPRO003", "repro003_tp.py"),
    ("REPRO004", "repro004/async_alg.py"),
    ("REPRO005", "repro005_tp.py"),
]

FALSE_POSITIVE_FIXTURES = [
    "repro001_fp.py",
    "repro002_fp.py",
    "repro003_fp.py",
    "repro004_fp.py",
    "repro005_fp.py",
]


class TestTruePositives:
    @pytest.mark.parametrize(
        "rule_id,fixture", TRUE_POSITIVE_FIXTURES, ids=[r for r, _ in TRUE_POSITIVE_FIXTURES]
    )
    def test_every_marked_line_is_flagged(self, rule_id, fixture):
        source, active, _ = lint_fixture(fixture)
        marked = expected_lines(source)
        assert marked, f"fixture {fixture} has no # EXPECT markers"
        flagged = {f.line for f in active if f.rule == rule_id}
        assert flagged == marked
        # The fixture exercises exactly one rule: nothing else fires.
        assert {f.rule for f in active} == {rule_id}

    @pytest.mark.parametrize(
        "rule_id,fixture", TRUE_POSITIVE_FIXTURES, ids=[r for r, _ in TRUE_POSITIVE_FIXTURES]
    )
    def test_findings_carry_path_and_hint(self, rule_id, fixture):
        _, active, _ = lint_fixture(fixture)
        for finding in active:
            assert finding.path.endswith(fixture)
            assert finding.message
            assert finding.location().startswith(finding.path)


class TestFalsePositives:
    @pytest.mark.parametrize("fixture", FALSE_POSITIVE_FIXTURES)
    def test_zero_active_findings(self, fixture):
        _, active, _ = lint_fixture(fixture)
        assert active == []


class TestPragmaFixtures:
    def test_fp_corpus_suppressions_are_counted(self):
        """The REPRO001 FP corpus ends with two deliberately pragma'd
        loops — they must surface as suppressed, not vanish."""
        _, active, suppressed = lint_fixture("repro001_fp.py")
        assert active == []
        assert len(suppressed) == 2
        assert {f.rule for f in suppressed} == {"REPRO001"}


class TestScoping:
    def test_repro001_silent_outside_trace_modules(self):
        source = "for v in {1, 2, 3}:\n    print(v)\n"
        active, _ = lint_source(source, "tools/helper.py", LintConfig())
        assert active == []
        active, _ = lint_source(
            source, "src/repro/graphs/helper.py", LintConfig()
        )
        assert [f.rule for f in active] == ["REPRO001"]

    def test_trace_parts_cover_bitmask_index(self):
        """The canonical node index orders every trace-visible traversal
        — it must sit inside the determinism-linted surface."""
        config = LintConfig()
        assert config.is_trace_affecting("src/repro/graphs/index.py")
        assert config.is_trace_affecting("src/repro/consensus/flooding.py")
        assert config.is_trace_affecting("src/repro/consensus/reliable.py")

    def test_trace_parts_cover_flight_recorder(self):
        """Flight recordings are canonical NDJSON — any unordered
        iteration in the recorder would break replay byte-identity, so
        obs/trace.py must sit inside the determinism-linted surface."""
        config = LintConfig()
        assert config.is_trace_affecting("src/repro/obs/trace.py")
        assert config.is_trace_affecting("src/repro/analysis/replay.py")

    def test_repro004_scoped_by_basename(self):
        """The contract follows the module name, not its directory —
        that is what lets the sandbox test lint a *copy* of
        async_alg.py."""
        source = "def f(s):\n    return s.worst_case_delay\n"
        active, _ = lint_source(source, "anywhere/async_alg.py", LintConfig())
        assert [f.rule for f in active] == ["REPRO004"]
        active, _ = lint_source(source, "anywhere/scheduler.py", LintConfig())
        assert active == []


class TestRegistry:
    def test_catalog_order_and_ids(self):
        assert [r["id"] for r in rule_catalog()] == [
            "REPRO001", "REPRO002", "REPRO003", "REPRO004", "REPRO005",
        ]
        assert list(RULES) == [r["id"] for r in rule_catalog()]
        for rule in RULES.values():
            assert rule.title
