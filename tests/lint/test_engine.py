"""Engine mechanics: pragmas, baselines, fingerprints, file walking."""

import json
from pathlib import Path

from repro.lint import (
    LintConfig,
    lint_paths,
    lint_source,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import fingerprint_findings, iter_python_files
from repro.lint.report import render_json, render_text

TRACE_ALL = LintConfig(trace_all=True)

FLAGGED = "for v in {1, 2, 3}:\n    print(v)\n"


class TestPragmas:
    def test_pragma_on_flagged_line(self):
        source = (
            "for v in {1, 2}:  # repro: allow[REPRO001] commutative\n"
            "    print(v)\n"
        )
        active, suppressed = lint_source(source, "m.py", TRACE_ALL)
        assert active == []
        assert [f.rule for f in suppressed] == ["REPRO001"]

    def test_pragma_on_comment_line_above(self):
        source = (
            "# repro: allow[REPRO001] commutative\n"
            "for v in {1, 2}:\n"
            "    print(v)\n"
        )
        active, suppressed = lint_source(source, "m.py", TRACE_ALL)
        assert active == []
        assert len(suppressed) == 1

    def test_pragma_anywhere_in_contiguous_comment_block(self):
        source = (
            "# repro: allow[REPRO001] the union below is commutative,\n"
            "# so visiting order cannot affect the result.\n"
            "for v in {1, 2}:\n"
            "    print(v)\n"
        )
        active, suppressed = lint_source(source, "m.py", TRACE_ALL)
        assert active == []
        assert len(suppressed) == 1

    def test_comment_block_must_be_contiguous(self):
        source = (
            "# repro: allow[REPRO001] too far away\n"
            "x = 1\n"
            "for v in {1, 2}:\n"
            "    print(v)\n"
        )
        active, _ = lint_source(source, "m.py", TRACE_ALL)
        assert [f.rule for f in active] == ["REPRO001"]

    def test_pragma_lists_multiple_rules(self):
        source = (
            "import time\n"
            "def f(s: set):\n"
            "    # repro: allow[REPRO001, REPRO002] fixture\n"
            "    return [time.time() for v in s]\n"
        )
        active, suppressed = lint_source(source, "m.py", TRACE_ALL)
        assert active == []
        assert {f.rule for f in suppressed} == {"REPRO001", "REPRO002"}

    def test_pragma_for_other_rule_does_not_suppress(self):
        source = (
            "for v in {1, 2}:  # repro: allow[REPRO002] wrong rule\n"
            "    print(v)\n"
        )
        active, _ = lint_source(source, "m.py", TRACE_ALL)
        assert [f.rule for f in active] == ["REPRO001"]


class TestFingerprints:
    def test_stable_under_line_shifts(self):
        shifted = "\n\n# a new leading comment\n" + FLAGGED
        a_active, _ = lint_source(FLAGGED, "m.py", TRACE_ALL)
        b_active, _ = lint_source(shifted, "m.py", TRACE_ALL)
        a_prints = fingerprint_findings(
            a_active, {"m.py": FLAGGED.splitlines()}
        )
        b_prints = fingerprint_findings(
            b_active, {"m.py": shifted.splitlines()}
        )
        assert a_prints == b_prints
        assert a_active[0].line != b_active[0].line

    def test_identical_lines_disambiguated_by_occurrence(self):
        source = FLAGGED + FLAGGED
        active, _ = lint_source(source, "m.py", TRACE_ALL)
        prints = fingerprint_findings(active, {"m.py": source.splitlines()})
        assert len(prints) == 2
        assert prints[0] != prints[1]


class TestBaseline:
    def test_round_trip_accepts_findings(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(FLAGGED, encoding="utf-8")
        result, lines = lint_paths([str(mod)], config=TRACE_ALL)
        assert len(result.findings) == 1

        baseline_file = tmp_path / "baseline.json"
        count = write_baseline(baseline_file, result.findings, lines)
        assert count == 1

        accepted = load_baseline(baseline_file)
        again, _ = lint_paths(
            [str(mod)], config=TRACE_ALL, baseline=accepted
        )
        assert again.findings == []
        assert len(again.baselined) == 1
        assert again.clean

    def test_new_regression_escapes_the_baseline(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(FLAGGED, encoding="utf-8")
        result, lines = lint_paths([str(mod)], config=TRACE_ALL)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, result.findings, lines)

        mod.write_text(FLAGGED + "for k in {'a': 1}:\n    print(k)\n",
                       encoding="utf-8")
        again, _ = lint_paths(
            [str(mod)], config=TRACE_ALL, baseline=load_baseline(baseline_file)
        )
        assert len(again.baselined) == 1
        assert len(again.findings) == 1  # only the new regression

    def test_baseline_file_is_versioned_json(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(FLAGGED, encoding="utf-8")
        result, lines = lint_paths([str(mod)], config=TRACE_ALL)
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, result.findings, lines)
        payload = json.loads(baseline_file.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert len(payload["findings"]) == 1
        entry = payload["findings"][0]
        assert set(entry) >= {"fingerprint", "rule", "location"}


class TestWalkAndReport:
    def test_iter_python_files_sorted_and_deduped(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "a.py").write_text("x = 1\n", encoding="utf-8")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "c.py").write_text("x = 1\n", encoding="utf-8")
        (tmp_path / "notes.txt").write_text("skip me", encoding="utf-8")
        files = list(
            iter_python_files([str(tmp_path), str(tmp_path / "a.py")])
        )
        assert [f.name for f in files] == ["a.py", "b.py", "c.py"]

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        result, _ = lint_paths([str(bad)], config=TRACE_ALL)
        assert result.findings == []
        assert len(result.errors) == 1
        assert not result.clean

    def test_reports_are_deterministic(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(FLAGGED, encoding="utf-8")
        result, _ = lint_paths([str(mod)], config=TRACE_ALL)
        assert render_json(result) == render_json(result)
        text = render_text(result)
        assert "REPRO001" in text
        payload = json.loads(render_json(result))
        assert payload["counts"] == {"REPRO001": 1}
        assert payload["findings"][0]["rule"] == "REPRO001"
        assert payload["clean"] is False
