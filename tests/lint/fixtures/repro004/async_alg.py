"""REPRO004 true positives: a fixture named like the unbounded-safe
module.  Every `# EXPECT` line must be flagged."""


class FixtureAsyncProtocol:
    def on_message(self, scheduler, sender, message):
        budget = scheduler.worst_case_delay  # EXPECT
        cap = self.max_delay  # EXPECT
        bound = getattr(scheduler, "delay_bound")  # EXPECT
        probe = getattr(scheduler, "budget_for", None)  # EXPECT
        return budget, cap, bound, probe

    def harmless(self, scheduler):
        # Reading unrelated attributes is fine.
        return scheduler.name
