"""REPRO005 false-positive corpus: nothing here may be flagged."""


class FixtureProtocol:
    def __init__(self, history=None):
        self.history = list(history or [])

    def window(self, size=4, label="run"):
        return size, label


def protocol_factory(graph, defaults=None):
    return graph, dict(defaults or {})


def plain_helper(values=[]):
    # Outside Protocol/Scheduler/Factory signatures and not a factory
    # function: deliberately out of this rule's scope.
    return values
