"""REPRO004 false-positive corpus: this module is *not* registered
unbounded-safe, so delay-bound reads are legitimate here (schedulers
and synchronizers are exactly where the bound belongs)."""


class FixtureScheduler:
    def __init__(self, worst_case_delay: int = 1):
        self.worst_case_delay = worst_case_delay

    def deadline(self, now: int) -> int:
        return now + self.worst_case_delay

    def probed(self) -> int:
        return getattr(self, "max_delay", 0)
