"""REPRO001 true positives: every `# EXPECT` line must be flagged."""

CONFIG = {"a": 1, "b": 2}


def loops(graph):
    marked = {1, 2, 3}
    for v in marked:  # EXPECT
        print(v)
    for k in CONFIG:  # EXPECT
        print(k)
    for k, v in CONFIG.items():  # EXPECT
        print(k, v)
    for v in CONFIG.values():  # EXPECT
        print(v)
    for k in CONFIG.keys():  # EXPECT
        print(k)


def comprehensions(frontier: set):
    squares = [x * x for x in frontier]  # EXPECT
    table = {x: x for x in frontier}  # EXPECT
    return squares, table


def materializers(raw):
    reached = frozenset(raw)
    as_list = list(reached)  # EXPECT
    as_tuple = tuple(reached)  # EXPECT
    joined = ",".join({"a", "b"})  # EXPECT
    numbered = enumerate(reached)  # EXPECT
    return as_list, as_tuple, joined, numbered


def through_methods(graph):
    for nbr in graph.neighbors(0):  # EXPECT
        print(nbr)
    for node in graph.nodes:  # EXPECT
        print(node)
