"""REPRO005 true positives: every `# EXPECT` line must be flagged."""


class FixtureProtocol:
    def __init__(self, history=[]):  # EXPECT
        self.history = history

    def configure(self, options={}):  # EXPECT
        return options

    def mark(self, *, seen=set()):  # EXPECT
        return seen


class FixtureScheduler:
    def __init__(self, queue=list()):  # EXPECT
        self.queue = queue


class BehaviorFactory:
    def build(self, overrides=dict()):  # EXPECT
        return overrides


def protocol_factory(graph, defaults={"f": 1}):  # EXPECT
    return graph, defaults
