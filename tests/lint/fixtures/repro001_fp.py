"""REPRO001 false-positive corpus: nothing here may be flagged."""

CONFIG = {"a": 1, "b": 2}


def sorted_iteration(graph):
    marked = {1, 2, 3}
    for v in sorted(marked, key=repr):
        print(v)
    for k, v in sorted(CONFIG.items(), key=lambda kv: repr(kv[0])):
        print(k, v)
    for nbr in sorted(graph.neighbors(0), key=repr):
        print(nbr)


def order_insensitive_consumers(frontier: set):
    total = sum(x for x in frontier)
    low, high = min(frontier), max(frontier)
    truthy = any(x > 0 for x in frontier)
    size = len(frontier)
    copy = set(frontier)
    frozen = frozenset(frontier)
    return total, low, high, truthy, size, copy, frozen


def set_results(frontier: set):
    # A set comprehension's result is itself unordered: source order
    # cannot be observed through it.
    doubled = {x * 2 for x in frontier}
    return doubled


def membership(frontier: set):
    return 3 in frontier


def ordered_sources(items: list):
    for x in items:
        print(x)
    for i, x in enumerate(items):
        print(i, x)


def pragma_on_line(frontier: set):
    for x in frontier:  # repro: allow[REPRO001] aggregation is commutative
        print(x)


def pragma_block_above(frontier: set):
    # repro: allow[REPRO001] the accumulation below is a commutative
    # set union, so visiting order cannot affect the result.
    for x in frontier:
        print(x)
