"""REPRO003 true positives: every `# EXPECT` line must be flagged."""


def sweep_with_local_payloads(consensus_sweep, executor, graph):
    def build(node, value):
        return (node, value)

    class LocalProtocol:
        pass

    consensus_sweep(graph, lambda node, value: None)  # EXPECT
    consensus_sweep(graph, build)  # EXPECT
    consensus_sweep(graph, factory=build)  # EXPECT
    executor.submit(build, graph)  # EXPECT
    return LocalProtocol


def factory_with_local_class(protocol_factory, graph):
    class LocalBehavior:
        pass

    return protocol_factory(graph, LocalBehavior)  # EXPECT
