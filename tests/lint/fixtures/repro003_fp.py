"""REPRO003 false-positive corpus: nothing here may be flagged."""


def module_level_build(node, value):
    return (node, value)


class ModuleLevelProtocol:
    pass


def sweep_with_module_payloads(consensus_sweep, executor, graph):
    consensus_sweep(graph, module_level_build)
    consensus_sweep(graph, factory=ModuleLevelProtocol)
    executor.submit(module_level_build, graph)


def ordinary_calls(graph):
    # Lambdas into non-sink callables never cross a process boundary.
    return sorted(graph, key=lambda v: repr(v))
