"""REPRO002 true positives: every `# EXPECT` line must be flagged."""

import os
import random
import secrets
import time
import uuid


def wall_clock_stamp():
    started = time.time()  # EXPECT
    nanos = time.time_ns()  # EXPECT
    return started, nanos


def os_entropy():
    blob = os.urandom(16)  # EXPECT
    run_id = uuid.uuid4()  # EXPECT
    node_id = uuid.uuid1()  # EXPECT
    token = secrets.token_hex(8)  # EXPECT
    return blob, run_id, node_id, token


def global_rng(population):
    coin = random.random()  # EXPECT
    pick = random.choice(population)  # EXPECT
    random.shuffle(population)  # EXPECT
    random.seed(0)  # EXPECT
    return coin, pick


def unseeded_instance():
    rng = random.Random()  # EXPECT
    return rng
