"""REPRO002 false-positive corpus: nothing here may be flagged."""

import random
import time


def measured_benchmark(fn):
    # Measuring elapsed time is fine — perf_counter never feeds
    # simulation state, only reporting.
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def seeded_rng(seed: int):
    rng = random.Random(seed)
    return [rng.random() for _ in range(4)]


def threaded_rng(rng: random.Random):
    # Drawing from an explicitly threaded instance is the sanctioned
    # pattern; only the shared module-level RNG is forbidden.
    return rng.randint(0, 1)
