"""The ``python -m repro lint`` surface: exit codes, formats, and the
acceptance-criteria sandbox checks (shipped tree exits 0; injecting a
delay-bound read into a copy of async_alg.py trips REPRO004)."""

import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

from repro.lint.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def run_module(*args, cwd=REPO_ROOT):
    env = dict(os.environ, PYTHONPATH=str(SRC))
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env=env,
    )


class TestShippedTree:
    def test_src_exits_zero(self):
        proc = run_module("src")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_full_surface_exits_zero(self):
        proc = run_module("src", "benchmarks", "examples")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_json_format_is_machine_readable(self):
        proc = run_module("src", "--format", "json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert payload["files_checked"] > 0

    def test_linter_is_self_hosting(self):
        """The linter lints itself and stays clean."""
        proc = run_module("src/repro/lint")
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestExitCodes:
    def test_findings_exit_one(self, tmp_path, capsys):
        # The config scopes REPRO001 by path parts — 'net' marks this
        # sandbox module as trace-affecting.
        mod = tmp_path / "net" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("for v in {1, 2}:\n    print(v)\n", encoding="utf-8")
        code = main([str(mod)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REPRO001" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        mod = tmp_path / "clean.py"
        mod.write_text("x = sorted({1, 2})\n", encoding="utf-8")
        assert main([str(mod)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_unparseable_exits_two(self, tmp_path, capsys):
        mod = tmp_path / "bad.py"
        mod.write_text("def broken(:\n", encoding="utf-8")
        assert main([str(mod)]) == 2
        assert "syntax error" in capsys.readouterr().out


class TestBaselineCli:
    def test_write_then_gate(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        mod = tmp_path / "net"
        mod.mkdir()
        target = mod / "mod.py"
        target.write_text("for v in {1, 2}:\n    print(v)\n", encoding="utf-8")
        assert main(["net"]) == 1
        capsys.readouterr()
        assert main(["net", "--write-baseline"]) == 0
        out = capsys.readouterr().out
        assert "wrote 1 accepted finding(s)" in out
        # The default baseline in cwd now gates the same finding out.
        assert main(["net"]) == 0
        assert "1 baselined" in capsys.readouterr().out


class TestRepro004Sandbox:
    def test_delay_bound_read_in_async_alg_copy_fails(self, tmp_path, capsys):
        """Acceptance criterion: copy the real async_alg.py, inject a
        worst_case_delay read, and the linter must fail on the copy at
        the injected line."""
        original = SRC / "repro" / "consensus" / "async_alg.py"
        sandbox = tmp_path / "async_alg.py"
        shutil.copy(original, sandbox)

        source = sandbox.read_text(encoding="utf-8")
        injected = (
            "def _read_bound(scheduler):\n"
            "    return scheduler.worst_case_delay\n"
        )
        sandbox.write_text(source + "\n\n" + injected, encoding="utf-8")
        injected_line = (
            sandbox.read_text(encoding="utf-8")
            .splitlines()
            .index("    return scheduler.worst_case_delay")
            + 1
        )

        code = main([str(sandbox)])
        out = capsys.readouterr().out
        assert code == 1
        assert "REPRO004" in out
        assert f"async_alg.py:{injected_line}:" in out

    def test_pristine_copy_stays_clean(self, tmp_path, capsys):
        original = SRC / "repro" / "consensus" / "async_alg.py"
        sandbox = tmp_path / "async_alg.py"
        shutil.copy(original, sandbox)
        assert main([str(sandbox)]) == 0


def test_main_module_exposes_lint():
    proc = run_module("--help")
    assert proc.returncode == 0
    assert "--write-baseline" in proc.stdout
