"""The adversary library: each behavior does what its card says."""

import pytest

from repro.graphs import cycle_graph
from repro.net import (
    CrashAdversary,
    DropForwardAdversary,
    EquivocatingAdversary,
    EquivocationError,
    FaultSpec,
    FloodMessage,
    LyingInitAdversary,
    RandomAdversary,
    ReplayAdversary,
    SilentAdversary,
    SynchronousNetwork,
    TamperForwardAdversary,
    Transmission,
    ValuePayload,
    WrongInputAdversary,
    hybrid_model,
    local_broadcast_model,
    standard_adversaries,
)
from repro.net.adversary import CompositeAdversary, SplitReplayAdversary
from repro.consensus import Algorithm1Protocol, algorithm1_factory


def make_spec(graph, node, input_value=1, f=1, faulty=None, channel=None):
    return FaultSpec(
        node=node,
        graph=graph,
        channel=channel or local_broadcast_model(),
        input_value=input_value,
        f=f,
        faulty=frozenset(faulty or {node}),
        honest_factory=algorithm1_factory(graph, f),
    )


def run_with(graph, adversary, node, rounds, channel=None, input_value=1):
    """Run Algorithm 1 honestly everywhere except `node`."""
    fac = algorithm1_factory(graph, 1)
    protos = {}
    for v in graph.nodes:
        if v == node:
            protos[v] = adversary.build(
                make_spec(graph, v, input_value=input_value, channel=channel)
            )
        else:
            protos[v] = fac(v, 0)
    net = SynchronousNetwork(graph, protos, channel or local_broadcast_model())
    net.run(rounds)
    return net


class TestBasicBehaviors:
    def test_silent_never_transmits(self, c5):
        net = run_with(c5, SilentAdversary(), node=2, rounds=5)
        assert net.trace.sent_by(2) == []

    def test_crash_stops_at_round(self, c5):
        net = run_with(c5, CrashAdversary(crash_round=3), node=2, rounds=5)
        rounds = {t.round_no for t in net.trace.sent_by(2)}
        assert rounds and max(rounds) <= 2

    def test_wrong_input_flips(self, c5):
        spec = make_spec(c5, 2, input_value=1)
        proto = WrongInputAdversary().build(spec)
        assert isinstance(proto, Algorithm1Protocol)
        assert proto.gamma == 0

    def test_lying_init_flips_only_initiations(self, c5):
        net = run_with(c5, LyingInitAdversary(), node=2, rounds=5, input_value=1)
        inits = [
            t.message
            for t in net.trace.sent_by(2)
            if isinstance(t.message, FloodMessage) and len(t.message.path) == 0
        ]
        assert inits and all(m.payload == ValuePayload(0) for m in inits)
        forwards = [
            t.message
            for t in net.trace.sent_by(2)
            if isinstance(t.message, FloodMessage) and len(t.message.path) > 0
        ]
        # Forwards are relayed untampered: each matches a message some
        # honest neighbor really initiated or forwarded (value 0 here).
        assert forwards and all(
            m.payload == ValuePayload(0) for m in forwards
        )

    def test_tamper_forward_flips_forwards_not_inits(self, c5):
        net = run_with(c5, TamperForwardAdversary(), node=2, rounds=5, input_value=1)
        for t in net.trace.sent_by(2):
            m = t.message
            if isinstance(m, FloodMessage):
                if len(m.path) == 0:
                    assert m.payload == ValuePayload(1)  # honest init
                else:
                    assert m.payload == ValuePayload(1)  # flipped from 0

    def test_drop_forward_sends_only_inits(self, c5):
        net = run_with(c5, DropForwardAdversary(), node=2, rounds=5)
        for t in net.trace.sent_by(2):
            if isinstance(t.message, FloodMessage):
                assert len(t.message.path) == 0

    def test_random_is_deterministic_per_seed(self, c5):
        n1 = run_with(c5, RandomAdversary(seed=9), node=2, rounds=5)
        n2 = run_with(c5, RandomAdversary(seed=9), node=2, rounds=5)
        assert [t.message for t in n1.trace.sent_by(2)] == [
            t.message for t in n2.trace.sent_by(2)
        ]

    def test_random_differs_across_seeds(self, c5):
        n1 = run_with(c5, RandomAdversary(seed=1), node=2, rounds=10)
        n2 = run_with(c5, RandomAdversary(seed=2), node=2, rounds=10)
        assert [t.message for t in n1.trace.sent_by(2)] != [
            t.message for t in n2.trace.sent_by(2)
        ]

    def test_standard_battery_names_unique(self):
        battery = standard_adversaries()
        names = [a.name for a in battery]
        assert len(set(names)) == len(names)
        assert len(battery) >= 6


class TestEquivocation:
    def test_equivocator_blocked_under_local_broadcast(self, c5):
        with pytest.raises(EquivocationError):
            run_with(c5, EquivocatingAdversary(), node=2, rounds=2)

    def test_equivocator_splits_under_hybrid(self, c5):
        ch = hybrid_model({2})
        net = run_with(c5, EquivocatingAdversary(), node=2, rounds=2, channel=ch)
        unicasts = [t for t in net.trace.sent_by(2) if t.target is not None]
        assert unicasts
        values = {
            t.target: t.message.payload.value
            for t in unicasts
            if isinstance(t.message, FloodMessage) and len(t.message.path) == 0
        }
        assert set(values.values()) == {0, 1}  # different neighbors, different bits


class TestReplay:
    def test_replay_follows_schedule(self, c5):
        schedule = {2: {1: [("hello", None)], 3: [("bye", None)]}}
        net = run_with(c5, ReplayAdversary(schedule), node=2, rounds=4)
        sent = net.trace.sent_by(2)
        assert [(t.round_no, t.message) for t in sent] == [(1, "hello"), (3, "bye")]

    def test_replay_from_transmissions(self, c5):
        txs = {
            2: [
                Transmission(1, 2, "m1", None, (1, 3)),
                Transmission(2, 2, "m2", None, (1, 3)),
            ]
        }
        adv = ReplayAdversary.from_transmissions(txs)
        net = run_with(c5, adv, node=2, rounds=3)
        assert [t.message for t in net.trace.sent_by(2)] == ["m1", "m2"]

    def test_split_replay_targets_groups(self, c5):
        ch = hybrid_model({2})
        groups = {
            2: [
                (frozenset({1}), {1: [("for-one", None)]}),
                (frozenset({3}), {1: [("for-three", None)]}),
            ]
        }
        net = run_with(c5, SplitReplayAdversary(groups), node=2, rounds=2, channel=ch)
        by_target = {t.target: t.message for t in net.trace.sent_by(2)}
        assert by_target == {1: "for-one", 3: "for-three"}

    def test_composite_dispatches_per_node(self, c5):
        fac = algorithm1_factory(c5, 1)
        adv = CompositeAdversary({2: SilentAdversary()}, default=None)
        spec = make_spec(c5, 2)
        proto = adv.build(spec)
        assert proto.finished  # silent protocol reports finished
        with pytest.raises(ValueError):
            adv.build(make_spec(c5, 3))

    def test_composite_default(self, c5):
        adv = CompositeAdversary({}, default=SilentAdversary())
        proto = adv.build(make_spec(c5, 4))
        assert proto.finished
