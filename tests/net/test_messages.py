"""Message types: shapes, hashing, validation."""

import pytest

from repro.net import (
    DecisionPayload,
    DirectMessage,
    FloodMessage,
    ReportPayload,
    ValuePayload,
)


class TestFloodMessage:
    def test_extended_by(self):
        m = FloodMessage(phase=1, payload=ValuePayload(0), path=(1, 2))
        assert m.extended_by(3) == (1, 2, 3)

    def test_empty_path_extension(self):
        m = FloodMessage(1, ValuePayload(1), ())
        assert m.extended_by(5) == (5,)

    def test_hashable_and_equal(self):
        a = FloodMessage(1, ValuePayload(0), (1,))
        b = FloodMessage(1, ValuePayload(0), (1,))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_phase_distinguishes(self):
        a = FloodMessage(("x", 1), ValuePayload(0), ())
        b = FloodMessage(("x", 2), ValuePayload(0), ())
        assert a != b

    def test_frozen(self):
        m = FloodMessage(1, ValuePayload(0), ())
        with pytest.raises(AttributeError):
            m.payload = ValuePayload(1)


class TestPayloads:
    def test_value_payload_validates(self):
        assert ValuePayload(0).value == 0
        assert ValuePayload(1).value == 1
        with pytest.raises(ValueError):
            ValuePayload(2)

    def test_decision_payload(self):
        assert DecisionPayload(1).value == 1

    def test_report_payload_fields(self):
        r = ReportPayload(reporter=1, subject=2, payload=ValuePayload(0), path=())
        assert r.reporter == 1 and r.subject == 2

    def test_direct_message_default_payload(self):
        d = DirectMessage(tag="ping")
        assert d.payload is None
