"""Channel models: who may unicast, and enforcement plumbing."""

import pytest

from repro.net import (
    ChannelModel,
    hybrid_model,
    local_broadcast_model,
    point_to_point_model,
)


class TestChannelModel:
    def test_local_broadcast_blocks_everyone(self):
        ch = local_broadcast_model()
        assert ch.kind == "local_broadcast"
        assert not ch.may_unicast(0)
        assert not ch.may_unicast("anyone")

    def test_point_to_point_allows_everyone(self):
        ch = point_to_point_model()
        assert ch.may_unicast(0)
        assert ch.may_unicast("x")

    def test_hybrid_allows_only_equivocators(self):
        ch = hybrid_model({3, 5})
        assert ch.may_unicast(3)
        assert ch.may_unicast(5)
        assert not ch.may_unicast(0)

    def test_hybrid_empty_is_effectively_local_broadcast(self):
        ch = hybrid_model(set())
        assert not ch.may_unicast(1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ChannelModel("telepathy")

    def test_equivocators_only_for_hybrid(self):
        with pytest.raises(ValueError):
            ChannelModel("local_broadcast", frozenset({1}))

    def test_frozen(self):
        ch = local_broadcast_model()
        with pytest.raises(AttributeError):
            ch.kind = "point_to_point"
