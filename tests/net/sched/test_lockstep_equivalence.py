"""Lockstep-scheduler equivalence: the event-driven core *is* the
synchronous simulator when every delay is one tick.

The property that licenses running every existing protocol unchanged on
the new core: for each protocol factory in the library, a run routed
through :class:`EventDrivenNetwork` + :class:`LockstepScheduler` is
byte-identical — transmissions, deliveries, outputs, decisions — to the
same run on :class:`SynchronousNetwork`.
"""

import pytest

from repro.consensus import (
    algorithm1_factory,
    algorithm2_factory,
    algorithm3_factory,
    dolev_eig_factory,
    eig_factory,
    run_consensus,
)
from repro.graphs import complete_graph, cycle_graph, paper_figure_1a
from repro.net import (
    EventDrivenNetwork,
    LockstepScheduler,
    Protocol,
    SchedulerSpec,
    SynchronousNetwork,
    TamperForwardAdversary,
    hybrid_model,
    point_to_point_model,
)

LOCKSTEP = SchedulerSpec("lockstep")


def case_id(case):
    return case[0]


# (name, graph builder, factory builder, channel builder, faulty, adversary)
# — one entry per protocol factory in the library; the paper's three
# algorithms under their native channel models plus both baselines.
CASES = [
    (
        "algorithm1",
        paper_figure_1a,
        lambda g: algorithm1_factory(g, 1),
        lambda g: None,
        [2],
        TamperForwardAdversary(),
    ),
    (
        "algorithm2",
        lambda: cycle_graph(4),
        lambda g: algorithm2_factory(g, 1),
        lambda g: None,
        [1],
        TamperForwardAdversary(),
    ),
    (
        "algorithm3",
        lambda: complete_graph(4),
        lambda g: algorithm3_factory(g, 1, 1),
        lambda g: hybrid_model({0}),
        [0],
        TamperForwardAdversary(),
    ),
    (
        "eig",
        lambda: complete_graph(4),
        lambda g: eig_factory(g, 1),
        lambda g: point_to_point_model(),
        [2],
        TamperForwardAdversary(),
    ),
    (
        "dolev-eig",
        lambda: complete_graph(5),
        lambda g: dolev_eig_factory(g, 1),
        lambda g: point_to_point_model(),
        [3],
        TamperForwardAdversary(),
    ),
]


def run_pair(case, with_fault, metered=False):
    """The same execution on both engines; returns (sync, lockstep)."""
    _, graph_builder, factory_builder, channel_builder, faulty, adversary = case
    results = []
    for scheduler in (None, LOCKSTEP):
        graph = graph_builder()
        inputs = {v: i % 2 for i, v in enumerate(sorted(graph.nodes, key=repr))}
        results.append(
            run_consensus(
                graph,
                factory_builder(graph),
                inputs,
                f=1,
                faulty=faulty if with_fault else [],
                adversary=adversary if with_fault else None,
                channel=channel_builder(graph),
                scheduler=scheduler,
                metrics=metered,
            )
        )
    return results


class TestTraceEquivalence:
    @pytest.mark.parametrize("case", CASES, ids=case_id)
    @pytest.mark.parametrize("with_fault", [False, True], ids=["honest", "faulty"])
    def test_byte_identical_traces_and_decisions(self, case, with_fault):
        sync, lockstep = run_pair(case, with_fault)
        assert lockstep.trace.transmissions == sync.trace.transmissions
        assert lockstep.trace.deliveries == sync.trace.deliveries
        assert repr(lockstep.trace) == repr(sync.trace)
        assert lockstep.outputs == sync.outputs
        assert lockstep.decision == sync.decision
        assert lockstep.rounds == sync.rounds
        assert (lockstep.consensus, lockstep.agreement, lockstep.validity) == (
            sync.consensus,
            sync.agreement,
            sync.validity,
        )

    @pytest.mark.parametrize("case", CASES, ids=case_id)
    def test_lockstep_latency_is_always_one(self, case):
        _, lockstep = run_pair(case, with_fault=True)
        assert lockstep.trace.max_latency == 1
        assert all(
            d.delivered_at == d.sent_at + 1 for d in lockstep.trace.deliveries
        )


class TestMetricEquivalence:
    """The observability layer preserves the equivalence: the canonical
    metric snapshot — counters, gauges, histograms, spans — is
    byte-identical between the two engines, tick for tick.  (The sync
    engine observes ``sched.delay = 1`` per delivery because it *is*
    the unit-delay scheduler, so even the delay histograms line up.)
    """

    @pytest.mark.parametrize("case", CASES, ids=case_id)
    @pytest.mark.parametrize(
        "with_fault", [False, True], ids=["honest", "faulty"]
    )
    def test_metric_snapshots_identical(self, case, with_fault):
        sync, lockstep = run_pair(case, with_fault, metered=True)
        assert sync.metrics is not None
        assert sync.metrics["counters"]  # instrumentation actually fired
        assert lockstep.metrics == sync.metrics

    def test_async_spans_identical_across_engines(self):
        from repro.consensus import async_factory
        from repro.graphs import wheel_graph

        graph = wheel_graph(5)
        inputs = {v: i % 2 for i, v in enumerate(sorted(graph.nodes))}
        results = []
        for scheduler in (None, LOCKSTEP):
            results.append(
                run_consensus(
                    graph,
                    async_factory(graph, 1),
                    inputs,
                    f=1,
                    scheduler=scheduler,
                    metrics=True,
                )
            )
        sync, lockstep = results
        assert sync.consensus and lockstep.consensus
        # The per-origin flood→vote→decide spans are virtual-time
        # content; both engines must anchor them to the same ticks.
        names = {span["name"] for span in sync.metrics["spans"]}
        assert {"async.flood", "async.vote", "async.decide"} <= names
        assert lockstep.metrics["spans"] == sync.metrics["spans"]
        assert lockstep.metrics == sync.metrics


class TestRawNetworkEquivalence:
    """Engine-level equality, independent of the consensus runner."""

    class Chatty(Protocol):
        def __init__(self, tag):
            self.tag = tag
            self.heard = []

        def on_round(self, ctx):
            self.heard.append(list(ctx.inbox))
            ctx.broadcast((self.tag, ctx.round_no))
            if ctx.round_no == 2:
                ctx.broadcast((self.tag, "extra"))

        def output(self):
            return None

    def test_multi_message_fifo_equality(self):
        g = cycle_graph(5)
        sync = SynchronousNetwork(g, {v: self.Chatty(v) for v in g.nodes})
        sync.run(4)
        ev = EventDrivenNetwork(
            g, {v: self.Chatty(v) for v in g.nodes}, LockstepScheduler()
        )
        ev.run(4)
        assert ev.trace.transmissions == sync.trace.transmissions
        assert ev.trace.deliveries == sync.trace.deliveries
        for v in g.nodes:
            assert ev.protocols[v].heard == sync.protocols[v].heard

    def test_context_carries_virtual_now(self):
        g = cycle_graph(4)

        class Probe(Protocol):
            def __init__(self):
                self.nows = []

            def on_round(self, ctx):
                self.nows.append((ctx.round_no, ctx.virtual_now))

            def output(self):
                return None

        probe = Probe()
        protocols = {v: (probe if v == 0 else Probe()) for v in g.nodes}
        EventDrivenNetwork(g, protocols, LockstepScheduler()).run(3)
        assert probe.nows == [(1, 1), (2, 2), (3, 3)]
