"""Asynchronous schedulers: determinism, physics constraints, adversary.

The seeded scheduler must be a pure function of its seed (identical
traces and decisions across repeated runs); every scheduler must respect
causality, the delay bound, and FIFO per link; the adversarial scheduler
must additionally keep broadcasts atomic in time and actually stretch
cut-straddling traffic.
"""

from collections import defaultdict

import pytest

from repro.consensus import algorithm1_factory, run_consensus
from repro.graphs import complete_graph, cycle_graph, paper_figure_1a
from repro.net import (
    AdversarialScheduler,
    EventDrivenNetwork,
    LockstepScheduler,
    Protocol,
    SchedulerSpec,
    SchedulingError,
    SeededAsyncScheduler,
    TamperForwardAdversary,
)
from repro.net.sched import parse_scheduler


class Echo(Protocol):
    def __init__(self, tag):
        self.tag = tag
        self.heard = []

    def on_round(self, ctx):
        self.heard.append(list(ctx.inbox))
        if ctx.round_no <= 4:
            ctx.broadcast((self.tag, ctx.round_no))

    def output(self):
        return None


def run_network(graph, scheduler, rounds=10):
    net = EventDrivenNetwork(graph, {v: Echo(v) for v in graph.nodes}, scheduler)
    net.run(rounds)
    return net


def assert_physics(trace, max_delay):
    """Causality, bounded delay, FIFO per directed link."""
    for d in trace.deliveries:
        assert d.sent_at < d.delivered_at <= d.sent_at + max_delay
    per_link = defaultdict(list)
    for d in trace.deliveries:
        per_link[(d.sender, d.recipient)].append(d.delivered_at)
    for times in per_link.values():
        assert times == sorted(times)  # deliveries never overtake (FIFO)


class TestSeededAsync:
    def test_identical_traces_across_repeated_runs(self):
        g = cycle_graph(5)
        a = run_network(g, SeededAsyncScheduler(seed=11, max_delay=3))
        b = run_network(g, SeededAsyncScheduler(seed=11, max_delay=3))
        assert a.trace.transmissions == b.trace.transmissions
        assert a.trace.deliveries == b.trace.deliveries
        for v in g.nodes:
            assert a.protocols[v].heard == b.protocols[v].heard

    def test_different_seeds_differ(self):
        g = cycle_graph(5)
        a = run_network(g, SeededAsyncScheduler(seed=1, max_delay=4))
        b = run_network(g, SeededAsyncScheduler(seed=2, max_delay=4))
        assert a.trace.deliveries != b.trace.deliveries

    @pytest.mark.parametrize("max_delay", [1, 2, 4])
    def test_physics_constraints(self, max_delay):
        g = paper_figure_1a()
        net = run_network(g, SeededAsyncScheduler(seed=3, max_delay=max_delay))
        assert_physics(net.trace, max_delay)

    def test_max_delay_one_is_lockstep(self):
        g = cycle_graph(4)
        seeded = run_network(g, SeededAsyncScheduler(seed=9, max_delay=1))
        lock = run_network(g, LockstepScheduler())
        assert seeded.trace.deliveries == lock.trace.deliveries

    def test_scheduler_is_reusable_after_rebind(self):
        """bind() resets all per-run state, so one instance replays."""
        g = cycle_graph(4)
        scheduler = SeededAsyncScheduler(seed=5, max_delay=3)
        a = run_network(g, scheduler)
        b = run_network(g, scheduler)
        assert a.trace.deliveries == b.trace.deliveries

    def test_invalid_max_delay(self):
        with pytest.raises(ValueError):
            SeededAsyncScheduler(seed=0, max_delay=0)


class TestAdversarial:
    def test_broadcast_atomicity(self):
        g = paper_figure_1a()
        net = run_network(g, AdversarialScheduler(max_delay=4))
        instants = defaultdict(set)
        for d in net.trace.deliveries:
            instants[d.send_index].add(d.delivered_at)
        assert instants and all(len(s) == 1 for s in instants.values())

    def test_physics_constraints(self):
        g = paper_figure_1a()
        net = run_network(g, AdversarialScheduler(max_delay=5))
        assert_physics(net.trace, 5)

    def test_cut_straddling_traffic_is_stretched(self):
        g = paper_figure_1a()  # 5-cycle: every min cut is 2 non-adjacent nodes
        net = run_network(g, AdversarialScheduler(max_delay=4))
        assert net.trace.max_latency == 4

    def test_deterministic_across_runs(self):
        g = complete_graph(4)  # exercises the no-cut fallback split
        a = run_network(g, AdversarialScheduler(max_delay=3))
        b = run_network(g, AdversarialScheduler(max_delay=3))
        assert a.trace.deliveries == b.trace.deliveries

    def test_complete_graph_fallback_still_delays_something(self):
        g = complete_graph(5)
        net = run_network(g, AdversarialScheduler(max_delay=3))
        assert net.trace.max_latency == 3

    def test_disconnected_graph_partitions_by_component(self):
        """Two disjoint triangles: the old half-split of the global node
        order cut *through* a component based on phantom cross-component
        deliveries.  Each component must get its own bottleneck analysis
        — here each triangle is complete, so each is half-split within
        itself, and no component's labels collide with another's."""
        from repro.graphs import Graph

        g = Graph(range(6), [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        side = AdversarialScheduler._partition(g)
        left = {side[v] for v in (0, 1, 2)}
        right = {side[v] for v in (3, 4, 5)}
        assert left.isdisjoint(right)  # labels never leak across components
        # Each complete triangle is half-split internally (2 sides), so
        # the adversary still stretches something within every component.
        assert len(left) == 2 and len(right) == 2
        scheduler = AdversarialScheduler(max_delay=3)
        net = run_network(g, scheduler)
        delays = {d.delivered_at - d.sent_at for d in net.trace.deliveries}
        assert 3 in delays  # intra-component stretching survives the fix

    def test_connected_graph_partition_unchanged(self):
        """The component fix must not disturb connected-graph behavior."""
        g = paper_figure_1a()
        side = AdversarialScheduler._partition(g)
        assert set(side) == set(g.nodes)
        assert -1 in side.values()  # a real cut still labels boundaries

    def test_window_targeting_lands_on_alpha_boundaries(self):
        """With ``window=W``, every stretched delivery arrives exactly on
        an α-schedule activation tick ``(r − 1)·W + 1``."""
        g = paper_figure_1a()
        window = 3
        net = run_network(g, AdversarialScheduler(max_delay=3, window=window))
        stretched = [d for d in net.trace.deliveries
                     if d.delivered_at - d.sent_at > 1]
        assert stretched
        for d in stretched:
            assert (d.delivered_at - 1) % window == 0, d
        assert_physics(net.trace, 3)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            AdversarialScheduler(max_delay=3, window=4)
        with pytest.raises(ValueError):
            AdversarialScheduler(max_delay=3, window=0)


class TestUnboundedDeclaration:
    def test_same_physics_without_the_promise(self):
        """declare_bound=False changes declarations, never delays."""
        g = cycle_graph(5)
        declared = run_network(g, SeededAsyncScheduler(seed=11, max_delay=3))
        undeclared = run_network(
            g, SeededAsyncScheduler(seed=11, max_delay=3, declare_bound=False)
        )
        assert undeclared.trace.deliveries == declared.trace.deliveries

    def test_scheduler_contract(self):
        s = SeededAsyncScheduler(seed=0, max_delay=3, declare_bound=False)
        assert not s.bounded
        assert s.worst_case_delay is None
        a = AdversarialScheduler(max_delay=3, declare_bound=False)
        assert not a.bounded and a.worst_case_delay is None

    def test_spec_round_trip(self):
        spec = SchedulerSpec("adversarial", max_delay=3, unbounded=True,
                             window=2)
        assert spec.name == "adversarial-unbounded"
        assert not spec.bounded
        built = spec.build(cycle_graph(4))
        assert not built.bounded
        assert built.window == 2
        parsed = parse_scheduler("seeded-async", seed=1, max_delay=3,
                                 unbounded=True, window=2)
        assert parsed.unbounded
        assert parsed.window == 0  # window only decorates the adversarial kind
        with pytest.raises(ValueError):
            SchedulerSpec("adversarial", max_delay=3, window=5)


class TestSchedulerErrors:
    def test_zero_delay_is_rejected(self):
        class Cheater(LockstepScheduler):
            def delay(self, send, recipient):
                return 0

        g = cycle_graph(4)
        with pytest.raises(SchedulingError):
            run_network(g, Cheater(), rounds=2)


class TestSchedulerSpec:
    def test_build_kinds(self):
        g = cycle_graph(4)
        assert isinstance(SchedulerSpec("lockstep").build(g), LockstepScheduler)
        seeded = SchedulerSpec("seeded-async", seed=7, max_delay=5).build(g)
        assert isinstance(seeded, SeededAsyncScheduler)
        assert (seeded.seed, seeded.max_delay) == (7, 5)
        adv = SchedulerSpec("adversarial", max_delay=2).build(g)
        assert isinstance(adv, AdversarialScheduler)
        assert adv.max_delay == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SchedulerSpec("chrono")

    def test_parse_scheduler(self):
        assert parse_scheduler("sync") is None
        assert parse_scheduler("") is None
        spec = parse_scheduler("seeded-async", seed=3, max_delay=2)
        assert spec == SchedulerSpec("seeded-async", seed=3, max_delay=2)

    def test_specs_are_picklable_and_hashable(self):
        import pickle

        spec = SchedulerSpec("adversarial", max_delay=4)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, SchedulerSpec("adversarial", max_delay=4)}) == 1


class TestRunnerIntegration:
    def test_seeded_run_consensus_is_deterministic(self):
        g = paper_figure_1a()
        spec = SchedulerSpec("seeded-async", seed=13, max_delay=3)
        inputs = {v: v % 2 for v in g.nodes}

        def once():
            return run_consensus(
                g,
                algorithm1_factory(g, 1),
                inputs,
                f=1,
                faulty=[2],
                adversary=TamperForwardAdversary(),
                scheduler=spec,
            )

        a, b = once(), once()
        assert a.trace.transmissions == b.trace.transmissions
        assert a.trace.deliveries == b.trace.deliveries
        assert a.outputs == b.outputs
        assert (a.consensus, a.agreement, a.validity, a.decision) == (
            b.consensus,
            b.agreement,
            b.validity,
            b.decision,
        )
