"""Synchronous simulator semantics: delivery, FIFO, enforcement, traces."""

import pytest

from repro.graphs import Graph, cycle_graph, star_graph
from repro.net import (
    Context,
    EquivocationError,
    Protocol,
    SimulationError,
    SynchronousNetwork,
    hybrid_model,
    local_broadcast_model,
    point_to_point_model,
)


class Echo(Protocol):
    """Broadcasts a tag each round and records everything it hears."""

    def __init__(self, tag):
        self.tag = tag
        self.heard = []

    def on_round(self, ctx: Context) -> None:
        self.heard.append(list(ctx.inbox))
        ctx.broadcast((self.tag, ctx.round_no))

    def output(self):
        return None


class Quiet(Protocol):
    def __init__(self):
        self.heard = []

    def on_round(self, ctx: Context) -> None:
        self.heard.append(list(ctx.inbox))

    def output(self):
        return None


class UnicastOnce(Protocol):
    def __init__(self, target):
        self.target = target

    def on_round(self, ctx: Context) -> None:
        if ctx.round_no == 1:
            ctx.send(self.target, "psst")

    def output(self):
        return None


class Decider(Protocol):
    def __init__(self, decide_at):
        self.decide_at = decide_at
        self._out = None

    def on_round(self, ctx: Context) -> None:
        if ctx.round_no >= self.decide_at:
            self._out = 1

    def output(self):
        return self._out


def build(graph, protocols, channel=None):
    return SynchronousNetwork(graph, protocols, channel)


class TestDelivery:
    def test_broadcast_reaches_all_neighbors_next_round(self):
        g = star_graph(3)  # hub 0, leaves 1..3
        protos = {0: Echo("hub"), 1: Quiet(), 2: Quiet(), 3: Quiet()}
        net = build(g, protos)
        net.run(2)
        for leaf in (1, 2, 3):
            assert protos[leaf].heard[0] == []
            assert protos[leaf].heard[1] == [(0, ("hub", 1))]

    def test_non_neighbors_hear_nothing(self):
        g = cycle_graph(5)
        protos = {v: (Echo(v) if v == 0 else Quiet()) for v in g.nodes}
        net = build(g, protos)
        net.run(2)
        assert protos[2].heard[1] == []  # 2 is not adjacent to 0
        assert protos[1].heard[1] == [(0, (0, 1))]

    def test_fifo_order_per_sender(self):
        class Chatty(Protocol):
            def on_round(self, ctx):
                ctx.broadcast("first")
                ctx.broadcast("second")

            def output(self):
                return None

        g = Graph.from_edges([(0, 1)])
        listener = Quiet()
        net = build(g, {0: Chatty(), 1: listener})
        net.run(2)
        assert listener.heard[1] == [(0, "first"), (0, "second")]

    def test_deterministic_cross_sender_order(self):
        g = star_graph(2)
        hub = Quiet()
        net = build(g, {0: hub, 1: Echo("a"), 2: Echo("b")})
        net.run(2)
        assert hub.heard[1] == [(1, ("a", 1)), (2, ("b", 1))]

    def test_local_broadcast_identical_to_all(self):
        g = cycle_graph(4)
        protos = {v: (Echo("x") if v == 0 else Quiet()) for v in g.nodes}
        net = build(g, protos)
        net.run(2)
        assert protos[1].heard[1] == protos[3].heard[1]


class TestChannelEnforcement:
    def test_unicast_raises_under_local_broadcast(self):
        g = Graph.from_edges([(0, 1)])
        net = build(g, {0: UnicastOnce(1), 1: Quiet()})
        with pytest.raises(EquivocationError):
            net.run(1)

    def test_unicast_allowed_under_p2p(self):
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2)])
        listener1, listener2 = Quiet(), Quiet()
        net = build(
            g, {0: UnicastOnce(1), 1: listener1, 2: listener2},
            point_to_point_model(),
        )
        net.run(2)
        assert listener1.heard[1] == [(0, "psst")]
        assert listener2.heard[1] == []  # unicast is private

    def test_hybrid_grants_only_listed_nodes(self):
        g = Graph.from_edges([(0, 1), (1, 2), (0, 2)])
        net = build(
            g, {0: UnicastOnce(1), 1: Quiet(), 2: Quiet()}, hybrid_model({0})
        )
        net.run(2)  # allowed
        net2 = build(
            g, {0: Quiet(), 1: UnicastOnce(0), 2: Quiet()}, hybrid_model({0})
        )
        with pytest.raises(EquivocationError):
            net2.run(1)

    def test_send_to_non_neighbor_rejected(self):
        g = cycle_graph(4)
        net = build(
            g, {0: UnicastOnce(2), **{v: Quiet() for v in [1, 2, 3]}},
            point_to_point_model(),
        )
        with pytest.raises(ValueError):
            net.run(1)

    def test_outbox_injection_blocked_at_delivery(self):
        class Sneaky(Protocol):
            def on_round(self, ctx):
                from repro.net import Outgoing

                ctx.outbox.append(Outgoing("evil", target=1))

            def output(self):
                return None

        g = Graph.from_edges([(0, 1)])
        net = build(g, {0: Sneaky(), 1: Quiet()})
        with pytest.raises(SimulationError):
            net.run(1)


class TestLifecycle:
    def test_protocol_coverage_validated(self):
        g = cycle_graph(3)
        with pytest.raises(SimulationError):
            SynchronousNetwork(g, {0: Quiet()})
        with pytest.raises(SimulationError):
            SynchronousNetwork(g, {v: Quiet() for v in [0, 1, 2, 99]})

    def test_run_until_decided(self):
        g = Graph.from_edges([(0, 1)])
        net = build(g, {0: Decider(2), 1: Decider(3)})
        net.run_until_decided(10)
        assert net.outputs() == {0: 1, 1: 1}
        assert net.round_no == 3

    def test_run_until_decided_timeout(self):
        g = Graph.from_edges([(0, 1)])
        net = build(g, {0: Decider(100), 1: Decider(1)})
        with pytest.raises(SimulationError):
            net.run_until_decided(5)

    def test_run_until_decided_watches_only_named(self):
        g = Graph.from_edges([(0, 1)])
        net = build(g, {0: Decider(100), 1: Decider(2)})
        net.run_until_decided(5, honest={1})
        assert net.outputs()[1] == 1

    def test_trace_accounting(self):
        g = cycle_graph(4)
        net = build(g, {v: Echo(v) for v in g.nodes})
        net.run(3)
        assert net.trace.rounds == 3
        assert net.trace.transmission_count == 12  # 4 nodes x 3 rounds
        assert net.trace.delivery_count == 24  # each broadcast reaches 2

    def test_trace_sent_by_and_received_by(self):
        g = cycle_graph(4)
        net = build(g, {v: Echo(v) for v in g.nodes})
        net.run(2)
        sent = net.trace.sent_by(0)
        assert [t.round_no for t in sent] == [1, 2]
        received = net.trace.received_by(1)
        assert all(1 in t.recipients for t in received)

    def test_replay_schedule_shape(self):
        g = cycle_graph(3)
        net = build(g, {v: Echo(v) for v in g.nodes})
        net.run(2)
        schedule = net.trace.replay_schedule(1)
        assert set(schedule) == {1, 2}
        assert schedule[1][0].message == (1, 1)
