"""The command-line interface."""

import json

import pytest

from repro.__main__ import main, parse_graph
from repro.graphs import cycle_graph, paper_figure_1b, petersen_graph


class TestParseGraph:
    def test_families(self):
        assert parse_graph("cycle:5") == cycle_graph(5)
        assert parse_graph("petersen") == petersen_graph()
        assert parse_graph("fig1b") == paper_figure_1b()
        assert parse_graph("circulant:8:1,2") == paper_figure_1b()
        assert parse_graph("complete:4").n == 4
        assert parse_graph("harary:3:8").min_degree() == 3

    def test_unknown_family(self):
        with pytest.raises(SystemExit):
            parse_graph("doughnut:5")


class TestCommands:
    def test_check(self, capsys):
        assert main(["check", "--graph", "fig1a", "--f", "1"]) == 0
        out = capsys.readouterr().out
        assert "FEASIBLE" in out
        assert "max f (local broadcast): 1" in out

    def test_check_hybrid(self, capsys):
        assert main(["check", "--graph", "complete:4", "--f", "1", "--t", "1"]) == 0
        assert "hybrid" in capsys.readouterr().out

    def test_run_no_faults(self, capsys):
        assert main(["run", "--graph", "cycle:4", "--f", "1",
                     "--algorithm", "2"]) == 0
        assert "agreement     : True" in capsys.readouterr().out

    def test_run_with_fault(self, capsys):
        code = main([
            "run", "--graph", "cycle:5", "--f", "1", "--algorithm", "1",
            "--faulty", "2", "--adversary", "tamper-forward",
        ])
        assert code == 0
        assert "validity      : True" in capsys.readouterr().out

    def test_run_equivocate_adversary_replayable(self, capsys):
        """Hybrid sweep records name 'equivocate'; cmd_run must accept
        it so those scenarios replay."""
        code = main([
            "run", "--graph", "complete:4", "--f", "1", "--t", "1",
            "--algorithm", "3", "--faulty", "0", "--adversary", "equivocate",
        ])
        assert code == 0
        assert "outcome       : decided" in capsys.readouterr().out

    def test_run_unknown_adversary(self):
        with pytest.raises(SystemExit):
            main(["run", "--graph", "cycle:5", "--f", "1",
                  "--faulty", "0", "--adversary", "mind-control"])

    def test_compare(self, capsys):
        assert main(["compare", "--max-f", "2"]) == 0
        out = capsys.readouterr().out
        assert "kappa LB" in out

    def test_demo_impossibility_degree(self, capsys):
        assert main(["demo-impossibility", "--kind", "degree", "--f", "1"]) == 0
        out = capsys.readouterr().out
        assert "violation demonstrated" in out

    def test_demo_impossibility_connectivity(self, capsys):
        code = main(["demo-impossibility", "--kind", "connectivity",
                     "--f", "2"])
        assert code == 0


class TestSweepCommand:
    def test_sweep_json_to_stdout(self, capsys):
        code = main([
            "sweep", "--graph", "cycle:4", "--f", "1",
            "--patterns", "all-one", "--fault-limit", "2",
        ])
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["all_consensus"] is True
        assert payload["graph"] == "cycle:4"
        assert payload["runs"] == len(payload["records"]) > 0

    def test_sweep_parallel_matches_serial(self, capsys):
        args = ["sweep", "--graph", "cycle:4", "--f", "1",
                "--patterns", "all-one,split", "--fault-limit", "2"]
        assert main(args) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        import json

        serial = json.loads(serial_out)
        parallel = json.loads(parallel_out)
        serial.pop("workers"), parallel.pop("workers")
        assert serial == parallel

    def test_sweep_writes_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main([
            "sweep", "--graph", "cycle:4", "--f", "1",
            "--patterns", "all-one", "--fault-limit", "1",
            "--output", str(out),
        ])
        assert code == 0
        import json

        payload = json.loads(out.read_text())
        assert payload["runs"] == len(payload["records"])
        assert "report.json" in capsys.readouterr().out


class TestSchedulerAxisParsing:
    """Malformed --scheduler lists fail loudly instead of silently
    duplicating (or emptying) slices of the work-list."""

    def sweep_args(self, scheduler):
        return ["sweep", "--graph", "cycle:4", "--f", "1",
                "--patterns", "all-one", "--fault-limit", "1",
                "--scheduler", scheduler]

    @pytest.mark.parametrize("spec", ["sync,", ",,sync", ",", ""])
    def test_empty_tokens_rejected(self, spec):
        with pytest.raises(SystemExit, match="empty scheduler token"):
            main(self.sweep_args(spec))

    @pytest.mark.parametrize("spec", ["sync,sync", "seeded-async,seeded-async",
                                      "sync,seeded-async,sync"])
    def test_duplicates_rejected(self, spec):
        with pytest.raises(SystemExit, match="duplicate scheduler"):
            main(self.sweep_args(spec))

    def test_valid_axis_still_parses(self, capsys):
        assert main(self.sweep_args("sync,seeded-async") + ["--exit-zero"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert {r["scheduler"] for r in payload["records"]} == {
            "sync", "seeded-async"
        }


class TestAlgorithm3HybridSweep:
    """Regression: `sweep --algorithm 3 --t` must run under the hybrid
    channel (cmd_run always did; cmd_sweep used to ignore --t and sweep
    pure local broadcast, where equivocation is physically impossible)."""

    def test_sweep_honors_t(self, capsys):
        code = main([
            "sweep", "--graph", "complete:4", "--f", "1", "--t", "1",
            "--algorithm", "3", "--patterns", "split",
        ])
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        adversaries = {r["adversary"] for r in payload["records"]}
        # The equivocating behavior is only *runnable* once the per-task
        # hybrid channel grants the faulty node unicast — its presence
        # (and the sweep surviving it) is the fix, end to end.
        assert "equivocate" in adversaries
        assert payload["all_consensus"] is True

    def test_equivocator_prefix_is_canonical(self):
        """Both cmd_run and the sweep derive equivocators from the same
        canonical (repr-sorted) prefix of the fault set, so listing
        --faulty in a different order cannot change who may unicast and
        sweep records replay identically under cmd_run."""
        from repro.analysis import HybridEquivocatorPolicy

        policy = HybridEquivocatorPolicy(1)
        assert policy((2, 0)) == policy((0, 2))
        assert policy((2, 0)).equivocators == frozenset({0})
        assert policy((2, 0)).may_unicast(0)
        assert not policy((2, 0)).may_unicast(2)

    def test_without_t_battery_is_standard(self, capsys):
        code = main([
            "sweep", "--graph", "complete:4", "--f", "1",
            "--algorithm", "3", "--patterns", "split",
        ])
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert "equivocate" not in {r["adversary"] for r in payload["records"]}


class TestSynchronizerFlag:
    def test_sweep_synchronizer_recovers_async_consensus(self, capsys):
        code = main([
            "sweep", "--graph", "cycle:4", "--f", "1", "--algorithm", "2",
            "--scheduler", "seeded-async", "--seed", "7",
            "--synchronizer", "alpha", "--patterns", "all-zero",
        ])
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["synchronizer"] == "alpha"
        assert payload["all_consensus"] is True
        assert payload["outcomes"] == {"decided": payload["runs"]}

    def test_run_synchronizer_flag(self, capsys):
        code = main([
            "run", "--graph", "cycle:4", "--f", "1", "--algorithm", "2",
            "--faulty", "0", "--adversary", "tamper-forward",
            "--scheduler", "seeded-async", "--seed", "7",
            "--synchronizer", "alpha",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "synchronizer  : alpha" in out
        assert "outcome       : decided" in out


class TestAsyncAlgorithm:
    def test_check_reports_async_feasibility(self, capsys):
        assert main(["check", "--graph", "wheel:5", "--f", "1"]) == 0
        out = capsys.readouterr().out
        assert "async-local-broadcast (f=1): FEASIBLE" in out
        assert "max f (async LB):" in out

    def test_run_async(self, capsys):
        code = main([
            "run", "--graph", "wheel:5", "--f", "1", "--algorithm", "async",
            "--faulty", "1", "--adversary", "silent",
            "--scheduler", "seeded-async", "--seed", "7",
            "--declare-unbounded",
        ])
        assert code == 0
        assert "outcome       : decided" in capsys.readouterr().out

    def test_async_refuses_a_synchronizer(self):
        with pytest.raises(SystemExit, match="natively asynchronous"):
            main([
                "run", "--graph", "wheel:5", "--f", "1",
                "--algorithm", "async", "--synchronizer", "alpha",
            ])

    def test_sweep_async_unbounded_with_window_targeting(self, capsys):
        code = main([
            "sweep", "--graph", "wheel:5", "--f", "1", "--algorithm", "async",
            "--scheduler", "seeded-async,adversarial", "--seed", "5",
            "--declare-unbounded", "--target-window", "3",
            "--patterns", "split",
        ])
        assert code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["all_consensus"] is True
        assert payload["outcomes"] == {"decided": payload["runs"]}
        assert {r["scheduler"] for r in payload["records"]} == {
            "seeded-async-unbounded", "adversarial-unbounded",
        }

    @pytest.mark.parametrize("command", ["run", "sweep"])
    def test_unbounded_axis_refuses_fixed_round_algorithms(self, command):
        """A fixed-round algorithm cannot be budgeted with no declared
        bound — that must be a clean CLI error, not a mid-run traceback."""
        with pytest.raises(SystemExit, match="algorithm async"):
            main([
                command, "--graph", "cycle:4", "--f", "1", "--algorithm", "2",
                "--scheduler", "seeded-async", "--declare-unbounded",
            ])

    def test_unbounded_axis_refuses_a_synchronizer(self):
        # Caught by the same fixed-round guard, before any wrapping.
        with pytest.raises(SystemExit, match="algorithm async"):
            main([
                "sweep", "--graph", "cycle:4", "--f", "1", "--algorithm", "2",
                "--scheduler", "seeded-async", "--declare-unbounded",
                "--synchronizer", "alpha",
            ])

    def test_target_window_above_max_delay_rejected(self):
        with pytest.raises(SystemExit):
            main([
                "run", "--graph", "wheel:5", "--f", "1",
                "--algorithm", "async", "--scheduler", "adversarial",
                "--max-delay", "3", "--target-window", "4",
            ])

    def test_run_fixed_ack_decides_marker_withholding(self, capsys):
        """The CLI wires --f into ack mode's marker quorum, so the
        Byzantine-stall scenario now decides from the command line too."""
        code = main([
            "run", "--graph", "cycle:4", "--f", "1", "--algorithm", "2",
            "--faulty", "1", "--adversary", "silent",
            "--scheduler", "seeded-async", "--seed", "7",
            "--synchronizer", "ack",
        ])
        assert code == 0
        assert "outcome       : decided" in capsys.readouterr().out


class TestRandomGraphSpecs:
    def test_random_regular_spec(self):
        from repro.graphs import random_regular_graph

        assert parse_graph("random_regular:8:4:3") == random_regular_graph(8, 4, 3)
        assert parse_graph("random_regular:8:4") == random_regular_graph(8, 4, 0)

    def test_gnp_spec(self):
        from repro.graphs import gnp_supercritical_graph

        assert parse_graph("gnp:12") == gnp_supercritical_graph(12, 2.0, 0)
        assert parse_graph("gnp:12:2.5:9") == gnp_supercritical_graph(12, 2.5, 9)
        assert parse_graph("gnp_supercritical:12:2.5:9") == parse_graph("gnp:12:2.5:9")


class TestMetricsFlags:
    def test_run_metrics_to_stdout(self, capsys):
        code = main(["run", "--graph", "cycle:4", "--f", "1",
                     "--algorithm", "2", "--metrics"])
        assert code == 0
        out = capsys.readouterr().out
        # The snapshot is the pretty-printed JSON block after the
        # summary lines (which also contain braces).
        payload = json.loads(out[out.index("\n{") :])
        assert payload["metrics"]["counters"]["net.ticks"] > 0
        assert "run" in payload["timings"]

    def test_run_metrics_to_file_and_events(self, tmp_path, capsys):
        metrics_file = tmp_path / "m.json"
        events_file = tmp_path / "e.ndjson"
        code = main(["run", "--graph", "cycle:4", "--f", "1",
                     "--algorithm", "2",
                     "--metrics", str(metrics_file),
                     "--events", str(events_file)])
        assert code == 0
        payload = json.loads(metrics_file.read_text())
        assert payload["metrics"]["counters"]["net.ticks"] > 0
        lines = events_file.read_text().splitlines()
        kinds = [json.loads(line)["event"] for line in lines]
        assert kinds[0] == "tick"
        assert kinds[-1] == "result"

    def test_unmetered_run_prints_no_snapshot(self, capsys):
        assert main(["run", "--graph", "cycle:4", "--f", "1",
                     "--algorithm", "2"]) == 0
        assert '"metrics"' not in capsys.readouterr().out

    def test_sweep_metrics_embedded_and_sidefile(self, tmp_path, capsys):
        metrics_file = tmp_path / "merged.json"
        report_file = tmp_path / "report.json"
        code = main(["sweep", "--graph", "cycle:4", "--f", "1",
                     "--algorithm", "2", "--patterns", "alternating",
                     "--metrics", str(metrics_file),
                     "--output", str(report_file)])
        assert code == 0
        report = json.loads(report_file.read_text())
        assert report["metrics"]["runs"] == report["runs"]
        assert report["timings"]["workers"] == 1
        merged = json.loads(metrics_file.read_text())
        assert merged["metrics"] == report["metrics"]

    def test_sweep_events_are_slot_ordered(self, tmp_path, capsys):
        events_file = tmp_path / "sweep.ndjson"
        code = main(["sweep", "--graph", "cycle:4", "--f", "1",
                     "--algorithm", "2", "--patterns", "alternating",
                     "--workers", "2", "--events", str(events_file)])
        assert code == 0
        lines = [json.loads(line)
                 for line in events_file.read_text().splitlines()]
        records = [e for e in lines if e["event"] == "record"]
        assert [e["index"] for e in records] == list(range(len(records)))
        assert lines[-1]["event"] == "summary"
        assert lines[-1]["runs"] == len(records)


class TestProfileCommand:
    def test_profile_checks_pass_and_bench_written(self, tmp_path, capsys):
        out_file = tmp_path / "BENCH_test.json"
        code = main(["profile", "--graph", "wheel:5", "--f", "1",
                     "--algorithm", "2", "--name", "test",
                     "--output", str(out_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase1_flood_accepted" in out
        assert "FAIL" not in out
        record = json.loads(out_file.read_text())
        assert record["bench"] == "test"
        assert all(c["ok"] for c in record["checks"])
        expected = record["predictions"]["expected_flood_deliveries"]
        accepted = next(c for c in record["checks"]
                        if c["name"] == "phase1_flood_accepted")
        assert accepted["actual"] == expected - record["spec"]["n"]

    def test_profile_async_has_no_round_checks(self, capsys):
        code = main(["profile", "--graph", "wheel:5", "--f", "1",
                     "--algorithm", "async", "--fault-limit", "2"])
        assert code == 0
        assert "round_budget" not in capsys.readouterr().out


class TestTraceCommand:
    DISAGREED = [
        "run", "--graph", "wheel:5", "--f", "1", "--algorithm", "2",
        "--faulty", "0", "--adversary", "tamper-forward",
        "--scheduler", "seeded-async", "--seed", "7", "--max-delay", "3",
    ]

    def _record(self, tmp_path, capsys, extra=()):
        path = tmp_path / "flight.ndjson"
        code = main(self.DISAGREED + list(extra) + ["--trace", str(path)])
        capsys.readouterr()
        assert code == 1  # disagreement, by design of the corpus
        return path

    def test_summary(self, tmp_path, capsys):
        path = self._record(tmp_path, capsys)
        assert main(["trace", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "outcome=disagreed" in out
        assert "causal_violations=0" in out

    def test_critical_path_consistent(self, tmp_path, capsys):
        path = self._record(tmp_path, capsys)
        assert main(["trace", "critical-path", str(path)]) == 0
        assert "consistent=True" in capsys.readouterr().out

    def test_blame_exit_codes(self, tmp_path, capsys):
        """The forensic contract: 0 = attributed (and only faulty nodes
        named), 1 = clean run, 2 would be unattributed."""
        path = self._record(tmp_path, capsys)
        assert main(["trace", "blame", str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["verdict"] == "attributed"
        assert report["blamed"] == [0]

        clean = tmp_path / "clean.ndjson"
        assert main(["run", "--graph", "cycle:4", "--f", "1",
                     "--algorithm", "2", "--trace", str(clean)]) == 0
        capsys.readouterr()
        assert main(["trace", "blame", str(clean)]) == 1
        assert "verdict : clean" in capsys.readouterr().out

    def test_replay_byte_identical(self, tmp_path, capsys):
        path = self._record(tmp_path, capsys)
        assert main(["trace", "replay", str(path)]) == 0
        assert "byte for byte" in capsys.readouterr().out

    def test_export_chrome(self, tmp_path, capsys):
        path = self._record(tmp_path, capsys)
        out_file = tmp_path / "trace.chrome.json"
        assert main(["trace", "export-chrome", str(path),
                     "--output", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["traceEvents"]
        phases = {e["ph"] for e in payload["traceEvents"]}
        assert {"X", "s", "f", "M"} <= phases

    def test_sweep_capture_writes_anomaly_flights(self, tmp_path, capsys):
        capture = tmp_path / "cap"
        code = main([
            "sweep", "--graph", "wheel:5", "--f", "1", "--algorithm", "2",
            "--scheduler", "seeded-async", "--seed", "7", "--max-delay", "3",
            "--patterns", "alternating", "--fault-limit", "2",
            "--workers", "2", "--exit-zero",
            "--capture", str(capture), "--output", str(tmp_path / "r.json"),
        ])
        capsys.readouterr()
        assert code == 0
        blobs = sorted(capture.glob("flight-*.ndjson"))
        assert blobs, "the corpus is known to contain anomalies"
        # Every captured blob is immediately analyzable and attributed.
        assert main(["trace", "blame", str(blobs[0])]) == 0
        capsys.readouterr()

    def test_profile_trace_records_metered_run(self, tmp_path, capsys):
        path = tmp_path / "prof.ndjson"
        assert main(["profile", "--graph", "cycle:5", "--f", "1",
                     "--algorithm", "2", "--trace", str(path)]) == 0
        capsys.readouterr()
        assert main(["trace", "replay", str(path)]) == 0
        assert "byte for byte" in capsys.readouterr().out

    def test_profile_trace_rejects_flood_receipt(self):
        with pytest.raises(SystemExit):
            main(["profile", "--graph", "wheel:9", "--f", "1",
                  "--flood-receipt", "--trace", "x.ndjson"])


class TestDirectedGraphSpecs:
    def test_oneway_spec(self):
        from repro.graphs import oneway_ring

        assert parse_graph("oneway:9:2") == oneway_ring(9, 2)
        assert parse_graph("oneway:5") == oneway_ring(5, 1)
        assert parse_graph("oneway:9:2").directed

    def test_random_digraph_spec(self):
        from repro.graphs import random_digraph

        assert parse_graph("random_digraph:8:0.3:7") == random_digraph(8, 0.3, 7)
        assert parse_graph("random_digraph:8:0.3") == random_digraph(8, 0.3, 0)

    @pytest.mark.parametrize("spec,fragment", [
        ("oneway", "takes N[:K]"),
        ("oneway:5:2:9", "takes N[:K]"),
        ("oneway:bad", "N must be an integer"),
        ("oneway:5:x", "K must be an integer"),
        ("oneway:2", "at least three nodes"),
        ("random_digraph", "takes N:P[:SEED]"),
        ("random_digraph:8", "takes N:P[:SEED]"),
        ("random_digraph:8:0.5:1:2", "takes N:P[:SEED]"),
        ("random_digraph:x:0.5", "N must be an integer"),
        ("random_digraph:8:high", "P must be a number"),
        ("random_digraph:8:0.5:soon", "SEED must be an integer"),
        ("random_digraph:8:1.5", "probability must lie in [0, 1]"),
    ])
    def test_malformed_directed_specs_fail_loudly(self, spec, fragment):
        import re

        with pytest.raises(SystemExit, match=re.escape(fragment)):
            parse_graph(spec)


class TestDirectedCommands:
    def test_check_digraph(self, capsys):
        assert main(["check", "--graph", "oneway:9:2", "--f", "1"]) == 0
        out = capsys.readouterr().out
        assert "digraph: n=9, arcs=18" in out
        assert "strong kappa=2" in out
        assert "directed-local-broadcast (f=1): FEASIBLE" in out
        assert "max f (directed local broadcast): 1" in out
        assert "max f (symmetric closure):        2" in out

    def test_check_infeasible_digraph(self, capsys):
        assert main(["check", "--graph", "oneway:5", "--f", "1"]) == 0
        out = capsys.readouterr().out
        assert "infeasible" in out
        assert "max f (directed local broadcast): 0" in out

    def test_run_on_digraph(self, capsys):
        code = main([
            "run", "--graph", "oneway:9:2", "--f", "1", "--algorithm", "2",
            "--faulty", "0", "--adversary", "tamper-forward",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "agreement     : True" in out

    def test_sweep_on_digraph_records_directed(self, tmp_path, capsys):
        out_file = tmp_path / "directed.json"
        code = main([
            "sweep", "--graph", "oneway:9:2", "--f", "1", "--algorithm", "2",
            "--fault-limit", "2", "--output", str(out_file),
        ])
        assert code == 0
        payload = json.loads(out_file.read_text())
        assert payload["all_consensus"]
        assert all(rec["directed"] for rec in payload["records"])
