"""End-to-end integration: the paper's storyline as executable checks.

Each test stitches several subsystems together the way the benchmarks
and examples do: conditions → algorithm → adversary → verdict, or
deficient graph → covering construction → violation.
"""

import pytest

from repro.consensus import (
    algorithm1_factory,
    algorithm2_factory,
    algorithm3_factory,
    check_hybrid,
    check_local_broadcast,
    check_point_to_point,
    eig_factory,
    run_consensus,
)
from repro.consensus.baselines import EIGEquivocatingAdversary
from repro.graphs import (
    complete_graph,
    cycle_graph,
    low_connectivity_graph,
    paper_figure_1a,
    paper_figure_1b,
)
from repro.lowerbounds import (
    connectivity_scenario,
    degree_scenario,
    run_scenario,
)
from repro.net import (
    CrashAdversary,
    EquivocatingAdversary,
    TamperForwardAdversary,
    hybrid_model,
    point_to_point_model,
)
from repro.net.adversary import CompositeAdversary


class TestPaperStoryline:
    def test_k3_story(self):
        """The crispest headline: 3 nodes, 1 fault.

        Point-to-point: provably impossible (n < 3f + 1) and our EIG run
        actually breaks.  Local broadcast: K3 = K_{2f+1} is feasible and
        Algorithm 1 survives the tamperer."""
        g = complete_graph(3)
        assert not check_point_to_point(g, 1).feasible
        assert check_local_broadcast(g, 1).feasible

        broken = run_consensus(
            g, eig_factory(g, 1), {v: 1 for v in g.nodes}, f=1,
            faulty=[2], adversary=EIGEquivocatingAdversary(),
            channel=point_to_point_model(),
        )
        assert not (broken.agreement and broken.validity)

        fine = run_consensus(
            g, algorithm1_factory(g, 1), {v: 1 for v in g.nodes}, f=1,
            faulty=[2], adversary=TamperForwardAdversary(),
        )
        assert fine.consensus and fine.decision == 1

    def test_figure_1a_full_pipeline(self):
        """Figure 1(a): check conditions, run both feasible algorithms."""
        g = paper_figure_1a()
        assert check_local_broadcast(g, 1).feasible
        inputs = {0: 1, 1: 0, 2: 1, 3: 0, 4: 1}
        exact = run_consensus(
            g, algorithm1_factory(g, 1), inputs, f=1,
            faulty=[2], adversary=TamperForwardAdversary(),
        )
        efficient = run_consensus(
            g, algorithm2_factory(g, 1), inputs, f=1,
            faulty=[2], adversary=TamperForwardAdversary(),
        )
        assert exact.consensus and efficient.consensus
        # Efficient: 3n rounds; exact: phases * n rounds.
        assert efficient.rounds < exact.rounds

    def test_figure_1b_conditions_and_efficient_run(self):
        g = paper_figure_1b()
        assert check_local_broadcast(g, 2).feasible
        res = run_consensus(
            g, algorithm2_factory(g, 2), {v: v % 2 for v in g.nodes}, f=2,
            faulty=[1, 5],
            adversary=CompositeAdversary(
                {1: TamperForwardAdversary(), 5: CrashAdversary(crash_round=4)}
            ),
        )
        assert res.consensus

    def test_tight_condition_is_tight(self):
        """low_connectivity_graph(f) misses the bound by exactly one:
        conditions fail, and the Figure 3 pipeline exhibits a violation."""
        f = 2
        g = low_connectivity_graph(f)
        report = check_local_broadcast(g, f)
        assert not report.feasible
        (clause,) = report.failing()
        assert clause.margin == -1  # one short of ⌊3f/2⌋ + 1

        scenario = connectivity_scenario(g, f)
        outcome = run_scenario(scenario, algorithm1_factory(g, f))
        assert outcome.violation_demonstrated

    def test_hybrid_bridges_the_models(self):
        """K4: hybrid with t = 1 = f matches p2p feasibility; the
        algorithm actually withstands a genuine equivocator."""
        g = complete_graph(4)
        assert check_hybrid(g, 1, 1).feasible is check_point_to_point(g, 1).feasible
        res = run_consensus(
            g, algorithm3_factory(g, 1, 1), {0: 0, 1: 1, 2: 0, 3: 1}, f=1,
            faulty=[1], adversary=EquivocatingAdversary(),
            channel=hybrid_model({1}),
        )
        assert res.consensus

    def test_degree_scenario_against_own_algorithm(self):
        """Run the Figure 2 machinery against Algorithm 2 as well: the
        impossibility is algorithm-independent."""
        from repro.graphs import path_graph

        g = path_graph(3)
        scenario = degree_scenario(g, 1)
        outcome = run_scenario(
            scenario, algorithm2_factory(g, 1), rounds=3 * g.n
        )
        assert outcome.violation_demonstrated


class TestCrossAlgorithmAgreement:
    """Both local-broadcast algorithms decide the same value on the same
    instance whenever the decision is forced (validity cases)."""

    @pytest.mark.parametrize("value", [0, 1])
    def test_unanimous_inputs(self, value):
        g = cycle_graph(4)
        inputs = {v: value for v in g.nodes}
        r1 = run_consensus(
            g, algorithm1_factory(g, 1), inputs, f=1,
            faulty=[3], adversary=TamperForwardAdversary(),
        )
        r2 = run_consensus(
            g, algorithm2_factory(g, 1), inputs, f=1,
            faulty=[3], adversary=TamperForwardAdversary(),
        )
        assert r1.decision == r2.decision == value

    def test_transmission_accounting_consistency(self):
        g = cycle_graph(4)
        res = run_consensus(
            g, algorithm1_factory(g, 1), {v: 0 for v in g.nodes}, f=1
        )
        # Every broadcast on C4 reaches exactly two neighbors.
        assert res.deliveries == 2 * res.transmissions
