"""End-to-end impossibility demonstrations: the necessity lemmas, live.

Each test builds the covering network for a condition-violating graph,
runs our own algorithm on it, projects the three executions, and checks
(1) a consensus violation is demonstrated and (2) every honest node's
output matches its model copy (indistinguishability) — which is the
entire content of the proofs, executed.
"""

import pytest

from repro.consensus import (
    algorithm1_factory,
    algorithm3_factory,
    check_local_broadcast,
)
from repro.graphs import (
    Graph,
    cycle_graph,
    degree_deficient_graph,
    path_graph,
)
from repro.lowerbounds import (
    connectivity_scenario,
    degree_scenario,
    hybrid_connectivity_scenario,
    hybrid_neighborhood_scenario,
    run_scenario,
)


def two_triangles_bridged():
    """κ = 1 < 2 = ⌊3/2⌋ + 1 for f = 1, but min degree 2 = 2f."""
    return Graph(
        range(7),
        [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3), (2, 6), (6, 3)],
    )


class TestFigure2Degree:
    def test_p3_violation(self):
        g = path_graph(3)
        sc = degree_scenario(g, 1)
        report = run_scenario(sc, algorithm1_factory(g, 1))
        assert report.violation_demonstrated
        assert report.fully_indistinguishable

    def test_forced_outputs_respected(self):
        g = path_graph(3)
        sc = degree_scenario(g, 1)
        report = run_scenario(sc, algorithm1_factory(g, 1))
        e1, e2, e3 = report.executions
        assert e1.respected_forced_output
        assert e3.respected_forced_output
        assert e2.violated  # the contradiction lands in E2

    @pytest.mark.slow
    def test_degree_deficient_f1(self):
        g = degree_deficient_graph(1)
        sc = degree_scenario(g, 1)
        report = run_scenario(sc, algorithm1_factory(g, 1))
        assert report.violation_demonstrated
        assert report.fully_indistinguishable

    def test_star_violation(self):
        from repro.graphs import star_graph

        g = star_graph(3)  # leaves have degree 1 < 2
        sc = degree_scenario(g, 1)
        report = run_scenario(sc, algorithm1_factory(g, 1))
        assert report.violation_demonstrated


class TestFigure3Connectivity:
    def test_bridged_triangles_violation(self):
        g = two_triangles_bridged()
        assert not check_local_broadcast(g, 1).feasible
        sc = connectivity_scenario(g, 1)
        report = run_scenario(sc, algorithm1_factory(g, 1))
        assert report.violation_demonstrated
        assert report.fully_indistinguishable

    def test_cycle_c6_f2_violation(self):
        # C6 for f = 2: κ = 2 < 4 (and degree 2 < 4; the cut is what the
        # scenario exploits).
        g = cycle_graph(6)
        sc = connectivity_scenario(g, 2)
        report = run_scenario(sc, algorithm1_factory(g, 2))
        assert report.violation_demonstrated

    def test_violation_lands_in_e2(self):
        g = two_triangles_bridged()
        sc = connectivity_scenario(g, 1)
        report = run_scenario(sc, algorithm1_factory(g, 1))
        assert not report.executions[0].violated
        assert report.executions[1].violated
        assert not report.executions[2].violated


class TestFigure4HybridNeighborhood:
    def graph(self):
        return Graph(
            range(5),
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (4, 0), (4, 1)],
        )

    def test_violation(self):
        g = self.graph()
        sc = hybrid_neighborhood_scenario(g, 1, 1)
        report = run_scenario(sc, algorithm3_factory(g, 1, 1))
        assert report.violation_demonstrated
        assert report.fully_indistinguishable

    def test_equivocating_execution_is_the_breaker(self):
        g = self.graph()
        sc = hybrid_neighborhood_scenario(g, 1, 1)
        report = run_scenario(sc, algorithm3_factory(g, 1, 1))
        assert report.executions[1].violated


class TestFigure5HybridConnectivity:
    def graph(self):
        edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        edges += [(a, b) for a in [2, 3, 4, 5] for b in [2, 3, 4, 5] if a < b]
        return Graph(range(6), edges)

    def test_violation(self):
        g = self.graph()
        sc = hybrid_connectivity_scenario(g, 1, 1)
        report = run_scenario(sc, algorithm3_factory(g, 1, 1))
        assert report.violation_demonstrated
        assert report.fully_indistinguishable

    def test_summary_text(self):
        g = self.graph()
        sc = hybrid_connectivity_scenario(g, 1, 1)
        report = run_scenario(sc, algorithm3_factory(g, 1, 1))
        text = report.summary()
        assert "violation demonstrated" in text
        assert "E2" in text


class TestContrastWithFeasibleGraphs:
    def test_feasible_graph_resists_same_replay_style(self, c5):
        """Sanity direction: on a condition-satisfying graph the same
        algorithm survives the whole adversary battery (covered at depth
        in test_algorithm1); here we confirm no scenario even exists."""
        from repro.graphs import GraphError

        with pytest.raises(GraphError):
            degree_scenario(c5, 1)
        with pytest.raises(GraphError):
            connectivity_scenario(c5, 1)
