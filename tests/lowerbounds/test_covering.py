"""Covering network structure and simulator semantics."""

import pytest

from repro.graphs import Graph, GraphError, cycle_graph, path_graph
from repro.lowerbounds import CoveringNetwork, CoveringSimulator, degree_scenario
from repro.net import Context, Protocol


class Probe(Protocol):
    """Records inbox and broadcasts its identity each round."""

    def __init__(self, tag):
        self.tag = tag
        self.heard = []

    def on_round(self, ctx: Context) -> None:
        self.heard.append(list(ctx.inbox))
        ctx.broadcast(self.tag)

    def output(self):
        return None


def tiny_network():
    """P3 (0-1-2) with node 2 doubled; copy (1,0) hears (2,0), and both
    copies of 2 hear 1."""
    g = path_graph(3)
    copies = {0: (0,), 1: (0,), 2: (0, 1)}
    listen = {
        (0, 0): {1: 0},
        (1, 0): {0: 0, 2: 0},
        (2, 0): {1: 0},
        (2, 1): {1: 0},
    }
    return CoveringNetwork(g, copies, listen)


class TestCoveringNetwork:
    def test_valid_network_constructs(self):
        net = tiny_network()
        assert len(net.all_copies()) == 4
        net.check_edge_property()

    def test_missing_copy_rejected(self):
        g = path_graph(2)
        with pytest.raises(GraphError):
            CoveringNetwork(g, {0: (0,)}, {(0, 0): {1: 0}})

    def test_listen_to_missing_copy_rejected(self):
        g = path_graph(2)
        with pytest.raises(GraphError):
            CoveringNetwork(
                g, {0: (0,), 1: (0,)},
                {(0, 0): {1: 5}, (1, 0): {0: 0}},
            )

    def test_listen_must_cover_neighbors(self):
        g = path_graph(3)
        with pytest.raises(GraphError):
            CoveringNetwork(
                g, {0: (0,), 1: (0,), 2: (0,)},
                {(0, 0): {1: 0}, (1, 0): {0: 0}, (2, 0): {1: 0}},
            )

    def test_listeners_of(self):
        net = tiny_network()
        assert net.listeners_of((2, 0)) == [(1, 0)]
        assert net.listeners_of((2, 1)) == []  # nobody listens to copy 1
        assert set(net.listeners_of((1, 0))) == {(0, 0), (2, 0), (2, 1)}


class TestCoveringSimulator:
    def test_delivery_follows_listen_map(self):
        net = tiny_network()
        protos = {c: Probe(c) for c in net.all_copies()}
        sim = CoveringSimulator(net, protos)
        sim.run(2)
        # (1,0) hears 0's copy and 2's copy 0 — not copy 1.
        heard = protos[(1, 0)].heard[1]
        assert (0, (0, 0)) in heard
        assert (2, (2, 0)) in heard
        assert (2, (2, 1)) not in heard
        # Both copies of 2 hear node 1 (as sender "1").
        assert protos[(2, 0)].heard[1] == [(1, (1, 0))]
        assert protos[(2, 1)].heard[1] == [(1, (1, 0))]

    def test_transcripts_recorded(self):
        net = tiny_network()
        protos = {c: Probe(c) for c in net.all_copies()}
        sim = CoveringSimulator(net, protos)
        sim.run(3)
        schedule = sim.transcripts[(2, 1)].as_schedule()
        assert set(schedule) == {1, 2, 3}
        assert schedule[1] == [((2, 1), None)]

    def test_unicast_rejected(self):
        class Rogue(Protocol):
            def on_round(self, ctx):
                from repro.net import Outgoing

                ctx.outbox.append(Outgoing("x", target=1))

            def output(self):
                return None

        net = tiny_network()
        protos = {c: Probe(c) for c in net.all_copies()}
        protos[(0, 0)] = Rogue()
        sim = CoveringSimulator(net, protos)
        with pytest.raises(GraphError):
            sim.run(1)

    def test_missing_protocols_rejected(self):
        net = tiny_network()
        with pytest.raises(GraphError):
            CoveringSimulator(net, {(0, 0): Probe("x")})

    def test_scenario_networks_pass_structure_check(self):
        sc = degree_scenario(path_graph(3), 1)
        sc.network.check_edge_property()
        # Exactly one copy of z and its neighbors; W doubled.
        z = sc.notes["z"]
        assert sc.network.copies[z] == (0,)
        for w in sc.notes["W"]:
            assert sc.network.copies[w] == (0, 1)
