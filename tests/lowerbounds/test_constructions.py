"""Scenario builders: partitions, budgets, and guard rails."""

import pytest

from repro.graphs import (
    Graph,
    GraphError,
    complete_graph,
    cycle_graph,
    degree_deficient_graph,
    low_connectivity_graph,
    path_graph,
)
from repro.lowerbounds import (
    connectivity_scenario,
    degree_scenario,
    hybrid_connectivity_scenario,
    hybrid_neighborhood_scenario,
)


class TestDegreeScenario:
    def test_partition_budgets(self):
        sc = degree_scenario(degree_deficient_graph(2), 2)
        f1, f2 = sc.notes["F1"], sc.notes["F2"]
        assert len(f1) <= 1  # f - 1
        assert 1 <= len(f2) <= 2
        assert not f1 & f2

    def test_execution_fault_budgets(self):
        sc = degree_scenario(path_graph(3), 1)
        for spec in sc.executions:
            assert len(spec.faulty) <= sc.f

    def test_forced_outputs_assigned(self):
        sc = degree_scenario(path_graph(3), 1)
        assert [e.forced_output for e in sc.executions] == [0, None, 1]

    def test_rejects_rich_degree(self):
        with pytest.raises(GraphError):
            degree_scenario(complete_graph(4), 1)

    def test_explicit_z(self):
        g = degree_deficient_graph(1)
        z = 5  # the appended low-degree node
        sc = degree_scenario(g, 1, z=z)
        assert sc.notes["z"] == z

    def test_inputs_cover_graph(self):
        sc = degree_scenario(path_graph(3), 1)
        for spec in sc.executions:
            assert set(spec.inputs) == sc.graph.nodes


class TestConnectivityScenario:
    def test_cut_partition_budgets(self):
        sc = connectivity_scenario(low_connectivity_graph(2), 2)
        c1, c2, c3 = sc.notes["C1"], sc.notes["C2"], sc.notes["C3"]
        assert len(c1) <= 1 and len(c2) <= 1 and len(c3) <= 1
        assert len(c1 | c2 | c3) <= 3  # floor(3f/2)
        assert sc.notes["A"] and sc.notes["B"]

    def test_rejects_well_connected(self):
        with pytest.raises(GraphError):
            connectivity_scenario(complete_graph(5), 1)

    def test_fault_budgets(self):
        # C6 has a 2-cut, within the f = 2 budget of floor(3f/2) = 3.
        sc = connectivity_scenario(cycle_graph(6), 2)
        for spec in sc.executions:
            assert len(spec.faulty) <= 2

    def test_copies_doubled_on_both_sides(self):
        sc = connectivity_scenario(cycle_graph(6), 2)
        for v in sc.notes["A"] | sc.notes["B"]:
            assert sc.network.copies[v] == (0, 1)
        for v in sc.notes["C1"] | sc.notes["C2"] | sc.notes["C3"]:
            assert sc.network.copies[v] == (0,)


class TestHybridScenarios:
    def test_neighborhood_partition(self):
        g = Graph(range(5), [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
                             (4, 0), (4, 1)])
        sc = hybrid_neighborhood_scenario(g, 1, 1)
        assert sc.notes["S"] == frozenset({4})
        assert sc.notes["R"]  # non-empty by construction
        assert len(sc.notes["T"]) <= 1

    def test_neighborhood_equivocators_in_e2_only(self):
        g = Graph(range(5), [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
                             (4, 0), (4, 1)])
        sc = hybrid_neighborhood_scenario(g, 1, 1)
        assert [bool(e.equivocators) for e in sc.executions] == [False, True, False]
        e2 = sc.executions[1]
        assert e2.equivocators == sc.notes["T"]
        assert set(e2.split_replay) == set(sc.notes["T"])

    def test_neighborhood_rejects_rich_graph(self):
        with pytest.raises(GraphError):
            hybrid_neighborhood_scenario(complete_graph(6), 1, 1)

    def test_neighborhood_rejects_t0(self):
        with pytest.raises(GraphError):
            hybrid_neighborhood_scenario(path_graph(3), 1, 0)

    def test_connectivity_scenario_partitions(self):
        edges = [(a, b) for a in range(4) for b in range(a + 1, 4)]
        edges += [(a, b) for a in [2, 3, 4, 5] for b in [2, 3, 4, 5] if a < b]
        g = Graph(range(6), edges)
        sc = hybrid_connectivity_scenario(g, 1, 1)
        assert len(sc.notes["R"]) <= 1 and len(sc.notes["T"]) <= 1
        cut = (sc.notes["C1"] | sc.notes["C2"] | sc.notes["C3"]
               | sc.notes["R"] | sc.notes["T"])
        assert len(cut) <= 2  # floor(0) + 2t
        for spec in sc.executions:
            assert len(spec.faulty) <= 1
            assert len(spec.equivocators) <= 1

    def test_connectivity_rejects_t0(self):
        with pytest.raises(GraphError):
            hybrid_connectivity_scenario(cycle_graph(5), 1, 0)
