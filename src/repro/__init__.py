"""repro — Exact Byzantine Consensus under the Local Broadcast Model.

A from-scratch reproduction of Khan, Naqvi & Vaidya (PODC 2019,
arXiv:1903.11677): tight conditions, all three algorithms, the
impossibility constructions, the classical point-to-point baseline, and
the synchronous-network substrate they run on.

Quickstart::

    from repro import graphs, consensus
    from repro.net import TamperForwardAdversary

    g = graphs.paper_figure_1a()                # the 5-cycle, f = 1
    report = consensus.check_local_broadcast(g, f=1)
    assert report.feasible

    factory = consensus.algorithm1_factory(g, f=1)
    result = consensus.run_consensus(
        g, factory, inputs={v: v % 2 for v in g.nodes},
        f=1, faulty=[3], adversary=TamperForwardAdversary(),
    )
    assert result.consensus

Subpackages: :mod:`repro.graphs` (graph substrate), :mod:`repro.net`
(synchronous simulator, channel models, adversaries),
:mod:`repro.consensus` (algorithms + conditions + baselines),
:mod:`repro.lowerbounds` (impossibility constructions),
:mod:`repro.analysis` (requirement curves, cost models, sweeps),
:mod:`repro.obs` (metrics registry, span tracer, NDJSON events,
quarantined wall timings).
"""

from . import analysis, consensus, graphs, lowerbounds, net, obs

__version__ = "1.0.0"

__all__ = [
    "analysis", "consensus", "graphs", "lowerbounds", "net", "obs",
    "__version__",
]
