"""The ``repro lint`` rule catalog.

Every rule is grounded in a bug class this repository has actually hit
(or contractually forbids).  Suppress a deliberate exception with an
inline pragma on the flagged line (or anywhere in the contiguous
comment-only block directly above it)::

    for v in small_set:  # repro: allow[REPRO001] aggregation is commutative

Rule reference
==============

``REPRO001`` — hash-order nondeterminism
    Iteration over ``set`` / ``frozenset`` / ``dict`` / ``.keys()`` /
    ``.values()`` / ``.items()`` without an enclosing ``sorted()`` (or
    another order-insensitive consumer) in a *trace-affecting* module —
    any module under ``src/repro/{graphs,net,consensus,analysis}``.
    Set order is a function of ``PYTHONHASHSEED``; dict order is a
    function of insertion history.  Both have leaked into sweep reports
    before (PR 1's ``Graph.edges()`` / flow network, PR 2's traversal
    caches).  Order-insensitive consumers — ``sorted``, ``sum``, ``min``,
    ``max``, ``any``, ``all``, ``len``, ``set``/``frozenset``
    re-aggregation, set comprehensions, membership tests — are exempt.
    *Fix:* iterate ``sorted(..., key=repr)``; *suppress* only with a note
    proving the order cannot reach a trace.

``REPRO002`` — unseeded or wall-clock entropy
    Module-level ``random.*`` calls (shared global RNG), unseeded
    ``random.Random()``, ``time.time()`` / ``time.time_ns()``,
    ``os.urandom()``, ``uuid.uuid1/uuid4()``, ``secrets.*``.  Simulation
    results must be a pure function of explicit seeds;
    ``time.perf_counter()`` for *measuring* elapsed time is fine and is
    not flagged.  *Fix:* thread a ``random.Random(seed)`` instance.

``REPRO003`` — unpicklable sweep payloads
    A lambda, nested function, or locally defined class flowing into
    ``consensus_sweep(...)``, an ``*_factory(...)`` / ``*Factory(...)``
    constructor, or ``executor.submit(...)``.  These cannot cross the
    ``ProcessPoolExecutor`` boundary; the sweep engine falls back to its
    serial path (correct but silently unparallel).  *Fix:* hoist the
    callable/class to module level.

``REPRO004`` — async delay-bound contract
    Any read of a delay-bound attribute (``worst_case_delay``,
    ``max_delay``, ``delay_bound``, ``budget_for`` — including via
    ``getattr`` with a literal name) from a module registered as
    *unbounded-safe*: ``async_alg.py`` and ``reliable.py``.  The native
    asynchronous algorithm (arXiv:1909.02865) is correct *because* no
    delay bound is read anywhere in it; this rule turns that prose
    promise into a CI gate.  *Fix:* don't — redesign the change so the
    bound stays outside the protocol.

``REPRO005`` — mutable default arguments
    A ``list`` / ``dict`` / ``set`` (literal, comprehension, or
    constructor) default in the signature of a ``Protocol`` /
    ``Scheduler`` / ``Factory`` method or a ``*factory*`` function.
    Defaults are evaluated once and shared across every instance a
    factory builds — cross-instance mutable state is exactly how one
    simulated node's history can bleed into another's.  *Fix:* default
    to ``None`` and materialize inside the body.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional

from . import dataflow
from .dataflow import ModuleModel, UNORDERED_KINDS
from .findings import ModuleContext

#: Call targets for which argument order provably cannot matter (or that
#: impose an order themselves) — iterating an unordered container into
#: them is safe.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "sum", "min", "max", "any", "all", "len", "set", "frozenset"}
)

#: Call targets that materialize their argument's iteration order.
ORDER_MATERIALIZING_CONSUMERS = frozenset(
    {"list", "tuple", "enumerate", "iter", "reversed"}
)

#: ``random`` module-level functions that draw from the shared global RNG.
GLOBAL_RNG_FUNCTIONS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "betavariate", "expovariate",
        "normalvariate", "lognormvariate", "triangular", "vonmisesvariate",
        "paretovariate", "weibullvariate", "getrandbits", "randbytes", "seed",
    }
)

#: Fully qualified wall-clock / OS-entropy callables.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "os.urandom", "uuid.uuid1", "uuid.uuid4",
        "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
        "secrets.randbelow", "secrets.choice", "secrets.randbits",
    }
)

_MUTABLE_DEFAULT_CALLS = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict"}
)

_SIGNATURE_CLASS_MARKERS = ("Protocol", "Scheduler", "Factory")


class Rule:
    """One lint rule: an id, a one-line title, and a module visitor."""

    id: str = ""
    title: str = ""

    def applies(self, ctx: ModuleContext) -> bool:
        return True

    def run(self, ctx: ModuleContext) -> None:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# REPRO001
# ---------------------------------------------------------------------------


class HashOrderRule(Rule):
    """Unordered-container iteration in trace-affecting modules."""

    id = "REPRO001"
    title = "hash-order nondeterminism"
    _hint = (
        "iterate sorted(..., key=repr), or add "
        "'# repro: allow[REPRO001] <why order cannot reach a trace>'"
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.config.is_trace_affecting(ctx.relpath)

    def run(self, ctx: ModuleContext) -> None:
        model = ctx.model
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                self._check_iterable(ctx, node.iter, "for-loop")
            elif isinstance(
                node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)
            ):
                # SetComp is exempt: its result is itself unordered, so
                # the source order cannot be observed through it.
                if isinstance(node, ast.GeneratorExp) and self._consumed_safely(
                    ctx, node
                ):
                    continue
                label = {
                    ast.ListComp: "list comprehension",
                    ast.DictComp: "dict comprehension",
                    ast.GeneratorExp: "generator",
                }[type(node)]
                for gen in node.generators:
                    self._check_iterable(ctx, gen.iter, label)
            elif isinstance(node, ast.Call):
                self._check_call(ctx, node)

    # -- helpers -----------------------------------------------------------
    def _kind(self, ctx: ModuleContext, expr: ast.expr) -> Optional[str]:
        kind = ctx.model.infer(expr, ctx.model.scope_of(expr))
        return kind if kind in UNORDERED_KINDS else None

    def _check_iterable(
        self, ctx: ModuleContext, expr: ast.expr, where: str
    ) -> None:
        kind = self._kind(ctx, expr)
        if kind is not None:
            ctx.emit(
                expr,
                self.id,
                f"{where} iterates an unordered {kind}; its order is a "
                "function of PYTHONHASHSEED/insertion history, not of the "
                "inputs",
                self._hint,
            )

    def _check_call(self, ctx: ModuleContext, call: ast.Call) -> None:
        func = call.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            name = "join"
        if name is None:
            return
        if name in ORDER_MATERIALIZING_CONSUMERS or name == "join":
            for arg in call.args[:1]:
                kind = self._kind(ctx, arg)
                if kind is not None:
                    ctx.emit(
                        arg,
                        self.id,
                        f"{name}() materializes the iteration order of an "
                        f"unordered {kind}",
                        self._hint,
                    )

    def _consumed_safely(self, ctx: ModuleContext, gen: ast.GeneratorExp) -> bool:
        parent = ctx.model.parents.get(gen)
        if isinstance(parent, ast.Call) and gen in parent.args:
            func = parent.func
            if isinstance(func, ast.Name):
                return func.id in ORDER_INSENSITIVE_CONSUMERS
        return False


# ---------------------------------------------------------------------------
# REPRO002
# ---------------------------------------------------------------------------


class EntropyRule(Rule):
    """Unseeded randomness and wall-clock reads in simulation code."""

    id = "REPRO002"
    title = "unseeded or wall-clock entropy"

    def run(self, ctx: ModuleContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.model.qualified_name(node.func)
            if qual is None:
                continue
            if qual in WALL_CLOCK_CALLS:
                ctx.emit(
                    node,
                    self.id,
                    f"{qual}() injects wall-clock/OS entropy into "
                    "simulation state",
                    "derive the value from explicit inputs or a seeded "
                    "random.Random",
                )
            elif qual.startswith("random.") and (
                qual.split(".", 1)[1] in GLOBAL_RNG_FUNCTIONS
            ):
                ctx.emit(
                    node,
                    self.id,
                    f"{qual}() draws from the shared global RNG; results "
                    "depend on call interleaving across the whole process",
                    "thread a random.Random(seed) instance instead",
                )
            elif qual == "random.Random" and not node.args and not node.keywords:
                ctx.emit(
                    node,
                    self.id,
                    "random.Random() with no seed is OS-entropy seeded",
                    "pass an explicit, reproducible seed",
                )
            elif qual.startswith("numpy.random.") and not qual.endswith(
                "default_rng"
            ):
                ctx.emit(
                    node,
                    self.id,
                    f"{qual}() draws from numpy's shared global RNG",
                    "use numpy.random.default_rng(seed)",
                )


# ---------------------------------------------------------------------------
# REPRO003
# ---------------------------------------------------------------------------


class PicklabilityRule(Rule):
    """Unpicklable payloads flowing into process-pool boundaries."""

    id = "REPRO003"
    title = "unpicklable sweep payloads"
    _labels = {
        dataflow.LAMBDA: "a lambda",
        dataflow.LOCAL_DEF: "a nested function",
        dataflow.LOCAL_CLASS: "a locally defined class",
    }

    def run(self, ctx: ModuleContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            sink = self._sink_name(node.func)
            if sink is None:
                continue
            scope = ctx.model.scope_of(node)
            values = list(node.args) + [kw.value for kw in node.keywords]
            for value in values:
                kind = ctx.model.local_definition_kind(value, scope)
                if kind is not None:
                    ctx.emit(
                        value,
                        self.id,
                        f"{self._labels[kind]} flows into {sink}(); it "
                        "cannot be pickled to sweep worker processes",
                        "hoist the callable/class to module level",
                    )

    def _sink_name(self, func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            return None
        if name in ("consensus_sweep", "submit"):
            return name
        if name.endswith("_factory") or name.endswith("Factory"):
            return name
        return None


# ---------------------------------------------------------------------------
# REPRO004
# ---------------------------------------------------------------------------


class DelayBoundContractRule(Rule):
    """No delay-bound reads inside unbounded-safe modules."""

    id = "REPRO004"
    title = "async delay-bound contract"
    _hint = (
        "this module is registered unbounded-safe (arXiv:1909.02865: no "
        "delay bound anywhere); keep the bound outside the protocol"
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.config.is_unbounded_safe(ctx.relpath)

    def run(self, ctx: ModuleContext) -> None:
        bound = frozenset(ctx.config.bound_attrs)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute) and node.attr in bound:
                ctx.emit(
                    node,
                    self.id,
                    f"read of delay-bound attribute '{node.attr}' in an "
                    "unbounded-safe module",
                    self._hint,
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "getattr"
                and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and node.args[1].value in bound
            ):
                ctx.emit(
                    node,
                    self.id,
                    f"getattr read of delay-bound attribute "
                    f"'{node.args[1].value}' in an unbounded-safe module",
                    self._hint,
                )


# ---------------------------------------------------------------------------
# REPRO005
# ---------------------------------------------------------------------------


class MutableDefaultRule(Rule):
    """Mutable defaults in Protocol / Scheduler / factory signatures."""

    id = "REPRO005"
    title = "mutable default arguments"

    def run(self, ctx: ModuleContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._in_scope(ctx.model, node):
                continue
            for default in self._defaults(node.args):
                if self._is_mutable(default):
                    ctx.emit(
                        default,
                        self.id,
                        f"mutable default in '{node.name}' signature is "
                        "evaluated once and shared across every call",
                        "default to None and materialize inside the body",
                    )

    def _in_scope(self, model: ModuleModel, func: ast.AST) -> bool:
        if "factory" in func.name.lower():
            return True
        cls = model.enclosing_class(func)
        if cls is None:
            return False
        names = [cls.name] + [
            dataflow.dotted_name(base) or "" for base in cls.bases
        ]
        return any(
            marker in name for marker in _SIGNATURE_CLASS_MARKERS for name in names
        )

    def _defaults(self, args: ast.arguments) -> Iterable[ast.expr]:
        yield from args.defaults
        yield from (d for d in args.kw_defaults if d is not None)

    def _is_mutable(self, expr: ast.expr) -> bool:
        if isinstance(
            expr, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                   ast.SetComp),
        ):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id in _MUTABLE_DEFAULT_CALLS
        return False


#: The registry, in catalog order.  ``engine.lint_source`` consults this;
#: adding a rule class here is all a new check needs.
RULES: Dict[str, Rule] = {
    rule.id: rule
    for rule in (
        HashOrderRule(),
        EntropyRule(),
        PicklabilityRule(),
        DelayBoundContractRule(),
        MutableDefaultRule(),
    )
}


def rule_catalog() -> List[Dict[str, str]]:
    """``[{id, title}, ...]`` in catalog order (for reporters and docs)."""
    return [{"id": r.id, "title": r.title} for r in RULES.values()]
