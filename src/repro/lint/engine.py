"""The lint engine: file walking, pragma suppression, baseline filtering.

The engine is a pure function from source trees to findings:

1. parse each ``.py`` file with :mod:`ast`;
2. build the module's :class:`~repro.lint.dataflow.ModuleModel` once and
   run every applicable rule from :data:`repro.lint.rules.RULES` over it;
3. drop findings suppressed by an inline pragma
   (``# repro: allow[RULE]`` on the flagged line, or anywhere in the
   contiguous comment-only block directly above it);
4. drop findings whose fingerprint appears in the committed baseline —
   pre-existing accepted findings never block CI, new regressions do.

Findings are reported in canonical ``(path, line, col, rule)`` order, so
the output is byte-identical regardless of the order paths were given —
the linter holds itself to the determinism bar it enforces.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .dataflow import ModuleModel
from .findings import Finding, LintConfig, ModuleContext
from .rules import RULES

_PRAGMA = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")
_COMMENT_ONLY = re.compile(r"^\s*#")


@dataclass
class LintResult:
    """Aggregate outcome of one lint invocation."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.errors

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {k: counts[k] for k in sorted(counts)}

    def fingerprints(self, root_lines: Dict[str, List[str]]) -> List[str]:
        """Content-addressed ids for every active finding (baseline input).

        ``root_lines`` maps each finding's path to its source lines;
        identical flagged lines within a file are disambiguated by
        occurrence index so a baseline entry pins exactly one finding.
        """
        return fingerprint_findings(self.findings, root_lines)


def fingerprint_findings(
    findings: Sequence[Finding], lines_by_path: Dict[str, List[str]]
) -> List[str]:
    seen: Dict[Tuple[str, str, str], int] = {}
    prints: List[str] = []
    for finding in sorted(findings):
        lines = lines_by_path.get(finding.path, [])
        text = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        key = (finding.rule, finding.path, text.strip())
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        prints.append(finding.fingerprint(text, occurrence))
    return prints


def _suppressed_rules(lines: List[str], line_no: int) -> Set[str]:
    """Rule ids allowed at ``line_no`` (1-based) by inline pragmas.

    A pragma applies when it appears on the flagged line itself or
    anywhere in the contiguous block of comment-only lines directly
    above it — multi-line justifications are encouraged, so the pragma
    may sit at the top of its explanatory comment block.
    """
    allowed: Set[str] = set()
    candidates = []
    if 0 < line_no <= len(lines):
        candidates.append(lines[line_no - 1])
        above = line_no - 2
        while above >= 0 and _COMMENT_ONLY.match(lines[above]):
            candidates.append(lines[above])
            above -= 1
    for text in candidates:
        for match in _PRAGMA.finditer(text):
            allowed.update(
                token.strip().upper()
                for token in match.group(1).split(",")
                if token.strip()
            )
    return allowed


def lint_source(
    source: str,
    relpath: str,
    config: Optional[LintConfig] = None,
) -> Tuple[List[Finding], List[Finding]]:
    """Lint one module's text.  Returns ``(active, suppressed)``.

    Raises :class:`SyntaxError` if the source does not parse; callers
    decide whether that is fatal (the CLI reports it and exits 2).
    """
    config = config or LintConfig()
    tree = ast.parse(source, filename=relpath)
    lines = source.splitlines()
    model = ModuleModel(
        tree,
        unordered_attrs=config.unordered_attrs,
        unordered_methods=config.unordered_methods,
    )
    ctx = ModuleContext(
        relpath=relpath, tree=tree, lines=lines, model=model, config=config
    )
    for rule in RULES.values():
        if rule.applies(ctx):
            rule.run(ctx)
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in sorted(set(ctx.findings)):
        if finding.rule in _suppressed_rules(lines, finding.line):
            suppressed.append(finding)
        else:
            active.append(finding)
    return active, suppressed


def iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    """Every ``.py`` file under ``paths`` in canonical (sorted) order."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    baseline: Optional[Set[str]] = None,
) -> Tuple[LintResult, Dict[str, List[str]]]:
    """Lint files/directories.  Returns the result plus each linted
    file's source lines (needed to fingerprint against the baseline)."""
    config = config or LintConfig()
    result = LintResult()
    lines_by_path: Dict[str, List[str]] = {}
    for path in iter_python_files(paths):
        relpath = path.as_posix()
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            result.errors.append(f"{relpath}: unreadable ({exc})")
            continue
        try:
            active, suppressed = lint_source(source, relpath, config)
        except SyntaxError as exc:
            result.errors.append(
                f"{relpath}:{exc.lineno or 0}: syntax error: {exc.msg}"
            )
            continue
        result.files_checked += 1
        lines_by_path[relpath] = source.splitlines()
        result.findings.extend(active)
        result.suppressed.extend(suppressed)
    result.findings.sort()
    result.suppressed.sort()
    if baseline:
        kept: List[Finding] = []
        prints = fingerprint_findings(result.findings, lines_by_path)
        for finding, print_ in zip(result.findings, prints):
            if print_ in baseline:
                result.baselined.append(finding)
            else:
                kept.append(finding)
        result.findings = kept
    return result, lines_by_path
