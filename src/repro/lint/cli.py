"""``python -m repro lint`` — the CLI surface of the lint subsystem.

Usage::

    python -m repro lint [paths...] [--format text|json]
                         [--baseline FILE] [--write-baseline]
                         [--show-suppressed]

Paths default to ``src``.  Exit status: 0 when no active (unsuppressed,
non-baselined) finding exists, 1 when findings remain, 2 on unreadable
or unparseable inputs.  The baseline defaults to
``.repro-lint-baseline.json`` in the working directory when that file
exists; ``--write-baseline`` rewrites it from the current findings (and
exits 0 — the findings are now accepted).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from .baseline import DEFAULT_BASELINE, load_baseline, write_baseline
from .engine import LintConfig, lint_paths
from .report import render_json, render_text


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to a (sub)parser."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", default="text", choices=["text", "json"],
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None,
        help="baseline file of accepted findings (default: "
             f"{DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept every current finding into the baseline file and "
             "exit 0",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also list pragma-suppressed findings (text format)",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed lint invocation; returns the process exit code."""
    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).exists():
        baseline_path = DEFAULT_BASELINE
    baseline = set()
    if baseline_path is not None and not args.write_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"error: cannot read baseline {baseline_path}: {exc}")
            return 2
    result, lines_by_path = lint_paths(
        args.paths, config=LintConfig(), baseline=baseline
    )
    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE
        count = write_baseline(target, result.findings, lines_by_path)
        print(f"wrote {count} accepted finding(s) to {target}")
        return 0 if not result.errors else 2
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose_suppressed=args.show_suppressed))
    if result.errors:
        return 2
    return 0 if not result.findings else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="AST-based determinism & protocol-contract checker",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - convenience entry point
    raise SystemExit(main())
