"""``repro lint`` — AST-based determinism & protocol-contract checker.

The repo's headline guarantee is that sweep reports are byte-identical
at any worker count.  That guarantee has been broken twice by latent
``PYTHONHASHSEED``-dependent iteration (PR 1's ``Graph.edges()`` / flow
network, PR 2's traversal caches), and the native asynchronous algorithm
rests on a conventional promise that no delay bound is read anywhere.
This package enforces those invariants mechanically:

* :mod:`repro.lint.rules` — the rule catalog (REPRO001–REPRO005) and
  registry;
* :mod:`repro.lint.dataflow` — the shared name-resolution / shallow
  type-inference helper the rules query;
* :mod:`repro.lint.engine` — file walking, pragma suppression
  (``# repro: allow[RULE]``), and baseline filtering;
* :mod:`repro.lint.baseline` — the committed-baseline workflow;
* :mod:`repro.lint.report` — text and JSON reporters;
* :mod:`repro.lint.cli` — the ``python -m repro lint`` subcommand.

Everything is stdlib-only (``ast``); the linter lints itself in CI.
"""

from __future__ import annotations

from .baseline import load_baseline, write_baseline
from .engine import LintResult, lint_paths, lint_source
from .findings import Finding, LintConfig
from .rules import RULES, Rule

__all__ = [
    "Finding",
    "LintConfig",
    "LintResult",
    "RULES",
    "Rule",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "write_baseline",
]
