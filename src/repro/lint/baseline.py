"""The committed-baseline workflow.

A baseline is a JSON file of fingerprints for findings a past review
accepted.  CI lints with the committed baseline, so pre-existing
accepted findings never block a build while any *new* finding does.
The intended loop:

1. a change introduces a finding that is judged acceptable but not worth
   an inline pragma (e.g. a large legacy surface adopted wholesale);
2. ``python -m repro lint <paths> --write-baseline`` records it;
3. the baseline file is committed and reviewed like any other diff;
4. later fixes shrink it — stale entries are harmless (they simply stop
   matching) but ``--write-baseline`` prunes them on rewrite.

Fingerprints hash the rule id, the file path, and the flagged line's
*text* (plus an occurrence index for identical lines), so entries
survive unrelated edits that merely shift line numbers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Set

from .engine import fingerprint_findings
from .findings import Finding

#: Default baseline location, resolved against the working directory.
DEFAULT_BASELINE = ".repro-lint-baseline.json"

_VERSION = 1


def load_baseline(path: str) -> Set[str]:
    """Fingerprints recorded at ``path`` (empty set if absent)."""
    file = Path(path)
    if not file.exists():
        return set()
    payload = json.loads(file.read_text(encoding="utf-8"))
    if payload.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} "
            f"in {path}"
        )
    return {entry["fingerprint"] for entry in payload.get("findings", [])}


def write_baseline(
    path: str,
    findings: Sequence[Finding],
    lines_by_path: Dict[str, List[str]],
) -> int:
    """Record ``findings`` (typically ``LintResult.findings``) at ``path``.

    Entries carry the human-readable location and rule next to the
    fingerprint so baseline diffs are reviewable.  Returns the entry
    count.
    """
    ordered = sorted(findings)
    prints = fingerprint_findings(ordered, lines_by_path)
    payload = {
        "version": _VERSION,
        "findings": [
            {
                "fingerprint": print_,
                "rule": finding.rule,
                "location": finding.location(),
                "message": finding.message,
            }
            for finding, print_ in zip(ordered, prints)
        ],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(payload["findings"])
