"""Shared lint value types: findings, configuration, module context.

Kept separate from :mod:`repro.lint.rules` and :mod:`repro.lint.engine`
so the rule classes and the engine can both import them without a cycle.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import List, Optional, Tuple

from .dataflow import ModuleModel


@dataclass(frozen=True, order=True)
class Finding:
    """One lint hit, addressed as ``path:line:col``.

    ``hint`` is the suggested mechanical remedy; rules keep it concrete
    (what to wrap, what pragma to add) so CI failures are actionable
    without opening the rule catalog.
    """

    path: str  # posix-style path as given on the command line
    line: int  # 1-based
    col: int  # 0-based, as ast reports it
    rule: str
    message: str
    hint: str = ""

    def fingerprint(self, line_text: str, occurrence: int = 0) -> str:
        """Content-addressed identity for the baseline workflow.

        Hashes the rule, the file, the *text* of the flagged line, and
        the occurrence index among identical lines — so a baseline entry
        survives unrelated edits that only shift line numbers.
        """
        basis = "|".join(
            (self.rule, self.path, line_text.strip(), str(occurrence))
        )
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class LintConfig:
    """Tunable scope knobs, with repo defaults baked in.

    The defaults encode this repository's contracts; tests override them
    to point rules at fixture trees (e.g. ``trace_all=True`` treats
    every linted file as trace-affecting for REPRO001).
    """

    #: Path components that mark a module as trace-affecting (REPRO001).
    trace_parts: Tuple[str, ...] = (
        "graphs", "net", "consensus", "analysis", "obs",
    )
    #: Treat every module as trace-affecting (fixture corpora).
    trace_all: bool = False
    #: Basenames registered as unbounded-safe: no delay-bound attribute
    #: may be read there (REPRO004).  ``async_alg.py`` and ``reliable.py``
    #: implement arXiv:1909.02865's "no delay bound anywhere" contract.
    unbounded_safe_basenames: Tuple[str, ...] = ("async_alg.py", "reliable.py")
    #: Delay-bound attribute names whose *read* breaks that contract.
    bound_attrs: Tuple[str, ...] = (
        "worst_case_delay",
        "max_delay",
        "delay_bound",
        "budget_for",
    )
    #: Callable names whose arguments must be picklable (REPRO003):
    #: exact names, the ``.submit`` executor method, and — checked
    #: separately — any ``*_factory`` / ``*Factory`` constructor.
    sweep_sinks: Tuple[str, ...] = ("consensus_sweep", "submit")
    #: Attribute names known repo-wide to hold unordered containers.
    unordered_attrs: Tuple[str, ...] = ("nodes",)
    #: Method names known repo-wide to return unordered containers.
    unordered_methods: Tuple[str, ...] = ("neighbors", "bfs_reachable")

    def is_trace_affecting(self, relpath: str) -> bool:
        if self.trace_all:
            return True
        parts = PurePosixPath(relpath).parts
        return any(part in self.trace_parts for part in parts[:-1])

    def is_unbounded_safe(self, relpath: str) -> bool:
        return PurePosixPath(relpath).name in self.unbounded_safe_basenames


@dataclass
class ModuleContext:
    """Everything a rule sees about one parsed module."""

    relpath: str
    tree: ast.Module
    lines: List[str]
    model: ModuleModel
    config: LintConfig
    findings: List[Finding] = field(default_factory=list)

    def emit(
        self,
        node: ast.AST,
        rule: str,
        message: str,
        hint: str = "",
        line: Optional[int] = None,
        col: Optional[int] = None,
    ) -> None:
        self.findings.append(
            Finding(
                path=self.relpath,
                line=line if line is not None else node.lineno,
                col=col if col is not None else node.col_offset,
                rule=rule,
                message=message,
                hint=hint,
            )
        )
