"""Finding reporters: human text and machine JSON.

Both render the same canonical ordering the engine produces, so the
text and JSON views of one run always describe the same findings in the
same sequence (CI archives the JSON; humans read the text).
"""

from __future__ import annotations

import json
from typing import List

from .engine import LintResult
from .rules import RULES


def render_text(result: LintResult, verbose_suppressed: bool = False) -> str:
    """``path:line:col: RULE message (hint)`` lines plus a summary."""
    lines: List[str] = []
    for error in result.errors:
        lines.append(f"error: {error}")
    for finding in result.findings:
        hint = f"  [{finding.hint}]" if finding.hint else ""
        lines.append(
            f"{finding.location()}: {finding.rule} "
            f"({RULES[finding.rule].title}): {finding.message}{hint}"
        )
    if verbose_suppressed:
        for finding in result.suppressed:
            lines.append(
                f"{finding.location()}: {finding.rule} suppressed by pragma"
            )
    summary = (
        f"{result.files_checked} files checked: "
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined"
    )
    if result.counts_by_rule():
        per_rule = ", ".join(
            f"{rule}={count}" for rule, count in result.counts_by_rule().items()
        )
        summary += f" ({per_rule})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """A stable JSON document (sorted keys, canonical finding order)."""
    payload = {
        "files_checked": result.files_checked,
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "baselined": [f.to_dict() for f in result.baselined],
        "errors": list(result.errors),
        "counts": result.counts_by_rule(),
        "clean": result.clean,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
