"""Name resolution and shallow type inference shared by the lint rules.

The rules need three module-local questions answered:

* *kind inference* — is this expression an unordered container (``set``
  / ``frozenset`` / ``dict`` / dict view), and if it is a name, what was
  it bound to?  Resolution follows assignments, ``self.`` attribute
  writes, parameter/variable annotations, and the return expressions of
  module-level functions (one level of call-site tracing);
* *import resolution* — what fully qualified callable does ``rng()`` or
  ``random.randint`` denote, given the module's imports and aliases;
* *local-definition tracking* — which names are bound to lambdas,
  nested functions, or locally defined classes (the unpicklable payloads
  REPRO003 hunts).

Everything is deliberately *module-local* and conservative: an
expression whose kind cannot be proven is ``None`` (unknown) and the
rules stay silent about it.  Cross-module inference is out of scope —
domain types that matter repo-wide (``Graph.nodes``,
``Graph.neighbors()``) are instead registered on
:class:`~repro.lint.engine.LintConfig`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional, Sequence, Tuple

# Inferred expression kinds.  ``None`` everywhere means "unknown".
SET = "set"
DICT = "dict"
DICT_VIEW = "dict-view"
ORDERED = "ordered"  # proven list/tuple/sorted result — never flagged
LAMBDA = "lambda"
LOCAL_DEF = "local-def"  # function defined inside another function
LOCAL_CLASS = "local-class"  # class defined inside a function

#: Kinds whose iteration order is a function of ``PYTHONHASHSEED`` (for
#: sets) or of insertion history (for dicts and their views).
UNORDERED_KINDS = frozenset({SET, DICT, DICT_VIEW})

#: Kinds that cannot survive :mod:`pickle` into a worker process.
UNPICKLABLE_KINDS = frozenset({LAMBDA, LOCAL_DEF, LOCAL_CLASS})

_SET_BUILTINS = frozenset({"set", "frozenset"})
_DICT_BUILTINS = frozenset({"dict"})
_ORDERED_BUILTINS = frozenset({"sorted", "list", "tuple", "reversed"})
_VIEW_METHODS = frozenset({"keys", "values", "items"})
_SET_OPS = (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)

_SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)
_DICT_ANNOTATIONS = frozenset(
    {"dict", "Dict", "Mapping", "MutableMapping", "defaultdict", "OrderedDict"}
)


def _annotation_kind(annotation: Optional[ast.expr]) -> Optional[str]:
    """The container kind an annotation promises, if any."""
    if annotation is None:
        return None
    node = annotation
    if isinstance(node, ast.Subscript):  # Dict[...], Set[...]
        node = node.value
    if isinstance(node, ast.Attribute):  # typing.Dict
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: take the head identifier ("Dict[str, int]").
        name = node.value.split("[", 1)[0].strip()
    else:
        return None
    if name in _SET_ANNOTATIONS:
        return SET
    if name in _DICT_ANNOTATIONS:
        return DICT
    return None


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class Scope:
    """One lexical scope: name → inferred kind, plus the defining nodes."""

    def __init__(self, node: ast.AST, parent: Optional["Scope"] = None):
        self.node = node
        self.parent = parent
        self.kinds: Dict[str, Optional[str]] = {}
        self.defs: Dict[str, ast.AST] = {}

    def bind(self, name: str, kind: Optional[str], node: ast.AST) -> None:
        if name in self.kinds and self.kinds[name] != kind:
            # Conflicting rebinds: give up on this name (stay silent).
            self.kinds[name] = None
        else:
            self.kinds[name] = kind
        self.defs[name] = node

    def lookup(self, name: str) -> Optional[str]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.kinds:
                return scope.kinds[name]
            scope = scope.parent
        return None

    def lookup_def(self, name: str) -> Optional[ast.AST]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.defs:
                return scope.defs[name]
            scope = scope.parent
        return None


class ModuleModel:
    """Parent links, import aliases, scopes, and kind inference for one
    parsed module.

    ``unordered_attrs`` / ``unordered_methods`` extend inference with
    repo-wide domain knowledge (attribute and method *names* known to
    produce unordered containers regardless of the receiver's type —
    e.g. ``.nodes`` and ``.neighbors()`` on :class:`repro.graphs.Graph`).
    """

    def __init__(
        self,
        tree: ast.Module,
        unordered_attrs: Sequence[str] = (),
        unordered_methods: Sequence[str] = (),
    ):
        self.tree = tree
        self.unordered_attrs = frozenset(unordered_attrs)
        self.unordered_methods = frozenset(unordered_methods)
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        #: local alias → fully qualified import path ("rnd" → "random").
        self.imports: Dict[str, str] = {}
        self._collect_imports()
        #: scope-owning node → Scope.
        self.scopes: Dict[ast.AST, Scope] = {}
        #: class node → {attr name: kind} from ``self.attr = ...`` writes.
        self.class_attrs: Dict[ast.AST, Dict[str, Optional[str]]] = {}
        #: module-level function name → FunctionDef.
        self.functions: Dict[str, ast.AST] = {}
        self._return_kinds: Dict[str, Optional[str]] = {}
        self._build_scope(tree, None)
        self._collect_class_attrs()

    # ------------------------------------------------------------------
    # construction passes
    # ------------------------------------------------------------------
    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def _build_scope(self, node: ast.AST, parent: Optional[Scope]) -> Scope:
        scope = Scope(node, parent)
        self.scopes[node] = scope
        body = getattr(node, "body", [])
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._bind_arguments(scope, node.args)
        for child in body:
            self._bind_statement(scope, child)
        return scope

    def _bind_arguments(self, scope: Scope, args: ast.arguments) -> None:
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            scope.bind(arg.arg, _annotation_kind(arg.annotation), arg)

    def _bind_statement(self, scope: Scope, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inside_function = isinstance(
                scope.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            )
            scope.bind(stmt.name, LOCAL_DEF if inside_function else None, stmt)
            if isinstance(scope.node, ast.Module):
                self.functions[stmt.name] = stmt
            self._build_scope(stmt, scope)
        elif isinstance(stmt, ast.ClassDef):
            inside_function = isinstance(
                scope.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            )
            scope.bind(stmt.name, LOCAL_CLASS if inside_function else None, stmt)
            self._build_scope(stmt, scope)
        elif isinstance(stmt, ast.Assign):
            kind = self.infer(stmt.value, scope)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    scope.bind(target.id, kind, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            kind = _annotation_kind(stmt.annotation)
            if kind is None and stmt.value is not None:
                kind = self.infer(stmt.value, scope)
            scope.bind(stmt.target.id, kind, stmt.value or stmt)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._bind_statement(scope, child)

    def _collect_class_attrs(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            attrs: Dict[str, Optional[str]] = {}
            for method in node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                scope = self.scopes.get(method)
                for stmt in ast.walk(method):
                    if isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                kind = self.infer(stmt.value, scope)
                                if target.attr in attrs and attrs[target.attr] != kind:
                                    attrs[target.attr] = None
                                else:
                                    attrs[target.attr] = kind
                    elif isinstance(stmt, ast.AnnAssign):
                        target = stmt.target
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            attrs[target.attr] = _annotation_kind(stmt.annotation)
            self.class_attrs[node] = attrs

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def scope_of(self, node: ast.AST) -> Scope:
        """The innermost enclosing scope of ``node``."""
        current: Optional[ast.AST] = node
        while current is not None:
            if current in self.scopes:
                return self.scopes[current]
            current = self.parents.get(current)
        return self.scopes[self.tree]

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            current = self.parents.get(current)
        return None

    def qualified_name(self, node: ast.expr) -> Optional[str]:
        """Resolve a call target through the module's import aliases."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        head = self.imports.get(head, head)
        return f"{head}.{rest}" if rest else head

    def function_return_kind(self, name: str) -> Optional[str]:
        """Kind of a module-level function's return value (one level of
        call-site tracing: every return statement must agree)."""
        if name in self._return_kinds:
            return self._return_kinds[name]
        self._return_kinds[name] = None  # recursion guard
        func = self.functions.get(name)
        if func is None:
            return None
        kinds = set()
        scope = self.scopes.get(func)
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                kinds.add(self.infer(stmt.value, scope))
        result = kinds.pop() if len(kinds) == 1 else None
        self._return_kinds[name] = result
        return result

    def infer(self, expr: ast.expr, scope: Optional[Scope]) -> Optional[str]:
        """Best-effort kind of ``expr`` (``None`` = unknown)."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return SET
        if isinstance(expr, (ast.Dict, ast.DictComp)):
            return DICT
        if isinstance(expr, (ast.List, ast.ListComp, ast.Tuple)):
            return ORDERED
        if isinstance(expr, ast.Lambda):
            return LAMBDA
        if isinstance(expr, ast.IfExp):
            a = self.infer(expr.body, scope)
            return a if a == self.infer(expr.orelse, scope) else None
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_OPS):
            left = self.infer(expr.left, scope)
            right = self.infer(expr.right, scope)
            if SET in (left, right) or DICT_VIEW in (left, right):
                return SET
            return None
        if isinstance(expr, ast.Call):
            return self._infer_call(expr, scope)
        if isinstance(expr, ast.Name):
            if scope is not None:
                return scope.lookup(expr.id)
            return None
        if isinstance(expr, ast.Attribute):
            # The class's own ``self.attr`` assignments outrank the
            # config-registered attribute names: ``self.nodes = sorted(...)``
            # is proven ordered even though ``.nodes`` is suspicious
            # elsewhere.
            if isinstance(expr.value, ast.Name) and expr.value.id == "self":
                cls = self.enclosing_class(expr)
                if cls is not None:
                    kind = self.class_attrs.get(cls, {}).get(expr.attr)
                    if kind is not None:
                        return kind
            if expr.attr in self.unordered_attrs:
                return SET
            return None
        return None

    def _infer_call(self, call: ast.Call, scope: Optional[Scope]) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in _SET_BUILTINS:
                return SET
            if func.id in _DICT_BUILTINS:
                return DICT
            if func.id in _ORDERED_BUILTINS:
                return ORDERED
            if func.id in self.functions:
                return self.function_return_kind(func.id)
            return None
        if isinstance(func, ast.Attribute):
            if func.attr in _VIEW_METHODS and not call.args and not call.keywords:
                return DICT_VIEW
            if func.attr in self.unordered_methods:
                return SET
            if func.attr == "copy":
                return self.infer(func.value, scope)
        return None

    # ------------------------------------------------------------------
    def local_definition_kind(
        self, expr: ast.expr, scope: Scope
    ) -> Optional[str]:
        """Is ``expr`` an unpicklable payload (REPRO003)?

        Returns one of :data:`UNPICKLABLE_KINDS` or ``None``.  A bare
        lambda is unpicklable; a name is unpicklable when it is bound to
        a lambda, a function defined inside another function, or a class
        defined inside a function.
        """
        if isinstance(expr, ast.Lambda):
            return LAMBDA
        if isinstance(expr, ast.Name):
            kind = scope.lookup(expr.id)
            if kind in UNPICKLABLE_KINDS:
                return kind
        return None


def iter_comprehension_generators(
    node: ast.AST,
) -> Iterable[Tuple[ast.comprehension, ast.AST]]:
    """Yield ``(generator, owning comprehension)`` pairs under ``node``."""
    for child in ast.walk(node):
        if isinstance(
            child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for gen in child.generators:
                yield gen, child
