"""Command-line interface: quick checks and demos without writing code.

Usage::

    python -m repro check --graph cycle:5 --f 1 [--t 1]
    python -m repro run   --graph cycle:5 --f 1 --algorithm 1 \
                          --faulty 3 --adversary tamper-forward
    python -m repro sweep --graph cycle:5 --f 1 --workers 2
    python -m repro sweep --graph cycle:5 --f 1 \
                          --scheduler seeded-async --seed 7 --max-delay 3
    python -m repro lint  src benchmarks examples [--format json]
    python -m repro compare --max-f 5
    python -m repro demo-impossibility --kind degree --f 1

Graph specs: ``cycle:N``, ``complete:N``, ``path:N``, ``wheel:N``,
``circulant:N:d1,d2``, ``harary:K:N``, ``petersen``, ``fig1a``,
``fig1b``, ``random_regular:N:D[:SEED]``, ``gnp:N[:C[:SEED]]``.
Directed specs (true digraphs — every command accepts them):
``random_digraph:N:P[:SEED]`` and ``oneway:N[:K]``.

Schedulers (``run``/``sweep`` ``--scheduler``): ``sync`` (the default
synchronous simulator), ``lockstep`` (event-driven core, trace-identical
to ``sync``), ``seeded-async`` (seeded random per-link delays),
``adversarial`` (worst-case cut-straddling timing).  ``sweep`` accepts a
comma-separated list to multiply the work-list by a timing axis.

``--synchronizer alpha|ack`` wraps the chosen algorithm in the
α-synchronizer (:mod:`repro.consensus.synchronizer`), which recovers
the synchronous round abstraction — and with it consensus — under the
asynchronous schedulers::

    python -m repro sweep --graph cycle:4 --f 1 --algorithm 2 \\
                          --scheduler seeded-async --synchronizer alpha

``--algorithm async`` runs the native asynchronous algorithm
(:mod:`repro.consensus.async_alg`, arXiv:1909.02865): message-driven,
no round schedule, and no delay bound read anywhere — pair it with
``--declare-unbounded`` to prove the point end to end::

    python -m repro sweep --graph wheel:5 --f 1 --algorithm async \\
                          --scheduler seeded-async,adversarial \\
                          --declare-unbounded
"""

from __future__ import annotations

import argparse
import json
import sys

from . import consensus, graphs
from .analysis import requirement_table
from .lowerbounds import (
    connectivity_scenario,
    degree_scenario,
    run_scenario,
)
from .net import EquivocatingAdversary, standard_adversaries
from .net.channels import local_broadcast_model
from .net.sched import SCHEDULER_KINDS, parse_scheduler


def _spec_int(spec: str, token: str, what: str) -> int:
    """Parse one integer field of a graph spec, failing loudly: the bare
    ``ValueError`` out of ``int()`` names neither the spec nor the field."""
    try:
        return int(token)
    except ValueError:
        raise SystemExit(
            f"graph spec {spec!r}: {what} must be an integer, got {token!r}"
        ) from None


def _spec_float(spec: str, token: str, what: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise SystemExit(
            f"graph spec {spec!r}: {what} must be a number, got {token!r}"
        ) from None


def parse_graph(spec: str) -> graphs.Graph:
    """Parse a ``family:args`` graph spec into a Graph (or Digraph)."""
    parts = spec.split(":")
    family = parts[0]
    if family == "random_digraph":
        if len(parts) < 3 or len(parts) > 4:
            raise SystemExit(
                f"graph spec {spec!r}: random_digraph takes N:P[:SEED] "
                f"(got {len(parts) - 1} field(s))"
            )
        n = _spec_int(spec, parts[1], "N")
        p = _spec_float(spec, parts[2], "P")
        seed = _spec_int(spec, parts[3], "SEED") if len(parts) > 3 else 0
        try:
            return graphs.random_digraph(n, p, seed)
        except ValueError as exc:
            raise SystemExit(f"graph spec {spec!r}: {exc}") from None
    if family == "oneway":
        if len(parts) < 2 or len(parts) > 3:
            raise SystemExit(
                f"graph spec {spec!r}: oneway takes N[:K] "
                f"(got {len(parts) - 1} field(s))"
            )
        n = _spec_int(spec, parts[1], "N")
        k = _spec_int(spec, parts[2], "K") if len(parts) > 2 else 1
        try:
            return graphs.oneway_ring(n, k)
        except ValueError as exc:
            raise SystemExit(f"graph spec {spec!r}: {exc}") from None
    if family == "cycle":
        return graphs.cycle_graph(int(parts[1]))
    if family == "complete":
        return graphs.complete_graph(int(parts[1]))
    if family == "path":
        return graphs.path_graph(int(parts[1]))
    if family == "wheel":
        return graphs.wheel_graph(int(parts[1]))
    if family == "star":
        return graphs.star_graph(int(parts[1]))
    if family == "circulant":
        offsets = [int(x) for x in parts[2].split(",")]
        return graphs.circulant_graph(int(parts[1]), offsets)
    if family == "harary":
        return graphs.harary_graph(int(parts[1]), int(parts[2]))
    if family == "petersen":
        return graphs.petersen_graph()
    if family == "fig1a":
        return graphs.paper_figure_1a()
    if family == "fig1b":
        return graphs.paper_figure_1b()
    if family == "random_regular":
        seed = int(parts[3]) if len(parts) > 3 else 0
        return graphs.random_regular_graph(int(parts[1]), int(parts[2]), seed)
    if family in ("gnp", "gnp_supercritical"):
        c = float(parts[2]) if len(parts) > 2 else 2.0
        seed = int(parts[3]) if len(parts) > 3 else 0
        return graphs.gnp_supercritical_graph(int(parts[1]), c, seed)
    raise SystemExit(f"unknown graph spec {spec!r}")


def parse_scheduler_axis(
    spec: str, seed: int, max_delay: int, unbounded: bool = False, window: int = 0
):
    """Parse a comma-separated ``--scheduler`` list into a sweep axis.

    Malformed lists fail loudly: an empty token (``sync,`` / ``,,sync``)
    would silently duplicate the synchronous fast path, and a repeated
    kind would silently double a slice of the work-list — both would
    skew every aggregate the report prints, so both are errors.

    ``unbounded`` (``--declare-unbounded``) strips the delay-bound
    declaration from every asynchronous entry; ``window``
    (``--target-window``) arms the adversarial scheduler's synchronizer-
    boundary targeting.  Both decorate whichever entries they apply to.
    """
    axis = []
    seen = set()
    for token in spec.split(","):
        name = token.strip()
        if not name:
            raise SystemExit(
                f"empty scheduler token in {spec!r}; "
                "use a comma-separated list like 'sync,seeded-async'"
            )
        if name not in ("sync", *SCHEDULER_KINDS):
            choices = ["sync", *SCHEDULER_KINDS]
            raise SystemExit(f"unknown scheduler {name!r}; choose from {choices}")
        if name in seen:
            raise SystemExit(
                f"duplicate scheduler {name!r} in {spec!r}; "
                "each axis entry may appear once"
            )
        seen.add(name)
        try:
            axis.append(
                parse_scheduler(
                    name, seed=seed, max_delay=max_delay,
                    unbounded=unbounded, window=window,
                )
            )
        except ValueError as exc:  # e.g. --max-delay 0
            raise SystemExit(str(exc))
    return axis


def require_bounded_axis(algorithm: str, axis) -> None:
    """Fail fast on ``--declare-unbounded`` with a fixed-round algorithm.

    The runner cannot budget a round-scheduled protocol with no declared
    delay bound (it would raise mid-run); only the native asynchronous
    algorithm runs in that regime.
    """
    if algorithm != "async" and any(
        spec is not None and not spec.bounded for spec in axis
    ):
        raise SystemExit(
            "--declare-unbounded strips the delay bound the fixed-round "
            "algorithms' budgets need; use --algorithm async (or drop "
            "the flag)"
        )


def apply_synchronizer(factory, mode: str, axis, f: int = 0):
    """Wrap ``factory`` for ``--synchronizer``; ``none`` is the identity.

    The window is the worst declared delay bound across the axis — a
    window larger than one entry's bound only stretches rounds further,
    never breaks them.  ``f`` arms ack mode's fault-tolerant ``deg − f``
    marker quorum; its α-window timeout gate requires every axis entry
    to declare a bound (``sync`` counts: its delays are exactly 1).
    """
    if mode == "none":
        return factory
    # An unbounded axis entry never reaches this point: require_bounded_axis
    # rejects every fixed-round algorithm on such an axis first, and the
    # async algorithm refuses synchronizers in build_factory.
    window = max(
        (spec.worst_case_delay for spec in axis if spec is not None),
        default=1,
    )
    # Every axis entry is bounded here (checked above), so ack mode's
    # α-window gate is sound — arm it explicitly, since the factory
    # derivation only sees a single scheduler spec, not the axis.
    return consensus.synchronize_factory(
        factory,
        mode=mode,
        window=window,
        f=f if mode == "ack" else 0,
        ack_timeout=True if mode == "ack" else None,
    )


def find_adversary(name: str):
    # The standard battery plus the hybrid-only equivocator, so every
    # adversary a sweep record can name is replayable through `run`.
    candidates = standard_adversaries() + [EquivocatingAdversary()]
    for adversary in candidates:
        if adversary.name == name:
            return adversary
    names = [a.name for a in candidates]
    raise SystemExit(f"unknown adversary {name!r}; choose from {names}")


def cmd_check(args: argparse.Namespace) -> int:
    graph = parse_graph(args.graph)
    if graph.directed:
        print(f"digraph: n={graph.n}, arcs={graph.arc_count}, "
              f"min in-degree={graph.min_in_degree()}, "
              f"min out-degree={graph.min_out_degree()}, "
              f"strong kappa={graphs.directed_vertex_connectivity(graph)}")
        print(consensus.check_directed_local_broadcast(graph, args.f))
        print(consensus.check_directed_decomposition(graph, args.f))
        directed_max = consensus.max_f_directed_local_broadcast(graph)
        closure_max = consensus.max_f_local_broadcast(graph.to_undirected())
        print(f"max f (directed local broadcast): {directed_max}")
        print(f"max f (symmetric closure):        {closure_max}")
        return 0
    print(f"graph: n={graph.n}, m={graph.edge_count}, "
          f"min degree={graph.min_degree()}, "
          f"kappa={graphs.vertex_connectivity(graph)}")
    print(consensus.check_local_broadcast(graph, args.f))
    print(consensus.check_async_local_broadcast(graph, args.f))
    print(consensus.check_point_to_point(graph, args.f))
    if args.t is not None:
        print(consensus.check_hybrid(graph, args.f, args.t))
    print(f"max f (local broadcast): {consensus.max_f_local_broadcast(graph)}")
    print(f"max f (async LB):        {consensus.max_f_async_local_broadcast(graph)}")
    print(f"max f (point-to-point):  {consensus.max_f_point_to_point(graph)}")
    return 0


def build_factory(args: argparse.Namespace, graph: graphs.Graph):
    """The ``--algorithm`` dispatch shared by ``run`` and ``sweep``."""
    if args.algorithm == "1":
        return consensus.algorithm1_factory(graph, args.f)
    if args.algorithm == "2":
        return consensus.algorithm2_factory(graph, args.f)
    if args.algorithm == "3":
        return consensus.algorithm3_factory(graph, args.f, args.t or 0)
    if args.algorithm == "async":
        if args.synchronizer != "none":
            raise SystemExit(
                "the async algorithm is natively asynchronous; "
                "use --synchronizer none"
            )
        return consensus.async_factory(graph, args.f)
    raise SystemExit(f"unknown algorithm {args.algorithm!r}")


def build_metrics(args: argparse.Namespace):
    """``--metrics``/``--events`` → a metered registry, or ``None``.

    ``--metrics`` with no value prints the snapshot to stdout; with a
    path it writes there.  ``--events FILE`` attaches an NDJSON event
    log; giving it alone still meters the run (events need a registry).
    """
    from .obs import EventLog, MetricsRegistry

    if args.metrics is None and not args.events:
        return None
    events = EventLog.open(args.events) if args.events else None
    return MetricsRegistry(events=events)


def emit_metrics(args: argparse.Namespace, registry, metrics, timings) -> None:
    """Write/print a run's metrics per ``--metrics`` and close the log.

    The payload keeps the quarantine split explicit: ``metrics`` is
    canonical content, ``timings`` is wall-clock commentary (strip it
    before any determinism comparison).
    """
    if registry is None:
        return
    if args.metrics is not None:
        payload = json.dumps(
            {"metrics": metrics, "timings": timings},
            indent=2, sort_keys=True, default=repr,
        )
        if args.metrics == "-":
            print(payload)
        else:
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"wrote metrics to {args.metrics}")
    if registry.events is not None:
        count = registry.events.count
        registry.events.close()
        print(f"wrote {count} events to {args.events}")


def cmd_run(args: argparse.Namespace) -> int:
    graph = parse_graph(args.graph)
    factory = build_factory(args, graph)
    nodes = sorted(graph.nodes, key=repr)
    inputs = {v: i % 2 for i, v in enumerate(nodes)}
    faulty = []
    adversary = None
    channel = local_broadcast_model()
    if args.faulty:
        faulty = [nodes[int(i)] for i in args.faulty.split(",")]
        adversary = find_adversary(args.adversary)
    if args.algorithm == "3" and args.t:
        # Same canonical (repr-sorted) prefix rule as sweep's
        # HybridEquivocatorPolicy, so a sweep record's scenario replays
        # identically here regardless of --faulty argument order.
        from .analysis import HybridEquivocatorPolicy

        channel = HybridEquivocatorPolicy(args.t)(tuple(faulty))
    axis = parse_scheduler_axis(
        args.scheduler, args.seed, args.max_delay,
        unbounded=args.declare_unbounded, window=args.target_window,
    )
    if len(axis) != 1:
        raise SystemExit("run takes exactly one --scheduler")
    require_bounded_axis(args.algorithm, axis)
    factory = apply_synchronizer(factory, args.synchronizer, axis, f=args.f)
    registry = build_metrics(args)
    result = consensus.run_consensus(
        graph, factory, inputs, f=args.f, faulty=faulty,
        adversary=adversary, channel=channel, scheduler=axis[0],
        metrics=registry, flight=bool(args.trace),
    )
    print(f"inputs        : {inputs}")
    print(f"faulty        : {faulty} ({args.adversary if faulty else 'none'})")
    print(f"scheduler     : {args.scheduler}")
    print(f"synchronizer  : {args.synchronizer}")
    print(f"honest outputs: {result.honest_outputs}")
    print(f"agreement     : {result.agreement}")
    print(f"validity      : {result.validity}")
    print(f"outcome       : {result.outcome}")
    print(f"rounds        : {result.rounds}")
    print(f"transmissions : {result.transmissions}")
    print(f"max latency   : {result.trace.max_latency}")
    emit_metrics(args, registry, result.metrics, result.timings)
    if args.trace:
        assert result.flight is not None
        result.flight.save(args.trace)
        print(f"wrote flight recording to {args.trace}")
    return 0 if result.consensus else 1


def cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis import HybridEquivocatorPolicy, consensus_sweep

    graph = parse_graph(args.graph)
    channel_policy = None
    adversaries = None
    factory = build_factory(args, graph)
    if args.algorithm == "3" and args.t:
        # Mirror cmd_run: Algorithm 3's whole point is the hybrid
        # channel, whose equivocator set is (a prefix of) each
        # task's fault placement — derive it per task.
        channel_policy = HybridEquivocatorPolicy(args.t)
        if args.t >= args.f:
            # Every fault placement is fully equivocating, so the
            # equivocation behavior is physically possible on each
            # faulty node — add it to the battery the sweep runs.
            adversaries = standard_adversaries(args.seed) + [
                EquivocatingAdversary()
            ]
    patterns = args.patterns.split(",") if args.patterns else None
    if patterns is not None:
        from .analysis import input_patterns

        known = sorted(input_patterns(graph))
        unknown = [p for p in patterns if p not in known]
        if unknown:
            raise SystemExit(
                f"unknown input patterns {unknown}; choose from {known}"
            )
    schedulers = parse_scheduler_axis(
        args.scheduler, args.seed, args.max_delay,
        unbounded=args.declare_unbounded, window=args.target_window,
    )
    require_bounded_axis(args.algorithm, schedulers)
    factory = apply_synchronizer(factory, args.synchronizer, schedulers, f=args.f)
    metered = args.metrics is not None or bool(args.events)
    report = consensus_sweep(
        graph,
        factory,
        f=args.f,
        adversaries=adversaries,
        fault_limit=args.fault_limit,
        patterns=patterns,
        seed=args.seed,
        workers=args.workers,
        schedulers=schedulers,
        channel_policy=channel_policy,
        metrics=metered,
        capture=args.capture_policy if args.capture else None,
    )
    text = report.to_json(
        graph=args.graph, f=args.f, workers=args.workers,
        scheduler=args.scheduler, synchronizer=args.synchronizer,
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {report.runs} records to {args.output}")
    else:
        print(text)
    if metered and args.metrics not in (None, "-"):
        # Side file with just the aggregate: the merged canonical
        # snapshot plus the quarantined wall-clock section.
        with open(args.metrics, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"metrics": report.metrics, "timings": report.timings},
                indent=2, sort_keys=True, default=repr,
            ) + "\n")
        print(f"wrote merged metrics to {args.metrics}")
    if args.events:
        # Canonical slot order (records are slotted by task index), so
        # the NDJSON stream is byte-identical at any worker count.
        from .obs import EventLog

        with EventLog.open(args.events) as events:
            for index, rec in enumerate(report.records):
                events.emit(
                    "record",
                    index=index,
                    faulty=rec.faulty,
                    adversary=rec.adversary,
                    inputs=rec.inputs_name,
                    scheduler=rec.scheduler,
                    outcome=rec.outcome,
                    rounds=rec.rounds,
                    transmissions=rec.transmissions,
                    decision=rec.decision,
                )
            events.emit(
                "summary",
                runs=report.runs,
                all_consensus=report.all_consensus,
                outcomes=report.outcomes,
            )
            count = events.count
        print(f"wrote {count} events to {args.events}")
    if args.capture:
        # One file per retained task, named by canonical task index — the
        # same index at any --workers, so a capture directory diffs clean
        # across worker counts.
        import os

        os.makedirs(args.capture, exist_ok=True)
        for index in sorted(report.flights):
            path = os.path.join(args.capture, f"flight-{index:05d}.ndjson")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(report.flights[index])
        print(f"captured {len(report.flights)} flight recordings "
              f"({args.capture_policy}) to {args.capture}")
    if args.exit_zero:
        return 0
    return 0 if report.all_consensus else 1


def _profile_flood_receipt(args: argparse.Namespace) -> int:
    """``profile --flood-receipt``: one analytic fault-free flood plus
    reliable receipt at a single receiver.

    No simulator: the prefix-sharing :class:`~repro.consensus.path_engine
    .PathFloodEngine` materializes every delivery at the receiver
    directly, then Definition C.1 is evaluated for every origin over the
    per-origin delivery slices.  This is the harness that exercises the
    bitmask path-set core at scales the round simulator cannot touch
    (``wheel:99`` completes in seconds); on wheel graphs the delivery
    count is checked against the closed form of
    :func:`~repro.analysis.metrics.expected_wheel_deliveries_at_rim`.
    """
    from time import perf_counter

    from .analysis.metrics import expected_wheel_deliveries_at_rim
    from .consensus.path_engine import NodeBehavior, PathFloodEngine
    from .consensus.reliable import reliable_payload
    from .obs import MetricsRegistry, bench_json, bench_record, check

    graph = parse_graph(args.graph)
    nodes = sorted(graph.nodes, key=repr)
    inputs = {v: i % 2 for i, v in enumerate(nodes)}
    metrics = MetricsRegistry()
    engine = PathFloodEngine(
        graph,
        {v: NodeBehavior.honest(inputs[v]) for v in nodes},
        metrics=metrics,
    )
    # Deterministic receiver choice; for wheel:N (hub 0, rim 1..N-1)
    # this is always a rim node, which the closed form assumes.
    receiver = nodes[-1]
    t0 = perf_counter()
    deliveries = engine.deliveries_at(receiver)
    flood_s = perf_counter() - t0

    # One pass splits the delivery set per origin and records each
    # path's visited-set bitmask — the receipt layer then never scans
    # the full dict and packs disjointness over plain ints.
    index = graph.node_index()
    by_origin: dict = {}
    path_masks: dict = {}
    t0 = perf_counter()
    for path, value in deliveries.items():
        by_origin.setdefault(path[0], {})[path] = value
        path_masks[path] = index.mask_of(path)
    received: dict = {}
    for origin in nodes:
        payload = reliable_payload(
            graph,
            args.f,
            receiver,
            by_origin.get(origin, {}),
            origin,
            metrics=metrics,
            path_mask=path_masks.__getitem__,
        )
        if payload is not None:
            received[origin] = payload
    receipt_s = perf_counter() - t0

    checks = [
        check("reliable_origins", graph.n, len(received)),
        check(
            "reliable_values_match_inputs",
            True,
            all(received.get(v) == inputs[v] for v in nodes),
        ),
    ]
    predictions = {"n": graph.n, "f": args.f}
    if args.graph.startswith("wheel:"):
        expected = expected_wheel_deliveries_at_rim(graph.n - 1)
        predictions["expected_deliveries"] = expected
        checks.append(check("flood_deliveries", expected, len(deliveries)))

    timings = {
        "flood": flood_s,
        "receipt": receipt_s,
        "total": flood_s + receipt_s,
    }
    record = bench_record(
        args.name or "profile_flood_receipt",
        spec={
            "graph": args.graph,
            "n": graph.n,
            "f": args.f,
            "mode": "flood-receipt",
            "receiver": receiver,
        },
        predictions=predictions,
        measured={
            "deliveries": len(deliveries),
            "reliable_origins": len(received),
        },
        checks=checks,
        metrics=metrics.snapshot(),
        timings=timings,
    )
    print(f"profile: flood+receipt on {args.graph} "
          f"(n={graph.n}, f={args.f}, receiver={receiver!r})")
    print(f"  flood   deliveries={len(deliveries)} in {flood_s:.3f}s")
    print(f"  receipt origins={len(received)}/{graph.n} in {receipt_s:.3f}s")
    for entry in checks:
        verdict = "ok" if entry["ok"] else "FAIL"
        print(f"  check   {entry['name']}: expected={entry['expected']} "
              f"actual={entry['actual']} {verdict}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(bench_json(record) + "\n")
        print(f"wrote bench record to {args.output}")
    return 0 if all(entry["ok"] for entry in checks) else 1


def cmd_profile(args: argparse.Namespace) -> int:
    """Metered fault-free run + metered sweep, checked against the
    closed forms of :mod:`repro.analysis.metrics`.

    With ``--output`` the result is written as a ``BENCH_<name>.json``
    record (schema in :mod:`repro.obs.bench`); exit status reports
    whether every closed-form check passed.
    """
    from .analysis import consensus_sweep
    from .analysis.metrics import expected_flood_deliveries, predicted_costs
    from .obs import bench_json, bench_record, check, render_key

    if args.flood_receipt:
        if args.trace:
            raise SystemExit(
                "--trace records a simulated run; --flood-receipt is "
                "analytic (no network events to record)"
            )
        return _profile_flood_receipt(args)
    graph = parse_graph(args.graph)
    factory = build_factory(args, graph)
    nodes = sorted(graph.nodes, key=repr)
    inputs = {v: i % 2 for i, v in enumerate(nodes)}
    result = consensus.run_consensus(
        graph, factory, inputs, f=args.f, metrics=True,
        flight=bool(args.trace),
    )
    report = consensus_sweep(
        graph,
        factory,
        f=args.f,
        fault_limit=args.fault_limit,
        seed=args.seed,
        workers=args.workers,
        metrics=True,
    )
    costs = predicted_costs(graph, args.f, args.t or 0)
    flood_total = expected_flood_deliveries(graph)
    predictions = {
        "n": costs.n,
        "phases": costs.phases,
        "rounds_algorithm1": costs.rounds_algorithm1,
        "rounds_algorithm2": costs.rounds_algorithm2,
        "round_blowup": costs.round_blowup,
        "expected_flood_deliveries": flood_total,
    }

    checks = []
    probe = factory(nodes[0], 0)
    budget = getattr(probe, "total_rounds", None)
    if args.algorithm in ("1", "2") and isinstance(budget, int):
        predicted_budget = (
            costs.rounds_algorithm2 if args.algorithm == "2"
            else costs.rounds_algorithm1
        )
        checks.append(check("round_budget", predicted_budget, budget))
        checks.append(
            check("rounds_within_budget", True, result.rounds <= budget)
        )
    if args.algorithm == "2":
        # Phase 1 is one full flood; every node's own trivial path is
        # not a delivery, hence the − n (Section 5.3's honest cost).
        accepted = result.metrics["counters"].get(
            render_key("flood.accepted", {"phase": ("efficient", 1)}), 0
        )
        checks.append(
            check("phase1_flood_accepted", flood_total - graph.n, accepted)
        )

    timings = {
        "run": result.timings,
        "sweep": report.timings,
        # The one number the perf regression gate compares across
        # commits: fault-free run + whole sweep, in seconds.
        "total": (result.timings.get("run", {}).get("seconds", 0.0)
                  + (report.timings or {}).get("total_s", 0.0)),
    }
    record = bench_record(
        args.name or f"profile_alg{args.algorithm}",
        spec={
            "graph": args.graph,
            "n": graph.n,
            "f": args.f,
            "t": args.t or 0,
            "algorithm": args.algorithm,
            "fault_limit": args.fault_limit,
            "seed": args.seed,
            "workers": args.workers,
        },
        predictions=predictions,
        measured={
            "rounds": result.rounds,
            "transmissions": result.transmissions,
            "deliveries": result.deliveries,
            "outcome": result.outcome,
            "sweep_runs": report.runs,
            "sweep_all_consensus": report.all_consensus,
            "sweep_outcomes": report.outcomes,
            "sweep_max_rounds": report.max_rounds,
            "sweep_max_transmissions": report.max_transmissions,
        },
        checks=checks,
        metrics=result.metrics,
        timings=timings,
    )

    print(f"profile: algorithm {args.algorithm} on {args.graph} "
          f"(n={graph.n}, f={args.f})")
    for key in sorted(predictions):
        print(f"  predict {key:<26}= {predictions[key]}")
    print(f"  run     rounds={result.rounds} "
          f"transmissions={result.transmissions} outcome={result.outcome}")
    print(f"  sweep   runs={report.runs} outcomes={report.outcomes}")
    utilization = (report.timings or {}).get("utilization")
    if utilization is not None:
        print(f"  wall    run={timings['run']['run']['seconds']:.3f}s "
              f"sweep={report.timings['total_s']:.3f}s "
              f"utilization={utilization:.2f}")
    for entry in checks:
        verdict = "ok" if entry["ok"] else "FAIL"
        print(f"  check   {entry['name']}: expected={entry['expected']} "
              f"actual={entry['actual']} {verdict}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(bench_json(record) + "\n")
        print(f"wrote bench record to {args.output}")
    if args.trace:
        # The metered fault-free run's flight: spans land in the header,
        # so `trace export-chrome` overlays phase spans on the timeline.
        assert result.flight is not None
        result.flight.save(args.trace)
        print(f"wrote flight recording to {args.trace}")
    return 0 if all(entry["ok"] for entry in checks) else 1


def cmd_trace(args: argparse.Namespace) -> int:
    """Forensics on a flight recording; exit codes are the contract.

    ``summary``/``critical-path`` exit 0 when the causal record is
    internally consistent, 1 otherwise.  ``blame`` exits 0 when the
    anomaly is attributed to faulty nodes, 1 when the run was clean
    (nothing to blame), 2 when an anomaly could not be attributed —
    blaming an honest node is a bug in the model, never an exit code.
    ``replay`` exits 0 on byte-identical re-execution, 1 on divergence,
    2 when the recording is not replayable.
    """
    from .obs import (
        FlightRecord,
        FlightReplayError,
        blame,
        critical_path,
        export_chrome,
        summarize,
    )

    record = FlightRecord.load(args.file)

    def emit(data: dict) -> None:
        print(json.dumps(data, indent=2, sort_keys=True, default=repr))

    if args.action == "summary":
        data = summarize(record)
        if args.as_json:
            emit(data)
        else:
            run = data["run"]
            sched = run["scheduler"]
            print(f"flight  : {args.file}")
            print(f"  outcome={run['outcome']} rounds={run['rounds']} "
                  f"n={run['n']} f={run['f']}")
            print(f"  factory={run['factory']} adversary={run['adversary']} "
                  f"scheduler={sched['kind'] if sched else 'sync'}")
            print(f"  events: sends={run['sends']} "
                  f"deliveries={run['deliveries']} "
                  f"decisions={run['decisions']} "
                  f"causal_violations={run['causal_violations']}")
            print(f"  {'node':<8}{'role':<8}{'sends':>6}{'delivs':>8}"
                  f"{'decided@':>10}  decision")
            for row in data["nodes"]:
                role = "faulty" if row["faulty"] else "honest"
                decided = row["decided_at"] if row["decided_at"] is not None else "-"
                decision = row["decision"] if row["decision"] is not None else "-"
                print(f"  {str(row['node']):<8}{role:<8}{row['sends']:>6}"
                      f"{row['deliveries']:>8}{str(decided):>10}  {decision}")
        return 0 if data["run"]["causal_violations"] == 0 else 1

    if args.action == "critical-path":
        data = critical_path(record)
        if args.as_json:
            emit(data)
        else:
            print(f"critical path: {data['length']} events, "
                  f"span={data['span']} ticks "
                  f"(latency sum={data['latency_sum']}, "
                  f"consistent={data['consistent']})")
            print(f"  root cause: {data['root_cause']}")
            for hop in data["hops"]:
                print(f"  {hop}")
        return 0 if data["consistent"] else 1

    if args.action == "blame":
        data = blame(record)
        if args.as_json:
            emit(data)
        else:
            print(f"outcome : {data['outcome']} ({data['reason']})")
            print(f"faulty  : {data['faulty']}")
            print(f"verdict : {data['verdict']}")
            print(f"blamed  : {data['blamed']}")
            for entry in data["frontier"]:
                print(f"  commission: {entry}")
            for entry in data["omissions"]:
                print(f"  omission  : {entry}")
            for entry in data["timing_suspects"]:
                print(f"  timing    : {entry}")
        return {"attributed": 0, "clean": 1, "unattributed": 2}[data["verdict"]]

    if args.action == "export-chrome":
        payload = export_chrome(record)
        out = args.output or args.file + ".chrome.json"
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")
        print(f"wrote {len(payload['traceEvents'])} trace events to {out} "
              "(load in chrome://tracing or ui.perfetto.dev)")
        return 0

    if args.action == "replay":
        from .analysis import replay_flight

        try:
            outcome = replay_flight(record)
        except FlightReplayError as exc:
            print(f"not replayable: {exc}")
            return 2
        replayed = outcome.result
        print(f"replayed: outcome={replayed.outcome} "
              f"rounds={replayed.rounds} "
              f"decisions={len(replayed.flight.decides)}")
        if outcome.identical:
            print("identical: replay reproduced the recording byte for byte")
            return 0
        print(f"DIVERGED: {outcome.diff}")
        return 1

    raise SystemExit(f"unknown trace action {args.action!r}")


def cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run_lint

    return run_lint(args)


def cmd_compare(args: argparse.Namespace) -> int:
    print(f"{'f':>3} {'kappa p2p':>10} {'kappa LB':>9} "
          f"{'min n p2p':>10} {'min n LB':>9}")
    for row in requirement_table(args.max_f):
        print(f"{row.f:>3} {row.p2p_connectivity:>10} "
              f"{row.lb_connectivity:>9} {row.p2p_min_nodes:>10} "
              f"{row.lb_min_nodes:>9}")
    return 0


def cmd_demo_impossibility(args: argparse.Namespace) -> int:
    if args.kind == "degree":
        graph = graphs.path_graph(3) if args.f == 1 else (
            graphs.degree_deficient_graph(args.f)
        )
        scenario = degree_scenario(graph, args.f)
    elif args.kind == "connectivity":
        graph = graphs.low_connectivity_graph(args.f)
        scenario = connectivity_scenario(graph, args.f)
    else:
        raise SystemExit("kind must be 'degree' or 'connectivity'")
    factory = consensus.algorithm1_factory(graph, args.f)
    outcome = run_scenario(scenario, factory)
    print(outcome.summary())
    print(f"indistinguishability: {outcome.fully_indistinguishable}")
    return 0 if outcome.violation_demonstrated else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Exact Byzantine consensus under local broadcast "
                    "(PODC 2019 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="evaluate feasibility conditions")
    p.add_argument("--graph", required=True)
    p.add_argument("--f", type=int, required=True)
    p.add_argument("--t", type=int, default=None)
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("run", help="run a consensus algorithm")
    p.add_argument("--graph", required=True)
    p.add_argument("--f", type=int, required=True)
    p.add_argument("--t", type=int, default=None)
    p.add_argument("--algorithm", default="1",
                   choices=["1", "2", "3", "async"])
    p.add_argument("--faulty", default="",
                   help="comma-separated node indices")
    p.add_argument("--adversary", default="tamper-forward")
    p.add_argument("--scheduler", default="sync",
                   help="timing model: sync, lockstep, seeded-async, "
                        "adversarial")
    p.add_argument("--synchronizer", default="none",
                   choices=["none", "alpha", "ack"],
                   help="wrap the protocol in an α-synchronizer so it "
                        "keeps its round structure under async timing "
                        "(ack mode tolerates f marker-withholding "
                        "faults); --algorithm async needs none")
    p.add_argument("--max-delay", type=int, default=3,
                   help="worst-case per-link delay for async schedulers")
    p.add_argument("--declare-unbounded", action="store_true",
                   help="withdraw the delay-bound declaration from the "
                        "async schedulers (same delays on the wire; "
                        "bound-reading layers must refuse or go native)")
    p.add_argument("--target-window", type=int, default=0,
                   help="adversarial scheduler: land bottleneck traffic "
                        "exactly on the α-synchronizer activation ticks "
                        "of this window (0 = flat max-delay stretching)")
    p.add_argument("--seed", type=int, default=0,
                   help="seed for the seeded-async scheduler")
    p.add_argument("--metrics", nargs="?", const="-", default=None,
                   metavar="FILE",
                   help="meter the run; print the canonical snapshot "
                        "(plus quarantined wall timings) to stdout, or "
                        "write it to FILE")
    p.add_argument("--events", default="", metavar="FILE",
                   help="write an NDJSON event stream (ticks, spans, "
                        "decisions, result) to FILE; implies metering")
    p.add_argument("--trace", default="", metavar="FILE",
                   help="record a causal flight recording (happened-"
                        "before NDJSON) of the run to FILE; analyze or "
                        "re-execute it with `python -m repro trace`")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "sweep",
        help="run the adversary battery over every fault placement "
             "and emit a JSON report",
    )
    p.add_argument("--graph", required=True)
    p.add_argument("--f", type=int, required=True)
    p.add_argument("--t", type=int, default=None)
    p.add_argument("--algorithm", default="1",
                   choices=["1", "2", "3", "async"])
    p.add_argument("--workers", type=int, default=1,
                   help="process fan-out (1 = serial; report is identical)")
    p.add_argument("--fault-limit", type=int, default=None,
                   help="seeded sample size of fault subsets")
    p.add_argument("--patterns", default="",
                   help="comma-separated input-pattern names "
                        "(default: all four)")
    p.add_argument("--scheduler", default="sync",
                   help="comma-separated timing axis: sync, lockstep, "
                        "seeded-async, adversarial")
    p.add_argument("--synchronizer", default="none",
                   choices=["none", "alpha", "ack"],
                   help="wrap the swept protocol in an α-synchronizer "
                        "(window = the axis's worst declared delay; "
                        "ack mode tolerates f withheld markers)")
    p.add_argument("--max-delay", type=int, default=3,
                   help="worst-case per-link delay for async schedulers")
    p.add_argument("--declare-unbounded", action="store_true",
                   help="withdraw the delay-bound declaration from the "
                        "async schedulers (same delays on the wire)")
    p.add_argument("--target-window", type=int, default=0,
                   help="adversarial scheduler: land bottleneck traffic "
                        "exactly on α-window activation ticks "
                        "(0 = flat max-delay stretching)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default="",
                   help="write the JSON report here instead of stdout")
    p.add_argument("--exit-zero", action="store_true",
                   help="exit 0 even when some runs miss consensus "
                        "(async schedulers legitimately break the "
                        "fixed-round algorithms; use for determinism "
                        "smoke checks)")
    p.add_argument("--metrics", nargs="?", const="-", default=None,
                   metavar="FILE",
                   help="meter every run: the report gains per-record "
                        "snapshots, a canonical merge, and quarantined "
                        "wall timings; with FILE also write the "
                        "aggregate there")
    p.add_argument("--events", default="", metavar="FILE",
                   help="write one NDJSON record event per task (in "
                        "canonical slot order) plus a summary to FILE; "
                        "implies metering")
    p.add_argument("--capture", default="", metavar="DIR",
                   help="write flight recordings of captured runs to "
                        "DIR as flight-<index>.ndjson (index = canonical "
                        "task index, invariant under --workers)")
    p.add_argument("--capture-policy", default="anomalies",
                   choices=["anomalies", "all"],
                   help="which runs --capture retains: only those that "
                        "failed to decide (default), or every run")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser(
        "profile",
        help="metered fault-free run + sweep, checked against the "
             "closed-form cost model; optionally emit BENCH_<name>.json",
    )
    p.add_argument("--graph", required=True)
    p.add_argument("--f", type=int, required=True)
    p.add_argument("--t", type=int, default=None)
    p.add_argument("--algorithm", default="2",
                   choices=["1", "2", "3", "async"])
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--fault-limit", type=int, default=None,
                   help="seeded sample size of fault subsets")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--name", default="",
                   help="bench record name (default profile_alg<N>)")
    p.add_argument("--output", default="",
                   help="write the BENCH record JSON to this path")
    p.add_argument("--flood-receipt", action="store_true",
                   help="profile one analytic flood (prefix-sharing "
                        "path engine) plus reliable receipt at a single "
                        "receiver instead of a simulated run — scales "
                        "to graphs far beyond the simulator (e.g. "
                        "wheel:99); on wheels the delivery count is "
                        "checked against the closed form")
    p.add_argument("--trace", default="", metavar="FILE",
                   help="also record a causal flight recording of the "
                        "metered fault-free run to FILE (header carries "
                        "the phase spans; see `trace export-chrome`)")
    p.set_defaults(fn=cmd_profile, synchronizer="none")

    p = sub.add_parser(
        "trace",
        help="forensics on a flight recording: summary, critical-path, "
             "blame, export-chrome, replay",
    )
    p.add_argument("action",
                   choices=["summary", "critical-path", "blame",
                            "export-chrome", "replay"])
    p.add_argument("file", help="flight recording (NDJSON) to analyze")
    p.add_argument("--json", dest="as_json", action="store_true",
                   help="print the full analysis as JSON instead of the "
                        "human-readable digest")
    p.add_argument("--output", default="", metavar="FILE",
                   help="export-chrome: write the Chrome trace-event "
                        "JSON here (default: <file>.chrome.json)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "lint",
        help="AST-based determinism & protocol-contract checker "
             "(REPRO001-REPRO005)",
    )
    from .lint.cli import add_lint_arguments

    add_lint_arguments(p)
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser("compare", help="print the model-requirement table")
    p.add_argument("--max-f", type=int, default=5)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("demo-impossibility",
                       help="run a covering-network violation demo")
    p.add_argument("--kind", default="degree",
                   choices=["degree", "connectivity"])
    p.add_argument("--f", type=int, default=1)
    p.set_defaults(fn=cmd_demo_impossibility)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
