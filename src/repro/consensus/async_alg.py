"""Native asynchronous consensus (arXiv:1909.02865 reproduction).

The fixed-round algorithms survive asynchrony only through the
α-synchronizer (:mod:`repro.consensus.synchronizer`), which either needs
the scheduler's delay bound (alpha mode) or a marker handshake (ack
mode).  The companion paper *Asynchronous Byzantine Consensus on
Undirected Graphs under Local Broadcast Model* (arXiv:1909.02865) builds
consensus natively for asynchronous timing: **no round schedule and no
delay bound anywhere in the protocol** — every state transition is
driven by messages (plus an adaptive local patience counter that gates
*when* to vote, never *what* is safe).  This module reproduces that
regime (feasibility clauses:
:func:`~repro.consensus.conditions.check_async_local_broadcast` —
``n ≥ 3f + 1``, connectivity ``≥ 2f + 1``, degree ``≥ ⌊3f/2⌋ + 1``).

Structure — three message-driven layers, all running over the paper's
path-annotated flooding (:class:`~repro.consensus.flooding
.FloodInstance`, rules (i)–(iv)) and reliable receipt
(:func:`~repro.consensus.reliable.reliable_payload`, Definition C.1):

1. **Value layer.**  Every node floods its input.  Under local broadcast
   with at most ``f`` faults the flood + reliable-receipt pair is an
   asynchronous *Byzantine reliable broadcast* per origin:

   * *single-valuedness* — at most one payload per origin can ever be
     reliably received anywhere: the origin cannot equivocate (all
     neighbors hear the same transmissions in the same per-link FIFO
     order, so rule (ii) locks the same first message network-wide), and
     a fabricated alternative needs ``f + 1`` disjoint evidence paths
     each containing its own faulty internal node — more faults than
     exist;
   * *totality* — with connectivity ``≥ 2f + 1``, any payload reliably
     received by one honest node is eventually reliably received by all:
     a reliable receipt implies the origin really broadcast it, so its
     honest neighbors hold it, and ``2f + 1`` disjoint paths minus at
     most ``f`` fault-crossing ones leave ``f + 1`` all-honest families
     that deliver with no deadline.

2. **Vote layer.**  Votes are flooded values too, so they inherit both
   properties; every node therefore observes a growing *subset of one
   global, conflict-free vote table*.  A node casts vote round 1 when
   its reliable-value table is complete (``= n``, immediately) or has at
   least ``n − f`` entries and its patience ran out; the vote is the
   majority (ties → 0) of the table.  It casts round ``r + 1`` after
   collecting round-``r`` votes the same way.  **Decision**: any round
   whose collected votes show ``n − f`` agreeing ballots.  Safety is
   unconditional (any scheduling whatsoever): a ``b``-quorum at round
   ``r`` leaves at most ``f`` possible ``r``-votes for ``b̄`` globally,
   and with ``n ≥ 3f + 1`` every later majority step re-elects ``b`` —
   so no conflicting quorum can ever assemble.  Termination needs only
   eventual delivery: the vote tables are monotone, so once one honest
   node's quorum exists, every honest node eventually sees the same
   quorum.

3. **Decision layer.**  Deciders flood a decision certificate; a node
   adopts ``b`` on certificates from ``f + 1`` distinct origins (at
   least one honest).  This only accelerates the vote layer's own
   convergence.

What the asynchrony costs (and FLP): deterministic asynchronous *exact*
consensus cannot terminate against an adaptive scheduler (FLP); this
algorithm pays that bill entirely on the liveness side — the adaptive
patience counter is a partial-synchrony concession that never enters any
safety argument.  Under every scheduler in this library (eventual
delivery, oblivious timing) all battery scenarios decide; see
``benchmarks/bench_async_native.py``.

The oracle wiring: every reliable-receipt certificate check first asks
the shared :class:`~repro.consensus.path_oracle.PathOracle` whether the
graph even supports ``f + 1`` disjoint paths from the origin's neighbors
(memoized across all instances on the graph), then packs the actually
delivered paths.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from ..graphs import Graph
from ..net.messages import DecisionPayload, FloodMessage, ValuePayload, VotePayload
from ..net.node import Context, Protocol
from ..obs import NULL_METRICS
from .algorithm2 import majority
from .flooding import FloodInstance
from .path_oracle import PathOracle
from .reliable import ReceiptTracker

#: Flood phase tags.  Vote rounds each get their own tag (and therefore
#: their own rule-(ii) slot space): ``("async", "vote", r)``.
VALUES_PHASE = ("async", "values")
DECIDE_PHASE = ("async", "decide")


def vote_phase(round_no: int) -> Tuple[str, str, int]:
    """The flood phase tag of vote round ``round_no``."""
    return ("async", "vote", round_no)


class AsyncConsensusProtocol(Protocol):
    """Message-driven exact consensus; no rounds, no delay bound.

    The engine still activates the protocol once per virtual tick, but
    the activation count carries no meaning: state changes only on
    arrivals, on quorum predicates over what has arrived, and on the
    adaptive patience counter (whose expiry gates optional votes, never
    correctness).  ``total_rounds`` is ``None`` — the runner's
    message-driven accounting (``budget_hint`` + quiescence detection)
    takes over.
    """

    #: Tells the runner this protocol has no round schedule: budget by
    #: ``budget_hint`` ticks and stop early on network quiescence.
    message_driven = True
    total_rounds: Optional[int] = None

    def __init__(
        self,
        graph: Graph,
        node: Hashable,
        f: int,
        input_value: int,
        oracle: Optional[PathOracle] = None,
        patience: Optional[int] = None,
    ):
        if input_value not in (0, 1):
            raise ValueError("binary input expected")
        if f < 0:
            raise ValueError("f must be non-negative")
        if oracle is not None and oracle.graph != graph:
            raise ValueError("oracle was built for a different graph")
        self.graph = graph
        self.me = node
        self.f = f
        self.input_value = input_value
        self.n = graph.n
        #: A decision cites this many agreeing single-valued votes.
        self.quorum = self.n - f
        #: Distinct decision certificates needed to adopt (≥ 1 honest).
        self.adopt_threshold = f + 1
        self.oracle = oracle if oracle is not None else PathOracle(graph)
        #: Ticks of local silence before an optional vote fires.  Doubles
        #: after every use (adaptive: eventually exceeds any actual —
        #: unknown — delay).  Purely a liveness knob.
        self.patience = patience if patience is not None else self.n + 2
        self._patience_now = self.patience
        #: Soft tick envelope for the runner (unit-delay denominated):
        #: value flood + a few vote rounds + patience windows, with slack.
        self.budget_hint = 16 * self.n + 8 * self.patience
        #: Byzantine vote-round spam guard: rounds beyond this are
        #: ignored (honest rounds stay tiny — each needs a fresh quorum).
        self._round_cap = 8 * max(self.n, 4)

        self._values = FloodInstance(
            graph, node, VALUES_PHASE, default_payload=None,
            validator=self._valid_value,
        )
        self._votes: Dict[int, FloodInstance] = {}
        self._decides = FloodInstance(
            graph, node, DECIDE_PHASE, default_payload=None,
            validator=self._valid_decision,
        )
        # Incremental Definition C.1 per flood: the refresh loops re-ask
        # about every unresolved origin after each productive round, and
        # the trackers skip origins whose delivered path set didn't grow
        # (verdicts are a pure function of the per-origin view, so the
        # tables below are unchanged — only redundant packing work goes).
        self._values_receipt = ReceiptTracker(
            graph, f, node, self._values, oracle=self.oracle
        )
        self._votes_receipt: Dict[int, ReceiptTracker] = {}
        self._decides_receipt = ReceiptTracker(
            graph, f, node, self._decides, oracle=self.oracle
        )
        #: origin → reliably received input value (monotone, and by
        #: single-valuedness a subset of one global table).
        self.reliable_values: Dict[Hashable, int] = {}
        #: vote round → origin → reliably received ballot.
        self.vote_tallies: Dict[int, Dict[Hashable, int]] = {}
        #: origin → reliably received decision certificate value.
        self.decisions_seen: Dict[Hashable, int] = {}
        #: Vote rounds this node has cast (round → ballot).
        self.votes_cast: Dict[int, int] = {}
        self.vote_round = 0  # last vote round cast
        self._output: Optional[int] = None
        self._started = False
        self._last_progress = 0
        # Observability: cached per activation (the refresh/decide
        # helpers run without a context).  Spans are anchored to the
        # virtual clock — ticks, never wall time.
        self._metrics = NULL_METRICS
        self._now = 0
        self._start_tick = 0
        self._last_vote_tick = 0

    # ------------------------------------------------------------------
    def on_round(self, ctx: Context) -> None:
        now = ctx.virtual_now
        self._metrics = ctx.metrics
        self._now = now
        progressed = False
        if not self._started:
            self._started = True
            self._start_tick = now
            self._last_vote_tick = now
            self._values.initiate(ctx, ValuePayload(self.input_value))
            self._last_progress = now
            progressed = True
        self._open_vote_instances(ctx)
        if self._values.process_round(ctx):
            progressed = True
            self._refresh_values()
        for r in sorted(self._votes):
            if self._votes[r].process_round(ctx):
                progressed = True
                self._refresh_votes(r)
        if self._decides.process_round(ctx):
            progressed = True
            self._refresh_decisions()
        if progressed:
            self._last_progress = now
        if self._output is None:
            self._maybe_decide(ctx)
        if self._output is None and self._maybe_vote(ctx, now):
            self._maybe_decide(ctx)

    def output(self) -> Optional[int]:
        return self._output

    @property
    def armed(self) -> bool:
        """Whether a patience expiry can still change this node's state.

        ``False`` + an undecided output + a quiescent network = the run
        is genuinely stuck (the runner reports ``"stalled"`` instead of
        burning the whole tick budget).
        """
        if self._output is not None:
            return False
        if self.vote_round == 0:
            return len(self.reliable_values) >= self.quorum
        return len(self.vote_tallies.get(self.vote_round, {})) >= self.quorum

    # ------------------------------------------------------------------
    # flood plumbing
    # ------------------------------------------------------------------
    def _valid_value(self, payload, full_path) -> bool:
        return isinstance(payload, ValuePayload)

    def _valid_decision(self, payload, full_path) -> bool:
        return isinstance(payload, DecisionPayload) and payload.value in (0, 1)

    def _vote_instance(self, round_no: int) -> FloodInstance:
        def _valid_vote(payload, full_path) -> bool:
            return isinstance(payload, VotePayload) and payload.round_no == round_no

        return FloodInstance(
            self.graph, self.me, vote_phase(round_no),
            default_payload=None, validator=_valid_vote,
        )

    def _open_vote_instances(self, ctx: Context) -> None:
        """Start forwarding vote rounds first seen in this inbox."""
        for _sender, message in ctx.inbox:
            if not isinstance(message, FloodMessage):
                continue
            phase = message.phase
            if (
                isinstance(phase, tuple)
                and len(phase) == 3
                and phase[:2] == ("async", "vote")
                and isinstance(phase[2], int)
                and 1 <= phase[2] <= self._round_cap
                and phase[2] not in self._votes
            ):
                self._votes[phase[2]] = self._vote_instance(phase[2])

    # ------------------------------------------------------------------
    # reliable-receipt tables (monotone; at most one entry per origin)
    # ------------------------------------------------------------------
    def _refresh_values(self) -> None:
        for origin in sorted(self.graph.nodes - self.reliable_values.keys(), key=repr):
            payload = self._values_receipt.payload_from(
                origin, metrics=self._metrics
            )
            if isinstance(payload, ValuePayload):
                self.reliable_values[origin] = payload.value
                # Per-origin flood latency: protocol start to the tick
                # this node reliably received the origin's value.
                self._metrics.span(
                    "async.flood", self._start_tick, self._now,
                    node=self.me, origin=origin,
                )

    def _refresh_votes(self, round_no: int) -> None:
        tally = self.vote_tallies.setdefault(round_no, {})
        tracker = self._votes_receipt.get(round_no)
        if tracker is None:
            tracker = self._votes_receipt[round_no] = ReceiptTracker(
                self.graph, self.f, self.me, self._votes[round_no],
                oracle=self.oracle,
            )
        for origin in sorted(self.graph.nodes - tally.keys(), key=repr):
            payload = tracker.payload_from(origin, metrics=self._metrics)
            if isinstance(payload, VotePayload):
                tally[origin] = payload.value

    def _refresh_decisions(self) -> None:
        for origin in sorted(self.graph.nodes - self.decisions_seen.keys(), key=repr):
            payload = self._decides_receipt.payload_from(
                origin, metrics=self._metrics
            )
            if isinstance(payload, DecisionPayload):
                self.decisions_seen[origin] = payload.value

    # ------------------------------------------------------------------
    # quorum logic
    # ------------------------------------------------------------------
    def _maybe_decide(self, ctx: Context) -> None:
        for b in (0, 1):
            if sum(1 for v in self.decisions_seen.values() if v == b) >= (
                self.adopt_threshold
            ):
                self._decide(ctx, b)
                return
        for r in sorted(self.vote_tallies):
            tally = self.vote_tallies[r]
            for b in (0, 1):
                if sum(1 for v in tally.values() if v == b) >= self.quorum:
                    self._decide(ctx, b)
                    return

    def _decide(self, ctx: Context, value: int) -> None:
        self._output = value
        # End-to-end decision latency for this node, in virtual ticks.
        self._metrics.span(
            "async.decide", self._start_tick, self._now,
            node=self.me, value=value,
        )
        self._metrics.emit(
            "decide", node=self.me, value=value, tick=self._now,
            vote_round=self.vote_round,
        )
        self._decides.initiate(ctx, DecisionPayload(value))
        self._refresh_decisions()

    def _maybe_vote(self, ctx: Context, now: int) -> bool:
        """Cast the next vote if its trigger holds.  Returns True on cast.

        Both triggers per round: the *complete* table (all ``n`` origins
        accounted for — fires immediately, and is the only trigger that
        fires in fault-free runs, which is what makes the fault-free
        decision equal the synchronous majority) and the *patient
        quorum* (``≥ n − f`` entries and nothing new for a patience
        window — the escape hatch a silent fault forces).
        """
        if self.vote_round == 0:
            table: Dict[Hashable, int] = self.reliable_values
        else:
            table = self.vote_tallies.get(self.vote_round, {})
        if len(table) == self.n:
            self._cast_vote(ctx, now, majority(sorted(table.values())))
            return True
        if len(table) >= self.quorum and self._quiet(now):
            self._patience_now *= 2
            self._metrics.inc("async.patience_restarts")
            self._cast_vote(ctx, now, majority(sorted(table.values())))
            return True
        return False

    def _cast_vote(self, ctx: Context, now: int, ballot: int) -> None:
        self.vote_round += 1
        r = self.vote_round
        self.votes_cast[r] = ballot
        # Per-round vote latency: from the previous cast (or protocol
        # start) to this one.
        self._metrics.span(
            "async.vote", self._last_vote_tick, now, node=self.me, round=r
        )
        self._last_vote_tick = now
        self._metrics.inc("async.votes_cast", round=r)
        if r not in self._votes:
            self._votes[r] = self._vote_instance(r)
        self._votes[r].initiate(ctx, VotePayload(r, ballot))
        self._refresh_votes(r)
        self._last_progress = now  # a fresh round restarts the quiet clock

    def _quiet(self, now: int) -> bool:
        return now - self._last_progress >= self._patience_now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AsyncConsensusProtocol me={self.me!r} f={self.f} "
            f"|values|={len(self.reliable_values)} round={self.vote_round} "
            f"output={self._output!r}>"
        )


class AsyncFactory:
    """Picklable honest-protocol factory: ``(node, input) → protocol``.

    All instances on one graph share one :class:`PathOracle`, so the
    packing-feasibility prechecks of every certificate check are computed
    once per (origin, threshold) instead of once per node.  Pickles
    exactly like the other ``*Factory`` classes (the oracle ships its
    structural memos, so workers start warm), and asynchronous sweeps
    fan out across worker processes byte-identically.
    """

    def __init__(self, graph: Graph, f: int, patience: Optional[int] = None):
        self.graph = graph
        self.f = f
        self.patience = patience
        self.oracle = PathOracle(graph)

    def __call__(self, node: Hashable, input_value: int) -> AsyncConsensusProtocol:
        return AsyncConsensusProtocol(
            self.graph, node, self.f, input_value,
            oracle=self.oracle, patience=self.patience,
        )

    def flight_spec(self) -> dict:
        """JSON-ready recipe for the flight recorder (graph travels
        separately in the flight header)."""
        return {"kind": "async", "f": self.f, "patience": self.patience}

    def __reduce__(self):
        # Carry the (warm) oracle across the process boundary.
        return (
            type(self),
            (self.graph, self.f, self.patience),
            {"oracle": self.oracle},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AsyncFactory(n={self.graph.n}, f={self.f})"


def async_factory(
    graph: Graph, f: int, patience: Optional[int] = None
) -> AsyncFactory:
    """Honest-protocol factory for the runner: ``(node, input) → protocol``."""
    return AsyncFactory(graph, f, patience=patience)
