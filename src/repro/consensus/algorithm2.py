"""Algorithm 2: the O(n)-round consensus for 2f-connected graphs (App. C).

Three flooding phases of ``n`` rounds each (Theorem 5.6):

* **phase 1** (rounds ``1..n``) — every node floods its input value with
  the rules of Section 5.1;
* **phase 2** (rounds ``n+1..2n``) — every node floods a *report*: the
  complete timed transcript of everything each neighbor transmitted in
  phase 1 (under local broadcast a node hears all of it).  From the
  reports, each node runs the fault-localization rule of Appendix C: on
  ``2f`` node-disjoint paths from every reliably-received origin, the
  first provable deviator per path is faulty.  A node that has localized
  all ``f`` faults becomes **type A**; everyone else is **type B**;
* **phase 3** (rounds ``2n+1..3n``) — type-B nodes decide the majority
  of the values they reliably received and flood that decision; type-A
  nodes adopt any decision arriving from a non-faulty node over a
  fault-free path, falling back to the majority of the non-faulty
  inputs they can read over fault-free paths (which, knowing the fault
  set, they always can).

Everything is expressed through :class:`~repro.consensus.flooding
.FloodInstance` and the reliable-receipt machinery of
:mod:`repro.consensus.reliable`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from ..graphs import Graph
from ..net.messages import DecisionPayload, ValuePayload
from ..net.node import Context, Protocol
from ..obs import NULL_METRICS
from .flooding import FloodInstance
from .path_oracle import PathOracle
from .reliable import ClaimIndex, ReportBundle, detect_faults, reliable_value

PathTuple = Tuple[Hashable, ...]


def majority(values: List[int]) -> int:
    """Majority of a list of bits; ties decide 0 (the paper's rule)."""
    ones = sum(values)
    zeros = len(values) - ones
    return 1 if ones > zeros else 0


class Algorithm2Protocol(Protocol):
    """Appendix C's efficient protocol.  Requires ``G`` 2f-connected."""

    PHASE1 = ("efficient", 1)
    PHASE2 = ("efficient", 2)
    PHASE3 = ("efficient", 3)

    def __init__(self, graph: Graph, node: Hashable, f: int, input_value: int,
                 oracle: Optional[PathOracle] = None):
        if input_value not in (0, 1):
            raise ValueError("binary input expected")
        if oracle is not None and oracle.graph != graph:
            raise ValueError("oracle was built for a different graph")
        self.graph = graph
        # One oracle is typically shared by every instance on this graph
        # (the factory does that): phase-2 fault localization asks for
        # the same per-pair disjoint-path families at every node.
        self.oracle = oracle if oracle is not None else PathOracle(graph)
        self.me = node
        self.f = f
        self.input_value = input_value
        self.n = graph.n
        self.total_rounds = 3 * self.n
        self._flood1: Optional[FloodInstance] = None
        self._flood2: Optional[FloodInstance] = None
        self._flood3: Optional[FloodInstance] = None
        self._transcripts: Dict[Hashable, List[Tuple[int, object]]] = {}
        self._own_sent: List[Tuple[int, object]] = []
        self.reliable_values: Dict[Hashable, int] = {}
        self.detected: Set[Hashable] = set()
        self.node_type: Optional[str] = None  # "A" or "B" after phase 2
        self._output: Optional[int] = None
        # Cached per activation: phase-conclusion helpers run without a
        # context, so they read the registry from here.
        self._metrics = NULL_METRICS

    # ------------------------------------------------------------------
    def on_round(self, ctx: Context) -> None:
        self._metrics = ctx.metrics
        r = ctx.round_no
        n = self.n
        if r > self.total_rounds:
            return
        # Phase-1 transcript recording: transmissions of rounds 1..n are
        # heard in rounds 2..n+1.  Everything a neighbor sends is on the
        # record — that is the local broadcast advantage.
        if 2 <= r <= n + 1:
            for sender, message in ctx.inbox:
                self._transcripts.setdefault(sender, []).append((r - 1, message))

        if r == 1:
            self._flood1 = FloodInstance(
                self.graph,
                self.me,
                phase=self.PHASE1,
                default_payload=ValuePayload(1),
                validator=self._valid_value,
            )
            self._flood1.initiate(ctx, ValuePayload(self.input_value))
        elif r <= n:
            assert self._flood1 is not None
            self._flood1.process_round(ctx)
        elif r == n + 1:
            self._start_phase2(ctx)
        elif r <= 2 * n:
            assert self._flood2 is not None
            self._flood2.process_round(ctx)
            if r == 2 * n:
                self._conclude_phase2()
        elif r == 2 * n + 1:
            self._start_phase3(ctx)
        elif r <= 3 * n:
            assert self._flood3 is not None
            self._flood3.process_round(ctx)
            if r == 3 * n and self.node_type == "A":
                self._decide_type_a()

        if r <= n:
            self._own_sent.extend((r, out.message) for out in ctx.outbox)

    def output(self) -> Optional[int]:
        return self._output

    # ------------------------------------------------------------------
    # Phase 2: reports and fault localization
    # ------------------------------------------------------------------
    def _start_phase2(self, ctx: Context) -> None:
        transcripts = {
            nbr: self._transcripts.get(nbr, [])
            # Reports cover the nodes *me hears* — in-neighbors on a
            # digraph, ordinary neighbors on a symmetric view.
            for nbr in self.graph.sorted_in_neighbors(self.me)
        }
        bundle = ReportBundle.build(self.me, transcripts)
        self._flood2 = FloodInstance(
            self.graph,
            self.me,
            phase=self.PHASE2,
            default_payload=None,
            validator=self._valid_bundle,
        )
        self._flood2.initiate(ctx, bundle)

    def _valid_value(self, payload, full_path) -> bool:
        return isinstance(payload, ValuePayload)

    def _valid_bundle(self, payload, full_path) -> bool:
        if not isinstance(payload, ReportBundle):
            return False
        if payload.reporter != full_path[0]:
            return False
        subjects = [s for s, _ in payload.entries]
        if len(set(subjects)) != len(subjects):
            return False
        return all(
            s in self.graph.nodes and payload.reporter in self.graph.neighbors(s)
            for s in subjects
        )

    def _valid_decision(self, payload, full_path) -> bool:
        return isinstance(payload, DecisionPayload) and payload.value in (0, 1)

    def _conclude_phase2(self) -> None:
        assert self._flood1 is not None and self._flood2 is not None
        for origin in sorted(self.graph.nodes, key=repr):
            # The flood's per-origin sub-index is exactly the slice of
            # ``delivered`` the certificate for ``origin`` can use, and
            # its recorded visited masks feed the disjointness packing.
            value = reliable_value(
                self.graph,
                self.f,
                self.me,
                self._flood1.origin_view(origin),
                origin,
                metrics=self._metrics,
                path_mask=self._flood1.path_mask,
            )
            if value is not None:
                self.reliable_values[origin] = value
        bundles = {
            path: payload
            # repro: allow[REPRO001] delivered's insertion order is the
            # deterministic flood-processing order, preserved verbatim.
            for path, payload in self._flood2.delivered.items()
            if isinstance(payload, ReportBundle) and len(path) >= 2
        }
        claims = ClaimIndex(
            self.graph,
            self.f,
            self.me,
            bundle_deliveries=bundles,
            own_transcripts={
                # repro: allow[REPRO001] keyed by neighbor in deterministic
                # arrival-processing order; consumers look up by key only.
                nbr: tuple(msgs) for nbr, msgs in self._transcripts.items()
            },
            own_sent=tuple(self._own_sent),
        )
        self.detected = detect_faults(
            self.graph,
            self.f,
            self.me,
            self.reliable_values,
            claims,
            phase1_tag=self.PHASE1,
            first_round=1,
            oracle=self.oracle,
        )
        self.node_type = "A" if len(self.detected) == self.f else "B"
        self._metrics.inc("alg2.node_type", type=self.node_type)

    # ------------------------------------------------------------------
    # Phase 3: decide and disseminate
    # ------------------------------------------------------------------
    def _start_phase3(self, ctx: Context) -> None:
        self._flood3 = FloodInstance(
            self.graph,
            self.me,
            phase=self.PHASE3,
            default_payload=None,
            validator=self._valid_decision,
        )
        if self.node_type == "B":
            decision = majority(sorted(self.reliable_values.values()))
            self._output = decision
            self._flood3.initiate(ctx, DecisionPayload(decision))

    def _fault_free(self, path: PathTuple) -> bool:
        """No *detected* faulty node appears as an internal node."""
        return not any(z in self.detected for z in path[1:-1])

    def _decide_type_a(self) -> None:
        assert self._flood3 is not None and self._flood1 is not None
        # Adopt a decision that arrived from a non-faulty origin over a
        # fault-free path.  Only type-B nodes flood decisions, so an
        # honest origin's decision is an honest type-B decision.
        decisions = sorted(
            payload.value
            for path, payload in self._flood3.delivered.items()
            if len(path) >= 2
            and isinstance(payload, DecisionPayload)
            and path[0] not in self.detected
            and self._fault_free(path)
        )
        if decisions:
            self._output = decisions[0]
            return
        # No type-B node exists: reconstruct every non-faulty node's input
        # over fault-free paths (knowing the fault set makes Observation
        # B.1 usable directly) and take the majority.
        inputs: Dict[Hashable, int] = {}
        for path, payload in sorted(self._flood1.delivered.items(), key=repr):
            origin = path[0]
            if origin in self.detected or origin in inputs:
                continue
            if not isinstance(payload, ValuePayload):
                continue
            if self._fault_free(path):
                inputs[origin] = payload.value
        self._output = majority([inputs[u] for u in sorted(inputs, key=repr)])


class Algorithm2Factory:
    """Picklable honest-protocol factory: ``(node, input) → protocol``.

    A plain class rather than a closure so the parallel sweep engine can
    ship it to worker processes.  All instances it creates share one
    :class:`PathOracle`, so the per-pair disjoint-path families phase-2
    fault localization walks are computed once per graph — not once per
    (node, run, pair).  The oracle keeps shipping cheap by pickling only
    its structural memos (see :meth:`PathOracle.__reduce__`), so sweep
    workers start warm.
    """

    def __init__(self, graph: Graph, f: int):
        self.graph = graph
        self.f = f
        self.oracle = PathOracle(graph)

    def __call__(self, node: Hashable, input_value: int) -> Algorithm2Protocol:
        return Algorithm2Protocol(
            self.graph, node, self.f, input_value, oracle=self.oracle
        )

    def flight_spec(self) -> dict:
        """JSON-ready recipe for the flight recorder (graph travels
        separately in the flight header)."""
        return {"kind": "algorithm2", "f": self.f}

    def __reduce__(self):
        # The state dict carries the (warm) oracle across the process
        # boundary; its own __reduce__ ships just the structural memos.
        return (type(self), (self.graph, self.f), {"oracle": self.oracle})


def algorithm2_factory(graph: Graph, f: int) -> Algorithm2Factory:
    """Honest-protocol factory for the runner: ``(node, input) → protocol``."""
    return Algorithm2Factory(graph, f)
