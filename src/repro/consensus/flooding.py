"""Path-annotated flooding with the paper's acceptance rules (i)–(iv).

Section 5.1 describes flooding of a value ``γ_v``: the originator
broadcasts ``(γ_v, ⊥)``; a node ``v`` receiving ``(b, Π)`` from neighbor
``u``

  (i)   discards it if ``Π - u`` is not a path of ``G``;
  (ii)  discards it if some ``(b', Π)`` was already received from ``u``
        this phase — under local broadcast every neighbor of ``u`` sees
        the same transmissions in the same order, so all correct
        neighbors lock in the *same* first message per ``(u, Π)`` slot:
        this is what makes equivocation impossible;
  (iii) discards it if ``v`` already appears on ``Π`` (bounds flooding
        to ``n`` rounds);
  (iv)  otherwise **accepts** it — ``v`` has received ``b`` along the
        path ``Π - u`` — and forwards ``(b, Π - u)``.

A missing initiation from a neighbor is substituted with the default
message ``(1, ⊥)``, so even a silent faulty node effectively floods a
value.

This module packages those rules as :class:`FloodInstance` — one
per-node, per-phase state machine used by Algorithms 1, 2 and 3 (the
payload is a value for step (a) floods, a report bundle or a decision for
Algorithm 2's later phases).  Delivered values are recorded **per full
path ending at the local node**: accepting ``(b, Π)`` from ``u`` records
``delivered[Π + (u, me)] = b``, which is exactly the shape steps (b) and
(c) consume ("the value received from ``u`` along ``P_uv``").
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional, Tuple

from ..graphs import Graph, is_path
from ..net.messages import FloodMessage, Payload
from ..net.node import Context

PathTuple = Tuple[Hashable, ...]
Validator = Callable[[Payload, PathTuple], bool]
"""Optional payload filter: receives (payload, full path origin..sender)."""


class FloodInstance:
    """Per-node state for one flooding phase.

    Lifecycle, driven by the owning protocol once per round:

    1. round 1 of the phase — call :meth:`initiate` (and nothing else:
       the inbox cannot contain this phase's traffic yet);
    2. every later round — call :meth:`process_round`; on the first of
       those rounds the default-message substitution for silent
       neighbors runs automatically.

    ``delivered`` maps each full path ``(origin, ..., me)`` to the
    payload received along it.  The trivial own-path ``(me,)`` is filled
    by :meth:`initiate` ("node v is deemed to have received its own γ_v
    along path P_vv").
    """

    def __init__(
        self,
        graph: Graph,
        me: Hashable,
        phase: Hashable,
        default_payload: Optional[Payload] = None,
        validator: Optional[Validator] = None,
        enable_rule_ii: bool = True,
    ):
        self.graph = graph
        self.me = me
        self.phase = phase
        self.default_payload = default_payload
        self.validator = validator
        # Ablation hook: rule (ii) is the equivocation defense; the
        # ablation experiments disable it to show it is load-bearing.
        self.enable_rule_ii = enable_rule_ii
        self.delivered: Dict[PathTuple, Payload] = {}
        self._seen: set[tuple[Hashable, PathTuple]] = set()
        self._defaults_applied = False
        self._initiated = False

    # ------------------------------------------------------------------
    def initiate(self, ctx: Context, payload: Payload) -> None:
        """Round 1 of the phase: broadcast ``(payload, ⊥)``."""
        self._initiated = True
        self.delivered[(self.me,)] = payload
        ctx.broadcast(FloodMessage(self.phase, payload, ()))
        ctx.metrics.inc("flood.initiated", phase=self.phase)

    def process_round(self, ctx: Context) -> int:
        """Apply rules (i)–(iv) to this round's inbox; returns #accepted.

        Must be called on every round of the phase after the initiation
        round.  The first call also performs the default-message
        substitution: any neighbor whose initiation ``(·, ⊥)`` is absent
        from this inbox is treated as having sent the default payload.
        """
        accepted = 0
        for sender, message in ctx.inbox:
            if not isinstance(message, FloodMessage) or message.phase != self.phase:
                continue
            if self._accept(ctx, sender, message):
                accepted += 1
        if not self._defaults_applied:
            self._defaults_applied = True
            if self.default_payload is not None:
                # Any neighbor whose valid initiation is absent is read as
                # having flooded the default; rule (ii) rejects the
                # substitute wherever a real initiation already claimed
                # the (neighbor, ⊥) slot.
                for nbr in sorted(self.graph.neighbors(self.me), key=repr):
                    substitute = FloodMessage(self.phase, self.default_payload, ())
                    if self._accept(ctx, nbr, substitute):
                        accepted += 1
                        ctx.metrics.inc(
                            "flood.default_substituted", phase=self.phase
                        )
        return accepted

    # ------------------------------------------------------------------
    def _accept(self, ctx: Context, sender: Hashable, message: FloodMessage) -> bool:
        """Rules (i)–(iv) for one received message.  True iff accepted.

        Validity (rules (i), (iii), payload checks) runs *before* the
        duplicate rule (ii) marks the ``(sender, Π)`` slot: malformed
        traffic must not burn a slot, or a garbage "initiation" could
        suppress the default-message substitution that Lemma 5.3 needs.
        All neighbors of a sender hear the same transmissions in the same
        order, so this decision is identical everywhere.
        """
        metrics = ctx.metrics
        extended = message.extended_by(sender)  # Π - u
        # Rule (i): Π - u must exist in G.
        if not is_path(self.graph, extended):
            metrics.inc("flood.rejected", phase=self.phase, rule="i")
            return False
        # Rule (iii): Π must not already contain me.
        if self.me in message.path:
            metrics.inc("flood.rejected", phase=self.phase, rule="iii")
            return False
        # Optional payload validation (e.g. report bundles must originate
        # at their claimed reporter).
        if self.validator is not None and not self.validator(message.payload, extended):
            metrics.inc("flood.rejected", phase=self.phase, rule="validator")
            return False
        # Rule (ii): only the first well-formed message per (sender, Π)
        # slot is ever accepted — equivocation prevention.
        key = (sender, message.path)
        if self.enable_rule_ii:
            if key in self._seen:
                metrics.inc("flood.rejected", phase=self.phase, rule="ii")
                return False
            self._seen.add(key)
        # Rule (iv): accept along Π - u (recorded as the uv-path ending
        # here) and forward (b, Π - u).
        self.delivered[extended + (self.me,)] = message.payload
        ctx.broadcast(FloodMessage(self.phase, message.payload, extended))
        metrics.inc("flood.accepted", phase=self.phase)
        metrics.gauge_max(
            "flood.path_set.max", len(self.delivered), phase=self.phase
        )
        return True

    # ------------------------------------------------------------------
    # Read-side helpers used by steps (b)/(c) and Definition C.1
    # ------------------------------------------------------------------
    def value_along(self, path: PathTuple) -> Optional[Payload]:
        """The payload delivered along a specific path ending here."""
        return self.delivered.get(path)

    def paths_from(self, origin: Hashable) -> Dict[PathTuple, Payload]:
        """All delivered paths whose *origin* (first node) is ``origin``."""
        return {
            # repro: allow[REPRO001] hot path: delivered's insertion order
            # is the deterministic flood-processing order, preserved here.
            p: payload for p, payload in self.delivered.items() if p[0] == origin
        }

    def paths_with(self) -> Dict[PathTuple, Payload]:
        """Every delivered (path, payload) pair (copy)."""
        return dict(self.delivered)


def flood_rounds(graph: Graph) -> int:
    """Rounds a flood needs: paths have at most n nodes (rule (iii)), so
    every delivery lands within n - 1 forwarding hops; we budget n per
    the paper's statement that "flooding will end after n rounds"."""
    return graph.n
