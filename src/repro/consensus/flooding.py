"""Path-annotated flooding with the paper's acceptance rules (i)–(iv).

Section 5.1 describes flooding of a value ``γ_v``: the originator
broadcasts ``(γ_v, ⊥)``; a node ``v`` receiving ``(b, Π)`` from neighbor
``u``

  (i)   discards it if ``Π - u`` is not a path of ``G``;
  (ii)  discards it if some ``(b', Π)`` was already received from ``u``
        this phase — under local broadcast every neighbor of ``u`` sees
        the same transmissions in the same order, so all correct
        neighbors lock in the *same* first message per ``(u, Π)`` slot:
        this is what makes equivocation impossible;
  (iii) discards it if ``v`` already appears on ``Π`` (bounds flooding
        to ``n`` rounds);
  (iv)  otherwise **accepts** it — ``v`` has received ``b`` along the
        path ``Π - u`` — and forwards ``(b, Π - u)``.

A missing initiation from a neighbor is substituted with the default
message ``(1, ⊥)``, so even a silent faulty node effectively floods a
value.

This module packages those rules as :class:`FloodInstance` — one
per-node, per-phase state machine used by Algorithms 1, 2 and 3 (the
payload is a value for step (a) floods, a report bundle or a decision for
Algorithm 2's later phases).  Delivered values are recorded **per full
path ending at the local node**: accepting ``(b, Π)`` from ``u`` records
``delivered[Π + (u, me)] = b``, which is exactly the shape steps (b) and
(c) consume ("the value received from ``u`` along ``P_uv``").

Internally the rules run on the graph's canonical
:class:`~repro.graphs.index.NodeIndex`: each path's visited set is a
plain-int bitmask carried alongside the tuple, so rule (i) is an
adjacency-bit test, rule (iii) a single ``mask & me_bit``, and rule (ii)
keys on ``(sender, Π)`` packed injectively into one integer.  Per-``Π``
walk results are memoized (the same annotation arrives once per sender),
``delivered`` is mirrored into a per-origin sub-index at accept time so
:meth:`paths_from` and the reliable-receipt layer stop scanning the
whole dict, and the full-path visited masks are retained for the
disjoint-path packing downstream.  None of this changes the external
shape: ``delivered`` insertion order, metric counts, and forwarded
traffic are byte-identical to the tuple-walking implementation
(property-tested against a legacy reference).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Mapping, Optional, Tuple
from weakref import WeakKeyDictionary

from ..graphs import Graph
from ..net.messages import FloodMessage, Payload
from ..net.node import Context, Outgoing
from ..obs import NULL_METRICS

PathTuple = Tuple[Hashable, ...]
Validator = Callable[[Payload, PathTuple], bool]
"""Optional payload filter: receives (payload, full path origin..sender)."""

#: Sentinel distinguishing "never walked" from a memoized invalid walk.
_UNWALKED = object()

#: Shared immutable empty mapping for origins with no deliveries.
_NO_PATHS: Dict[PathTuple, Payload] = {}

#: Per-registry memo of rendered metric-cell packs, keyed by phase tag.
#: Weak keys: packs die with their registry, so a sweep's per-run
#: registries never accumulate.
_CELL_PACKS: "WeakKeyDictionary[object, Dict[Hashable, tuple]]" = (
    WeakKeyDictionary()
)


class FloodInstance:
    """Per-node state for one flooding phase.

    Lifecycle, driven by the owning protocol once per round:

    1. round 1 of the phase — call :meth:`initiate` (and nothing else:
       the inbox cannot contain this phase's traffic yet);
    2. every later round — call :meth:`process_round`; on the first of
       those rounds the default-message substitution for silent
       neighbors runs automatically.

    ``delivered`` maps each full path ``(origin, ..., me)`` to the
    payload received along it.  The trivial own-path ``(me,)`` is filled
    by :meth:`initiate` ("node v is deemed to have received its own γ_v
    along path P_vv").
    """

    def __init__(
        self,
        graph: Graph,
        me: Hashable,
        phase: Hashable,
        default_payload: Optional[Payload] = None,
        validator: Optional[Validator] = None,
        enable_rule_ii: bool = True,
    ):
        self.graph = graph
        self.me = me
        self.phase = phase
        self.default_payload = default_payload
        self.validator = validator
        # Ablation hook: rule (ii) is the equivocation defense; the
        # ablation experiments disable it to show it is load-bearing.
        self.enable_rule_ii = enable_rule_ii
        self.delivered: Dict[PathTuple, Payload] = {}
        self._defaults_applied = False
        self._initiated = False
        # --- bitmask machinery (canonical node index) ------------------
        index = graph.node_index()
        self._index = index
        self._me_idx = index.index_of[me]
        self._me_bit = 1 << self._me_idx
        #: rule (ii) slots: ``(sender, Π)`` packed into one int — the
        #: order-faithful path encoding of ``Π + (sender,)``.
        self._seen: set[int] = set()
        #: memoized ``NodeIndex.walk`` results per received annotation Π
        #: (``None`` = known-invalid) — the index's shared per-graph
        #: memo, so annotations walked by any instance on this graph
        #: (any node, phase, or run) are never re-walked here.
        self._walks: Dict[PathTuple, object] = index.walk_memo
        #: full delivered path → visited-set bitmask (me included) —
        #: the packing currency of reliable receipt and step (c).
        self._masks: Dict[PathTuple, int] = {}
        #: origin → (full path → payload), same insertion order as
        #: ``delivered`` restricted to that origin.
        self._by_origin: Dict[Hashable, Dict[PathTuple, Payload]] = {}
        # --- pre-rendered metric cells (bound per registry) ------------
        self._cells_from: object = None
        self._bind_cells(NULL_METRICS)

    # ------------------------------------------------------------------
    def _bind_cells(self, metrics) -> None:
        """Render this phase's metric keys once per (registry, phase).

        Cells create no keys until first incremented, so binding is
        snapshot-neutral; the per-message rule path then skips the
        kwargs/sort/format work of ``inc`` entirely.  The cell pack is
        shared across all instances of the same phase on the same
        registry (every node of a run floods the same phases), so only
        the first instance pays the render cost.
        """
        if metrics is self._cells_from:
            return
        self._cells_from = metrics
        packs = _CELL_PACKS.get(metrics)
        if packs is None:
            packs = {}
            _CELL_PACKS[metrics] = packs
        phase = self.phase
        pack = packs.get(phase)
        if pack is None:
            pack = (
                metrics.counter_cell("flood.initiated", phase=phase),
                metrics.counter_cell("flood.accepted", phase=phase),
                metrics.counter_cell("flood.default_substituted", phase=phase),
                metrics.counter_cell("flood.rejected", phase=phase, rule="i"),
                metrics.counter_cell("flood.rejected", phase=phase, rule="ii"),
                metrics.counter_cell("flood.rejected", phase=phase, rule="iii"),
                metrics.counter_cell(
                    "flood.rejected", phase=phase, rule="validator"
                ),
                metrics.gauge_cell("flood.path_set.max", phase=phase),
            )
            packs[phase] = pack
        (
            self._c_initiated,
            self._c_accepted,
            self._c_default,
            self._c_rej_i,
            self._c_rej_ii,
            self._c_rej_iii,
            self._c_rej_validator,
            self._g_path_set,
        ) = pack

    # ------------------------------------------------------------------
    def initiate(self, ctx: Context, payload: Payload) -> None:
        """Round 1 of the phase: broadcast ``(payload, ⊥)``."""
        if ctx.metrics is not self._cells_from:
            self._bind_cells(ctx.metrics)
        self._initiated = True
        me = self.me
        self.delivered[(me,)] = payload
        self._masks[(me,)] = self._me_bit
        self._by_origin.setdefault(me, {})[(me,)] = payload
        ctx.broadcast(FloodMessage(self.phase, payload, ()))
        self._c_initiated()

    def process_round(self, ctx: Context) -> int:
        """Apply rules (i)–(iv) to this round's inbox; returns #accepted.

        Must be called on every round of the phase after the initiation
        round.  The first call also performs the default-message
        substitution: any neighbor whose initiation ``(·, ⊥)`` is absent
        from this inbox is treated as having sent the default payload.
        """
        if ctx.metrics is not self._cells_from:
            self._bind_cells(ctx.metrics)
        accepted = 0
        phase = self.phase
        # Inline copy of the :meth:`_accept` rule pipeline with every
        # per-message lookup hoisted to a local — this loop runs once
        # per delivered message and dominates sweep time.  Keep it in
        # lockstep with ``_accept`` (the default-substitution path below
        # still calls it, and the legacy-equivalence property tests
        # drive both paths).
        index = self._index
        index_of = index.index_of
        adj = index.adj_masks
        shift = index.shift
        walks = self._walks
        walk_fn = index.walk
        me = self.me
        me_bit = self._me_bit
        validator = self.validator
        rule_ii = self.enable_rule_ii
        seen = self._seen
        delivered = self.delivered
        masks = self._masks
        by_origin = self._by_origin
        outbox_append = ctx.outbox.append
        rej_i = rej_ii = rej_iii = rej_validator = 0
        for sender, message in ctx.inbox:
            if not isinstance(message, FloodMessage) or message.phase != phase:
                continue
            pi = message.path
            walk = walks.get(pi, _UNWALKED)
            if walk is _UNWALKED:
                walk = walk_fn(pi)
                walks[pi] = walk
            # Rule (i): Π - u must exist in G.
            sender_idx = index_of.get(sender)
            if (
                walk is None
                or sender_idx is None
                or walk[0] >> sender_idx & 1
                or (walk[2] >= 0 and not adj[walk[2]] >> sender_idx & 1)
            ):
                rej_i += 1
                continue
            mask, packed, _last = walk
            # Rule (iii): Π must not already contain me.
            if mask & me_bit:
                rej_iii += 1
                continue
            extended = pi + (sender,)  # Π - u
            if validator is not None and not validator(
                message.payload, extended
            ):
                rej_validator += 1
                continue
            # Rule (ii): first well-formed message per (sender, Π) slot.
            if rule_ii:
                slot = (packed << shift) | (sender_idx + 1)
                if slot in seen:
                    rej_ii += 1
                    continue
                seen.add(slot)
            # Rule (iv): accept along Π - u and forward (b, Π - u).
            payload = message.payload
            full = extended + (me,)
            delivered[full] = payload
            masks[full] = mask | (1 << sender_idx) | me_bit
            origin = extended[0]
            sub = by_origin.get(origin)
            if sub is None:
                sub = by_origin[origin] = {}
            sub[full] = payload
            outbox_append(Outgoing(FloodMessage(phase, payload, extended)))
            accepted += 1
        # One batched fire per counter after the loop: a cell called with
        # ``n`` equals ``n`` unit calls, keys appear only when a rule
        # actually fired, and snapshots/merges sort keys — so batch order
        # is invisible to every observable surface.
        if accepted:
            self._c_accepted(accepted)
        if rej_i:
            self._c_rej_i(rej_i)
        if rej_ii:
            self._c_rej_ii(rej_ii)
        if rej_iii:
            self._c_rej_iii(rej_iii)
        if rej_validator:
            self._c_rej_validator(rej_validator)
        if not self._defaults_applied:
            self._defaults_applied = True
            if self.default_payload is not None:
                # Any neighbor whose valid initiation is absent is read as
                # having flooded the default; rule (ii) rejects the
                # substitute wherever a real initiation already claimed
                # the (neighbor, ⊥) slot.
                accept = self._accept
                # Substitutes stand in for initiations *heard* by me, so
                # they range over in-neighbors (identical on a Graph).
                for nbr in self.graph.sorted_in_neighbors(self.me):
                    substitute = FloodMessage(phase, self.default_payload, ())
                    if accept(ctx, nbr, substitute):
                        accepted += 1
                        self._c_default()
        if accepted:
            # The path set only grows, so one high-water reading after
            # the round equals the per-accept maximum it replaces — and
            # the gauge key still appears only if something was accepted.
            self._g_path_set(len(self.delivered))
        return accepted

    # ------------------------------------------------------------------
    def _accept(self, ctx: Context, sender: Hashable, message: FloodMessage) -> bool:
        """Rules (i)–(iv) for one received message.  True iff accepted.

        Validity (rules (i), (iii), payload checks) runs *before* the
        duplicate rule (ii) marks the ``(sender, Π)`` slot: malformed
        traffic must not burn a slot, or a garbage "initiation" could
        suppress the default-message substitution that Lemma 5.3 needs.
        All neighbors of a sender hear the same transmissions in the same
        order, so this decision is identical everywhere.
        """
        index = self._index
        pi = message.path
        walks = self._walks
        walk = walks.get(pi, _UNWALKED)
        if walk is _UNWALKED:
            walk = index.walk(pi)
            walks[pi] = walk
        # Rule (i): Π - u must exist in G — Π itself is a simple in-graph
        # path, the sender extends it by one edge, and the sender is not
        # already on it.
        sender_idx = index.index_of.get(sender)
        if (
            walk is None
            or sender_idx is None
            or walk[0] >> sender_idx & 1
            or (walk[2] >= 0 and not index.adj_masks[walk[2]] >> sender_idx & 1)
        ):
            self._c_rej_i()
            return False
        mask, packed, _last = walk
        # Rule (iii): Π must not already contain me.
        if mask & self._me_bit:
            self._c_rej_iii()
            return False
        extended = pi + (sender,)  # Π - u
        # Optional payload validation (e.g. report bundles must originate
        # at their claimed reporter).
        if self.validator is not None and not self.validator(message.payload, extended):
            self._c_rej_validator()
            return False
        # Rule (ii): only the first well-formed message per (sender, Π)
        # slot is ever accepted — equivocation prevention.  The slot key
        # is the packed encoding of Π + (sender,): injective over the
        # exact node sequence, so two distinct annotations sharing a
        # node set (or a last hop) never merge slots.
        if self.enable_rule_ii:
            slot = (packed << index.shift) | (sender_idx + 1)
            seen = self._seen
            if slot in seen:
                self._c_rej_ii()
                return False
            seen.add(slot)
        # Rule (iv): accept along Π - u (recorded as the uv-path ending
        # here) and forward (b, Π - u).
        payload = message.payload
        full = extended + (self.me,)
        self.delivered[full] = payload
        self._masks[full] = mask | (1 << sender_idx) | self._me_bit
        origin = extended[0]
        by_origin = self._by_origin.get(origin)
        if by_origin is None:
            by_origin = self._by_origin[origin] = {}
        by_origin[full] = payload
        ctx.broadcast(FloodMessage(self.phase, payload, extended))
        self._c_accepted()
        return True

    # ------------------------------------------------------------------
    # Read-side helpers used by steps (b)/(c) and Definition C.1
    # ------------------------------------------------------------------
    def value_along(self, path: PathTuple) -> Optional[Payload]:
        """The payload delivered along a specific path ending here."""
        return self.delivered.get(path)

    def paths_from(self, origin: Hashable) -> Dict[PathTuple, Payload]:
        """All delivered paths whose *origin* (first node) is ``origin``.

        Served from the per-origin sub-index maintained at accept time —
        same dict shape and same insertion order as filtering
        ``delivered`` itself, without the O(|delivered|) scan.
        """
        return dict(self._by_origin.get(origin, _NO_PATHS))

    def origin_view(self, origin: Hashable) -> Mapping[PathTuple, Payload]:
        """Read-only view of one origin's deliveries (no copy).

        The live sub-index, shared for speed on the hot read paths
        (reliable receipt, step (c)); callers must not mutate it — use
        :meth:`paths_from` for an owned copy.
        """
        return self._by_origin.get(origin, _NO_PATHS)

    def origin_count(self, origin: Hashable) -> int:
        """Number of delivered paths from ``origin`` — the version
        counter incremental receipt tracking keys on (the per-origin
        path set only ever grows)."""
        sub = self._by_origin.get(origin)
        return len(sub) if sub else 0

    def path_mask(self, path: PathTuple) -> int:
        """Visited-set bitmask of a delivered full path (me included)."""
        return self._masks[path]

    def paths_with(self) -> Dict[PathTuple, Payload]:
        """Every delivered (path, payload) pair (copy)."""
        return dict(self.delivered)


def flood_rounds(graph: Graph) -> int:
    """Rounds a flood needs: paths have at most n nodes (rule (iii)), so
    every delivery lands within n - 1 forwarding hops; we budget n per
    the paper's statement that "flooding will end after n rounds"."""
    return graph.n
