"""Iterative approximate consensus (W-MSR) — the §2 contrast baseline.

Related work (LeBlanc-Zhang-Koutsoukos-Sundaram, Zhang-Sundaram) studies
a *restricted* algorithm class under local broadcast: each round every
node broadcasts a real-valued state and updates to a trimmed average of
what it heard (W-MSR: drop up to ``f`` values above and ``f`` below your
own, average the rest).  The paper points out two gaps versus its own
results, both reproduced here:

* these algorithms achieve only **approximate** consensus (the range of
  honest states shrinks geometrically; it never closes in finite time);
* their network requirement — **(2f+1)-robustness** — strictly exceeds
  the tight exact-consensus conditions: Figure 1(a)'s 5-cycle satisfies
  Theorem 5.1 for f = 1, yet is not even 2-robust, and W-MSR stalls on
  it while Algorithm 1 decides exactly.

``(r)``-robustness here is the standard notion: for every pair of
disjoint non-empty node sets, at least one of the two contains a node
with ≥ r neighbors outside its own set.  The checker is exponential
(subset pairs), fine at library scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Dict, Hashable, List

from ..graphs import Graph

MaliciousValue = Callable[[int], float]
"""Round number → the value a malicious node broadcasts that round."""


def _has_r_external_neighbors(graph: Graph, node: Hashable, inside: set, r: int) -> bool:
    return len(graph.neighbors(node) - inside) >= r


def is_r_robust(graph: Graph, r: int) -> bool:
    """Standard r-robustness (LeBlanc et al., Definition 6).

    For every pair of disjoint non-empty subsets ``(S1, S2)`` of nodes,
    some node in ``S1`` or in ``S2`` has at least ``r`` neighbors outside
    its own subset.  Complete graphs K_n are ``⌈n/2⌉``-robust; cycles are
    only 1-robust — which is the gap the paper highlights.
    """
    if r <= 0:
        return True
    nodes = sorted(graph.nodes, key=repr)
    n = len(nodes)
    if n == 0:
        return False
    # Enumerate S1 over non-empty subsets; S2 over non-empty subsets of
    # the complement.  Early-out per pair on the first r-reachable node.
    for size1 in range(1, n):
        for s1 in combinations(nodes, size1):
            s1_set = set(s1)
            rest = [v for v in nodes if v not in s1_set]
            for size2 in range(1, len(rest) + 1):
                for s2 in combinations(rest, size2):
                    s2_set = set(s2)
                    if any(
                        _has_r_external_neighbors(graph, v, s1_set, r) for v in s1
                    ):
                        continue
                    if any(
                        _has_r_external_neighbors(graph, v, s2_set, r) for v in s2
                    ):
                        continue
                    return False
    return True


def max_robustness(graph: Graph) -> int:
    """The largest r for which the graph is r-robust."""
    r = 0
    while is_r_robust(graph, r + 1):
        r += 1
    return r


def wmsr_requirement(f: int) -> int:
    """The robustness W-MSR needs to tolerate f malicious nodes: 2f+1."""
    return 2 * f + 1


@dataclass
class WMSRResult:
    """Trajectories and verdicts of one W-MSR run."""

    history: Dict[Hashable, List[float]]
    honest: List[Hashable]
    epsilon: float

    @property
    def final_values(self) -> Dict[Hashable, float]:
        return {v: self.history[v][-1] for v in self.honest}

    @property
    def final_range(self) -> float:
        values = sorted(self.final_values.values())
        return max(values) - min(values)

    @property
    def converged(self) -> bool:
        """Approximate agreement: honest range within epsilon."""
        return self.final_range <= self.epsilon

    def within_initial_range(self, initial: Dict[Hashable, float]) -> bool:
        """Approximate validity: states stayed inside the honest hull."""
        lo = min(initial[v] for v in self.honest)
        hi = max(initial[v] for v in self.honest)
        tol = 1e-9
        return all(
            lo - tol <= x <= hi + tol
            for v in self.honest
            for x in self.history[v]
        )


def run_wmsr(
    graph: Graph,
    inputs: Dict[Hashable, float],
    f: int,
    rounds: int,
    faulty: Dict[Hashable, MaliciousValue] | None = None,
    epsilon: float = 1e-3,
) -> WMSRResult:
    """Synchronous W-MSR with up to ``f`` malicious broadcasters.

    Malicious nodes broadcast ``faulty[node](round)`` — under local
    broadcast they cannot equivocate, so one value per round is exactly
    their full power, which is why the *iterative* restriction (not
    equivocation) is what pushes the requirement up to robustness.
    """
    faulty = dict(faulty or {})
    if len(faulty) > f:
        raise ValueError("more malicious nodes than f")
    honest = sorted(graph.nodes - set(faulty), key=repr)
    state = {v: float(inputs[v]) for v in honest}
    history: Dict[Hashable, List[float]] = {v: [state[v]] for v in honest}
    for rnd in range(1, rounds + 1):
        broadcast: Dict[Hashable, float] = {}
        for v in honest:
            broadcast[v] = state[v]
        for v, behavior in sorted(faulty.items(), key=lambda kv: repr(kv[0])):
            broadcast[v] = float(behavior(rnd))
        new_state = {}
        for v in honest:
            own = state[v]
            received = sorted(broadcast[u] for u in graph.in_neighbors(v))
            higher = [x for x in received if x > own]
            lower = [x for x in received if x < own]
            keep = [x for x in received if x == own]
            # W-MSR trim: drop the f largest of the strictly-higher
            # values and the f smallest of the strictly-lower ones.
            higher = higher[: max(0, len(higher) - f)]
            lower = lower[min(f, len(lower)):]
            pool = [own] + lower + keep + higher
            new_state[v] = sum(pool) / len(pool)
        state = new_state
        for v in honest:
            history[v].append(state[v])
    return WMSRResult(history=history, honest=honest, epsilon=epsilon)
