"""Algorithm 3: Byzantine consensus under the hybrid model (Appendix D.2).

At most ``t ≤ f`` faulty nodes may *equivocate* (full point-to-point
power); the remaining faults obey local broadcast.  The algorithm runs
one phase per pair ``(F, T)`` with ``|T| ≤ t``, ``F ⊆ V − T`` and
``|F| ≤ f − |T|``: ``T`` guesses the equivocating faults, ``F`` the
non-equivocating ones.  Within a phase everything is Algorithm 1 with
``F ∪ T`` excluded from paths and the case thresholds computed from
``ϕ = f − |T|``.

When ``t = 0`` the pair list collapses to Algorithm 1's; when ``t = f``
the conditions of Theorem 6.1 collapse to the classical point-to-point
requirements (κ ≥ 2f + 1 and n ≥ 3f + 1) — so this protocol doubles as
our executable bridge between the two classical models.
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..graphs import Graph
from .algorithm1 import ExactConsensusProtocol
from .path_oracle import PathOracle


class Algorithm3Protocol(ExactConsensusProtocol):
    """Algorithm 3 (hybrid model) — the engine with an equivocation budget."""

    def __init__(
        self, graph: Graph, node: Hashable, f: int, t: int, input_value: int,
        oracle: Optional[PathOracle] = None,
    ):
        super().__init__(graph, node, f, input_value, t=t, oracle=oracle)


class Algorithm3Factory:
    """Picklable honest-protocol factory sharing one :class:`PathOracle`
    across all protocol instances on the graph."""

    def __init__(self, graph: Graph, f: int, t: int):
        self.graph = graph
        self.f = f
        self.t = t
        self.oracle = PathOracle(graph)

    def __call__(self, node: Hashable, input_value: int) -> Algorithm3Protocol:
        return Algorithm3Protocol(
            self.graph, node, self.f, self.t, input_value, oracle=self.oracle
        )

    def flight_spec(self) -> dict:
        """JSON-ready recipe for the flight recorder (graph travels
        separately in the flight header)."""
        return {"kind": "algorithm3", "f": self.f, "t": self.t}

    def __reduce__(self):
        # Carry the (warm) oracle across the process boundary.
        return (
            type(self),
            (self.graph, self.f, self.t),
            {"oracle": self.oracle},
        )


def algorithm3_factory(graph: Graph, f: int, t: int) -> Algorithm3Factory:
    """Honest-protocol factory for the runner: ``(node, input) → protocol``."""
    return Algorithm3Factory(graph, f, t)
