"""Shared, memoized pruned-graph path queries for the phase engine.

Algorithm 1's step (b) asks, for every phase candidate ``F`` and every
pair ``(u, v)``, for one ``uv``-path whose internal nodes avoid ``F``.
Run naively, each of the ``n`` protocol instances on the same graph
re-derives the identical pruned graph ``G − F`` and re-runs a BFS per
classified node — an O(n) redundancy factor across instances and another
O(n) inside each instance (one BFS per origin instead of one BFS tree
per phase).

:class:`PathOracle` removes both: it memoizes

* pruned graphs, keyed by the removed node set;
* whole BFS parent trees, keyed by ``(removed set, root)`` — a single
  tree answers *every* ``u → root`` query of a phase;
* the resulting paths, keyed by ``(excluded, u, v)``;
* :func:`repro.graphs.disjoint_paths_excluding` packings, keyed by
  ``(sources, v, excluded, k)``;
* maximum disjoint-path families from :func:`repro.graphs
  .max_disjoint_paths`, keyed by ``(u, v)`` — a pure function of the
  static graph that Algorithm 2's fault localization asks for once per
  (origin, target) pair *per node per run*.  Memoized here, the
  generic max-flow computation leaves the hot path entirely; the
  underlying routine stays as the oracle the property tests compare
  against.

Internally every memo key lives in the graph's canonical
:class:`~repro.graphs.index.NodeIndex` space: node sets become
plain-int bitmasks and nodes become bit positions, so the hot lookups
hash small integers instead of frozensets of labels.  The translation
is injective (off-index queries fall back to explicitly tagged
label-space keys), so the hit/miss sequence of every query stream is
exactly the one the label-keyed implementation produced.

One oracle is meant to be shared by all protocol instances on the same
graph — the ``algorithm*_factory`` helpers do exactly that.  All
traversals iterate neighbors in ``repr`` order, so every answer is a pure
function of the query (independent of ``PYTHONHASHSEED``), which the
deterministic cross-process sweep engine relies on.

When pickled, the oracle ships its *structural* memos — the pruned
graphs and BFS parent trees, which dominate the rebuild cost and are
pure functions of the graph — so sweep workers start warm.  The
per-query result caches (paths, packings) and the hit/miss counters are
per-process state and deliberately stay behind, keeping the pickle
payload proportional to the phase structure rather than the query
history.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from ..graphs import Graph, disjoint_paths_excluding, max_disjoint_paths
from ..obs import MetricsRegistry

PathTuple = Tuple[Hashable, ...]


class PathOracle:
    """Memoized pruned-graph shortest paths and disjoint-path packings."""

    __slots__ = ("graph", "_index", "_pruned", "_trees", "_paths", "_packings",
                 "_disjoint", "metrics", "_c_hit_path", "_c_miss_path",
                 "_c_hit_packing", "_c_miss_packing", "_c_hit_disjoint",
                 "_c_miss_disjoint")

    def __init__(
        self,
        graph: Graph,
        warm: Optional[Tuple[dict, ...]] = None,
    ):
        self.graph = graph
        self._index = graph.node_index()
        # All four memos are keyed in index space: a node set is its
        # strict bitmask, a node its bit position.  Queries the index
        # cannot encode (off-graph labels) use ("raw", ...) tagged keys
        # instead — the tag prevents any collision with bit positions,
        # which are ints just like common node labels.
        self._pruned: Dict[object, Graph] = {}
        self._trees: Dict[Tuple[object, object], Dict[Hashable, Hashable]] = {}
        self._paths: Dict[
            Tuple[object, object, object], Optional[PathTuple]
        ] = {}
        self._packings: Dict[
            Tuple[object, object, object, int],
            Optional[List[PathTuple]],
        ] = {}
        self._disjoint: Dict[
            Tuple[object, object], List[PathTuple]
        ] = {}
        # Per-process observability: cache traffic lands on a private
        # registry so sweep merges can aggregate it, while the
        # ``hits``/``misses`` property shims keep the original int API.
        # The counters are bound as cells once — the hit path of a warm
        # oracle is a dict probe plus one closure call.
        self.metrics = MetricsRegistry()
        metrics = self.metrics
        self._c_hit_path = metrics.counter_cell("oracle.hits", kind="path")
        self._c_miss_path = metrics.counter_cell("oracle.misses", kind="path")
        self._c_hit_packing = metrics.counter_cell("oracle.hits", kind="packing")
        self._c_miss_packing = metrics.counter_cell(
            "oracle.misses", kind="packing"
        )
        self._c_hit_disjoint = metrics.counter_cell(
            "oracle.hits", kind="disjoint"
        )
        self._c_miss_disjoint = metrics.counter_cell(
            "oracle.misses", kind="disjoint"
        )
        if warm is not None:
            pruned, trees, *rest = warm
            self._pruned.update(pruned)
            self._trees.update(trees)
            if rest:
                self._disjoint.update(rest[0])

    @property
    def hits(self) -> int:
        """Total cache hits (shim over the ``oracle.hits`` counters)."""
        metrics = self.metrics
        return (
            metrics.counter("oracle.hits", kind="path")
            + metrics.counter("oracle.hits", kind="packing")
            + metrics.counter("oracle.hits", kind="disjoint")
        )

    @property
    def misses(self) -> int:
        """Total cache misses (shim over the ``oracle.misses`` counters)."""
        metrics = self.metrics
        return (
            metrics.counter("oracle.misses", kind="path")
            + metrics.counter("oracle.misses", kind="packing")
            + metrics.counter("oracle.misses", kind="disjoint")
        )

    def __reduce__(self):
        # Ship the structural memos (pruned graphs, BFS parent trees,
        # disjoint-path families) so sweep workers start warm — these
        # dominate the rebuild cost and are pure functions of the graph.
        # The per-query result caches (_paths/_packings) and the hit
        # counters stay per-process: they are cheap to refill and
        # keeping them local keeps the pickle payload proportional to
        # the phase structure, not to the query history.
        return (
            type(self),
            (
                self.graph,
                (dict(self._pruned), dict(self._trees), dict(self._disjoint)),
            ),
        )

    # ------------------------------------------------------------------
    def _set_key(self, nodes: FrozenSet[Hashable]) -> object:
        """Index-space key for a node set: its strict bitmask, or the
        tagged set itself when some member is off-index.  Injective in
        both regimes, so distinct label-space keys never merge."""
        mask = self._index.mask_of_strict(nodes)
        return mask if mask is not None else ("raw", nodes)

    def _node_key(self, v: Hashable) -> object:
        """Index-space key for one node (bit position or tagged label)."""
        idx = self._index.index_of.get(v)
        return idx if idx is not None else ("raw", v)

    # ------------------------------------------------------------------
    def pruned(self, removed: FrozenSet[Hashable]) -> Graph:
        """``G − removed``, computed once per distinct removal set."""
        key = self._set_key(removed)
        graph = self._pruned.get(key)
        if graph is None:
            graph = self.graph.remove_nodes(removed)
            self._pruned[key] = graph
        return graph

    def _parents(
        self, removed: FrozenSet[Hashable], root: Hashable
    ) -> Dict[Hashable, Hashable]:
        """BFS parent tree toward ``root`` in ``G − removed``.

        Neighbors are visited in ``repr`` order, so the tree (and every
        path read from it) is deterministic.
        """
        key = (self._set_key(removed), self._node_key(root))
        parents = self._trees.get(key)
        if parents is None:
            graph = self.pruned(removed)
            parents = {root: root}
            queue = deque([root])
            while queue:
                x = queue.popleft()
                # Walking parent links y → x must follow forward arcs,
                # so children of x are its *in*-neighbors (same tuple on
                # a Graph, where the two directions share one cache).
                for y in graph.sorted_in_neighbors(x):
                    if y not in parents:
                        parents[y] = x
                        queue.append(y)
            self._trees[key] = parents
        return parents

    # ------------------------------------------------------------------
    def path_excluding(
        self,
        u: Hashable,
        v: Hashable,
        excluded: FrozenSet[Hashable],
    ) -> Optional[PathTuple]:
        """One shortest ``u → v`` path with no internal node in
        ``excluded`` (endpoints may belong to it), or ``None``.

        Semantics match ``ExactConsensusProtocol._path_excluding``: the
        pruned graph is ``G − (excluded − {u, v})`` and a missing
        endpoint or disconnection yields ``None``.
        """
        key = (self._set_key(excluded), self._node_key(u), self._node_key(v))
        if key in self._paths:
            self._c_hit_path()
            return self._paths[key]
        self._c_miss_path()
        removed = frozenset(excluded - {u, v})
        graph = self.pruned(removed)
        path: Optional[PathTuple]
        if u not in graph.nodes or v not in graph.nodes:
            path = None
        elif u == v:
            path = (u,)
        else:
            parents = self._parents(removed, v)
            if u not in parents:
                path = None
            else:
                walk = [u]
                while walk[-1] != v:
                    walk.append(parents[walk[-1]])
                path = tuple(walk)
        self._paths[key] = path
        return path

    def paths_excluding_many(
        self,
        sources: Iterable[Hashable],
        v: Hashable,
        excluded: FrozenSet[Hashable],
    ) -> List[Optional[PathTuple]]:
        """:meth:`path_excluding` for many sources sharing one target and
        excluded set — the exact query shape of step (b), which classifies
        every node of a phase against the same candidate set.

        The shared key parts (``excluded``'s bitmask, ``v``'s bit) are
        rendered once for the whole batch instead of once per source;
        results, memo entries, and the hit/miss sequence are identical to
        ``[path_excluding(u, v, excluded) for u in sources]``.
        """
        skey = self._set_key(excluded)
        vkey = self._node_key(v)
        paths = self._paths
        index_of = self._index.index_of
        hits = 0
        out: List[Optional[PathTuple]] = []
        for u in sources:
            idx = index_of.get(u)
            key = (skey, idx if idx is not None else ("raw", u), vkey)
            if key in paths:
                hits += 1
                out.append(paths[key])
            else:
                out.append(self.path_excluding(u, v, excluded))
        if hits:
            self._c_hit_path(hits)
        return out

    def disjoint_paths_excluding(
        self,
        sources: Iterable[Hashable],
        v: Hashable,
        exclude: Iterable[Hashable],
        k: int,
    ) -> Optional[List[PathTuple]]:
        """Memoized :func:`repro.graphs.disjoint_paths_excluding`."""
        fsources = frozenset(sources)
        fexclude = frozenset(exclude)
        key = (self._set_key(fsources), self._node_key(v), self._set_key(fexclude), k)
        if key in self._packings:
            self._c_hit_packing()
            return self._packings[key]
        self._c_miss_packing()
        result = disjoint_paths_excluding(self.graph, fsources, v, fexclude, k)
        self._packings[key] = result
        return result

    def disjoint_paths_between(self, u: Hashable, v: Hashable) -> List[PathTuple]:
        """A maximum family of internally node-disjoint ``uv``-paths.

        Memoized :func:`repro.graphs.max_disjoint_paths` (``want_paths``
        form, count dropped): the answer depends only on the static
        graph and the endpoint pair, yet Algorithm 2's phase-2 fault
        localization asks for it for every (origin, target) pair in
        every protocol instance of every run — by far the dominant cost
        of an unmemoized sweep.  Callers must not mutate the returned
        list.
        """
        key = (self._node_key(u), self._node_key(v))
        paths = self._disjoint.get(key)
        if paths is not None:
            self._c_hit_disjoint()
            return paths
        self._c_miss_disjoint()
        _count, paths = max_disjoint_paths(self.graph, u, v, want_paths=True)
        self._disjoint[key] = paths
        return paths

    # ------------------------------------------------------------------
    def cache_info(self) -> Dict[str, int]:
        """Counters for benchmarks and the equivalence tests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "pruned_graphs": len(self._pruned),
            "bfs_trees": len(self._trees),
            "paths": len(self._paths),
            "packings": len(self._packings),
            "disjoint_pairs": len(self._disjoint),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        info = self.cache_info()
        return (
            f"<PathOracle n={self.graph.n} hits={info['hits']} "
            f"misses={info['misses']}>"
        )
