"""Shared, memoized pruned-graph path queries for the phase engine.

Algorithm 1's step (b) asks, for every phase candidate ``F`` and every
pair ``(u, v)``, for one ``uv``-path whose internal nodes avoid ``F``.
Run naively, each of the ``n`` protocol instances on the same graph
re-derives the identical pruned graph ``G − F`` and re-runs a BFS per
classified node — an O(n) redundancy factor across instances and another
O(n) inside each instance (one BFS per origin instead of one BFS tree
per phase).

:class:`PathOracle` removes both: it memoizes

* pruned graphs, keyed by the removed node set;
* whole BFS parent trees, keyed by ``(removed set, root)`` — a single
  tree answers *every* ``u → root`` query of a phase;
* the resulting paths, keyed by ``(excluded, u, v)``;
* :func:`repro.graphs.disjoint_paths_excluding` packings, keyed by
  ``(sources, v, excluded, k)``.

One oracle is meant to be shared by all protocol instances on the same
graph — the ``algorithm*_factory`` helpers do exactly that.  All
traversals iterate neighbors in ``repr`` order, so every answer is a pure
function of the query (independent of ``PYTHONHASHSEED``), which the
deterministic cross-process sweep engine relies on.

When pickled, the oracle ships its *structural* memos — the pruned
graphs and BFS parent trees, which dominate the rebuild cost and are
pure functions of the graph — so sweep workers start warm.  The
per-query result caches (paths, packings) and the hit/miss counters are
per-process state and deliberately stay behind, keeping the pickle
payload proportional to the phase structure rather than the query
history.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from ..graphs import Graph, disjoint_paths_excluding
from ..obs import MetricsRegistry

PathTuple = Tuple[Hashable, ...]


class PathOracle:
    """Memoized pruned-graph shortest paths and disjoint-path packings."""

    __slots__ = ("graph", "_pruned", "_trees", "_paths", "_packings",
                 "metrics")

    def __init__(
        self,
        graph: Graph,
        warm: Optional[Tuple[dict, dict]] = None,
    ):
        self.graph = graph
        self._pruned: Dict[FrozenSet[Hashable], Graph] = {}
        self._trees: Dict[
            Tuple[FrozenSet[Hashable], Hashable], Dict[Hashable, Hashable]
        ] = {}
        self._paths: Dict[
            Tuple[FrozenSet[Hashable], Hashable, Hashable], Optional[PathTuple]
        ] = {}
        self._packings: Dict[
            Tuple[FrozenSet[Hashable], Hashable, FrozenSet[Hashable], int],
            Optional[List[PathTuple]],
        ] = {}
        # Per-process observability: cache traffic lands on a private
        # registry so sweep merges can aggregate it, while the
        # ``hits``/``misses`` property shims keep the original int API.
        self.metrics = MetricsRegistry()
        if warm is not None:
            pruned, trees = warm
            self._pruned.update(pruned)
            self._trees.update(trees)

    @property
    def hits(self) -> int:
        """Total cache hits (shim over the ``oracle.hits`` counters)."""
        return self.metrics.counter("oracle.hits", kind="path") + self.metrics.counter(
            "oracle.hits", kind="packing"
        )

    @property
    def misses(self) -> int:
        """Total cache misses (shim over the ``oracle.misses`` counters)."""
        return self.metrics.counter(
            "oracle.misses", kind="path"
        ) + self.metrics.counter("oracle.misses", kind="packing")

    def __reduce__(self):
        # Ship the structural memos (pruned graphs and BFS parent trees)
        # so sweep workers start warm — these dominate the rebuild cost
        # and are pure functions of the graph.  The per-query result
        # caches (_paths/_packings) and the hit counters stay
        # per-process: they are cheap to refill and keeping them local
        # keeps the pickle payload proportional to the phase structure,
        # not to the query history.
        return (
            type(self),
            (self.graph, (dict(self._pruned), dict(self._trees))),
        )

    # ------------------------------------------------------------------
    def pruned(self, removed: FrozenSet[Hashable]) -> Graph:
        """``G − removed``, computed once per distinct removal set."""
        graph = self._pruned.get(removed)
        if graph is None:
            graph = self.graph.remove_nodes(removed)
            self._pruned[removed] = graph
        return graph

    def _parents(
        self, removed: FrozenSet[Hashable], root: Hashable
    ) -> Dict[Hashable, Hashable]:
        """BFS parent tree toward ``root`` in ``G − removed``.

        Neighbors are visited in ``repr`` order, so the tree (and every
        path read from it) is deterministic.
        """
        key = (removed, root)
        parents = self._trees.get(key)
        if parents is None:
            graph = self.pruned(removed)
            parents = {root: root}
            queue = deque([root])
            while queue:
                x = queue.popleft()
                for y in sorted(graph.neighbors(x), key=repr):
                    if y not in parents:
                        parents[y] = x
                        queue.append(y)
            self._trees[key] = parents
        return parents

    # ------------------------------------------------------------------
    def path_excluding(
        self,
        u: Hashable,
        v: Hashable,
        excluded: FrozenSet[Hashable],
    ) -> Optional[PathTuple]:
        """One shortest ``u → v`` path with no internal node in
        ``excluded`` (endpoints may belong to it), or ``None``.

        Semantics match ``ExactConsensusProtocol._path_excluding``: the
        pruned graph is ``G − (excluded − {u, v})`` and a missing
        endpoint or disconnection yields ``None``.
        """
        key = (excluded, u, v)
        if key in self._paths:
            self.metrics.inc("oracle.hits", kind="path")
            return self._paths[key]
        self.metrics.inc("oracle.misses", kind="path")
        removed = frozenset(excluded - {u, v})
        graph = self.pruned(removed)
        path: Optional[PathTuple]
        if u not in graph.nodes or v not in graph.nodes:
            path = None
        elif u == v:
            path = (u,)
        else:
            parents = self._parents(removed, v)
            if u not in parents:
                path = None
            else:
                walk = [u]
                while walk[-1] != v:
                    walk.append(parents[walk[-1]])
                path = tuple(walk)
        self._paths[key] = path
        return path

    def disjoint_paths_excluding(
        self,
        sources: Iterable[Hashable],
        v: Hashable,
        exclude: Iterable[Hashable],
        k: int,
    ) -> Optional[List[PathTuple]]:
        """Memoized :func:`repro.graphs.disjoint_paths_excluding`."""
        key = (frozenset(sources), v, frozenset(exclude), k)
        if key in self._packings:
            self.metrics.inc("oracle.hits", kind="packing")
            return self._packings[key]
        self.metrics.inc("oracle.misses", kind="packing")
        result = disjoint_paths_excluding(self.graph, key[0], v, key[2], k)
        self._packings[key] = result
        return result

    # ------------------------------------------------------------------
    def cache_info(self) -> Dict[str, int]:
        """Counters for benchmarks and the equivalence tests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "pruned_graphs": len(self._pruned),
            "bfs_trees": len(self._trees),
            "paths": len(self._paths),
            "packings": len(self._packings),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        info = self.cache_info()
        return (
            f"<PathOracle n={self.graph.n} hits={info['hits']} "
            f"misses={info['misses']}>"
        )
