"""Feasibility conditions: Theorems 4.1/5.1, 6.1, and the classical bound.

The paper's headline results are *characterizations* — graph-theoretic
conditions that are simultaneously necessary and sufficient:

* **Local broadcast** (Theorems 4.1 + 5.1): min degree ≥ ``2f`` and
  vertex connectivity ≥ ``⌊3f/2⌋ + 1``.
* **Point-to-point** (Dolev '82, quoted in Section 1): ``n ≥ 3f + 1``
  and vertex connectivity ≥ ``2f + 1``.
* **Hybrid, ≤ t equivocating faults** (Theorem 6.1): connectivity ≥
  ``⌊3(f − t)/2⌋ + 2t + 1``; if ``t = 0`` min degree ≥ ``2f``; if
  ``t > 0`` every set ``S`` with ``0 < |S| ≤ t`` has ≥ ``2f + 1``
  neighbors.
* **Directed local broadcast** (companion paper arXiv:1911.07298): the
  directed generalization implemented here — minimum *in*-degree ≥
  ``2f`` and strong vertex connectivity ≥ ``⌊3f/2⌋ + 1`` on strongly
  connected digraphs, plus a source-component/relay decomposition for
  arbitrary digraphs (see :func:`check_directed_local_broadcast` /
  :func:`check_directed_decomposition`).  On a symmetric view both
  collapse clause-for-clause to the undirected Theorem 4.1/5.1 form —
  an equality the property suite tests — so the undirected checkers
  delegate their measured values to the directed primitives.

Each checker returns a :class:`ConditionReport` listing every clause with
its required and measured value, so experiments can show *which*
condition fails and by how much.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..graphs import (
    Digraph,
    Graph,
    directed_vertex_connectivity,
    max_set_disjoint_paths,
    min_set_neighborhood,
    source_components,
    vertex_connectivity,
)


@dataclass(frozen=True, slots=True)
class Clause:
    """One atomic requirement: a measured quantity vs its threshold."""

    name: str
    required: int
    measured: int

    @property
    def holds(self) -> bool:
        return self.measured >= self.required

    @property
    def margin(self) -> int:
        return self.measured - self.required

    def __str__(self) -> str:
        verdict = "ok" if self.holds else "FAIL"
        return f"{self.name}: need >= {self.required}, have {self.measured} [{verdict}]"


@dataclass(frozen=True, slots=True)
class ConditionReport:
    """The outcome of a feasibility check on ``(G, f[, t])``."""

    model: str
    f: int
    t: Optional[int]
    clauses: Tuple[Clause, ...]

    @property
    def feasible(self) -> bool:
        return all(c.holds for c in self.clauses)

    def failing(self) -> List[Clause]:
        return [c for c in self.clauses if not c.holds]

    def __str__(self) -> str:
        t_part = "" if self.t is None else f", t={self.t}"
        head = f"{self.model} (f={self.f}{t_part}): " + (
            "FEASIBLE" if self.feasible else "infeasible"
        )
        return head + "".join(f"\n  {c}" for c in self.clauses)


def local_broadcast_threshold_connectivity(f: int) -> int:
    """The tight connectivity bound ``⌊3f/2⌋ + 1`` of Theorems 4.1/5.1."""
    return (3 * f) // 2 + 1


def hybrid_threshold_connectivity(f: int, t: int) -> int:
    """Theorem 6.1(i): ``⌊3(f − t)/2⌋ + 2t + 1``.

    Interpolates between the local-broadcast bound at ``t = 0`` and the
    point-to-point bound ``2f + 1`` at ``t = f`` — the paper's
    quantification of the price of equivocation.
    """
    if not 0 <= t <= f:
        raise ValueError("need 0 <= t <= f")
    return (3 * (f - t)) // 2 + 2 * t + 1


def check_local_broadcast(graph: Graph, f: int) -> ConditionReport:
    """Theorem 4.1/5.1: consensus under local broadcast iff these hold.

    Delegates its measured values to the directed layer on the symmetric
    view — minimum degree is the symmetric view's minimum in-degree (the
    same adjacency dict) and κ is :func:`directed_vertex_connectivity`,
    which routes undirected graphs to the memoized pruning algorithm —
    while keeping the historical clause names and report shape.  The
    property suite checks clause-for-clause equality against
    :func:`check_directed_local_broadcast` on the symmetric lift.
    """
    if f < 0:
        raise ValueError("f must be non-negative")
    clauses = (
        Clause("n > f (trivial solvability bound)", f + 1, graph.n),
        Clause("minimum degree >= 2f", 2 * f, graph.min_in_degree()),
        Clause(
            "connectivity >= floor(3f/2) + 1",
            local_broadcast_threshold_connectivity(f),
            directed_vertex_connectivity(graph),
        ),
    )
    return ConditionReport("local-broadcast", f, None, clauses)


def check_directed_local_broadcast(graph: Digraph, f: int) -> ConditionReport:
    """Directed local broadcast (arXiv:1911.07298 regime, strong form).

    The generalization implemented for strongly connected digraphs:

    * ``n > f`` — trivial solvability;
    * minimum *in*-degree ≥ ``2f`` — a node must hear ``2f`` neighbors
      so that, with ``f`` of them faulty, honest witnesses still form a
      majority of what it heard (the directed reading of Theorem 4.1(i):
      only in-arcs deliver information under local broadcast);
    * strong vertex connectivity ≥ ``⌊3f/2⌋ + 1`` — the directed Menger
      form of Theorem 4.1(ii): ``⌊3f/2⌋ + 1`` internally node-disjoint
      *directed* paths between every ordered pair.

    On a symmetric view every clause collapses to its undirected
    counterpart exactly (in-degree = degree, strong κ = κ, including
    κ = 0 for disconnected graphs), so this checker and
    :func:`check_local_broadcast` agree on all symmetric lifts for every
    ``f`` — the equality the property suite tests.  For digraphs that
    are not strongly connected this strong form reports κ = 0 and hence
    infeasibility; :func:`check_directed_decomposition` refines that
    verdict via the condensation.
    """
    if f < 0:
        raise ValueError("f must be non-negative")
    clauses = (
        Clause("n > f (trivial solvability bound)", f + 1, graph.n),
        Clause("minimum in-degree >= 2f", 2 * f, graph.min_in_degree()),
        Clause(
            "strong connectivity >= floor(3f/2) + 1",
            local_broadcast_threshold_connectivity(f),
            directed_vertex_connectivity(graph),
        ),
    )
    return ConditionReport("directed-local-broadcast", f, None, clauses)


def check_directed_decomposition(graph: Digraph, f: int) -> ConditionReport:
    """Directed feasibility on *arbitrary* digraphs via the condensation.

    Decomposes the digraph into its source strongly-connected component
    (the "core") and relay territory, the structure the companion paper
    (arXiv:1911.07298) characterizes:

    * ``n > f`` — trivial solvability;
    * the condensation has a **unique source component** — with two or
      more, consensus is impossible even fault-free: each source never
      learns the others' inputs, and validity on all-0 vs all-1 inputs
      forces disagreement;
    * the core satisfies the strong-form conditions (in-degree ≥ ``2f``,
      strong κ ≥ ``⌊3f/2⌋ + 1``) so it can decide among itself;
    * every non-core node has ≥ ``2f + 1`` internally node-disjoint
      directed core→v paths, the reliable-receipt threshold: ``f`` faults
      leave ``f + 1`` clean disjoint carriers of the core's decision,
      while a fabricated value would need ``f + 1`` disjoint paths each
      containing its own distinct fault.

    On a strongly connected digraph the core is the whole graph, the
    relay clause vanishes, and the verdict equals the strong form's.
    The clause set is a principled sufficient/necessary decomposition in
    this codebase's reliable-receipt calculus; the companion paper's
    exact characterization is finer-grained on relay territory.
    """
    if f < 0:
        raise ValueError("f must be non-negative")
    sources = source_components(graph)
    core = sources[0] if sources else frozenset()
    core_graph = graph.subgraph(core)
    clauses = [
        Clause("n > f (trivial solvability bound)", f + 1, graph.n),
        Clause(
            "condensation has a unique source component (1 = yes)",
            1,
            int(len(sources) == 1),
        ),
        Clause(
            "core minimum in-degree >= 2f", 2 * f, core_graph.min_in_degree()
        ),
        Clause(
            "core strong connectivity >= floor(3f/2) + 1",
            local_broadcast_threshold_connectivity(f),
            directed_vertex_connectivity(core_graph),
        ),
    ]
    relay_nodes = sorted(graph.nodes - set(core), key=repr)
    if relay_nodes:
        fan_in = min(
            max_set_disjoint_paths(graph, core, v) for v in relay_nodes
        )
        clauses.append(
            Clause(
                "every non-core node has >= 2f + 1 disjoint core paths",
                2 * f + 1,
                fan_in,
            )
        )
    return ConditionReport("directed-decomposition", f, None, tuple(clauses))


def async_threshold_connectivity(f: int) -> int:
    """The asynchronous regime's connectivity bound ``2f + 1``.

    The asynchronous follow-up paper (arXiv:1909.02865) trades the
    synchronous model's ``⌊3f/2⌋ + 1`` connectivity for the classical
    point-to-point bound: with no round structure, reliable receipt must
    survive ``f`` faulty *and* arbitrarily slow path families, which is
    exactly what ``2f + 1`` internally disjoint paths buy (``f + 1`` of
    them fault-free, hence eventually delivering).
    """
    return 2 * f + 1


def check_async_local_broadcast(graph: Graph, f: int) -> ConditionReport:
    """Feasibility of the *asynchronous* algorithm (arXiv:1909.02865 regime).

    Three clauses, each tied to a mechanism of
    :mod:`repro.consensus.async_alg`:

    * ``n ≥ 3f + 1`` — the vote-quorum intersection: a decision cites
      ``n − f`` single-valued votes, and the next round's majority step
      needs ``n − 2f > f``;
    * connectivity ``≥ 2f + 1`` — totality of reliable receipt: ``f + 1``
      fault-free disjoint paths to every node, with no timing assumption;
    * minimum degree ``≥ ⌊3f/2⌋ + 1`` — the local-broadcast guarantee
      that a faulty node's initiation is witnessed by enough honest
      neighbors to propagate (implied by the connectivity clause, listed
      separately because it is the clause the paper family names).
    """
    if f < 0:
        raise ValueError("f must be non-negative")
    clauses = (
        Clause("n >= 3f + 1 (vote-quorum intersection)", 3 * f + 1, graph.n),
        Clause(
            "connectivity >= 2f + 1",
            async_threshold_connectivity(f),
            vertex_connectivity(graph),
        ),
        Clause(
            "minimum degree >= floor(3f/2) + 1",
            (3 * f) // 2 + 1,
            graph.min_degree(),
        ),
    )
    return ConditionReport("async-local-broadcast", f, None, clauses)


def check_point_to_point(graph: Graph, f: int) -> ConditionReport:
    """The classical Dolev bound: ``n ≥ 3f + 1`` and κ ≥ ``2f + 1``."""
    if f < 0:
        raise ValueError("f must be non-negative")
    clauses = (
        Clause("n >= 3f + 1", 3 * f + 1, graph.n),
        Clause("connectivity >= 2f + 1", 2 * f + 1, vertex_connectivity(graph)),
    )
    return ConditionReport("point-to-point", f, None, clauses)


def check_hybrid(graph: Graph, f: int, t: int) -> ConditionReport:
    """Theorem 6.1: consensus under the hybrid model iff these hold."""
    if f < 0:
        raise ValueError("f must be non-negative")
    if not 0 <= t <= f:
        raise ValueError("need 0 <= t <= f")
    clauses = [
        Clause("n > f (trivial solvability bound)", f + 1, graph.n),
        Clause(
            "connectivity >= floor(3(f-t)/2) + 2t + 1",
            hybrid_threshold_connectivity(f, t),
            vertex_connectivity(graph),
        ),
    ]
    if t == 0:
        clauses.append(Clause("minimum degree >= 2f (t = 0)", 2 * f, graph.min_degree()))
    else:
        if graph.n > 0:
            measured, _ = min_set_neighborhood(graph, t)
        else:
            measured = 0
        clauses.append(
            Clause(
                "every S with 0 < |S| <= t has >= 2f + 1 neighbors",
                2 * f + 1,
                measured,
            )
        )
    return ConditionReport("hybrid", f, t, tuple(clauses))


def max_f_local_broadcast(graph: Graph) -> int:
    """The largest ``f`` for which Theorem 5.1 declares ``G`` feasible.

    Delegates to :func:`max_f_directed_local_broadcast`: on a symmetric
    view the directed clauses measure the identical quantities, so the
    verdicts — and hence the maximal ``f`` — coincide for every ``f``
    (property-tested).
    """
    return max_f_directed_local_broadcast(graph)


def max_f_directed_local_broadcast(graph: Digraph) -> int:
    """The largest ``f`` the directed strong-form conditions allow."""
    f = 0
    while check_directed_local_broadcast(graph, f + 1).feasible:
        f += 1
    return f


def max_f_async_local_broadcast(graph: Graph) -> int:
    """The largest ``f`` for which the asynchronous regime is feasible."""
    f = 0
    while check_async_local_broadcast(graph, f + 1).feasible:
        f += 1
    return f


def max_f_point_to_point(graph: Graph) -> int:
    """The largest ``f`` satisfying the classical point-to-point bound."""
    f = 0
    while check_point_to_point(graph, f + 1).feasible:
        f += 1
    return f


def max_f_hybrid(graph: Graph, t: int) -> int:
    """The largest ``f ≥ t`` for which Theorem 6.1 declares feasibility.

    Returns ``t - 1``-style degenerate answers as ``None``-free ints:
    if even ``f = t`` is infeasible the result is ``t - 1`` meaning "no
    valid f for this t" (callers treat values below ``t`` as infeasible).
    """
    f = max(t, 0)
    if not check_hybrid(graph, f, t).feasible:
        return t - 1
    while check_hybrid(graph, f + 1, t).feasible:
        f += 1
    return f
