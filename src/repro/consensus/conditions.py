"""Feasibility conditions: Theorems 4.1/5.1, 6.1, and the classical bound.

The paper's headline results are *characterizations* — graph-theoretic
conditions that are simultaneously necessary and sufficient:

* **Local broadcast** (Theorems 4.1 + 5.1): min degree ≥ ``2f`` and
  vertex connectivity ≥ ``⌊3f/2⌋ + 1``.
* **Point-to-point** (Dolev '82, quoted in Section 1): ``n ≥ 3f + 1``
  and vertex connectivity ≥ ``2f + 1``.
* **Hybrid, ≤ t equivocating faults** (Theorem 6.1): connectivity ≥
  ``⌊3(f − t)/2⌋ + 2t + 1``; if ``t = 0`` min degree ≥ ``2f``; if
  ``t > 0`` every set ``S`` with ``0 < |S| ≤ t`` has ≥ ``2f + 1``
  neighbors.

Each checker returns a :class:`ConditionReport` listing every clause with
its required and measured value, so experiments can show *which*
condition fails and by how much.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..graphs import (
    Graph,
    min_set_neighborhood,
    vertex_connectivity,
)


@dataclass(frozen=True, slots=True)
class Clause:
    """One atomic requirement: a measured quantity vs its threshold."""

    name: str
    required: int
    measured: int

    @property
    def holds(self) -> bool:
        return self.measured >= self.required

    @property
    def margin(self) -> int:
        return self.measured - self.required

    def __str__(self) -> str:
        verdict = "ok" if self.holds else "FAIL"
        return f"{self.name}: need >= {self.required}, have {self.measured} [{verdict}]"


@dataclass(frozen=True, slots=True)
class ConditionReport:
    """The outcome of a feasibility check on ``(G, f[, t])``."""

    model: str
    f: int
    t: Optional[int]
    clauses: Tuple[Clause, ...]

    @property
    def feasible(self) -> bool:
        return all(c.holds for c in self.clauses)

    def failing(self) -> List[Clause]:
        return [c for c in self.clauses if not c.holds]

    def __str__(self) -> str:
        t_part = "" if self.t is None else f", t={self.t}"
        head = f"{self.model} (f={self.f}{t_part}): " + (
            "FEASIBLE" if self.feasible else "infeasible"
        )
        return head + "".join(f"\n  {c}" for c in self.clauses)


def local_broadcast_threshold_connectivity(f: int) -> int:
    """The tight connectivity bound ``⌊3f/2⌋ + 1`` of Theorems 4.1/5.1."""
    return (3 * f) // 2 + 1


def hybrid_threshold_connectivity(f: int, t: int) -> int:
    """Theorem 6.1(i): ``⌊3(f − t)/2⌋ + 2t + 1``.

    Interpolates between the local-broadcast bound at ``t = 0`` and the
    point-to-point bound ``2f + 1`` at ``t = f`` — the paper's
    quantification of the price of equivocation.
    """
    if not 0 <= t <= f:
        raise ValueError("need 0 <= t <= f")
    return (3 * (f - t)) // 2 + 2 * t + 1


def check_local_broadcast(graph: Graph, f: int) -> ConditionReport:
    """Theorem 4.1/5.1: consensus under local broadcast iff these hold."""
    if f < 0:
        raise ValueError("f must be non-negative")
    clauses = (
        Clause("n > f (trivial solvability bound)", f + 1, graph.n),
        Clause("minimum degree >= 2f", 2 * f, graph.min_degree()),
        Clause(
            "connectivity >= floor(3f/2) + 1",
            local_broadcast_threshold_connectivity(f),
            vertex_connectivity(graph),
        ),
    )
    return ConditionReport("local-broadcast", f, None, clauses)


def async_threshold_connectivity(f: int) -> int:
    """The asynchronous regime's connectivity bound ``2f + 1``.

    The asynchronous follow-up paper (arXiv:1909.02865) trades the
    synchronous model's ``⌊3f/2⌋ + 1`` connectivity for the classical
    point-to-point bound: with no round structure, reliable receipt must
    survive ``f`` faulty *and* arbitrarily slow path families, which is
    exactly what ``2f + 1`` internally disjoint paths buy (``f + 1`` of
    them fault-free, hence eventually delivering).
    """
    return 2 * f + 1


def check_async_local_broadcast(graph: Graph, f: int) -> ConditionReport:
    """Feasibility of the *asynchronous* algorithm (arXiv:1909.02865 regime).

    Three clauses, each tied to a mechanism of
    :mod:`repro.consensus.async_alg`:

    * ``n ≥ 3f + 1`` — the vote-quorum intersection: a decision cites
      ``n − f`` single-valued votes, and the next round's majority step
      needs ``n − 2f > f``;
    * connectivity ``≥ 2f + 1`` — totality of reliable receipt: ``f + 1``
      fault-free disjoint paths to every node, with no timing assumption;
    * minimum degree ``≥ ⌊3f/2⌋ + 1`` — the local-broadcast guarantee
      that a faulty node's initiation is witnessed by enough honest
      neighbors to propagate (implied by the connectivity clause, listed
      separately because it is the clause the paper family names).
    """
    if f < 0:
        raise ValueError("f must be non-negative")
    clauses = (
        Clause("n >= 3f + 1 (vote-quorum intersection)", 3 * f + 1, graph.n),
        Clause(
            "connectivity >= 2f + 1",
            async_threshold_connectivity(f),
            vertex_connectivity(graph),
        ),
        Clause(
            "minimum degree >= floor(3f/2) + 1",
            (3 * f) // 2 + 1,
            graph.min_degree(),
        ),
    )
    return ConditionReport("async-local-broadcast", f, None, clauses)


def check_point_to_point(graph: Graph, f: int) -> ConditionReport:
    """The classical Dolev bound: ``n ≥ 3f + 1`` and κ ≥ ``2f + 1``."""
    if f < 0:
        raise ValueError("f must be non-negative")
    clauses = (
        Clause("n >= 3f + 1", 3 * f + 1, graph.n),
        Clause("connectivity >= 2f + 1", 2 * f + 1, vertex_connectivity(graph)),
    )
    return ConditionReport("point-to-point", f, None, clauses)


def check_hybrid(graph: Graph, f: int, t: int) -> ConditionReport:
    """Theorem 6.1: consensus under the hybrid model iff these hold."""
    if f < 0:
        raise ValueError("f must be non-negative")
    if not 0 <= t <= f:
        raise ValueError("need 0 <= t <= f")
    clauses = [
        Clause("n > f (trivial solvability bound)", f + 1, graph.n),
        Clause(
            "connectivity >= floor(3(f-t)/2) + 2t + 1",
            hybrid_threshold_connectivity(f, t),
            vertex_connectivity(graph),
        ),
    ]
    if t == 0:
        clauses.append(Clause("minimum degree >= 2f (t = 0)", 2 * f, graph.min_degree()))
    else:
        if graph.n > 0:
            measured, _ = min_set_neighborhood(graph, t)
        else:
            measured = 0
        clauses.append(
            Clause(
                "every S with 0 < |S| <= t has >= 2f + 1 neighbors",
                2 * f + 1,
                measured,
            )
        )
    return ConditionReport("hybrid", f, t, tuple(clauses))


def max_f_local_broadcast(graph: Graph) -> int:
    """The largest ``f`` for which Theorem 5.1 declares ``G`` feasible."""
    f = 0
    while check_local_broadcast(graph, f + 1).feasible:
        f += 1
    return f


def max_f_async_local_broadcast(graph: Graph) -> int:
    """The largest ``f`` for which the asynchronous regime is feasible."""
    f = 0
    while check_async_local_broadcast(graph, f + 1).feasible:
        f += 1
    return f


def max_f_point_to_point(graph: Graph) -> int:
    """The largest ``f`` satisfying the classical point-to-point bound."""
    f = 0
    while check_point_to_point(graph, f + 1).feasible:
        f += 1
    return f


def max_f_hybrid(graph: Graph, t: int) -> int:
    """The largest ``f ≥ t`` for which Theorem 6.1 declares feasibility.

    Returns ``t - 1``-style degenerate answers as ``None``-free ints:
    if even ``f = t`` is infeasible the result is ``t - 1`` meaning "no
    valid f for this t" (callers treat values below ``t`` as infeasible).
    """
    f = max(t, 0)
    if not check_hybrid(graph, f, t).feasible:
        return t - 1
    while check_hybrid(graph, f + 1, t).feasible:
        f += 1
    return f
