"""Point-to-point baselines: EIG consensus and Dolev-style relay.

The paper's headline comparison (Section 1) is against the classical
point-to-point model, where consensus needs ``n ≥ 3f + 1`` **and**
connectivity ``≥ 2f + 1`` (Dolev '82).  To make that comparison
executable we implement the classical stack:

* :class:`EIGProtocol` — exponential information gathering (Bar-Noy,
  Dolev, Dwork, Strong) on *complete* graphs: ``f + 1`` rounds of
  relaying plus one collection round, then a recursive majority
  resolve.  Correct iff ``n ≥ 3f + 1`` — and demonstrably *incorrect*
  below that bound under an equivocating adversary, which our
  benchmarks exhibit on ``K_3`` with ``f = 1`` (where the
  local-broadcast algorithms succeed).
* :class:`DolevEIGProtocol` — the same EIG logic on incomplete graphs,
  with every EIG round implemented as a flooding super-round: each
  message is routed with path annotations and the receiver reads, for a
  canonical family of ``2f + 1`` node-disjoint paths, the value each
  path delivered, taking the majority (at most ``f`` paths can lie).

These baselines let benchmarks show the trade *within one codebase*:
same simulator, same adversaries, different channel model and protocol.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from ..graphs import Graph, max_disjoint_paths
from ..net.adversary import Adversary, FaultSpec, _WrapperProtocol
from ..net.messages import DirectMessage
from ..net.node import Context, Protocol
from .algorithm2 import majority
from .flooding import FloodInstance, flood_rounds

Label = Tuple[Hashable, ...]


def _resolve(
    tree: Dict[Label, int], label: Label, nodes: List[Hashable], depth: int
) -> int:
    """EIG recursive resolve: leaves report their value, internal labels
    take the majority of their children; missing entries default to 0."""
    if len(label) == depth:
        return tree.get(label, 0)
    children = [
        _resolve(tree, label + (q,), nodes, depth) for q in nodes if q not in label
    ]
    return majority(children)


def _valid_level_item(item: object, expected_len: int, sender: Hashable) -> bool:
    """Syntactic check on one relayed ``(label, value)`` EIG entry."""
    if not (isinstance(item, tuple) and len(item) == 2):
        return False
    label, value = item
    return (
        isinstance(label, tuple)
        and value in (0, 1)
        and len(label) == expected_len
        and sender not in label
        and len(set(label)) == len(label)
    )


class EIGProtocol(Protocol):
    """Exponential information gathering on a complete graph.

    Rounds ``1..f+1`` broadcast the tree level of length ``r - 1``; the
    final round ``f + 2`` only stores the last relays and resolves the
    tree bottom-up.  Correct for ``n ≥ 3f + 1`` under any channel model;
    *breakable by equivocation* below that bound — which is the point of
    carrying it as a baseline.
    """

    def __init__(self, graph: Graph, node: Hashable, f: int, input_value: int):
        if input_value not in (0, 1):
            raise ValueError("binary input expected")
        expected = graph.n - 1
        if any(graph.degree(v) != expected for v in graph.nodes):
            raise ValueError("EIGProtocol requires a complete graph")
        self.graph = graph
        self.me = node
        self.f = f
        self.nodes = sorted(graph.nodes, key=repr)
        self.total_rounds = f + 2
        self.tree: Dict[Label, int] = {(): input_value}
        self._output: Optional[int] = None

    def on_round(self, ctx: Context) -> None:
        r = ctx.round_no
        if r > self.total_rounds:
            return
        # Store last round's relays: (label, v) received from q fills label·q.
        for sender, message in ctx.inbox:
            if not isinstance(message, DirectMessage):
                continue
            tag = message.tag
            if not (isinstance(tag, tuple) and len(tag) == 2 and tag[0] == "eig"):
                continue
            if tag[1] != r - 1 or not isinstance(message.payload, tuple):
                continue
            for item in message.payload:
                if _valid_level_item(item, r - 2, sender):
                    label, value = item
                    self.tree.setdefault(label + (sender,), value)
        if r <= self.f + 1:
            level = tuple(
                (label, v)
                for label, v in sorted(self.tree.items(), key=repr)
                if len(label) == r - 1 and self.me not in label
            )
            ctx.broadcast(DirectMessage(("eig", r), level))
            # A node hears its own relay too (standard EIG bookkeeping):
            # label·me carries the value it just reported.
            for label, v in level:
                self.tree.setdefault(label + (self.me,), v)
        if r == self.total_rounds:
            self._output = _resolve(self.tree, (), self.nodes, self.f + 1)

    def output(self) -> Optional[int]:
        return self._output


class EIGFactory:
    """Picklable honest-protocol factory for :class:`EIGProtocol`."""

    def __init__(self, graph: Graph, f: int):
        self.graph = graph
        self.f = f

    def __call__(self, node: Hashable, input_value: int) -> EIGProtocol:
        return EIGProtocol(self.graph, node, self.f, input_value)

    def flight_spec(self) -> dict:
        """JSON-ready recipe for the flight recorder (graph travels
        separately in the flight header)."""
        return {"kind": "eig", "f": self.f}


def eig_factory(graph: Graph, f: int) -> EIGFactory:
    """Honest-protocol factory for :class:`EIGProtocol`."""
    return EIGFactory(graph, f)


class EIGEquivocatingAdversary(Adversary):
    """The classical equivocation attack on EIG below ``n = 3f + 1``.

    In every relay the faulty node tells half its neighbors the level
    values are 0 and the other half 1.  On ``K_3`` with ``f = 1`` this
    forces the two honest nodes apart — the point-to-point lower bound
    made concrete, against which the local-broadcast model (where
    ``K_3 = K_{2f+1}`` suffices) is compared.  Requires a channel that
    lets the faulty node unicast (point-to-point or hybrid).
    """

    name = "eig-equivocate"

    def build(self, spec: FaultSpec) -> Protocol:
        class _Split(_WrapperProtocol):
            def transform(self, outbox, ctx):
                result = []
                for message, target in outbox:
                    if (
                        isinstance(message, DirectMessage)
                        and target is None
                        and isinstance(message.payload, tuple)
                    ):
                        for i, nbr in enumerate(
                            sorted(ctx.graph.neighbors(ctx.node), key=repr)
                        ):
                            split = tuple(
                                (label, i % 2) for label, _v in message.payload
                            )
                            result.append((DirectMessage(message.tag, split), nbr))
                    else:
                        result.append((message, target))
                return result

        return _Split(spec.honest())


class DolevEIGProtocol(Protocol):
    """EIG over an incomplete graph via Dolev-style reliable transmission.

    Each EIG round becomes a flooding super-round of ``n`` network
    rounds.  A receiver resolves the level sent by ``q`` by examining a
    canonical family of ``2f + 1`` node-disjoint ``q → me`` paths and
    taking, per label, the majority of the values those paths delivered
    (a label needs at least ``f + 1`` path votes to be stored at all).
    With connectivity ``≥ 2f + 1`` and at most ``f`` corrupt paths,
    honest senders are always read correctly; with ``n ≥ 3f + 1`` the
    EIG resolve then yields consensus.
    """

    def __init__(self, graph: Graph, node: Hashable, f: int, input_value: int):
        if input_value not in (0, 1):
            raise ValueError("binary input expected")
        self.graph = graph
        self.me = node
        self.f = f
        self.nodes = sorted(graph.nodes, key=repr)
        self.rounds_per_super = flood_rounds(graph)
        self.total_rounds = (f + 1) * self.rounds_per_super
        self.tree: Dict[Label, int] = {(): input_value}
        self._flood: Optional[FloodInstance] = None
        self._output: Optional[int] = None
        # Canonical disjoint-path families, computed on demand per origin.
        self._families: Dict[Hashable, List[Tuple[Hashable, ...]]] = {}

    # ------------------------------------------------------------------
    def on_round(self, ctx: Context) -> None:
        r = ctx.round_no
        if r > self.total_rounds:
            return
        super_idx = (r - 1) // self.rounds_per_super  # 0-based EIG round
        within = (r - 1) % self.rounds_per_super + 1
        if within == 1:
            self._flood = FloodInstance(
                self.graph, self.me, phase=("dolev-eig", super_idx)
            )
            level = tuple(
                (label, v)
                for label, v in sorted(self.tree.items(), key=repr)
                if len(label) == super_idx and self.me not in label
            )
            self._flood.initiate(ctx, level)
            # A node hears its own relay (standard EIG bookkeeping).
            for label, v in level:
                self.tree.setdefault(label + (self.me,), v)
        else:
            assert self._flood is not None
            self._flood.process_round(ctx)
        if within == self.rounds_per_super:
            self._absorb_super_round(super_idx)
            if super_idx == self.f:
                self._output = _resolve(self.tree, (), self.nodes, self.f + 1)

    def output(self) -> Optional[int]:
        return self._output

    # ------------------------------------------------------------------
    def _paths_from(self, origin: Hashable) -> List[Tuple[Hashable, ...]]:
        if origin not in self._families:
            _count, paths = max_disjoint_paths(
                self.graph, origin, self.me, want_paths=True
            )
            self._families[origin] = sorted(paths, key=repr)[: 2 * self.f + 1]
        return self._families[origin]

    def _absorb_super_round(self, super_idx: int) -> None:
        assert self._flood is not None
        delivered = self._flood.delivered
        for q in self.nodes:
            if q == self.me:
                continue
            votes: Dict[Label, List[int]] = {}
            for path in self._paths_from(q):
                payload = delivered.get(path)
                if not isinstance(payload, tuple):
                    continue
                for item in payload:
                    if _valid_level_item(item, super_idx, q):
                        label, value = item
                        votes.setdefault(label, []).append(value)
            for label, vals in sorted(votes.items(), key=repr):
                if len(vals) >= self.f + 1:
                    self.tree.setdefault(label + (q,), majority(vals))


class DolevEIGFactory:
    """Picklable honest-protocol factory for :class:`DolevEIGProtocol`."""

    def __init__(self, graph: Graph, f: int):
        self.graph = graph
        self.f = f

    def __call__(self, node: Hashable, input_value: int) -> DolevEIGProtocol:
        return DolevEIGProtocol(self.graph, node, self.f, input_value)

    def flight_spec(self) -> dict:
        """JSON-ready recipe for the flight recorder (graph travels
        separately in the flight header)."""
        return {"kind": "dolev-eig", "f": self.f}


def dolev_eig_factory(graph: Graph, f: int) -> DolevEIGFactory:
    """Honest-protocol factory for :class:`DolevEIGProtocol`."""
    return DolevEIGFactory(graph, f)
