"""Algorithm 1: exact Byzantine consensus under local broadcast.

One phase per candidate fault set ``F ⊆ V, |F| ≤ f`` (Section 5.1):

* **step (a)** — every node floods its current state ``γ_v`` with the
  path-annotated rules of :mod:`repro.consensus.flooding`;
* **step (b)** — for each ``u``, pick one ``uv``-path ``P_uv`` excluding
  ``F`` (Lemma 5.4 guarantees it exists) and classify ``u`` into ``Z_v``
  (received 0 along ``P_uv``) or ``N_v`` (otherwise);
* **step (c)** — choose ``(A_v, B_v)`` by the four-case rule; if
  ``v ∈ B_v`` and some value ``δ`` arrived along ``f + 1`` node-disjoint
  ``A_v v``-paths excluding ``F``, set ``γ_v := δ``.

The same engine, parameterized by the equivocation budget ``t``, runs the
hybrid-model Algorithm 3 (Appendix D.2): phases become pairs ``(F, T)``
with ``|T| ≤ t``, ``F ⊆ V − T``, ``|F| ≤ f − |T|``; paths must exclude
``F ∪ T``; the case thresholds use ``ϕ = f − |T|``.  The paper itself
notes Algorithm 3 *is* Algorithm 1 when ``t = 0``.

This algorithm is exponential by design — the paper says so — and the
library keeps it to small graphs; Appendix C's efficient algorithm lives
in :mod:`repro.consensus.algorithm2`.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import FrozenSet, Hashable, List, Optional, Tuple

from ..graphs import Graph, has_disjoint_mask_packing
from ..net.messages import ValuePayload
from ..net.node import Context, Protocol
from .flooding import FloodInstance, flood_rounds
from .path_oracle import PathOracle

CandidatePair = Tuple[FrozenSet[Hashable], FrozenSet[Hashable]]  # (F, T)


def candidate_fault_sets(graph: Graph, f: int) -> List[FrozenSet[Hashable]]:
    """All ``F ⊆ V`` with ``|F| ≤ f``, in a canonical order.

    Every node enumerates phases identically (the order is a pure
    function of the graph and ``f``), which the algorithm requires: phase
    ``i`` must mean the same candidate set everywhere.
    """
    nodes = sorted(graph.nodes, key=repr)
    out: List[FrozenSet[Hashable]] = []
    for size in range(0, f + 1):
        for combo in combinations(nodes, size):
            out.append(frozenset(combo))
    return out


def candidate_pairs(graph: Graph, f: int, t: int) -> List[CandidatePair]:
    """All ``(F, T)`` pairs of Algorithm 3, canonically ordered.

    ``T ⊆ V, |T| ≤ t`` ranges over possible equivocating sets and
    ``F ⊆ V − T, |F| ≤ f − |T|`` over the non-equivocating remainder.
    With ``t = 0`` this degenerates to Algorithm 1's ``(F, ∅)`` list.
    """
    nodes = sorted(graph.nodes, key=repr)
    pairs: List[CandidatePair] = []
    for t_size in range(0, t + 1):
        for t_combo in combinations(nodes, t_size):
            t_set = frozenset(t_combo)
            rest = [v for v in nodes if v not in t_set]
            for f_size in range(0, f - t_size + 1):
                for f_combo in combinations(rest, f_size):
                    pairs.append((frozenset(f_combo), t_set))
    return pairs


def phase_count(n: int, f: int, t: int = 0) -> int:
    """Closed-form number of phases (used by the cost benchmarks)."""
    if t == 0:
        return sum(comb(n, k) for k in range(f + 1))
    total = 0
    for j in range(t + 1):
        total += comb(n, j) * sum(comb(n - j, k) for k in range(f - j + 1))
    return total


class ExactConsensusProtocol(Protocol):
    """The shared phase engine behind Algorithms 1 and 3.

    ``t = 0`` is exactly Algorithm 1; ``t > 0`` is Algorithm 3.  Honest
    and (wrapped) faulty nodes both run this state machine — adversaries
    transform its outbox.
    """

    def __init__(self, graph: Graph, node: Hashable, f: int, input_value: int,
                 t: int = 0, oracle: Optional[PathOracle] = None):
        if input_value not in (0, 1):
            raise ValueError("binary input expected")
        if not 0 <= t <= f:
            raise ValueError("need 0 <= t <= f")
        if oracle is not None and oracle.graph != graph:
            raise ValueError("oracle was built for a different graph")
        self.graph = graph
        self.me = node
        self.f = f
        self.t = t
        # One oracle is typically shared by every instance on this graph
        # (the factories arrange that); a private one still caches the
        # per-phase pruned graph and BFS tree across step (b)'s n queries.
        self.oracle = oracle if oracle is not None else PathOracle(graph)
        self.gamma = input_value
        self.pairs = candidate_pairs(graph, f, t)
        self.rounds_per_phase = flood_rounds(graph)
        self.total_rounds = len(self.pairs) * self.rounds_per_phase
        self._flood: Optional[FloodInstance] = None
        self._output: Optional[int] = None
        # Step (b) orderings per equivocating set (one entry when t = 0):
        # (considered, repr-sorted considered, sorted considered - me).
        self._step_b_order: dict = {}
        # Diagnostics for the proof-invariant tests (Lemmas 5.2/5.3).
        self.gamma_history: List[int] = [input_value]

    # ------------------------------------------------------------------
    def on_round(self, ctx: Context) -> None:
        r = ctx.round_no
        if r > self.total_rounds:
            return
        phase_idx, within = divmod(r - 1, self.rounds_per_phase)
        within += 1
        if within == 1:
            self._flood = FloodInstance(
                self.graph,
                self.me,
                phase=("exact", phase_idx),
                default_payload=ValuePayload(1),
                validator=self._valid_payload,
            )
            self._flood.initiate(ctx, ValuePayload(self.gamma))
        else:
            assert self._flood is not None
            self._flood.process_round(ctx)
        if within == self.rounds_per_phase:
            self._finish_phase(phase_idx)
            self.gamma_history.append(self.gamma)
            if phase_idx == len(self.pairs) - 1:
                self._output = self.gamma

    @staticmethod
    def _valid_payload(payload, full_path) -> bool:
        return isinstance(payload, ValuePayload)

    def output(self) -> Optional[int]:
        return self._output

    # ------------------------------------------------------------------
    # Steps (b) and (c)
    # ------------------------------------------------------------------
    def _finish_phase(self, phase_idx: int) -> None:
        fault_set, equiv_set = self.pairs[phase_idx]
        # One frozenset per phase: the oracle keys on it, and a shared
        # object hashes once (frozensets cache their hash).
        excluded = frozenset(fault_set | equiv_set)
        assert self._flood is not None
        delivered = self._flood.delivered
        phi = self.f - len(equiv_set)

        # --- Step (b): classify every u in V - T via one path P_uv that
        # excludes F ∪ T.  A missing delivery (a faulty internal node
        # dropped the message) reads as the default value 1, consistent
        # with Z_v := {u | 0 was received along P_uv}.
        z_set: set[Hashable] = set()
        me = self.me
        cached = self._step_b_order.get(equiv_set)
        if cached is None:
            considered = self.graph.nodes - equiv_set
            ordered = sorted(considered, key=repr)
            cached = (considered, ordered, [u for u in ordered if u != me])
            self._step_b_order[equiv_set] = cached
        considered, ordered, sources = cached
        # One batched oracle query per phase: every u shares the same
        # excluded set and target, so the key prefix renders once (the
        # answers and memo traffic equal the per-u loop it replaces).
        paths = iter(self.oracle.paths_excluding_many(sources, me, excluded))
        delivered_get = delivered.get
        for u in ordered:
            if u == me:
                payload = delivered_get((me,))
            else:
                path = next(paths)
                payload = delivered_get(path) if path is not None else None
            value = payload.value if isinstance(payload, ValuePayload) else 1
            if value == 0:
                z_set.add(u)
        n_set = considered - z_set

        # --- Step (c): the four-case choice of (A_v, B_v).
        z_in_f = len(z_set & fault_set)
        if z_in_f <= phi // 2:
            if len(n_set) > self.f:
                a_set, b_set = n_set, z_set  # case 1
            else:
                a_set, b_set = z_set, n_set  # case 2
        else:
            if len(z_set) > self.f:
                a_set, b_set = z_set, n_set  # case 3
            else:
                a_set, b_set = n_set, z_set  # case 4

        if self.me not in b_set:
            return
        # γ_v := δ if some δ arrived along f + 1 node-disjoint
        # A_v v-paths excluding F ∪ T.  Checking δ = 0 first is an
        # arbitrary-but-deterministic tie-break; Lemma 5.2 holds for
        # either δ that passes (each passing δ is some honest node's
        # start-of-phase state).
        #
        # Candidates come from the flood's per-origin sub-index (one
        # origin of A_v at a time instead of scanning all of
        # ``delivered``), and both "excludes F ∪ T" and Uv-disjointness
        # run on the recorded visited-set bitmasks: a path excludes the
        # candidate set iff its internal mask misses ``excl_mask``, and
        # mode="set" disjointness is pairwise AND over everything-but-me
        # masks.  Packing is existence-only, so the per-origin candidate
        # order is immaterial.
        index = self.graph.node_index()
        path_mask = self._flood.path_mask
        me_bit = 1 << index.index_of[self.me]
        excl_mask = index.mask_of(excluded)
        for delta in (0, 1):
            masks: List[int] = []
            for origin in sorted(a_set, key=repr):
                ends = (1 << index.index_of[origin]) | me_bit
                for p, payload in self._flood.origin_view(origin).items():  # repro: allow[REPRO001] insertion-ordered by the deterministic flood; packing is existence-only
                    if (
                        len(p) >= 2
                        and isinstance(payload, ValuePayload)
                        and payload.value == delta
                    ):
                        full = path_mask(p)
                        if full & ~ends & excl_mask == 0:
                            masks.append(full & ~me_bit)
            if has_disjoint_mask_packing(masks, self.f + 1):
                self.gamma = delta
                return

    def _path_excluding(
        self, u: Hashable, excluded: FrozenSet[Hashable] | set
    ) -> Optional[Tuple[Hashable, ...]]:
        """One ``u → me`` path with no internal node in ``excluded``.

        Lemma 5.4 (resp. D.4) guarantees existence whenever the graph
        meets the feasibility conditions; on deficient graphs (used by the
        impossibility experiments) this may return ``None`` and the caller
        falls back to the default classification.  Delegated to the
        (shared) :class:`~repro.consensus.path_oracle.PathOracle`, so the
        pruned graph and BFS tree for each candidate set are computed once
        per graph rather than once per node per phase.
        """
        if not isinstance(excluded, frozenset):
            excluded = frozenset(excluded)
        return self.oracle.path_excluding(u, self.me, excluded)


class Algorithm1Protocol(ExactConsensusProtocol):
    """Algorithm 1 (Section 5.1): the tight-condition local-broadcast
    consensus protocol.  Equivalent to the engine with ``t = 0``."""

    def __init__(self, graph: Graph, node: Hashable, f: int, input_value: int,
                 oracle: Optional[PathOracle] = None):
        super().__init__(graph, node, f, input_value, t=0, oracle=oracle)


class Algorithm1Factory:
    """Picklable honest-protocol factory: ``(node, input) → protocol``.

    All protocol instances built by one factory share one
    :class:`PathOracle`, so the per-phase pruned graphs and BFS trees are
    computed once per *graph* instead of once per node.  Being a plain
    class (not a closure), the factory crosses process boundaries — the
    parallel sweep engine ships it to its workers; ``__reduce__`` of the
    oracle keeps that cheap by shipping only the structural memos
    (pruned graphs and BFS trees), so workers start warm without
    carrying the per-query caches.
    """

    def __init__(self, graph: Graph, f: int):
        self.graph = graph
        self.f = f
        self.oracle = PathOracle(graph)

    def __call__(self, node: Hashable, input_value: int) -> Algorithm1Protocol:
        return Algorithm1Protocol(
            self.graph, node, self.f, input_value, oracle=self.oracle
        )

    def flight_spec(self) -> dict:
        """JSON-ready recipe for the flight recorder (the graph travels
        separately in the flight header, so replay can rebuild this
        factory as ``Algorithm1Factory(graph, **spec-minus-kind)``)."""
        return {"kind": "algorithm1", "f": self.f}

    def __reduce__(self):
        # The state dict carries the (warm) oracle across the process
        # boundary, replacing the cold one __init__ builds.
        return (type(self), (self.graph, self.f), {"oracle": self.oracle})


def algorithm1_factory(graph: Graph, f: int) -> Algorithm1Factory:
    """An honest-protocol factory for the runner: ``(node, input) → protocol``."""
    return Algorithm1Factory(graph, f)
