"""One-call experiment runner: wire up a graph, inputs, faults, adversary.

Every correctness experiment in the library is phrased as: *run protocol
P on graph G with inputs I, faulty set X behaving as adversary A, under
channel model M; then check agreement / validity / termination over the
honest nodes*.  :func:`run_consensus` does exactly that and returns a
structured verdict, so tests and benchmarks stay declarative.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Union

from ..graphs import Graph
from ..net.adversary import Adversary, FaultSpec, HonestFactory
from ..net.channels import ChannelModel, local_broadcast_model
from ..net.node import Protocol
from ..net.sched import EventDrivenNetwork, SchedulerSpec
from ..net.simulator import SimulationError, SynchronousNetwork
from ..net.trace import Trace
from ..obs import (
    FlightRecord,
    MetricsRegistry,
    WallTimings,
    encode_label,
    flight_from_trace,
)


#: The four ways a run can end (``ConsensusResult.outcome``).
OUTCOME_DECIDED = "decided"
OUTCOME_DISAGREED = "disagreed"
OUTCOME_BUDGET_EXHAUSTED = "budget_exhausted"
OUTCOME_STALLED = "stalled"

#: Budget slack for message-driven protocols under a scheduler that
#: declares *no* delay bound: the soft ``budget_hint`` (unit-delay ticks)
#: cannot be scaled by a worst-case delay, so scale by this instead.
#: Quiescence detection usually stops such runs long before the cap.
_UNBOUNDED_BUDGET_SLACK = 8


@dataclass(frozen=True)
class ConsensusResult:
    """Outcome of one run, evaluated over the honest nodes only."""

    outputs: Dict[Hashable, Optional[int]]
    honest: FrozenSet[Hashable]
    faulty: FrozenSet[Hashable]
    honest_inputs: Dict[Hashable, int]
    rounds: int
    transmissions: int
    deliveries: int
    trace: Trace = field(repr=False)
    #: Message-driven runs only: the network went quiescent (nothing in
    #: flight, nothing sent, no local timers armed) with honest nodes
    #: still undecided — a genuine non-termination, not clock exhaustion.
    stalled: bool = False
    #: Canonical metrics snapshot when the run was metered (content
    #: data: virtual time only, byte-identical across engines/workers).
    metrics: Optional[dict] = None
    #: QUARANTINED wall-clock timings when metered.  Never compare these
    #: for determinism — strip via :func:`repro.obs.strip_timings`.
    timings: Optional[dict] = field(default=None, compare=False)
    #: The causal flight recording (``run_consensus(..., flight=True)``
    #: only): header + happened-before event stream + outcome as a
    #: replayable :class:`~repro.obs.FlightRecord`.  Derived entirely
    #: from the trace and the run's configuration, so it is excluded
    #: from equality like the trace-derived counters above it.
    flight: Optional[FlightRecord] = field(
        default=None, repr=False, compare=False
    )

    @property
    def honest_outputs(self) -> Dict[Hashable, Optional[int]]:
        return {v: self.outputs[v] for v in self.honest}

    @property
    def terminated(self) -> bool:
        """Every honest node decided (output is not None)."""
        return all(self.outputs[v] is not None for v in self.honest)

    @property
    def agreement(self) -> bool:
        """All honest outputs exist and are equal."""
        values = {self.outputs[v] for v in self.honest}
        return self.terminated and len(values) == 1

    @property
    def validity(self) -> bool:
        """Every honest output is the input of some honest node."""
        legal = set(self.honest_inputs.values())
        return self.terminated and all(
            self.outputs[v] in legal for v in self.honest
        )

    @property
    def consensus(self) -> bool:
        return self.terminated and self.agreement and self.validity

    @property
    def decision(self) -> Optional[int]:
        """The common honest output, when agreement holds."""
        if not self.agreement:
            return None
        # repro: allow[REPRO001] agreement holds here, so the set is a
        # singleton and iteration order is vacuous.
        return next(iter({self.outputs[v] for v in self.honest}))

    @property
    def outcome(self) -> str:
        """How the run ended, as a four-way verdict.

        ``"decided"`` — every honest node decided and the decisions
        satisfy agreement and validity; ``"disagreed"`` — every honest
        node decided but the decisions violate agreement or validity (a
        genuine safety failure); ``"budget_exhausted"`` — some honest
        node was still undecided when the virtual-time budget ran out;
        ``"stalled"`` (message-driven protocols only) — the run went
        quiescent with honest nodes undecided, so no amount of further
        virtual time could have helped.  The distinction matters for
        asynchronous runs: with a correctly scaled budget
        (``total_rounds × worst_case_delay`` for fixed-round protocols,
        ``budget_hint`` for message-driven ones), only ``"disagreed"``
        convicts the protocol of losing consensus, while the other two
        convict it of not terminating — and ``"stalled"`` proves it.
        """
        if not self.terminated:
            return OUTCOME_STALLED if self.stalled else OUTCOME_BUDGET_EXHAUSTED
        if not (self.agreement and self.validity):
            return OUTCOME_DISAGREED
        return OUTCOME_DECIDED


def run_consensus(
    graph: Graph,
    honest_factory: HonestFactory,
    inputs: Mapping[Hashable, int],
    f: int,
    faulty: Iterable[Hashable] = (),
    adversary: Optional[Adversary] = None,
    channel: Optional[ChannelModel] = None,
    max_rounds: Optional[int] = None,
    scheduler: Optional[SchedulerSpec] = None,
    metrics: Union[bool, MetricsRegistry, None] = None,
    flight: bool = False,
    run_spec: Optional[Mapping] = None,
) -> ConsensusResult:
    """Run one consensus execution and evaluate the three properties.

    ``honest_factory(node, input_value)`` builds the honest protocol;
    faulty nodes get ``adversary.build(...)`` instead.  ``max_rounds``
    defaults to the honest protocols' own ``total_rounds`` budget (every
    protocol in this library precomputes its round count — the paper's
    algorithms are all fixed-round).

    ``scheduler`` selects the timing model: ``None`` runs the classic
    synchronous simulator; a :class:`~repro.net.sched.SchedulerSpec`
    runs the event-driven core with a fresh scheduler built for this
    run.  The lockstep spec is trace-equivalent to ``None``; the
    asynchronous specs deliberately stress the fixed-round protocols
    outside their synchrony assumption.

    ``metrics`` meters the run: ``True`` builds a fresh
    :class:`~repro.obs.MetricsRegistry`; passing a registry (e.g. one
    with an NDJSON event log attached) uses it.  The canonical snapshot
    lands on ``ConsensusResult.metrics`` and the wall-clock duration —
    quarantined — on ``ConsensusResult.timings``.

    ``flight=True`` records the run as a causal flight recording
    (:class:`~repro.obs.FlightRecord` on ``ConsensusResult.flight``):
    the full happened-before event stream plus everything needed to
    re-execute the run byte-identically
    (:func:`repro.analysis.replay_flight`).  ``run_spec`` is an optional
    JSON-ready dict stored verbatim in the flight header (provenance —
    e.g. the sweep task index that produced the recording); it must be
    canonical itself, since replay byte-compares headers.
    """
    faulty_set = frozenset(faulty)
    unknown = faulty_set - graph.nodes
    if unknown:
        raise ValueError(f"faulty nodes not in graph: {sorted(unknown, key=repr)}")
    if len(faulty_set) > f:
        raise ValueError(f"|faulty| = {len(faulty_set)} exceeds f = {f}")
    if faulty_set and adversary is None:
        raise ValueError("an adversary is required when faulty nodes exist")
    missing_inputs = graph.nodes - set(inputs)
    if missing_inputs:
        raise ValueError(f"missing inputs for {sorted(missing_inputs, key=repr)}")

    channel = channel if channel is not None else local_broadcast_model()
    honest = frozenset(graph.nodes - faulty_set)

    protocols: Dict[Hashable, Protocol] = {}
    for node in sorted(graph.nodes, key=repr):
        if node in faulty_set:
            assert adversary is not None
            spec = FaultSpec(
                node=node,
                graph=graph,
                channel=channel,
                input_value=inputs[node],
                f=f,
                faulty=faulty_set,
                honest_factory=honest_factory,
            )
            protocols[node] = adversary.build(spec)
        else:
            protocols[node] = honest_factory(node, inputs[node])

    #: Quiescence-aware run loop iff every honest protocol is
    #: message-driven (no round schedule — e.g. the asynchronous
    #: algorithm): such protocols act only on arrivals and local timers,
    #: so "nothing in flight + nothing sent + no timer armed" proves the
    #: run can never progress again.
    message_driven = all(
        getattr(protocols[v], "message_driven", False)
        for v in sorted(honest, key=repr)
    )

    if max_rounds is None:
        known = []
        for v in sorted(honest, key=repr):
            budget = getattr(protocols[v], "total_rounds", None)
            if not isinstance(budget, int):
                if getattr(protocols[v], "message_driven", False):
                    # No round schedule exists; the protocol publishes a
                    # *soft* tick envelope instead (unit-delay
                    # denominated).  Scale it like a round budget when
                    # the scheduler declares a bound; under an unbounded
                    # scheduler apply a fixed slack — the quiescence
                    # check below, not the cap, is the real terminator.
                    hint = getattr(protocols[v], "budget_hint", None)
                    if isinstance(hint, int):
                        if scheduler is None:
                            known.append(hint)
                        elif scheduler.bounded:
                            known.append(scheduler.horizon(hint))
                        else:
                            known.append(hint * _UNBOUNDED_BUDGET_SLACK)
                continue
            if scheduler is not None and not getattr(
                protocols[v], "budget_in_ticks", False
            ):
                # The protocol's own budget counts synchronous *rounds*;
                # the event core counts virtual *ticks*.  Under delays up
                # to d, round r's messages need not land before tick r·d,
                # so capping ticks at the round budget would abort
                # slow-but-correct runs and report clock exhaustion as a
                # consensus failure.  Scale by the declared delay bound.
                # (Protocols that declare ``budget_in_ticks`` — the
                # α-synchronizer wrapper — already account for delays.)
                if not scheduler.bounded:
                    raise ValueError(
                        "max_rounds required: scheduler "
                        f"{scheduler.name!r} declares no delay bound"
                    )
                budget = scheduler.horizon(budget)
            known.append(budget)
        if not known:
            raise ValueError("max_rounds required: protocols expose no budget")
        max_rounds = max(known)

    if metrics is True:
        registry: Optional[MetricsRegistry] = MetricsRegistry()
    elif metrics:
        registry = metrics
    else:
        registry = None

    if scheduler is None:
        net = SynchronousNetwork(graph, protocols, channel, metrics=registry)
    else:
        net = EventDrivenNetwork(
            graph, protocols, scheduler.build(graph), channel, metrics=registry
        )
    stalled = False
    timer = WallTimings()
    with timer.time("run"):
        if message_driven:
            stalled = _run_message_driven(net, max_rounds, honest)
        else:
            try:
                net.run_until_decided(max_rounds, honest=set(honest))
            except SimulationError:
                pass  # non-termination is reported through the result, not raised
    snapshot = registry.snapshot() if registry is not None else None
    result = ConsensusResult(
        outputs=net.outputs(),
        honest=honest,
        faulty=faulty_set,
        honest_inputs={v: inputs[v] for v in sorted(honest, key=repr)},
        rounds=net.trace.rounds,
        transmissions=net.trace.transmission_count,
        deliveries=net.trace.delivery_count,
        trace=net.trace,
        stalled=stalled,
        metrics=snapshot,
        timings=timer.snapshot() if registry is not None else None,
    )
    if flight:
        header = _flight_header(
            graph, inputs, f, faulty_set, adversary, channel, scheduler,
            max_rounds, honest_factory, snapshot, run_spec,
        )
        outcome_line = {
            "type": "outcome",
            "outcome": result.outcome,
            "stalled": result.stalled,
            "rounds": result.rounds,
            "outputs": [
                [encode_label(v), result.outputs[v]]
                for v in sorted(result.outputs, key=repr)
            ],
        }
        # The result dataclass is frozen for callers; the recording is
        # derived data attached once here, before the result escapes.
        object.__setattr__(
            result, "flight", flight_from_trace(net.trace, header, outcome_line)
        )
    if registry is not None:
        registry.emit(
            "result",
            outcome=result.outcome,
            decision=result.decision,
            rounds=result.rounds,
            transmissions=result.transmissions,
            deliveries=result.deliveries,
        )
    return result


def _flight_header(
    graph: Graph,
    inputs: Mapping[Hashable, int],
    f: int,
    faulty_set: FrozenSet[Hashable],
    adversary: Optional[Adversary],
    channel: ChannelModel,
    scheduler: Optional[SchedulerSpec],
    max_rounds: int,
    honest_factory: HonestFactory,
    snapshot: Optional[dict],
    run_spec: Optional[Mapping],
) -> dict:
    """The flight header: everything a replay needs, JSON-canonical.

    Factories publish their own rebuild recipe via a duck-typed
    ``flight_spec()``; one without it is recorded as opaque — the flight
    stays fully analyzable, and only ``replay`` refuses it.  The
    adversary is recorded by battery name (plus its seed/crash knobs
    when present), the scheduler as its frozen spec fields, and
    ``max_rounds`` as the *resolved* budget so replay never re-derives.
    """
    spec_fn = getattr(honest_factory, "flight_spec", None)
    factory_spec = (
        spec_fn()
        if callable(spec_fn)
        else {"kind": "opaque", "repr": repr(honest_factory)}
    )
    adversary_spec = None
    if adversary is not None:
        adversary_spec = {
            "name": adversary.name,
            "seed": getattr(adversary, "seed", None),
        }
        crash_round = getattr(adversary, "crash_round", None)
        if crash_round is not None:
            adversary_spec["crash_round"] = crash_round
    nodes = sorted(graph.nodes, key=repr)
    if graph.directed:
        # Arcs are ordered pairs: no endpoint canonicalization, or the
        # direction would be lost on replay.
        graph_spec = {
            "nodes": [encode_label(v) for v in nodes],
            "edges": [
                [encode_label(u), encode_label(v)]
                for u, v in sorted(graph.arcs(), key=repr)
            ],
            "directed": True,
        }
    else:
        edge_pairs = sorted(
            (tuple(sorted(edge, key=repr)) for edge in graph.edges()),
            key=repr,
        )
        graph_spec = {
            "nodes": [encode_label(v) for v in nodes],
            "edges": [
                [encode_label(u), encode_label(v)] for u, v in edge_pairs
            ],
        }
    header = {
        "type": "header",
        "version": 1,
        "graph": graph_spec,
        "f": f,
        "faulty": [encode_label(v) for v in sorted(faulty_set, key=repr)],
        "inputs": [[encode_label(v), inputs[v]] for v in nodes],
        "adversary": adversary_spec,
        "channel": {
            "kind": channel.kind,
            "equivocators": [
                encode_label(v)
                for v in sorted(channel.equivocators, key=repr)
            ],
        },
        "scheduler": None if scheduler is None else asdict(scheduler),
        "max_rounds": max_rounds,
        "factory": factory_spec,
        "metered": snapshot is not None,
        "spec": dict(run_spec) if run_spec else {},
    }
    if snapshot is not None:
        header["spans"] = snapshot.get("spans", [])
    return header


def _run_message_driven(net, max_ticks: int, honest: FrozenSet[Hashable]) -> bool:
    """Run until every honest node decided, quiescence, or the tick cap.

    Returns ``True`` iff the run *stalled*: the network carried no
    undelivered messages, the last tick produced no transmissions, and no
    honest protocol had a local timer armed — so the state is a fixpoint
    and further ticks are provably futile.  (Timers on *faulty* wrappers
    are invisible here; under the feasibility conditions honest quorums
    never depend on them, see ``consensus/async_alg.py``.)
    """
    watch = sorted(honest, key=repr)

    def undecided() -> bool:
        return any(not net.protocols[v].finished for v in watch)

    for _ in range(max_ticks):
        if not undecided():
            return False
        sent_before = net.trace.transmission_count
        net.step()
        if (
            net.trace.transmission_count == sent_before
            and net.in_flight == 0
            and not any(getattr(net.protocols[v], "armed", False) for v in watch)
        ):
            return undecided()
    return False
