"""One-call experiment runner: wire up a graph, inputs, faults, adversary.

Every correctness experiment in the library is phrased as: *run protocol
P on graph G with inputs I, faulty set X behaving as adversary A, under
channel model M; then check agreement / validity / termination over the
honest nodes*.  :func:`run_consensus` does exactly that and returns a
structured verdict, so tests and benchmarks stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional

from ..graphs import Graph
from ..net.adversary import Adversary, FaultSpec, HonestFactory
from ..net.channels import ChannelModel, local_broadcast_model
from ..net.node import Protocol
from ..net.sched import EventDrivenNetwork, SchedulerSpec
from ..net.simulator import SimulationError, SynchronousNetwork
from ..net.trace import Trace


#: The three ways a run can end (``ConsensusResult.outcome``).
OUTCOME_DECIDED = "decided"
OUTCOME_DISAGREED = "disagreed"
OUTCOME_BUDGET_EXHAUSTED = "budget_exhausted"


@dataclass(frozen=True)
class ConsensusResult:
    """Outcome of one run, evaluated over the honest nodes only."""

    outputs: Dict[Hashable, Optional[int]]
    honest: FrozenSet[Hashable]
    faulty: FrozenSet[Hashable]
    honest_inputs: Dict[Hashable, int]
    rounds: int
    transmissions: int
    deliveries: int
    trace: Trace = field(repr=False)

    @property
    def honest_outputs(self) -> Dict[Hashable, Optional[int]]:
        return {v: self.outputs[v] for v in self.honest}

    @property
    def terminated(self) -> bool:
        """Every honest node decided (output is not None)."""
        return all(self.outputs[v] is not None for v in self.honest)

    @property
    def agreement(self) -> bool:
        """All honest outputs exist and are equal."""
        values = {self.outputs[v] for v in self.honest}
        return self.terminated and len(values) == 1

    @property
    def validity(self) -> bool:
        """Every honest output is the input of some honest node."""
        legal = set(self.honest_inputs.values())
        return self.terminated and all(
            self.outputs[v] in legal for v in self.honest
        )

    @property
    def consensus(self) -> bool:
        return self.terminated and self.agreement and self.validity

    @property
    def decision(self) -> Optional[int]:
        """The common honest output, when agreement holds."""
        if not self.agreement:
            return None
        return next(iter({self.outputs[v] for v in self.honest}))

    @property
    def outcome(self) -> str:
        """How the run ended, as a three-way verdict.

        ``"decided"`` — every honest node decided and the decisions
        satisfy agreement and validity; ``"disagreed"`` — every honest
        node decided but the decisions violate agreement or validity (a
        genuine safety failure); ``"budget_exhausted"`` — some honest
        node was still undecided when the virtual-time budget ran out.
        The distinction matters for asynchronous runs: with a correctly
        scaled budget (``total_rounds × worst_case_delay``), only
        ``"disagreed"`` convicts the protocol of losing consensus, while
        ``"budget_exhausted"`` convicts it of not terminating.
        """
        if not self.terminated:
            return OUTCOME_BUDGET_EXHAUSTED
        if not (self.agreement and self.validity):
            return OUTCOME_DISAGREED
        return OUTCOME_DECIDED


def run_consensus(
    graph: Graph,
    honest_factory: HonestFactory,
    inputs: Mapping[Hashable, int],
    f: int,
    faulty: Iterable[Hashable] = (),
    adversary: Optional[Adversary] = None,
    channel: Optional[ChannelModel] = None,
    max_rounds: Optional[int] = None,
    scheduler: Optional[SchedulerSpec] = None,
) -> ConsensusResult:
    """Run one consensus execution and evaluate the three properties.

    ``honest_factory(node, input_value)`` builds the honest protocol;
    faulty nodes get ``adversary.build(...)`` instead.  ``max_rounds``
    defaults to the honest protocols' own ``total_rounds`` budget (every
    protocol in this library precomputes its round count — the paper's
    algorithms are all fixed-round).

    ``scheduler`` selects the timing model: ``None`` runs the classic
    synchronous simulator; a :class:`~repro.net.sched.SchedulerSpec`
    runs the event-driven core with a fresh scheduler built for this
    run.  The lockstep spec is trace-equivalent to ``None``; the
    asynchronous specs deliberately stress the fixed-round protocols
    outside their synchrony assumption.
    """
    faulty_set = frozenset(faulty)
    unknown = faulty_set - graph.nodes
    if unknown:
        raise ValueError(f"faulty nodes not in graph: {sorted(unknown, key=repr)}")
    if len(faulty_set) > f:
        raise ValueError(f"|faulty| = {len(faulty_set)} exceeds f = {f}")
    if faulty_set and adversary is None:
        raise ValueError("an adversary is required when faulty nodes exist")
    missing_inputs = graph.nodes - set(inputs)
    if missing_inputs:
        raise ValueError(f"missing inputs for {sorted(missing_inputs, key=repr)}")

    channel = channel if channel is not None else local_broadcast_model()
    honest = frozenset(graph.nodes - faulty_set)

    protocols: Dict[Hashable, Protocol] = {}
    for node in sorted(graph.nodes, key=repr):
        if node in faulty_set:
            assert adversary is not None
            spec = FaultSpec(
                node=node,
                graph=graph,
                channel=channel,
                input_value=inputs[node],
                f=f,
                faulty=faulty_set,
                honest_factory=honest_factory,
            )
            protocols[node] = adversary.build(spec)
        else:
            protocols[node] = honest_factory(node, inputs[node])

    if max_rounds is None:
        known = []
        for v in sorted(honest, key=repr):
            budget = getattr(protocols[v], "total_rounds", None)
            if not isinstance(budget, int):
                continue
            if scheduler is not None and not getattr(
                protocols[v], "budget_in_ticks", False
            ):
                # The protocol's own budget counts synchronous *rounds*;
                # the event core counts virtual *ticks*.  Under delays up
                # to d, round r's messages need not land before tick r·d,
                # so capping ticks at the round budget would abort
                # slow-but-correct runs and report clock exhaustion as a
                # consensus failure.  Scale by the declared delay bound.
                # (Protocols that declare ``budget_in_ticks`` — the
                # α-synchronizer wrapper — already account for delays.)
                if not scheduler.bounded:
                    raise ValueError(
                        "max_rounds required: scheduler "
                        f"{scheduler.name!r} declares no delay bound"
                    )
                budget = scheduler.horizon(budget)
            known.append(budget)
        if not known:
            raise ValueError("max_rounds required: protocols expose no budget")
        max_rounds = max(known)

    if scheduler is None:
        net = SynchronousNetwork(graph, protocols, channel)
    else:
        net = EventDrivenNetwork(graph, protocols, scheduler.build(graph), channel)
    try:
        net.run_until_decided(max_rounds, honest=set(honest))
    except SimulationError:
        pass  # non-termination is reported through the result, not raised
    return ConsensusResult(
        outputs=net.outputs(),
        honest=honest,
        faulty=faulty_set,
        honest_inputs={v: inputs[v] for v in honest},
        rounds=net.trace.rounds,
        transmissions=net.trace.transmission_count,
        deliveries=net.trace.delivery_count,
        trace=net.trace,
    )
