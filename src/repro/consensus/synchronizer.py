"""α-synchronizer: run the fixed-round protocols under asynchrony.

The paper's algorithms are synchronous state machines — round ``r``'s
inbox must hold exactly the messages sent in round ``r − 1``.  The
event-driven schedulers (:mod:`repro.net.sched`) deliberately break that
assumption, and the sweeps show what it costs (Algorithm 2 sheds
consensus on C4 under per-link jitter).  The authors' asynchronous
follow-up paper (arXiv:1909.02865) rebuilds consensus natively; the
classical *synchronizer* route taken here instead recovers the
synchronous abstraction on top of the asynchronous network, so every
existing :class:`~repro.net.node.Protocol` runs **unchanged**:

* :class:`AlphaSynchronizer` in ``"alpha"`` mode — time-division.  Each
  logical round is stretched into a window of ``window`` virtual ticks
  (``window`` = the scheduler's declared ``worst_case_delay``).  The
  inner protocol is activated once per window; everything that arrived
  during the previous window is presented as one synchronous-round
  inbox, in the canonical sender-sorted order the synchronous simulator
  produces.  Requires a *bounded* scheduler, tolerates Byzantine
  neighbors (they can say wrong things, but cannot desynchronize honest
  nodes — windows are a pure function of local time);
* ``"ack"`` mode — event-driven round advance, the α-synchronizer
  classic (Awerbuch 1985).  After executing logical round ``r`` a node
  broadcasts a :class:`RoundMarker`; per-link FIFO guarantees the
  marker arrives after the round's payloads, so "marker ``r`` received
  from every neighbor" certifies round ``r``'s messages are all in.
  Needs **no delay bound** for the fast path — and since the classical
  all-neighbors handshake lets a single marker-withholding Byzantine
  neighbor stall every honest node to ``budget_exhausted``, the
  fault-tolerant variant (``f > 0``) advances on markers from
  ``deg(v) − f`` neighbors instead of all, gated — when the scheduler
  *declares* a delay bound (``ack_timeout``) — by the α-window schedule
  as a timeout fallback: round ``r`` may fire on a partial marker set
  only from tick ``(r − 1)·window + 1`` on.  The gate is what keeps the
  quorum advance sound: by that tick every *honest* neighbor's round-
  ``(r − 1)`` marker (and, by FIFO, every payload) has arrived, so the
  at-most-``f`` neighbors advanced past are exactly the withholding
  ones.  Under an unbounded scheduler no such gate exists, and the
  quorum path stays off (the classical handshake; the native
  asynchronous algorithm in :mod:`repro.consensus.async_alg` is the
  delay-bound-free answer there).

Nothing on the wire changes in alpha mode — adversary wrappers, channel
enforcement and flood validators see exactly the messages they would see
synchronously.  Ack mode adds only the marker messages; payloads still
travel verbatim.

:class:`SynchronizedFactory` wraps any picklable honest-protocol factory
(every ``*Factory`` in the library), so sweeps can fan synchronized runs
out across worker processes; the wrapped protocol advertises a scaled
``total_rounds`` (inner rounds × window) so the runner's delay-aware
budget accounting keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from ..net.adversary import HonestFactory
from ..net.node import Context, Inbox, Protocol

SYNCHRONIZER_MODES = ("alpha", "ack")


@dataclass(frozen=True, slots=True)
class RoundMarker:
    """Ack-mode round boundary: "my logical round ``round_no`` is sent".

    Per-link FIFO makes the marker a barrier: every payload its sender
    queued in logical round ``round_no`` precedes it on each outgoing
    link, so receivers may attribute payloads to rounds purely by
    counting markers — message contents never need a round tag.
    """

    round_no: int


class AlphaSynchronizer(Protocol):
    """Run one fixed-round protocol on a per-node logical clock.

    The wrapper is itself a :class:`~repro.net.node.Protocol`: the
    engine activates it every virtual tick, and it decides — by window
    arithmetic (``"alpha"``) or by the marker handshake (``"ack"``) —
    when to advance the *inner* protocol by one logical round.  The
    inner protocol only ever sees logical round numbers and
    synchronous-shaped inboxes, never virtual time.

    With ``window=1`` in alpha mode the wrapper is a pass-through: every
    tick is a window, so under the lockstep scheduler the wrapped run is
    decision-identical to the bare one (property-tested across every
    factory in the library).
    """

    def __init__(
        self,
        inner: Protocol,
        window: int,
        mode: str = "alpha",
        f: int = 0,
        ack_timeout: bool = False,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        if mode not in SYNCHRONIZER_MODES:
            raise ValueError(
                f"unknown synchronizer mode {mode!r}; "
                f"choose from {list(SYNCHRONIZER_MODES)}"
            )
        if f < 0:
            raise ValueError("f must be non-negative")
        self.inner = inner
        self.window = window
        self.mode = mode
        #: Ack-mode fault tolerance: advance on markers from deg − f
        #: neighbors (f = 0 keeps the classical all-neighbors handshake).
        self.f = f
        #: Whether the α-window timeout gate is available (i.e. the
        #: scheduler declared its delays bounded by ``window``).  The
        #: partial-marker advance is only sound behind the gate.
        self.ack_timeout = ack_timeout
        #: ``total_rounds`` below is denominated in virtual *ticks*, not
        #: synchronous rounds — the runner must not scale it by the
        #: scheduler's delay bound again.
        self.budget_in_ticks = True
        self.logical_round = 0  # last inner round executed
        inner_budget = getattr(inner, "total_rounds", None)
        self.inner_rounds: Optional[int] = (
            inner_budget if isinstance(inner_budget, int) else None
        )
        if self.inner_rounds is not None:
            # Ticks the wrapped run may need: alpha activates round r at
            # tick (r-1)·window + 1; ack's marker waves need at most the
            # same horizon under delays ≤ window.  The runner reads this
            # as the protocol's own budget.
            self.total_rounds = self.inner_rounds * window
        self._ticks = 0
        # alpha mode: everything since the last window boundary.
        self._buffer: Inbox = []
        # ack mode: markers seen per neighbor, and payloads keyed by the
        # sender's logical round they belong to (markers seen + 1).
        self._markers: Dict[Hashable, int] = {}
        self._pending: Dict[Hashable, Dict[int, List[object]]] = {}

    # ------------------------------------------------------------------
    def on_round(self, ctx: Context) -> None:
        self._ticks += 1
        if self.mode == "alpha":
            self._alpha_tick(ctx)
        else:
            self._ack_tick(ctx)

    def output(self) -> Optional[int]:
        return self.inner.output()

    @property
    def finished(self) -> bool:
        return self.inner.finished

    # ------------------------------------------------------------------
    # alpha mode: fixed windows of `window` ticks per logical round
    # ------------------------------------------------------------------
    def _alpha_tick(self, ctx: Context) -> None:
        self._buffer.extend(ctx.inbox)
        if (self._ticks - 1) % self.window != 0:
            return
        # Window boundary.  Every round-(r-1) message has arrived: it was
        # sent at tick (r-2)·window + 1 and delays are ≤ window, and the
        # engine drains deliveries due at a tick before activations.
        inbox = self._canonical(self._buffer)
        self._buffer = []
        self._advance(ctx, inbox)

    @staticmethod
    def _canonical(buffer: Inbox) -> Inbox:
        """Arrival order → the synchronous engine's inbox order.

        The synchronous simulator fills inboxes sender-by-sender in
        repr-sorted node order, FIFO within a sender.  A stable sort on
        the sender key reproduces exactly that (per-sender FIFO is
        preserved from arrival order), which is what makes a wrapped
        honest run *decision-identical* to the synchronous run rather
        than merely decision-equivalent.
        """
        return sorted(buffer, key=lambda item: repr(item[0]))

    # ------------------------------------------------------------------
    # ack mode: marker handshake, no delay bound needed
    # ------------------------------------------------------------------
    def _ack_tick(self, ctx: Context) -> None:
        for sender, message in ctx.inbox:
            if isinstance(message, RoundMarker):
                self._markers[sender] = self._markers.get(sender, 0) + 1
            else:
                belongs_to = self._markers.get(sender, 0) + 1
                self._pending.setdefault(sender, {}).setdefault(
                    belongs_to, []
                ).append(message)
        # Round markers arrive from the nodes this one *hears*: the
        # in-neighborhood (identical to the neighborhood on a Graph).
        neighbors = ctx.graph.sorted_in_neighbors(ctx.node)
        if not neighbors:
            # An isolated node waits on nobody: one round per tick, so
            # an unbounded inner protocol cannot spin the handshake loop
            # forever within a single activation.
            if self._ack_ready(neighbors):
                self._advance(ctx, [])
                ctx.broadcast(RoundMarker(self.logical_round))
            return
        # Advance as far as the handshake allows this tick (a lagging
        # node may hold markers for several rounds).  Sends queued across
        # iterations share this tick's timestamp; FIFO seq order keeps
        # each round's payloads ahead of its marker on every link.
        while self._ack_ready(neighbors):
            inbox: Inbox = []
            for nbr in neighbors:
                staged = self._pending.get(nbr, {}).pop(self.logical_round, [])
                inbox.extend((nbr, message) for message in staged)
            self._advance(ctx, inbox)
            ctx.broadcast(RoundMarker(self.logical_round))

    def _ack_ready(self, neighbors) -> bool:
        if self.inner_rounds is not None and self.logical_round >= self.inner_rounds:
            return False  # inner protocol has run its full schedule
        if self.logical_round == 0:
            return True  # round 1's inbox is empty by definition
        have = sum(
            1 for nbr in neighbors if self._markers.get(nbr, 0) >= self.logical_round
        )
        if have == len(neighbors):
            return True  # the classical fast path: everything is in
        if self.f <= 0 or not self.ack_timeout:
            # No fault allowance, or no declared delay bound to make a
            # partial advance sound — keep waiting (Byzantine marker
            # withholding then stalls the run, the classical behavior).
            return False
        if have < max(0, len(neighbors) - self.f):
            return False
        # α-window timeout fallback: the next round may fire on a partial
        # marker set only from its alpha-schedule tick on.  Induction
        # gives that every honest node executes round r by tick
        # (r−1)·window + 1, so its markers — and, by per-link FIFO, its
        # payloads — have arrived here by r·window + 1: the ≤ f neighbors
        # being advanced past can only be withholding faults, never slow
        # honest nodes.
        return self._ticks >= self.logical_round * self.window + 1

    # ------------------------------------------------------------------
    def _advance(self, ctx: Context, inbox: Inbox) -> None:
        """Run one inner logical round and re-emit its sends."""
        self.logical_round += 1
        shadow = Context(
            node=ctx.node,
            graph=ctx.graph,
            round_no=self.logical_round,
            channel=ctx.channel,
            inbox=inbox,
            now=self.logical_round,
            metrics=ctx.metrics,
            # The engine-level cause of the activation driving this
            # logical round; buffered arrivals from earlier ticks are
            # still in the causal past via their own delivery records.
            cause_kind=ctx.cause_kind,
            cause_index=ctx.cause_index,
        )
        self.inner.on_round(shadow)
        for out in shadow.outbox:
            if out.target is None:
                ctx.broadcast(out.message)
            else:
                ctx.send(out.target, out.message)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<AlphaSynchronizer mode={self.mode!r} window={self.window} "
            f"round={self.logical_round} inner={self.inner!r}>"
        )


class SynchronizedFactory:
    """Picklable ``(node, input) → AlphaSynchronizer(inner)`` factory.

    Wraps any honest-protocol factory in the library — the ``*Factory``
    classes are all picklable, and this wrapper pickles exactly when its
    inner factory does, so synchronized sweeps fan out across worker
    processes unchanged.  Adversaries that simulate honest behavior
    (``spec.honest()``) also receive the wrapped protocol, so faulty
    nodes participate in the same round discipline their honest template
    would.
    """

    def __init__(
        self,
        inner: HonestFactory,
        window: int,
        mode: str = "alpha",
        f: int = 0,
        ack_timeout: bool = False,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        if mode not in SYNCHRONIZER_MODES:
            raise ValueError(
                f"unknown synchronizer mode {mode!r}; "
                f"choose from {list(SYNCHRONIZER_MODES)}"
            )
        if f < 0:
            raise ValueError("f must be non-negative")
        self.inner = inner
        self.window = window
        self.mode = mode
        self.f = f
        self.ack_timeout = ack_timeout

    def __call__(self, node: Hashable, input_value: int) -> AlphaSynchronizer:
        return AlphaSynchronizer(
            self.inner(node, input_value),
            window=self.window,
            mode=self.mode,
            f=self.f,
            ack_timeout=self.ack_timeout,
        )

    def flight_spec(self) -> dict:
        """JSON-ready recipe for the flight recorder: this wrapper's
        knobs plus the inner factory's own spec (replay rebuilds
        inside-out).  An inner factory without a ``flight_spec`` is
        recorded as opaque — the flight stays analyzable, not replayable."""
        inner_spec = getattr(self.inner, "flight_spec", None)
        return {
            "kind": "synchronized",
            "window": self.window,
            "mode": self.mode,
            "f": self.f,
            "ack_timeout": self.ack_timeout,
            "inner": (
                inner_spec()
                if callable(inner_spec)
                else {"kind": "opaque", "repr": repr(self.inner)}
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SynchronizedFactory({self.inner!r}, window={self.window}, "
            f"mode={self.mode!r}, f={self.f}, ack_timeout={self.ack_timeout})"
        )


def synchronize_factory(
    factory: HonestFactory,
    scheduler: Optional["SchedulerSpec"] = None,
    mode: str = "alpha",
    window: Optional[int] = None,
    f: int = 0,
    ack_timeout: Optional[bool] = None,
) -> SynchronizedFactory:
    """Wrap ``factory`` with the window sized from a scheduler spec.

    ``window`` defaults to the scheduler's declared ``worst_case_delay``
    (1 when no scheduler is given — the degenerate pass-through).  An
    unbounded scheduler requires an explicit ``window``: alpha mode
    cannot size its rounds without a bound (ack mode only uses the
    window to scale the tick budget, but still needs *a* number).

    ``f`` enables ack mode's fault-tolerant marker quorum (``deg − f``);
    the α-window timeout gate that makes the quorum advance sound is
    switched on exactly when the scheduler declares a delay bound.
    ``ack_timeout`` overrides that derivation for callers (the CLI)
    whose bound declaration lives on a whole scheduler *axis* rather
    than one spec — pass ``True`` only when every entry is bounded.
    """
    if ack_timeout is None:
        ack_timeout = (
            mode == "ack" and scheduler is not None and scheduler.bounded
        )
    if window is None:
        if scheduler is None:
            window = 1
        else:
            if not scheduler.bounded:
                raise ValueError(
                    f"scheduler {scheduler.name!r} declares no delay bound; "
                    "pass an explicit window"
                )
            window = scheduler.worst_case_delay
    elif scheduler is not None and scheduler.bounded:
        # A window below the declared bound silently un-sounds alpha
        # mode: a round-r message delayed past the next window boundary
        # would surface in round r+2's inbox.  Refuse rather than run a
        # "synchronized" execution that isn't.
        if window < scheduler.worst_case_delay:
            raise ValueError(
                f"window {window} is below scheduler "
                f"{scheduler.name!r}'s declared worst-case delay "
                f"{scheduler.worst_case_delay}"
            )
    return SynchronizedFactory(
        factory, window=window, mode=mode, f=f, ack_timeout=ack_timeout
    )
