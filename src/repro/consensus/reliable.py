"""Definition C.1 — reliable receipt — and the phase-2 claim machinery.

Appendix C builds the efficient algorithm on a single tool: node ``v``
**reliably receives** a message flooded by ``u`` if (1) ``u = v``,
(2) ``v`` is a neighbor of ``u``, or (3) ``v`` receives it identically on
at least ``f + 1`` node-disjoint ``uv``-paths.

Two consequences (proved in the paper, re-proved empirically in our
tests):

* a message *sent* by a **faulty** node is reliably received by everyone
  (Lemma C.2) — its ≥ 2f neighbors all heard it identically, and at most
  ``f − 1`` other faults can sit on the 2f disjoint forwarding paths;
* a **false** claim about an honest node's transmissions can never be
  reliably received — every disjoint evidence path for a fabrication
  must contain its own faulty internal node, and there are at most ``f``
  faults in total.

Phase 2 of Algorithm 2 floods, per reporter, a bundle of the complete
*timed* transcripts the reporter heard from each neighbor in phase 1.
(The paper floods "all the messages it hears from its neighbors";
bundling them into one flood per reporter is a framing choice that
preserves the adversary's power — a Byzantine forwarder can alter any
subset of a bundle — while keeping rule (ii)'s one-message-per-slot
shape.)  Transcripts carry the send round of every message because
honest flooding is *scheduled*: on a path ``w, x_1, …``, an honest
``x_k`` forwards ``w``'s value at round ``k + 1`` exactly.  Fault
localization therefore checks the schedule slot, which closes a timing
attack: a faulty node that forwards correct bits *late* (visible to
reporters, useless to the flood) is still the first detected deviator
on its path, so honest downstream nodes are never blamed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Hashable, List, Mapping, Optional, Tuple

from ..graphs import (
    Graph,
    has_disjoint_mask_packing,
    has_disjoint_path_packing,
    max_disjoint_paths,
)
from ..net.messages import FloodMessage, ValuePayload
from ..obs import NULL_METRICS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (oracle imports graphs)
    from .path_oracle import PathOracle

PathTuple = Tuple[Hashable, ...]
TimedMessage = Tuple[int, object]  # (send round, message)
Transcript = Tuple[TimedMessage, ...]  # one node's transmissions, in order


@dataclass(frozen=True, slots=True)
class ReportBundle:
    """Phase-2 payload: ``reporter``'s view of each neighbor's phase-1
    transcript.  ``entries`` is sorted by subject for canonical equality."""

    reporter: Hashable
    entries: Tuple[Tuple[Hashable, Transcript], ...]
    #: lazily built subject→transcript map; excluded from repr, equality
    #: and hashing, so two bundles with equal entries stay canonically
    #: equal whether or not either has been queried.
    _by_subject: Optional[Dict[Hashable, Transcript]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def transcript_of(self, subject: Hashable) -> Optional[Transcript]:
        """The transcript this bundle claims for ``subject``, if any.

        Served from a cached mapping built on first use.  The build
        keeps the *first* entry per subject — a Byzantine bundle may
        carry duplicate subjects, and the linear scan this replaces
        returned the first match.
        """
        mapping = self._by_subject
        if mapping is None:
            mapping = {}
            for s, transcript in self.entries:
                if s not in mapping:
                    mapping[s] = transcript
            # frozen dataclass: route the cache write around __setattr__.
            object.__setattr__(self, "_by_subject", mapping)
        return mapping.get(subject)

    @classmethod
    def build(
        cls, reporter: Hashable, transcripts: Dict[Hashable, List[TimedMessage]]
    ) -> "ReportBundle":
        entries = tuple(
            (subject, tuple(messages))
            for subject, messages in sorted(
                transcripts.items(), key=lambda kv: repr(kv[0])
            )
        )
        return cls(reporter, entries)


def reliable_value(
    graph: Graph,
    f: int,
    me: Hashable,
    delivered: Dict[PathTuple, object],
    origin: Hashable,
    oracle: Optional["PathOracle"] = None,
    metrics: object = NULL_METRICS,
    path_mask: Optional[Callable[[PathTuple], int]] = None,
) -> Optional[int]:
    """Definition C.1 applied to a phase-1 value flood.

    ``delivered`` is the local :class:`~repro.consensus.flooding
    .FloodInstance` record (full path ending at ``me`` → payload).
    Returns the reliably received binary value from ``origin``, or
    ``None``.  Direct receipt (self / neighbor) takes precedence; for
    case (3) the value must arrive identically on ``f + 1`` internally
    node-disjoint ``origin→me`` paths.

    A thin specialization of :func:`reliable_payload`: non-value
    payloads are filtered out first (they never certify a value — and
    must not shadow the direct slot either), then the generic
    certificate runs; ``ValuePayload(0)`` sorts before ``ValuePayload(1)``,
    preserving the historical δ ∈ (0, 1) probe order.
    """
    values_only = {
        path: payload
        # repro: allow[REPRO001] hot path: delivered's insertion order is
        # the deterministic flood-processing order, preserved verbatim.
        for path, payload in delivered.items()
        if isinstance(payload, ValuePayload)
    }
    payload = reliable_payload(
        graph, f, me, values_only, origin, oracle=oracle, metrics=metrics,
        path_mask=path_mask,
    )
    return payload.value if isinstance(payload, ValuePayload) else None


def _interior_masks(
    graph: Graph,
    paths: List[PathTuple],
    origin: Hashable,
    me: Hashable,
    path_mask: Optional[Callable[[PathTuple], int]],
) -> Optional[List[int]]:
    """Internal-node bitmasks for a group of ``origin→me`` paths.

    With a ``path_mask`` lookup (the flood's full-path visited masks)
    this is two bit-clears per path; otherwise the masks are rebuilt
    from the index.  Returns ``None`` when any path carries a node the
    index does not know (possible only for hand-built ``delivered``
    dicts) — the caller then falls back to the frozenset packing, so
    the decision stays exactly equal to the legacy implementation.
    """
    index = graph.node_index()
    index_of = index.index_of
    if path_mask is not None:
        o_idx = index_of.get(origin)
        me_idx = index_of.get(me)
        if o_idx is not None and me_idx is not None:
            ends = (1 << o_idx) | (1 << me_idx)
            return [path_mask(p) & ~ends for p in paths]
    masks: List[int] = []
    for p in paths:
        mask = index.mask_of_strict(p[1:-1])
        if mask is None:
            return None
        masks.append(mask)
    return masks


def reliable_payload(
    graph: Graph,
    f: int,
    me: Hashable,
    delivered: Dict[PathTuple, object],
    origin: Hashable,
    oracle: Optional["PathOracle"] = None,
    metrics: object = NULL_METRICS,
    path_mask: Optional[Callable[[PathTuple], int]] = None,
) -> Optional[object]:
    """Definition C.1 generalized to arbitrary flood payloads.

    :func:`reliable_value` is specialized to phase-1 binary value floods;
    the asynchronous algorithm (:mod:`repro.consensus.async_alg`) needs
    the same certificate over votes and decisions too.  ``v`` reliably
    receives ``origin``'s flooded payload if (1) ``origin == v``, (2) the
    payload arrived on the direct edge, or (3) an *identical* payload
    arrived along ``f + 1`` internally node-disjoint ``origin→v`` paths.

    Single-valuedness (the property the asynchronous quorum logic leans
    on): under local broadcast at most one payload per origin can ever
    satisfy this anywhere — a second candidate needs ``f + 1`` disjoint
    evidence paths each containing its own faulty internal node, and
    there are at most ``f`` faults in total.

    ``oracle`` (optional) is consulted first with the memoized packing
    query ":math:`f + 1` node-disjoint paths from ``origin``'s neighbors
    to ``me`` avoiding ``origin`` internally" — a graph-level upper bound
    on any delivered packing.  When the graph itself cannot support the
    certificate, the per-payload search is skipped entirely, and the
    (shared) oracle answers from cache for every instance asking about
    the same origin.
    """
    metrics.inc("reliable.queries")
    if origin == me:
        return delivered.get((me,))
    direct = delivered.get((origin, me))
    if direct is not None:
        metrics.inc("reliable.direct_receipts")
        return direct
    groups: Dict[object, List[PathTuple]] = {}
    # repro: allow[REPRO001] hot path: delivered's insertion order is the
    # deterministic flood-processing order, and the payload loop below
    # sorts `groups` by repr before any order-sensitive use.
    for path, payload in delivered.items():
        if len(path) >= 3 and path[0] == origin:
            groups.setdefault(payload, []).append(path)
    if not groups:
        return None
    if oracle is not None and me not in graph.neighbors(origin):
        feasible = oracle.disjoint_paths_excluding(
            graph.neighbors(origin), me, frozenset((origin,)), f + 1
        )
        if feasible is None:
            # Every per-payload packing check below would have run and
            # failed — the count saved by the graph-level precheck.
            metrics.inc("reliable.precheck_saved", len(groups))
            return None
    for payload in sorted(groups, key=repr):
        metrics.inc("reliable.packing_checks")
        # Disjointness runs over internal-node bitmasks (two paths
        # conflict iff mask_a & mask_b != 0); the frozenset search is
        # kept as the fallback for paths the index cannot encode.
        masks = _interior_masks(graph, groups[payload], origin, me, path_mask)
        if masks is not None:
            packed = has_disjoint_mask_packing(masks, f + 1)
        else:
            packed = has_disjoint_path_packing(groups[payload], f + 1, mode="uv")
        if packed:
            return payload
    return None


class ReceiptTracker:
    """Incremental Definition C.1 over one flood instance.

    The asynchronous algorithm re-asks :func:`reliable_payload` for
    every still-unresolved origin after *every* round with accepted
    traffic, but a verdict can only change when that origin's delivered
    path set grows.  The tracker keys each cached verdict on the flood's
    per-origin delivery count (the path set only ever grows, so an equal
    count means an identical per-origin view) and skips the whole
    certificate when nothing changed — counting the skip under
    ``reliable.dirty_skips``.  Because the cached result is exactly what
    a fresh call would return, decisions and round counts are unchanged;
    only redundant packing work disappears.

    The skip path returns the *cached* verdict rather than ``None``:
    a non-``None`` payload may still be type-rejected by the caller,
    which will legitimately ask again without new deliveries.
    """

    def __init__(
        self,
        graph: Graph,
        f: int,
        me: Hashable,
        flood,
        oracle: Optional["PathOracle"] = None,
    ):
        self.graph = graph
        self.f = f
        self.me = me
        self.flood = flood
        self.oracle = oracle
        self._versions: Dict[Hashable, int] = {}
        self._last: Dict[Hashable, Optional[object]] = {}

    def payload_from(
        self, origin: Hashable, metrics: object = NULL_METRICS
    ) -> Optional[object]:
        """Cached-or-fresh :func:`reliable_payload` for ``origin``."""
        count = self.flood.origin_count(origin)
        if origin in self._last and self._versions[origin] == count:
            metrics.inc("reliable.dirty_skips")
            return self._last[origin]
        result = reliable_payload(
            self.graph,
            self.f,
            self.me,
            self.flood.origin_view(origin),
            origin,
            oracle=self.oracle,
            metrics=metrics,
            path_mask=self.flood.path_mask,
        )
        self._versions[origin] = count
        self._last[origin] = result
        return result


class ClaimIndex:
    """Reliable knowledge about *other nodes' transmissions*, from bundles.

    Built once per node after phase 2.  Evidence for a claim about
    subject ``z`` is a composite simple path ``(z, reporter, …, me)``:
    the bundle of ``reporter`` (a neighbor of ``z``) carried ``z``'s
    claimed transcript to ``me`` along the flood path ``reporter … me``.
    Reliability = direct observation (``z`` adjacent or ``z == me``) or
    ``f + 1`` internally node-disjoint composite paths agreeing.
    """

    def __init__(
        self,
        graph: Graph,
        f: int,
        me: Hashable,
        bundle_deliveries: Dict[PathTuple, ReportBundle],
        own_transcripts: Dict[Hashable, Transcript],
        own_sent: Transcript = (),
    ):
        self.graph = graph
        self.f = f
        self.me = me
        self.own_transcripts = dict(own_transcripts)
        self.own_sent = own_sent
        # transcript evidence: subject -> claimed transcript -> [composite paths]
        self._transcript_paths: Dict[Hashable, Dict[Transcript, List[PathTuple]]] = {}
        # composite path -> internal-node bitmask (None if the index
        # cannot encode it); the packing currency of both certificates.
        self._composite_masks: Dict[PathTuple, Optional[int]] = {}
        index = graph.node_index()
        # repro: allow[REPRO001] bundle_deliveries preserves the
        # deterministic flood-processing insertion order; the evidence
        # lists built here feed packing-existence checks only.
        for path, bundle in bundle_deliveries.items():
            reporter = path[0]
            if bundle.reporter != reporter:
                continue  # malformed: claimed reporter must be the flood origin
            for subject, transcript in bundle.entries:
                if subject not in graph.nodes:
                    continue
                if reporter not in graph.neighbors(subject):
                    continue  # a reporter can only attest about its neighbors
                if subject in path:
                    continue  # composite path (subject,)+path must stay simple
                composite = (subject,) + path
                if composite not in self._composite_masks:
                    # internal nodes of (subject,) + path are path[:-1]
                    self._composite_masks[composite] = index.mask_of_strict(
                        path[:-1]
                    )
                self._transcript_paths.setdefault(subject, {}).setdefault(
                    transcript, []
                ).append(composite)
        self._reliable_transcript_cache: Dict[Hashable, Optional[Transcript]] = {}
        self._claim_cache: Dict[Tuple[Hashable, object], bool] = {}

    # ------------------------------------------------------------------
    def _packs(self, paths: List[PathTuple]) -> bool:
        """``f + 1`` internally node-disjoint paths among ``paths``?

        Mask packing over the composite masks computed at build time;
        falls back to the frozenset search iff some path carried an
        off-index node (identical decision either way).
        """
        masks = [self._composite_masks.get(p) for p in paths]
        if all(m is not None for m in masks):
            return has_disjoint_mask_packing(masks, self.f + 1)
        return has_disjoint_path_packing(paths, self.f + 1, mode="uv")

    # ------------------------------------------------------------------
    def reliable_transcript(self, subject: Hashable) -> Optional[Transcript]:
        """The complete timed phase-1 transcript of ``subject`` if
        reliably known, else ``None``.  Unique when it exists (a second
        candidate would need f + 1 disjoint fabricated evidence paths)."""
        if subject == self.me:
            return self.own_sent
        if subject in self._reliable_transcript_cache:
            return self._reliable_transcript_cache[subject]
        result: Optional[Transcript] = None
        if self.me in self.graph.neighbors(subject):
            result = self.own_transcripts.get(subject, ())
        else:
            # repro: allow[REPRO001] insertion order is deterministic and
            # at most one transcript can ever pass the f+1 disjoint-path
            # certificate (single-valuedness), so order cannot matter.
            for transcript, paths in self._transcript_paths.get(subject, {}).items():
                if self._packs(paths):
                    result = transcript
                    break
        self._reliable_transcript_cache[subject] = result
        return result

    def reliably_transmitted(self, subject: Hashable, message: object) -> bool:
        """Did ``me`` reliably learn that ``subject`` transmitted
        ``message`` at *some* round?

        Direct observation wins; otherwise ``f + 1`` disjoint composite
        paths whose claimed transcripts *contain* the message suffice
        (the claims may disagree elsewhere — containment is per-message).
        """
        key = (subject, message)
        if key in self._claim_cache:
            return self._claim_cache[key]
        if subject == self.me:
            result = any(m == message for _, m in self.own_sent)
        elif self.me in self.graph.neighbors(subject):
            result = any(
                m == message for _, m in self.own_transcripts.get(subject, ())
            )
        else:
            paths = [
                p
                # repro: allow[REPRO001] deterministic insertion order; the
                # consumer only checks packing *existence*.
                for transcript, plist in self._transcript_paths.get(subject, {}).items()
                if any(m == message for _, m in transcript)
                for p in plist
            ]
            result = self._packs(paths)
        self._claim_cache[key] = result
        return result


def detect_faults(
    graph: Graph,
    f: int,
    me: Hashable,
    reliable_values: Dict[Hashable, int],
    claims: ClaimIndex,
    phase1_tag: Hashable,
    first_round: int = 1,
    oracle: Optional["PathOracle"] = None,
) -> set[Hashable]:
    """Phase-2 fault localization (Algorithm 2, phase 2).

    For every origin ``w`` whose value ``b`` was reliably received and
    every other node ``u``, walk ``2f`` node-disjoint ``wu``-paths; along
    each path, the first internal node ``z`` that *provably misbehaved on
    this path's slot* is marked faulty.  Misbehavior of ``z`` at position
    ``idx`` (prefix ``Π = P[:idx]``) is one of

    * a reliably received claim that ``z`` transmitted ``(b̄, Π)`` at any
      time (the tampering case of the paper's pseudocode);
    * a reliably known complete transcript of ``z`` that contains a
      *forward* (non-empty path) in the initiation round — nothing has
      arrived yet, so an honest node physically cannot forward there.
      This is how an early fabricator is caught (see below);
    * a reliably known complete transcript of ``z`` with no transmission
      of ``(b, Π)`` **by** its schedule round ``first_round + idx`` (the
      silent-drop/late-forward case; the paper's "tampers the message"
      read operationally — Lemma C.2 makes a faulty node's full
      transcript reliably known, so omissions are visible).

    The deadline is "by", not "at": a faulty upstream node can fabricate
    ``(b, Π')`` *before* its own schedule slot, and an honest ``z``
    that accepts the early copy forwards it early — rule (ii) then
    swallows the on-schedule duplicate, so ``z``'s transcript carries
    the forward ahead of schedule.  Demanding the exact round would
    blame the honest victim (a real falsified run: C4, f = 1, a random
    adversary fabricating its neighbor's initiation in round 1 — two
    honest nodes each "detected" two faults and disagreed).  The early
    fabricator itself is caught by the initiation-round check, which
    shadows its downstream victims.

    Soundness: the first deviator on a path is necessarily faulty —
    honest nodes forward exactly what they accept, no later than the
    all-honest schedule and never in the initiation round; false claims
    about honest nodes are never reliably received; and honest
    omissions occur only downstream of an earlier (faulty) deviator,
    which is detected first and shadows them.

    When a shared :class:`~repro.consensus.path_oracle.PathOracle` is
    supplied, the disjoint-path families come from its per-pair memo —
    identical answers, computed once per graph instead of once per
    (instance, run, pair); otherwise each pair runs the generic
    max-flow routine directly.
    """
    detected: set[Hashable] = set()
    # Depends only on z's transcript — memoized so the quadruple loop
    # scans each node's transcript once, not once per (origin, path, slot).
    _early_cache: Dict[Hashable, bool] = {}

    def forwards_in_initiation_round(z: Hashable, transcript: Transcript) -> bool:
        if z not in _early_cache:
            _early_cache[z] = any(
                r <= first_round
                and isinstance(m, FloodMessage)
                and m.phase == phase1_tag
                and len(m.path) > 0
                for r, m in transcript
            )
        return _early_cache[z]

    for w in sorted(reliable_values, key=repr):
        b = reliable_values[w]
        wrong = ValuePayload(1 - b)
        right = ValuePayload(b)
        for u in sorted(graph.nodes, key=repr):
            if u == w:
                continue
            if oracle is not None:
                # The path family is a pure function of the static graph
                # and the pair — the shared oracle answers it once per
                # pair instead of once per (instance, run, pair).
                paths = oracle.disjoint_paths_between(w, u)
            else:
                _count, paths = max_disjoint_paths(graph, w, u, want_paths=True)
            for path in sorted(paths, key=repr)[: 2 * f]:
                for idx in range(1, len(path) - 1):
                    z = path[idx]
                    if z == me:
                        continue  # a node never suspects itself
                    prefix = path[:idx]
                    tampered = FloodMessage(phase1_tag, wrong, prefix)
                    honest_fwd = FloodMessage(phase1_tag, right, prefix)
                    schedule_round = first_round + idx
                    suspicious = claims.reliably_transmitted(z, tampered)
                    if not suspicious:
                        transcript = claims.reliable_transcript(z)
                        if transcript is not None:
                            on_time = any(
                                r <= schedule_round and m == honest_fwd
                                for r, m in transcript
                            )
                            suspicious = not on_time or (
                                forwards_in_initiation_round(z, transcript)
                            )
                    if suspicious:
                        detected.add(z)
                        break  # only the first such node on this path
    return detected
