"""Ablations: remove a design choice, watch the guarantee fall over.

The paper's flooding rule (ii) ("discard a second message with the same
path from the same sender") is what turns local broadcast into an
equivocation-proof medium: it pins every ``(sender, Π)`` slot to one
value, identically at all neighbors.  :class:`AblatedExactConsensus`
runs Algorithm 1 with that rule disabled; :class:`ReInitAdversary`
exploits the gap by re-initiating its flood with the opposite value late
in the phase, so nearby nodes overwrite the slot while distant nodes
never hear the update — honest nodes leave step (a) with *different*
views of the faulty node's value, which is precisely the ``Z_v = Z``
invariant Lemma 5.3 needs.

The second ablation attacks Definition C.1's threshold: accepting a
value on ``f`` (rather than ``f + 1``) node-disjoint paths lets a single
faulty relay forge a "reliably received" value — measured directly in
:func:`reliable_value_with_threshold`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from ..graphs import Graph, has_disjoint_path_packing
from ..net.adversary import Adversary, FaultSpec, _WrapperProtocol
from ..net.messages import FloodMessage, ValuePayload
from ..net.node import Protocol
from .algorithm1 import ExactConsensusProtocol
from .flooding import FloodInstance
from .path_oracle import PathOracle

PathTuple = Tuple[Hashable, ...]


class AblatedExactConsensus(ExactConsensusProtocol):
    """Algorithm 1 with flooding rule (ii) disabled (ablation subject).

    Every other rule — path validity, self-exclusion, defaults — stays
    intact, isolating the contribution of the duplicate-slot rule.
    """

    def on_round(self, ctx) -> None:
        r = ctx.round_no
        if r > self.total_rounds:
            return
        phase_idx = (r - 1) // self.rounds_per_phase
        within = (r - 1) % self.rounds_per_phase + 1
        if within == 1:
            self._flood = FloodInstance(
                self.graph,
                self.me,
                phase=("exact", phase_idx),
                default_payload=ValuePayload(1),
                validator=self._valid_payload,
                enable_rule_ii=False,
            )
            self._flood.initiate(ctx, ValuePayload(self.gamma))
        else:
            assert self._flood is not None
            self._flood.process_round(ctx)
        if within == self.rounds_per_phase:
            self._finish_phase(phase_idx)
            self.gamma_history.append(self.gamma)
            if phase_idx == len(self.pairs) - 1:
                self._output = self.gamma

    def step_b_view(self, phase_idx: int, fault_set) -> Dict[Hashable, int]:
        """Diagnostic: the Z/N classification this node would compute."""
        assert self._flood is not None
        view: Dict[Hashable, int] = {}
        for u in sorted(self.graph.nodes, key=repr):
            if u == self.me:
                payload = self._flood.delivered.get((self.me,))
            else:
                path = self._path_excluding(u, frozenset(fault_set))
                payload = (
                    self._flood.delivered.get(path) if path is not None else None
                )
            view[u] = payload.value if isinstance(payload, ValuePayload) else 1
        return view


class AblatedAlgorithm1Factory:
    """Picklable factory for the rule-(ii)-less Algorithm 1, sharing one
    :class:`~repro.consensus.path_oracle.PathOracle` per graph."""

    def __init__(self, graph: Graph, f: int):
        self.graph = graph
        self.f = f
        self.oracle = PathOracle(graph)

    def __call__(self, node: Hashable, input_value: int) -> AblatedExactConsensus:
        return AblatedExactConsensus(
            self.graph, node, self.f, input_value, t=0, oracle=self.oracle
        )

    def __reduce__(self):
        # Carry the (warm) oracle across the process boundary.
        return (type(self), (self.graph, self.f), {"oracle": self.oracle})


def ablated_algorithm1_factory(graph: Graph, f: int) -> AblatedAlgorithm1Factory:
    """Factory for the rule-(ii)-less Algorithm 1."""
    return AblatedAlgorithm1Factory(graph, f)


class ReInitAdversary(Adversary):
    """Re-initiates each phase's flood with the flipped value, late.

    Under rule (ii) the second initiation is discarded everywhere
    identically (the slot is taken).  Without rule (ii) the update
    reaches nodes near the faulty node before the phase ends but not the
    distant ones — splitting the honest nodes' step-(b) views.
    ``delay`` picks how many rounds into the phase the re-initiation
    happens (default: the second-to-last flood round).
    """

    name = "re-init"

    def __init__(self, delay: Optional[int] = None):
        self.delay = delay

    def build(self, spec: FaultSpec) -> Protocol:
        n = spec.graph.n
        delay = self.delay if self.delay is not None else n - 1

        class _ReInit(_WrapperProtocol):
            def transform(self, outbox, ctx):
                result = list(outbox)
                within = (ctx.round_no - 1) % n + 1
                phase_idx = (ctx.round_no - 1) // n
                if within == delay:
                    result.append(
                        (
                            FloodMessage(
                                ("exact", phase_idx),
                                ValuePayload(1 - spec.input_value),
                                (),
                            ),
                            None,
                        )
                    )
                return result

        return _ReInit(spec.honest())


def reliable_value_with_threshold(
    graph: Graph,
    threshold: int,
    me: Hashable,
    delivered: Dict[PathTuple, object],
    origin: Hashable,
) -> Optional[int]:
    """Definition C.1 case (3) with a configurable path threshold.

    The paper requires ``f + 1`` disjoint paths; the ablation benchmarks
    show that at threshold ``f`` a single faulty relay can forge a
    reliable receipt (and that honest receipt still works), i.e. the
    ``+1`` is exactly the safety margin.
    """
    if origin == me:
        own = delivered.get((me,))
        return own.value if isinstance(own, ValuePayload) else None
    direct = delivered.get((origin, me))
    if isinstance(direct, ValuePayload):
        return direct.value
    for delta in (0, 1):
        paths = [
            p
            # repro: allow[REPRO001] delivered's insertion order is the
            # deterministic flood-processing order, and the consumer only
            # checks packing *existence* (order-insensitive).
            for p, payload in delivered.items()
            if len(p) >= 2
            and p[0] == origin
            and isinstance(payload, ValuePayload)
            and payload.value == delta
        ]
        if has_disjoint_path_packing(paths, threshold, mode="uv"):
            return delta
    return None
