"""Consensus layer: the paper's algorithms, conditions, and baselines.

* :mod:`~repro.consensus.conditions` — the tight feasibility conditions
  (Theorems 4.1/5.1, 6.1) plus the classical point-to-point bound;
* :mod:`~repro.consensus.flooding` — path-annotated flooding with the
  rules (i)-(iv) of Section 5.1;
* :mod:`~repro.consensus.algorithm1` — exact consensus under local
  broadcast (exponential phases, tight condition);
* :mod:`~repro.consensus.algorithm2` — the O(n)-round algorithm for
  2f-connected graphs (Appendix C), on reliable receipt (Definition C.1);
* :mod:`~repro.consensus.algorithm3` — the hybrid-model algorithm
  (Appendix D.2);
* :mod:`~repro.consensus.baselines` — classical point-to-point EIG and
  Dolev-style relay, for the model comparison;
* :mod:`~repro.consensus.async_alg` — the native asynchronous algorithm
  (arXiv:1909.02865): message-driven quorum decisions, no round schedule,
  no delay bound;
* :mod:`~repro.consensus.synchronizer` — the α-synchronizer layer that
  instead runs the fixed-round protocols unchanged under asynchrony;
* :mod:`~repro.consensus.runner` — one-call experiment driver.
"""

from .algorithm1 import (
    Algorithm1Factory,
    Algorithm1Protocol,
    ExactConsensusProtocol,
    algorithm1_factory,
    candidate_fault_sets,
    candidate_pairs,
    phase_count,
)
from .algorithm2 import Algorithm2Factory, Algorithm2Protocol, algorithm2_factory, majority
from .algorithm3 import Algorithm3Factory, Algorithm3Protocol, algorithm3_factory
from .async_alg import (
    DECIDE_PHASE,
    VALUES_PHASE,
    AsyncConsensusProtocol,
    AsyncFactory,
    async_factory,
    vote_phase,
)
from .baselines import (
    DolevEIGProtocol,
    EIGEquivocatingAdversary,
    EIGProtocol,
    dolev_eig_factory,
    eig_factory,
)
from .conditions import (
    Clause,
    ConditionReport,
    async_threshold_connectivity,
    check_async_local_broadcast,
    check_directed_decomposition,
    check_directed_local_broadcast,
    check_hybrid,
    check_local_broadcast,
    check_point_to_point,
    hybrid_threshold_connectivity,
    local_broadcast_threshold_connectivity,
    max_f_async_local_broadcast,
    max_f_directed_local_broadcast,
    max_f_hybrid,
    max_f_local_broadcast,
    max_f_point_to_point,
)
from .flooding import FloodInstance, flood_rounds
from .iterative import (
    WMSRResult,
    is_r_robust,
    max_robustness,
    run_wmsr,
    wmsr_requirement,
)
from .path_engine import NodeBehavior, PathFloodEngine
from .path_oracle import PathOracle
from .reliable import (
    ClaimIndex,
    ReportBundle,
    detect_faults,
    reliable_payload,
    reliable_value,
)
from .runner import (
    OUTCOME_BUDGET_EXHAUSTED,
    OUTCOME_DECIDED,
    OUTCOME_DISAGREED,
    OUTCOME_STALLED,
    ConsensusResult,
    run_consensus,
)
from .synchronizer import (
    SYNCHRONIZER_MODES,
    AlphaSynchronizer,
    RoundMarker,
    SynchronizedFactory,
    synchronize_factory,
)

__all__ = [
    "Algorithm1Factory",
    "Algorithm1Protocol",
    "Algorithm2Factory",
    "Algorithm2Protocol",
    "Algorithm3Factory",
    "Algorithm3Protocol",
    "AlphaSynchronizer",
    "AsyncConsensusProtocol",
    "AsyncFactory",
    "ClaimIndex",
    "Clause",
    "ConditionReport",
    "ConsensusResult",
    "DECIDE_PHASE",
    "DolevEIGProtocol",
    "EIGEquivocatingAdversary",
    "EIGProtocol",
    "ExactConsensusProtocol",
    "FloodInstance",
    "NodeBehavior",
    "OUTCOME_BUDGET_EXHAUSTED",
    "OUTCOME_DECIDED",
    "OUTCOME_DISAGREED",
    "OUTCOME_STALLED",
    "PathFloodEngine",
    "PathOracle",
    "ReportBundle",
    "RoundMarker",
    "SYNCHRONIZER_MODES",
    "SynchronizedFactory",
    "VALUES_PHASE",
    "WMSRResult",
    "algorithm1_factory",
    "algorithm2_factory",
    "algorithm3_factory",
    "async_factory",
    "async_threshold_connectivity",
    "candidate_fault_sets",
    "candidate_pairs",
    "check_async_local_broadcast",
    "check_directed_decomposition",
    "check_directed_local_broadcast",
    "check_hybrid",
    "check_local_broadcast",
    "check_point_to_point",
    "detect_faults",
    "dolev_eig_factory",
    "eig_factory",
    "flood_rounds",
    "hybrid_threshold_connectivity",
    "is_r_robust",
    "local_broadcast_threshold_connectivity",
    "majority",
    "max_f_async_local_broadcast",
    "max_f_directed_local_broadcast",
    "max_f_hybrid",
    "max_f_local_broadcast",
    "max_f_point_to_point",
    "max_robustness",
    "phase_count",
    "reliable_payload",
    "reliable_value",
    "run_consensus",
    "run_wmsr",
    "synchronize_factory",
    "vote_phase",
    "wmsr_requirement",
]
