"""Analytic flooding evaluator: per-path delivery without a simulator.

For the class of per-message node behaviors (honest forwarding, value
flips, drops — everything the standard adversary battery does within a
single flood), the value delivered along a simple path is a *pure
function of the path*: walk the path from the origin, applying each
node's behavior to the (value, prefix) it would have accepted.  This
engine computes all deliveries directly, which

* cross-validates the round simulator (the property tests assert the
  two engines agree delivery-for-delivery), and
* lets benchmarks evaluate flood outcomes on graphs where the full
  message-passing run would be slow.

The correspondence holds because, under local broadcast with rules
(i)–(iv), each ``(sender, Π)`` slot carries exactly one message and the
sender's transmission for that slot is the same toward every neighbor —
so a node's effect on a flood factors through ``(origin value, prefix)``.
Equivocating behaviors (hybrid model) are exactly the ones that break
this factorization, and are intentionally out of scope here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Tuple

from ..graphs import Graph, all_simple_paths
from ..obs import NULL_METRICS

PathTuple = Tuple[Hashable, ...]

ForwardRule = Callable[[int, PathTuple], Optional[int]]
"""Maps (accepted value, prefix ending at this node) to the forwarded
value, or ``None`` to drop the message on this path."""


@dataclass(frozen=True)
class NodeBehavior:
    """One node's behavior within a single flood.

    ``initial`` is the value the node floods (``None`` = stays silent,
    triggering the neighbors' default substitution).  ``forward`` maps
    each accepted (value, prefix) to what the node relays on that slot.
    """

    initial: Optional[int]
    forward: ForwardRule

    @classmethod
    def honest(cls, value: int) -> "NodeBehavior":
        return cls(initial=value, forward=lambda v, prefix: v)

    @classmethod
    def silent(cls) -> "NodeBehavior":
        """No initiation and no forwarding: severs all paths through it."""
        return cls(initial=None, forward=lambda v, prefix: None)

    @classmethod
    def lying_init(cls, value: int) -> "NodeBehavior":
        """Floods the flipped value but forwards honestly."""
        return cls(initial=1 - value, forward=lambda v, prefix: v)

    @classmethod
    def tamper_forward(cls, value: int) -> "NodeBehavior":
        """Honest initiation, flips every forwarded value."""
        return cls(initial=value, forward=lambda v, prefix: 1 - v)

    @classmethod
    def drop_forward(cls, value: int) -> "NodeBehavior":
        """Honest initiation, forwards nothing."""
        return cls(initial=value, forward=lambda v, prefix: None)


class PathFloodEngine:
    """Evaluate one flood phase analytically.

    ``behaviors[node]`` describes every node (honest nodes via
    :meth:`NodeBehavior.honest`).  ``default`` is the substitute value
    neighbors assume for silent initiators (the paper's ``(1, ⊥)``).
    """

    def __init__(
        self,
        graph: Graph,
        behaviors: Dict[Hashable, NodeBehavior],
        default: int = 1,
        metrics: object = NULL_METRICS,
    ):
        missing = graph.nodes - set(behaviors)
        if missing:
            raise ValueError(f"no behavior for nodes {sorted(missing, key=repr)}")
        self.graph = graph
        self.behaviors = dict(behaviors)
        self.default = default
        self.metrics = metrics

    # ------------------------------------------------------------------
    def effective_initial(self, origin: Hashable) -> int:
        """What the network reads as ``origin``'s flooded value: its own
        initiation, or the default if it stays silent."""
        value = self.behaviors[origin].initial
        return self.default if value is None else value

    def value_along(self, path: PathTuple) -> Optional[int]:
        """The value delivered along ``path`` (origin first, receiver
        last), or ``None`` if some internal node dropped it.

        A silent origin is substituted by its *neighbor* — the first hop
        — so the walk starts with the default value in that case, exactly
        mirroring the simulator's substitution rule.
        """
        if len(path) == 1:
            return self.effective_initial(path[0])
        value: Optional[int] = self.effective_initial(path[0])
        for idx in range(1, len(path) - 1):
            node = path[idx]
            prefix = path[: idx + 1]
            assert value is not None
            value = self.behaviors[node].forward(value, prefix)
            if value is None:
                return None
        return value

    def deliveries_at(self, receiver: Hashable) -> Dict[PathTuple, int]:
        """All (path → value) deliveries ending at ``receiver``,
        including the trivial own path."""
        out: Dict[PathTuple, int] = {
            (receiver,): self.effective_initial(receiver)
        }
        for origin in sorted(self.graph.nodes - {receiver}, key=repr):
            for path in all_simple_paths(self.graph, origin, receiver):
                value = self.value_along(path)
                self.metrics.inc("path_engine.paths_evaluated")
                self.metrics.observe("path_engine.path_length", len(path))
                if value is not None:
                    out[path] = value
                    self.metrics.inc("path_engine.paths_delivered")
                else:
                    self.metrics.inc("path_engine.paths_dropped")
        self.metrics.gauge_max("path_engine.path_set.max", len(out))
        return out

    def all_deliveries(self) -> Dict[Hashable, Dict[PathTuple, int]]:
        """Deliveries at every node."""
        return {v: self.deliveries_at(v) for v in sorted(self.graph.nodes, key=repr)}
