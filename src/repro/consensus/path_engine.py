"""Analytic flooding evaluator: per-path delivery without a simulator.

For the class of per-message node behaviors (honest forwarding, value
flips, drops — everything the standard adversary battery does within a
single flood), the value delivered along a simple path is a *pure
function of the path*: walk the path from the origin, applying each
node's behavior to the (value, prefix) it would have accepted.  This
engine computes all deliveries directly, which

* cross-validates the round simulator (the property tests assert the
  two engines agree delivery-for-delivery), and
* lets benchmarks evaluate flood outcomes on graphs where the full
  message-passing run would be slow.

The correspondence holds because, under local broadcast with rules
(i)–(iv), each ``(sender, Π)`` slot carries exactly one message and the
sender's transmission for that slot is the same toward every neighbor —
so a node's effect on a flood factors through ``(origin value, prefix)``.
Equivocating behaviors (hybrid model) are exactly the ones that break
this factorization, and are intentionally out of scope here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Optional, Tuple

from ..graphs import Graph, all_simple_paths
from ..obs import NULL_METRICS

PathTuple = Tuple[Hashable, ...]

ForwardRule = Callable[[int, PathTuple], Optional[int]]
"""Maps (accepted value, prefix ending at this node) to the forwarded
value, or ``None`` to drop the message on this path."""


@dataclass(frozen=True)
class NodeBehavior:
    """One node's behavior within a single flood.

    ``initial`` is the value the node floods (``None`` = stays silent,
    triggering the neighbors' default substitution).  ``forward`` maps
    each accepted (value, prefix) to what the node relays on that slot.
    """

    initial: Optional[int]
    forward: ForwardRule

    @classmethod
    def honest(cls, value: int) -> "NodeBehavior":
        return cls(initial=value, forward=lambda v, prefix: v)

    @classmethod
    def silent(cls) -> "NodeBehavior":
        """No initiation and no forwarding: severs all paths through it."""
        return cls(initial=None, forward=lambda v, prefix: None)

    @classmethod
    def lying_init(cls, value: int) -> "NodeBehavior":
        """Floods the flipped value but forwards honestly."""
        return cls(initial=1 - value, forward=lambda v, prefix: v)

    @classmethod
    def tamper_forward(cls, value: int) -> "NodeBehavior":
        """Honest initiation, flips every forwarded value."""
        return cls(initial=value, forward=lambda v, prefix: 1 - v)

    @classmethod
    def drop_forward(cls, value: int) -> "NodeBehavior":
        """Honest initiation, forwards nothing."""
        return cls(initial=value, forward=lambda v, prefix: None)


class PathFloodEngine:
    """Evaluate one flood phase analytically.

    ``behaviors[node]`` describes every node (honest nodes via
    :meth:`NodeBehavior.honest`).  ``default`` is the substitute value
    neighbors assume for silent initiators (the paper's ``(1, ⊥)``).
    """

    def __init__(
        self,
        graph: Graph,
        behaviors: Dict[Hashable, NodeBehavior],
        default: int = 1,
        metrics: object = NULL_METRICS,
    ):
        missing = graph.nodes - set(behaviors)
        if missing:
            raise ValueError(f"no behavior for nodes {sorted(missing, key=repr)}")
        self.graph = graph
        self.behaviors = dict(behaviors)
        self.default = default
        self.metrics = metrics

    # ------------------------------------------------------------------
    def effective_initial(self, origin: Hashable) -> int:
        """What the network reads as ``origin``'s flooded value: its own
        initiation, or the default if it stays silent."""
        value = self.behaviors[origin].initial
        return self.default if value is None else value

    def value_along(self, path: PathTuple) -> Optional[int]:
        """The value delivered along ``path`` (origin first, receiver
        last), or ``None`` if some internal node dropped it.

        A silent origin is substituted by its *neighbor* — the first hop
        — so the walk starts with the default value in that case, exactly
        mirroring the simulator's substitution rule.
        """
        if len(path) == 1:
            return self.effective_initial(path[0])
        value: Optional[int] = self.effective_initial(path[0])
        for idx in range(1, len(path) - 1):
            node = path[idx]
            prefix = path[: idx + 1]
            assert value is not None
            value = self.behaviors[node].forward(value, prefix)
            if value is None:
                return None
        return value

    def deliveries_at(self, receiver: Hashable) -> Dict[PathTuple, int]:
        """All (path → value) deliveries ending at ``receiver``,
        including the trivial own path.

        Runs a prefix-sharing DFS: the value along a path is a pure
        function of its prefix, so it is threaded through the traversal
        and each prefix's forwarding work is done once for *all* simple
        paths extending it — instead of re-walking every enumerated path
        from its origin (:meth:`naive_deliveries_at`, kept as the test
        oracle).  A prefix whose next hop drops the message prunes the
        whole subtree (counted under ``path_engine.prefixes_pruned``).
        The traversal mirrors :func:`~repro.graphs.all_simple_paths`
        exactly, so the delivered dict is equal — same keys, same values,
        same insertion order.

        Metric notes: ``paths_delivered`` and ``path_length`` keep their
        meanings; ``paths_evaluated`` now counts completed walks only
        (dropped paths are never materialized — the old per-path
        ``paths_dropped`` counter is subsumed by ``prefixes_pruned``).
        """
        out: Dict[PathTuple, int] = {
            (receiver,): self.effective_initial(receiver)
        }
        graph = self.graph
        behaviors = self.behaviors
        n = graph.n
        delivered = 0
        pruned = 0
        lengths: Dict[int, int] = {}
        # Hoisted per-node state: the adjacency is read once per node,
        # and the growing prefix is threaded through the recursion as a
        # tuple — each prefix is materialized exactly once and shared by
        # the forward rule, the recursive call, and (via one final
        # concat) every delivery key it produces.
        nbrs = {v: graph.sorted_neighbors(v) for v in graph.nodes}  # repro: allow[REPRO001] lookup table; only keyed access, order never reaches a trace
        on_stack: set = set()
        tail = (receiver,)

        def dfs(value: int, prefix: PathTuple) -> None:
            nonlocal delivered, pruned
            depth_full = len(prefix) + 1 >= n
            for nxt in nbrs[prefix[-1]]:
                if nxt == receiver:
                    path = prefix + tail
                    out[path] = value
                    delivered += 1
                    lengths[len(path)] = lengths.get(len(path), 0) + 1
                    continue
                if nxt in on_stack or depth_full:
                    continue
                child = prefix + (nxt,)
                forwarded = behaviors[nxt].forward(value, child)
                if forwarded is None:
                    pruned += 1
                    continue
                on_stack.add(nxt)
                dfs(forwarded, child)
                on_stack.remove(nxt)

        for origin in sorted(graph.nodes - {receiver}, key=repr):
            on_stack = {origin}
            dfs(self.effective_initial(origin), (origin,))
        metrics = self.metrics
        if delivered:
            metrics.inc("path_engine.paths_evaluated", delivered)
            metrics.inc("path_engine.paths_delivered", delivered)
            for length in sorted(lengths):
                metrics.observe("path_engine.path_length", length, lengths[length])
        if pruned:
            metrics.inc("path_engine.prefixes_pruned", pruned)
        metrics.gauge_max("path_engine.path_set.max", len(out))
        return out

    def naive_deliveries_at(self, receiver: Hashable) -> Dict[PathTuple, int]:
        """Reference implementation of :meth:`deliveries_at`: enumerate
        every simple path and re-walk it with :meth:`value_along`.
        Metrics-free; the equivalence tests assert the prefix-sharing
        DFS matches it delivery-for-delivery (order included)."""
        out: Dict[PathTuple, int] = {
            (receiver,): self.effective_initial(receiver)
        }
        for origin in sorted(self.graph.nodes - {receiver}, key=repr):
            for path in all_simple_paths(self.graph, origin, receiver):
                value = self.value_along(path)
                if value is not None:
                    out[path] = value
        return out

    def all_deliveries(self) -> Dict[Hashable, Dict[PathTuple, int]]:
        """Deliveries at every node."""
        return {v: self.deliveries_at(v) for v in sorted(self.graph.nodes, key=repr)}
