"""Channel models: where local-broadcast vs point-to-point is *enforced*.

The paper studies three communication models on the same graph:

* **local broadcast** (Sections 4–5): every transmission by a node is
  received identically by all of its neighbors.  Equivocation is
  physically impossible — this mirrors a shared radio medium;
* **point-to-point** (classical): a node may send different messages to
  different neighbors without others overhearing;
* **hybrid** (Section 6): up to ``t`` designated faulty nodes can
  equivocate; everyone else (honest or faulty) is restricted to local
  broadcast.

The simulator routes every send through a :class:`ChannelModel`.  A
protocol (or adversary) running on a non-equivocating node simply has no
working unicast primitive — attempting one raises
:class:`EquivocationError`.  This keeps the model guarantee out of the
trusted-code base of each protocol: adversaries cannot opt out of physics.

Division of labor with the scheduling subsystem: the channel model owns
*content* physics (who may say different things to different neighbors),
while :mod:`repro.net.sched` owns *timing* physics (FIFO per link,
local-broadcast atomicity in time, causal delivery).  A timing adversary
therefore still cannot equivocate, and an equivocator still cannot beat
the link FIFO order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable


class EquivocationError(RuntimeError):
    """A node attempted a per-neighbor send that its channel model forbids."""


@dataclass(frozen=True, slots=True)
class ChannelModel:
    """Which nodes may address individual neighbors.

    ``kind`` is one of ``"local_broadcast"``, ``"point_to_point"``, or
    ``"hybrid"``; ``equivocators`` is only meaningful for the hybrid model
    (the ≤ t faulty nodes granted point-to-point power).
    """

    kind: str
    equivocators: FrozenSet[Hashable] = field(default_factory=frozenset)

    _KINDS = ("local_broadcast", "point_to_point", "hybrid")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown channel kind {self.kind!r}")
        if self.kind != "hybrid" and self.equivocators:
            raise ValueError("equivocators are only meaningful in the hybrid model")

    def may_unicast(self, node: Hashable) -> bool:
        """May ``node`` send a message to a single neighbor privately?"""
        if self.kind == "point_to_point":
            return True
        if self.kind == "hybrid":
            return node in self.equivocators
        return False


def local_broadcast_model() -> ChannelModel:
    """The model of Sections 4–5: nobody can equivocate."""
    return ChannelModel("local_broadcast")


def point_to_point_model() -> ChannelModel:
    """The classical model: every node can equivocate."""
    return ChannelModel("point_to_point")


def hybrid_model(equivocators) -> ChannelModel:
    """Section 6: only the given (faulty) nodes can equivocate."""
    return ChannelModel("hybrid", frozenset(equivocators))
