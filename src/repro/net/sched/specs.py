"""Picklable scheduler *specifications* for sweeps and the CLI.

Schedulers are single-run objects (link clocks, RNG state), so anything
that fans runs out — :func:`repro.analysis.sweep.consensus_sweep`
tasks shipped to worker processes, or the CLI — carries a frozen
:class:`SchedulerSpec` instead and builds a fresh scheduler per run
with :meth:`SchedulerSpec.build`.  ``None`` in a scheduler axis means
the classic :class:`~repro.net.simulator.SynchronousNetwork` fast path
(reported as ``"sync"``; trace-equivalent to ``"lockstep"``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...graphs import Graph
from .adversarial import AdversarialScheduler
from .base import Scheduler
from .lockstep import LockstepScheduler
from .seeded import SeededAsyncScheduler

SCHEDULER_KINDS = ("lockstep", "seeded-async", "adversarial")


@dataclass(frozen=True)
class SchedulerSpec:
    """A frozen, picklable recipe for one scheduler.

    ``seed`` only matters for ``seeded-async``; ``max_delay`` for the
    two asynchronous kinds.  Equality/hash follow the dataclass fields,
    so specs are safe dictionary keys and sweep-axis members.
    """

    kind: str
    seed: int = 0
    max_delay: int = 3

    def __post_init__(self) -> None:
        if self.kind not in SCHEDULER_KINDS:
            raise ValueError(
                f"unknown scheduler kind {self.kind!r}; "
                f"choose from {list(SCHEDULER_KINDS)}"
            )
        if self.max_delay < 1:
            raise ValueError("max_delay must be >= 1")

    @property
    def name(self) -> str:
        """The label sweep records and reports carry."""
        return self.kind

    @property
    def bounded(self) -> bool:
        """Whether this spec's scheduler declares a worst-case delay.

        Every kind currently shipped is bounded; an unbounded kind would
        return ``False`` here and force callers to supply explicit time
        budgets (the runner refuses to guess a horizon for it).
        """
        return True

    @property
    def worst_case_delay(self) -> int:
        """The declared per-delivery delay bound (ticks)."""
        return 1 if self.kind == "lockstep" else self.max_delay

    def horizon(self, rounds: int) -> int:
        """Virtual-tick budget for ``rounds`` synchronous rounds.

        Under a bounded scheduler, everything a fixed-round protocol does
        in ``rounds`` lockstep rounds has happened by ``rounds ×
        worst_case_delay`` ticks — so exhausting this budget means the
        run genuinely failed to decide, not that the clock ran out.
        """
        if rounds < 0:
            raise ValueError("rounds must be >= 0")
        return rounds * self.worst_case_delay

    def build(self, graph: Graph) -> Scheduler:
        """A fresh, unbound scheduler for one run on ``graph``."""
        if self.kind == "lockstep":
            return LockstepScheduler()
        if self.kind == "seeded-async":
            return SeededAsyncScheduler(seed=self.seed, max_delay=self.max_delay)
        return AdversarialScheduler(max_delay=self.max_delay)


def parse_scheduler(
    spec: str, seed: int = 0, max_delay: int = 3
) -> "SchedulerSpec | None":
    """Parse a CLI scheduler token: a kind name, or ``sync`` for the
    synchronous fast path (returned as ``None``)."""
    token = spec.strip()
    if token in ("", "sync"):
        return None
    return SchedulerSpec(kind=token, seed=seed, max_delay=max_delay)
