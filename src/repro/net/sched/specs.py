"""Picklable scheduler *specifications* for sweeps and the CLI.

Schedulers are single-run objects (link clocks, RNG state), so anything
that fans runs out — :func:`repro.analysis.sweep.consensus_sweep`
tasks shipped to worker processes, or the CLI — carries a frozen
:class:`SchedulerSpec` instead and builds a fresh scheduler per run
with :meth:`SchedulerSpec.build`.  ``None`` in a scheduler axis means
the classic :class:`~repro.net.simulator.SynchronousNetwork` fast path
(reported as ``"sync"``; trace-equivalent to ``"lockstep"``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...graphs import Graph
from .adversarial import AdversarialScheduler
from .base import Scheduler
from .lockstep import LockstepScheduler
from .seeded import SeededAsyncScheduler

SCHEDULER_KINDS = ("lockstep", "seeded-async", "adversarial")


@dataclass(frozen=True)
class SchedulerSpec:
    """A frozen, picklable recipe for one scheduler.

    ``seed`` only matters for ``seeded-async``; ``max_delay`` for the
    two asynchronous kinds.  Equality/hash follow the dataclass fields,
    so specs are safe dictionary keys and sweep-axis members.

    ``unbounded`` withdraws the delay-bound *declaration* without
    changing the physics: the built scheduler still draws the same
    delays (so traces are unchanged), but advertises ``bounded = False``
    — which forces every delay-aware layer onto its honest asynchronous
    path (the runner refuses round-scaled horizons, the α-synchronizer
    demands an explicit window, the base class stops enforcing a bound
    it no longer promises).  This is how experiments certify a protocol
    truly never reads a bound.

    ``window`` (adversarial kind only) switches the timing adversary
    from flat ``max_delay`` stretching to *synchronizer window
    targeting*: bottleneck-crossing deliveries land exactly on the
    α-schedule activation ticks ``(r − 1)·window + 1`` — the latest
    instant a window-``W`` synchronizer can tolerate.
    """

    kind: str
    seed: int = 0
    max_delay: int = 3
    unbounded: bool = False
    window: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SCHEDULER_KINDS:
            raise ValueError(
                f"unknown scheduler kind {self.kind!r}; "
                f"choose from {list(SCHEDULER_KINDS)}"
            )
        if self.max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        if self.unbounded and self.kind == "lockstep":
            raise ValueError(
                "lockstep *is* the bound (unit delays); it cannot be "
                "declared unbounded"
            )
        if self.window:
            if self.kind != "adversarial":
                raise ValueError(
                    "window targeting is an adversarial-scheduler feature"
                )
            if not 1 <= self.window <= self.max_delay:
                raise ValueError(
                    f"window must be in [1, max_delay]; got {self.window} "
                    f"with max_delay {self.max_delay}"
                )

    @property
    def name(self) -> str:
        """The label sweep records and reports carry."""
        return f"{self.kind}-unbounded" if self.unbounded else self.kind

    @property
    def bounded(self) -> bool:
        """Whether this spec's scheduler declares a worst-case delay.

        An unbounded spec returns ``False`` and forces callers to supply
        explicit time budgets (the runner refuses to guess a round
        horizon for it; message-driven protocols run on their own
        ``budget_hint`` plus quiescence detection).
        """
        return not self.unbounded

    @property
    def worst_case_delay(self) -> "int | None":
        """The declared per-delivery delay bound (ticks); ``None`` when
        no bound is declared."""
        if self.unbounded:
            return None
        return 1 if self.kind == "lockstep" else self.max_delay

    def horizon(self, rounds: int) -> int:
        """Virtual-tick budget for ``rounds`` synchronous rounds.

        Under a bounded scheduler, everything a fixed-round protocol does
        in ``rounds`` lockstep rounds has happened by ``rounds ×
        worst_case_delay`` ticks — so exhausting this budget means the
        run genuinely failed to decide, not that the clock ran out.
        """
        if rounds < 0:
            raise ValueError("rounds must be >= 0")
        if self.worst_case_delay is None:
            raise ValueError(
                f"scheduler {self.name!r} declares no delay bound; "
                "no round horizon exists"
            )
        return rounds * self.worst_case_delay

    def build(self, graph: Graph) -> Scheduler:
        """A fresh, unbound scheduler for one run on ``graph``."""
        if self.kind == "lockstep":
            return LockstepScheduler()
        if self.kind == "seeded-async":
            return SeededAsyncScheduler(
                seed=self.seed,
                max_delay=self.max_delay,
                declare_bound=not self.unbounded,
            )
        return AdversarialScheduler(
            max_delay=self.max_delay,
            window=self.window or None,
            declare_bound=not self.unbounded,
        )


def parse_scheduler(
    spec: str,
    seed: int = 0,
    max_delay: int = 3,
    unbounded: bool = False,
    window: int = 0,
) -> "SchedulerSpec | None":
    """Parse a CLI scheduler token: a kind name, or ``sync`` for the
    synchronous fast path (returned as ``None``).

    ``unbounded`` and ``window`` pass through to the spec (``window``
    only applies to the adversarial kind and is dropped for others, so
    one CLI flag can decorate a mixed axis)."""
    token = spec.strip()
    if token in ("", "sync"):
        return None
    return SchedulerSpec(
        kind=token,
        seed=seed,
        max_delay=max_delay,
        unbounded=unbounded and token != "lockstep",
        window=window if token == "adversarial" else 0,
    )
