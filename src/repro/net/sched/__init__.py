"""Event-driven scheduling subsystem: pluggable message timing.

The synchronous simulator fixes *when* messages arrive (next round);
this subpackage makes timing a pluggable policy on an event-driven
core, extending the reproduction toward the authors' asynchronous
follow-up paper (arXiv:1909.02865):

* :class:`EventDrivenNetwork` — the core: protocols unchanged, every
  delivery an event with a virtual timestamp from a :class:`Scheduler`;
* :class:`LockstepScheduler` — unit delays; provably trace-equivalent
  to :class:`~repro.net.simulator.SynchronousNetwork`;
* :class:`SeededAsyncScheduler` — reproducible random per-link delays
  behind an explicit seed;
* :class:`AdversarialScheduler` — a worst-case timing adversary that
  stretches cut-straddling traffic to maximize disagreement windows,
  within FIFO-per-link and local-broadcast-atomicity constraints;
* :class:`SchedulerSpec` — the frozen, picklable recipe sweeps and the
  CLI carry (one fresh scheduler per run).
"""

from .adversarial import AdversarialScheduler
from .base import EventDrivenNetwork, Scheduler, SchedulingError
from .events import DeliveryEvent, SendEvent
from .lockstep import LockstepScheduler
from .seeded import SeededAsyncScheduler
from .specs import SCHEDULER_KINDS, SchedulerSpec, parse_scheduler

__all__ = [
    "AdversarialScheduler",
    "DeliveryEvent",
    "EventDrivenNetwork",
    "LockstepScheduler",
    "SCHEDULER_KINDS",
    "Scheduler",
    "SchedulerSpec",
    "SchedulingError",
    "SeededAsyncScheduler",
    "SendEvent",
    "parse_scheduler",
]
