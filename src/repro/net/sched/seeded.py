"""Seeded random timing: reproducible per-link delivery jitter.

Models a benign asynchronous network: every (transmission, recipient)
pair independently draws a delay from ``{1, …, max_delay}`` ticks behind
an explicit seed.  Per-link FIFO is preserved by the base class clamp;
broadcasts are *not* atomic in time — each neighbor may hear the same
transmission at a different instant (content is still identical: the
channel model, not the scheduler, owns equivocation).  This is the
timing regime of the asynchronous follow-up paper (arXiv:1909.02865),
where the paper's fixed-phase algorithms are *not* guaranteed to keep
agreement — quantifying when they break is the point of the
``--scheduler seeded-async`` sweep axis.

Determinism: the RNG is reset at :meth:`bind` from ``seed`` alone and
consumed in the canonical (send, recipient) order the core guarantees,
so a run — and any sweep over runs, at any worker count — is replayable
from the seed.
"""

from __future__ import annotations

import random
from typing import Hashable

from ...graphs import Graph
from ..channels import ChannelModel
from .base import Scheduler
from .events import SendEvent


class SeededAsyncScheduler(Scheduler):
    """Uniform random per-link delays in ``{1, …, max_delay}``.

    ``declare_bound=False`` withdraws the delay-bound *declaration*
    while drawing exactly the same delays: the traces are unchanged, but
    ``bounded``-querying layers (runner horizons, the α-synchronizer)
    must treat the timing as genuinely asynchronous — the regime of the
    native asynchronous algorithm (arXiv:1909.02865), which never reads
    a bound in the first place.
    """

    name = "seeded-async"

    def __init__(self, seed: int = 0, max_delay: int = 3, declare_bound: bool = True):
        if max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        self.seed = seed
        self.max_delay = max_delay
        self.bounded = declare_bound

    @property
    def worst_case_delay(self) -> "int | None":
        return self.max_delay if self.bounded else None

    def bind(self, graph: Graph, channel: ChannelModel) -> None:
        super().bind(graph, channel)
        # Seed from a repr, not the raw int, so seed 0 differs from the
        # unseeded default of other RNG uses in the library.
        self._rng = random.Random(repr(("seeded-async", self.seed)))

    def delay(self, send: SendEvent, recipient: Hashable) -> int:
        return self._rng.randint(1, self.max_delay)
