"""Event types of the event-driven simulation core.

Two events exist in the model:

* a :class:`SendEvent` — a transmission leaving a node at a virtual
  time, with its realized recipient set already resolved by the channel
  model.  Schedulers consume these to assign delivery timestamps;
* a :class:`DeliveryEvent` — one (message, recipient) pair landing at a
  virtual time.  The core keeps these in a priority queue ordered by
  ``(time, seq)``; the global sequence number makes the order total and
  preserves FIFO among same-instant deliveries.

Virtual time is integral.  Activations happen at ticks 1, 2, 3, …; a
message sent at tick ``t`` may be delivered no earlier than ``t + 1``
(no zero-latency links — the synchronous model's "next round" rule is
the ``delay = 1`` special case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Tuple


@dataclass(frozen=True, slots=True)
class SendEvent:
    """One transmission as the scheduler sees it.

    ``seq`` is the global send sequence number (total order over all
    sends of a run); ``time`` the virtual send instant; ``target`` is
    ``None`` for a local broadcast.  ``recipients`` is the realized
    delivery set in canonical (repr-sorted neighbor) order — schedulers
    must iterate it in this order so any randomness they consume is
    replayable.
    """

    seq: int
    time: int
    sender: Hashable
    message: object
    target: Optional[Hashable]
    recipients: Tuple[Hashable, ...]

    @property
    def is_broadcast(self) -> bool:
        return self.target is None


@dataclass(frozen=True, slots=True)
class DeliveryEvent:
    """One pending (message, recipient) delivery at virtual ``time``.

    ``index`` is the position of the matching
    :class:`~repro.net.trace.Delivery` record in the run's trace, so the
    engine can stamp each activation's happened-before cause (the last
    event drained into that inbox) without any content-based join."""

    time: int
    seq: int
    sender: Hashable
    recipient: Hashable
    message: object
    sent_at: int
    index: int = -1
