"""A worst-case timing adversary within the model's physics.

The adversary controls *when* — never *what* or *to whom*: it assigns
each delivery a delay in ``{1, …, max_delay}`` subject to the base
class's FIFO-per-link clamp and (unlike the seeded scheduler) full
local-broadcast atomicity, the timing analogue of "received identically
by each of its neighbors".

Strategy — maximize disagreement windows.  Disagreement between honest
nodes persists as long as the information reconciling them is in
flight, so the adversary stretches exactly the traffic that crosses the
graph's sparsest information bottleneck:

1. at :meth:`bind`, compute a minimum vertex cut and the two (or more)
   sides it separates — the paper's feasibility conditions (Theorems
   4.1/5.1) make the cut *the* place where consensus is fragile;
2. every delivery whose sender and recipient lie on different sides, or
   that involves a cut node, takes ``max_delay`` ticks;
3. traffic within one side is delivered at unit delay, so each side
   converges *internally* as fast as possible — onto different states.

Broadcast atomicity then drags every broadcast by a boundary node up to
``max_delay`` (the slowest recipient sets the shared instant), which is
precisely the constraint's bite: the adversary cannot rush a broadcast
to one side while stalling it to the other.

For complete (cut-free) or disconnected graphs the fallback bottleneck
is the canonical half-split of the repr-sorted node order.  Everything
is deterministic — the schedule is a pure function of (graph,
max_delay), so adversarial sweeps stay byte-identical across runs and
worker counts.
"""

from __future__ import annotations

from typing import Dict, Hashable

from ...graphs import Graph, GraphError, minimum_vertex_cut
from ..channels import ChannelModel
from .base import Scheduler
from .events import SendEvent

#: Side label for cut nodes (and anything else straddling the bottleneck).
_BOUNDARY = -1


class AdversarialScheduler(Scheduler):
    """Cut-straddling delays that keep the two sides maximally stale."""

    name = "adversarial"
    atomic_broadcast = True
    bounded = True

    def __init__(self, max_delay: int = 3):
        if max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        self.max_delay = max_delay

    @property
    def worst_case_delay(self) -> int:
        return self.max_delay

    def bind(self, graph: Graph, channel: ChannelModel) -> None:
        super().bind(graph, channel)
        self._side = self._partition(graph)

    @staticmethod
    def _partition(graph: Graph) -> Dict[Hashable, int]:
        """Label each node with its bottleneck side (cut nodes: boundary)."""
        side: Dict[Hashable, int] = {}
        try:
            cut = minimum_vertex_cut(graph)
        except GraphError:
            # Complete or disconnected: no proper vertex cut exists.
            # Fall back to the canonical half-split of the node order.
            nodes = sorted(graph.nodes, key=repr)
            half = (len(nodes) + 1) // 2
            for i, v in enumerate(nodes):
                side[v] = 0 if i < half else 1
            return side
        for v in cut:
            side[v] = _BOUNDARY
        remainder = graph.remove_nodes(cut)
        components = sorted(
            remainder.connected_components(),
            key=lambda comp: repr(sorted(comp, key=repr)),
        )
        for index, component in enumerate(components):
            for v in component:
                side[v] = index
        return side

    def delay(self, send: SendEvent, recipient: Hashable) -> int:
        a = self._side.get(send.sender, _BOUNDARY)
        b = self._side.get(recipient, _BOUNDARY)
        if a == _BOUNDARY or b == _BOUNDARY or a != b:
            return self.max_delay
        return 1
