"""A worst-case timing adversary within the model's physics.

The adversary controls *when* — never *what* or *to whom*: it assigns
each delivery a delay in ``{1, …, max_delay}`` subject to the base
class's FIFO-per-link clamp and (unlike the seeded scheduler) full
local-broadcast atomicity, the timing analogue of "received identically
by each of its neighbors".

Strategy — maximize disagreement windows.  Disagreement between honest
nodes persists as long as the information reconciling them is in
flight, so the adversary stretches exactly the traffic that crosses the
graph's sparsest information bottleneck:

1. at :meth:`bind`, compute a minimum vertex cut and the two (or more)
   sides it separates — the paper's feasibility conditions (Theorems
   4.1/5.1) make the cut *the* place where consensus is fragile;
2. every delivery whose sender and recipient lie on different sides, or
   that involves a cut node, takes ``max_delay`` ticks;
3. traffic within one side is delivered at unit delay, so each side
   converges *internally* as fast as possible — onto different states.

Broadcast atomicity then drags every broadcast by a boundary node up to
``max_delay`` (the slowest recipient sets the shared instant), which is
precisely the constraint's bite: the adversary cannot rush a broadcast
to one side while stalling it to the other.

For complete (cut-free) graphs the fallback bottleneck is the canonical
half-split of the repr-sorted node order; a *disconnected* graph is
partitioned component by component (each component gets its own
bottleneck analysis, with side labels offset so they never collide) —
half-splitting the whole node order there would let phantom
cross-component "deliveries" shape the delays of traffic that can
actually occur.  Everything is deterministic — the schedule is a pure
function of (graph, max_delay, window), so adversarial sweeps stay
byte-identical across runs and worker counts.

Window targeting (``window=W``): instead of flat ``max_delay``
stretching, bottleneck-crossing deliveries are timed to land exactly on
the α-synchronizer's activation ticks ``(r − 1)·W + 1`` — the latest
instant a window-``W`` synchronizer tolerates, so every such message is
maximally stale *when the synchronizer reads it* while still arriving
inside its soundness envelope (``W ≤ max_delay`` is enforced).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ...graphs import Graph, GraphError, minimum_vertex_cut
from ..channels import ChannelModel
from .base import Scheduler
from .events import SendEvent

#: Side label for cut nodes (and anything else straddling the bottleneck).
_BOUNDARY = -1


class AdversarialScheduler(Scheduler):
    """Cut-straddling delays that keep the two sides maximally stale."""

    name = "adversarial"
    atomic_broadcast = True

    def __init__(
        self,
        max_delay: int = 3,
        window: Optional[int] = None,
        declare_bound: bool = True,
    ):
        if max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        if window is not None and not 1 <= window <= max_delay:
            raise ValueError(
                f"window must be in [1, max_delay]; got {window} with "
                f"max_delay {max_delay}"
            )
        self.max_delay = max_delay
        self.window = window
        self.bounded = declare_bound

    @property
    def worst_case_delay(self) -> "int | None":
        return self.max_delay if self.bounded else None

    def bind(self, graph: Graph, channel: ChannelModel) -> None:
        super().bind(graph, channel)
        self._side = self._partition(graph)

    @staticmethod
    def _partition(graph: Graph) -> Dict[Hashable, int]:
        """Label each node with its bottleneck side (cut nodes: boundary)."""
        side: Dict[Hashable, int] = {}
        if graph.n and not graph.is_connected():
            # Partition each component on its own bottleneck.  Offsetting
            # the side labels keeps them distinct across components; the
            # cross-component pairs that end up "on different sides" name
            # deliveries no link can carry, so only the intra-component
            # structure ever reaches ``delay``.
            offset = 0
            for component in sorted(
                graph.connected_components(),
                key=lambda comp: repr(sorted(comp, key=repr)),
            ):
                sub_side = AdversarialScheduler._partition(
                    graph.remove_nodes(graph.nodes - component)
                )
                relabel: Dict[int, int] = {}
                for v in sorted(sub_side, key=repr):
                    label = sub_side[v]
                    if label == _BOUNDARY:
                        side[v] = _BOUNDARY
                        continue
                    if label not in relabel:
                        relabel[label] = offset + len(relabel)
                    side[v] = relabel[label]
                offset += len(relabel)
            return side
        try:
            cut = minimum_vertex_cut(graph)
        except GraphError:
            # Complete (cut-free): no proper vertex cut exists.  Fall
            # back to the canonical half-split of the node order.
            nodes = sorted(graph.nodes, key=repr)
            half = (len(nodes) + 1) // 2
            for i, v in enumerate(nodes):
                side[v] = 0 if i < half else 1
            return side
        for v in cut:
            side[v] = _BOUNDARY
        remainder = graph.remove_nodes(cut)
        components = sorted(
            remainder.connected_components(),
            key=lambda comp: repr(sorted(comp, key=repr)),
        )
        for index, component in enumerate(components):
            for v in component:
                side[v] = index
        return side

    def delay(self, send: SendEvent, recipient: Hashable) -> int:
        a = self._side.get(send.sender, _BOUNDARY)
        b = self._side.get(recipient, _BOUNDARY)
        if not (a == _BOUNDARY or b == _BOUNDARY or a != b):
            return 1
        if self.window:
            # Land exactly on the next α-schedule activation tick
            # (r−1)·W + 1: the smallest d ≥ 1 with send.time + d ≡ 1
            # (mod W).  d ≤ W ≤ max_delay, so the declared bound holds.
            d = (1 - send.time) % self.window
            return d if d else self.window
        return self.max_delay
