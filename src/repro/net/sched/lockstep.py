"""The lockstep scheduler: synchronous rounds as a timing policy.

Every delivery takes exactly one tick, and broadcasts are atomic — the
event-driven core then *is* the synchronous simulator of Section 3: a
message sent in round ``r`` lands in every recipient's round ``r + 1``
inbox, in the same order :class:`~repro.net.simulator.SynchronousNetwork`
produces.  The equivalence is property-tested trace-for-trace across all
protocol factories (``tests/net/sched/test_lockstep_equivalence.py``),
which is what licenses running every existing protocol unchanged on the
new core.
"""

from __future__ import annotations

from typing import Hashable

from .base import Scheduler
from .events import SendEvent


class LockstepScheduler(Scheduler):
    """Unit delay on every link: the synchronous model, event-driven."""

    name = "lockstep"
    atomic_broadcast = True
    bounded = True
    worst_case_delay = 1

    def delay(self, send: SendEvent, recipient: Hashable) -> int:
        return 1
