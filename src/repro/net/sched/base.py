"""The pluggable :class:`Scheduler` API and the event-driven core.

The paper's synchronous model (Section 3) is one point in a space of
timing assumptions; the authors' follow-up work ("Asynchronous Byzantine
Consensus on Undirected Graphs under Local Broadcast Model",
arXiv:1909.02865) shows the local-broadcast story survives asynchrony.
This module makes message *timing* a first-class, pluggable axis:

* :class:`EventDrivenNetwork` runs the same per-node
  :class:`~repro.net.node.Protocol` state machines as
  :class:`~repro.net.simulator.SynchronousNetwork`, but every delivery
  is an event with a virtual timestamp drawn from a :class:`Scheduler`;
* a :class:`Scheduler` assigns each (transmission, recipient) pair a
  delivery instant.  Subclasses only choose *delays*; the base class
  enforces the physics every timing model shares:

  - **causality** — a message sent at tick ``t`` arrives no earlier
    than ``t + 1`` (delays are ≥ 1);
  - **FIFO per link** — deliveries over one directed link never
    overtake each other (late-assigned timestamps are clamped up to the
    link's high-water mark; equal timestamps preserve send order via
    the event queue's sequence tie-break);
  - **local-broadcast atomicity** (when the scheduler declares it) —
    all recipients of one broadcast receive it at the same instant, the
    timing analogue of "received identically by each of its neighbors".

Determinism contract: the core activates nodes in repr-sorted order,
drains the event queue in ``(time, seq)`` order, and hands schedulers
their recipients in canonical order — so a run is a pure function of
(graph, protocols, channel, scheduler), independent of
``PYTHONHASHSEED`` and of any executor's process layout.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ...graphs import Graph
from ...obs import NULL_METRICS, MetricsRegistry
from ..channels import ChannelModel
from ..node import Context, Inbox, Protocol
from ..simulator import NetworkEngine
from ..trace import (
    CAUSE_DELIVERY,
    CAUSE_INPUT,
    CAUSE_TIMER,
    Decision,
    Delivery,
    Transmission,
)
from .events import DeliveryEvent, SendEvent


class SchedulingError(RuntimeError):
    """A scheduler produced a physically impossible delivery time."""


class Scheduler(ABC):
    """Assigns virtual delivery timestamps to transmissions.

    Subclasses implement :meth:`delay` — the raw per-recipient latency
    (≥ 1 ticks) of one send — and may set :attr:`atomic_broadcast` to
    force all recipients of a broadcast onto one shared instant.
    :meth:`schedule` (final) applies the FIFO-per-link clamp and the
    atomicity collapse, so no subclass can violate the model's physics.

    Schedulers are single-run objects with per-run state (link clocks,
    RNGs): the core calls :meth:`bind` once at network construction.
    Build a fresh instance per run — or use a
    :class:`~repro.net.sched.SchedulerSpec`, which does so for you.
    """

    name = "scheduler"
    #: When True, every recipient of one broadcast shares one delivery
    #: instant (the max of the per-link candidates, so FIFO still holds).
    atomic_broadcast = False
    #: The declared delay-bound contract.  A *bounded* scheduler promises
    #: every delay it ever produces is ≤ :attr:`worst_case_delay`; layers
    #: that reason about time budgets (the runner's delay-aware horizon,
    #: the α-synchronizer's round windows) query exactly this pair.
    #: Subclasses that cannot promise a bound leave ``bounded = False``
    #: and ``worst_case_delay = None``.
    bounded = False
    worst_case_delay: Optional[int] = None
    #: Observability sink.  The engine points this at its own registry
    #: when metrics are on; the default no-op keeps ``delay`` draws
    #: free to observe unconditionally.
    metrics = NULL_METRICS

    def bind(self, graph: Graph, channel: ChannelModel) -> None:
        """Attach to one run: reset link clocks and any per-run state."""
        self.graph = graph
        self.channel = channel
        self._link_clock: Dict[Tuple[Hashable, Hashable], int] = {}

    @abstractmethod
    def delay(self, send: SendEvent, recipient: Hashable) -> int:
        """Raw latency (ticks ≥ 1) for delivering ``send`` to ``recipient``."""

    def schedule(self, send: SendEvent) -> Dict[Hashable, int]:
        """Delivery instant per recipient, with all constraints applied."""
        times: Dict[Hashable, int] = {}
        for recipient in send.recipients:
            d = self.delay(send, recipient)
            if d < 1:
                raise SchedulingError(
                    f"{self.name}: delay {d} < 1 for "
                    f"{send.sender!r} -> {recipient!r}"
                )
            if self.bounded and d > (self.worst_case_delay or 0):
                raise SchedulingError(
                    f"{self.name}: delay {d} exceeds the declared "
                    f"worst-case bound {self.worst_case_delay} for "
                    f"{send.sender!r} -> {recipient!r}"
                )
            self.metrics.observe("sched.delay", d)
            when = send.time + d
            # FIFO per directed link: never undercut the link's latest
            # assigned delivery (ties keep send order via event seq).
            when = max(when, self._link_clock.get((send.sender, recipient), 0))
            times[recipient] = when
        if self.atomic_broadcast and send.is_broadcast and times:
            shared = max(times.values())
            # repro: allow[REPRO001] rebuilds `times` preserving its own
            # deterministic (repr-sorted recipient) insertion order.
            times = {recipient: shared for recipient in times}
        # repro: allow[REPRO001] per-key _link_clock writes — commutative
        # across recipients, so iteration order is immaterial.
        for recipient, when in times.items():
            self._link_clock[(send.sender, recipient)] = when
        return times

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class EventDrivenNetwork(NetworkEngine):
    """Run per-node protocols on an event queue with scheduled timing.

    Shares :class:`~repro.net.simulator.NetworkEngine`'s public surface
    (``step``/``run``/``run_until_decided``/``outputs``/``trace``) with
    :class:`~repro.net.simulator.SynchronousNetwork`, so every existing
    protocol, adversary and runner works unchanged.  Each tick of
    virtual time activates every node once (in sorted order) with the
    inbox of everything delivered up to that tick; sends are
    timestamped by the scheduler and enqueued as
    :class:`DeliveryEvent`\\ s.  Under the lockstep scheduler this is
    provably the synchronous simulator — byte-identical traces — while
    asynchronous schedulers stretch and reorder deliveries within the
    FIFO/atomicity envelope.
    """

    def __init__(
        self,
        graph: Graph,
        protocols: Mapping[Hashable, Protocol],
        scheduler: Scheduler,
        channel: Optional[ChannelModel] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__(graph, protocols, channel, metrics)
        self.scheduler = scheduler
        scheduler.bind(graph, self.channel)
        scheduler.metrics = self.metrics
        # round_no doubles as the virtual tick of the latest activation.
        self._events: List[Tuple[int, int, DeliveryEvent]] = []
        self._arrived: Dict[Hashable, Inbox] = {v: [] for v in self._order}
        self._send_seq = 0
        self._event_seq = 0

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance virtual time one tick and activate every node."""
        self.round_no += 1
        now = self.round_no
        # Drain every delivery due by `now` into the recipients' inboxes
        # in (time, seq) order — the arrival order protocols observe.
        # The last event drained per recipient is that activation's
        # primary happened-before cause.
        cause_now: Dict[Hashable, int] = {}
        while self._events and self._events[0][0] <= now:
            _, _, event = heapq.heappop(self._events)
            self._arrived[event.recipient].append((event.sender, event.message))
            cause_now[event.recipient] = event.index
        inboxes, self._arrived = self._arrived, {v: [] for v in self._order}
        delivered = sum(len(inboxes[v]) for v in self._order)
        sent_before = len(self.trace.transmissions)
        decisions = self.trace.decisions
        undecided = self._undecided
        outboxes: list[tuple[Hashable, Context]] = []
        for node in self._order:
            ci = cause_now.get(node)
            ck = (
                CAUSE_DELIVERY
                if ci is not None
                else (CAUSE_INPUT if now == 1 else CAUSE_TIMER)
            )
            ctx = Context(
                node=node,
                graph=self.graph,
                round_no=now,
                channel=self.channel,
                inbox=inboxes[node],
                now=now,
                metrics=self.metrics,
                cause_kind=ck,
                cause_index=ci,
            )
            self.protocols[node].on_round(ctx)
            if node in undecided:
                value = self.protocols[node].output()
                if value is not None:
                    undecided.discard(node)
                    decisions.append(Decision(node, value, now, ck, ci))
            outboxes.append((node, ctx))
        for node, ctx in outboxes:
            for out in ctx.outbox:
                recipients = self._resolve_recipients(node, out.target)
                self._dispatch(
                    node, out.message, out.target, recipients, now,
                    ctx.cause_kind, ctx.cause_index,
                )
        if self.trace.rounds < self.round_no:
            self.trace.rounds = self.round_no
        self._observe_tick(delivered, len(self.trace.transmissions) - sent_before)

    def _dispatch(
        self,
        node: Hashable,
        message: object,
        target: Optional[Hashable],
        recipients: Tuple[Hashable, ...],
        now: int,
        cause_kind: Optional[str] = None,
        cause_index: Optional[int] = None,
    ) -> None:
        """Timestamp one send via the scheduler and enqueue deliveries."""
        send = SendEvent(
            seq=self._send_seq,
            time=now,
            sender=node,
            message=message,
            target=target,
            recipients=recipients,
        )
        self._send_seq += 1
        times = self.scheduler.schedule(send)
        send_index = len(self.trace.transmissions)
        self.trace.record(
            Transmission(
                round_no=now,
                sender=node,
                message=message,
                target=target,
                recipients=recipients,
                sent_at=now,
                cause_kind=cause_kind,
                cause_index=cause_index,
            )
        )
        for recipient in recipients:
            when = times[recipient]
            if when <= now:
                raise SchedulingError(
                    f"{self.scheduler.name}: delivery at {when} not after "
                    f"send at {now} ({node!r} -> {recipient!r})"
                )
            delivery_index = len(self.trace.deliveries)
            self.trace.record_delivery(
                Delivery(
                    send_index=send_index,
                    sender=node,
                    recipient=recipient,
                    message=message,
                    sent_at=now,
                    delivered_at=when,
                )
            )
            heapq.heappush(
                self._events,
                (
                    when,
                    self._event_seq,
                    DeliveryEvent(
                        time=when,
                        seq=self._event_seq,
                        sender=node,
                        recipient=recipient,
                        message=message,
                        sent_at=now,
                        index=delivery_index,
                    ),
                ),
            )
            self._event_seq += 1

    @property
    def in_flight(self) -> int:
        """Deliveries enqueued but not yet drained (for diagnostics)."""
        return len(self._events)
