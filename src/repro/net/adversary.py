"""Byzantine adversary framework and behavior library.

The paper's proofs quantify over *all* adversaries; a simulator cannot.
What it can do is (a) implement the worst-case behaviors the proofs
themselves construct — path tampering, equivocation, transcript replay
from the covering network — and (b) fuzz with seeded random behaviors.
Every experiment in this library draws its faulty nodes' behavior from
here.

Design: an :class:`Adversary` builds a :class:`~repro.net.node.Protocol`
for each faulty node.  Most behaviors wrap the *honest* protocol and
transform its outbox (tamper, crash, equivocate); others replace it
entirely (silent, replay).  All sends are routed through the
:class:`~repro.net.node.Context` primitives, so the channel model is
enforced on adversaries exactly as on honest nodes: a non-equivocating
faulty node physically cannot deliver different bits to different
neighbors.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Hashable, List, Optional, Tuple

from ..graphs import Graph
from .channels import ChannelModel
from .messages import FloodMessage, ValuePayload
from .node import Context, Protocol
from .trace import Transmission

HonestFactory = Callable[[Hashable, int], Protocol]
"""Builds the honest protocol for (node, input_value)."""


@dataclass(frozen=True)
class FaultSpec:
    """Everything an adversary may use when instantiating a faulty node.

    Byzantine nodes know the graph, the fault bound, their co-conspirators
    and their own input; they do **not** get honest nodes' private state —
    anything else they learn must arrive through their inbox.
    """

    node: Hashable
    graph: Graph
    channel: ChannelModel
    input_value: int
    f: int
    faulty: FrozenSet[Hashable]
    honest_factory: HonestFactory

    def honest(self, input_value: Optional[int] = None) -> Protocol:
        value = self.input_value if input_value is None else input_value
        return self.honest_factory(self.node, value)


class Adversary(ABC):
    """Builds faulty-node protocols.  Subclasses define one behavior."""

    name = "adversary"

    @abstractmethod
    def build(self, spec: FaultSpec) -> Protocol:
        """Instantiate the behavior for one faulty node."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


# ---------------------------------------------------------------------------
# Wrapper plumbing
# ---------------------------------------------------------------------------


class _WrapperProtocol(Protocol):
    """Runs an inner (honest) protocol and post-processes its outbox.

    The inner protocol sees the true inbox; only what leaves the node is
    altered.  Subclasses override :meth:`transform`, yielding
    ``(message, target)`` pairs (``target=None`` for broadcast), which are
    re-sent through the real context so channel enforcement applies.
    """

    def __init__(self, inner: Protocol):
        self.inner = inner

    def on_round(self, ctx: Context) -> None:
        shadow = Context(
            ctx.node, ctx.graph, ctx.round_no, ctx.channel, ctx.inbox,
            [], ctx.now, ctx.metrics, ctx.cause_kind, ctx.cause_index,
        )
        self.inner.on_round(shadow)
        for message, target in self.transform(
            [(o.message, o.target) for o in shadow.outbox], ctx
        ):
            if target is None:
                ctx.broadcast(message)
            else:
                ctx.send(target, message)

    def transform(
        self, outbox: List[Tuple[object, Optional[Hashable]]], ctx: Context
    ) -> List[Tuple[object, Optional[Hashable]]]:
        return outbox

    def output(self) -> Optional[int]:
        return self.inner.output()

    @property
    def finished(self) -> bool:
        return self.inner.finished


# ---------------------------------------------------------------------------
# Behaviors
# ---------------------------------------------------------------------------


class SilentAdversary(Adversary):
    """Never transmits anything.  Exercises the default-message rule
    ("a missing initiation is read as (1, ⊥)")."""

    name = "silent"

    class _Silent(Protocol):
        def on_round(self, ctx: Context) -> None:
            return

        def output(self) -> Optional[int]:
            return None

        @property
        def finished(self) -> bool:
            return True

    def build(self, spec: FaultSpec) -> Protocol:
        return self._Silent()


class CrashAdversary(Adversary):
    """Behaves honestly, then goes permanently silent at ``crash_round``."""

    name = "crash"

    def __init__(self, crash_round: int):
        self.crash_round = crash_round

    def build(self, spec: FaultSpec) -> Protocol:
        crash_round = self.crash_round

        class _Crash(_WrapperProtocol):
            def transform(self, outbox, ctx):
                if ctx.round_no >= crash_round:
                    return []
                return outbox

        return _Crash(spec.honest())


class WrongInputAdversary(Adversary):
    """Runs the honest protocol on a flipped input.

    The blandest Byzantine behavior — indistinguishable from an honest
    node with the other input, so validity tests must tolerate it.
    """

    name = "wrong-input"

    def build(self, spec: FaultSpec) -> Protocol:
        return spec.honest(input_value=1 - spec.input_value)


class TamperForwardAdversary(Adversary):
    """Forwards flood messages with flipped values.

    ``selector(message, spec)`` picks which outgoing flood messages to
    corrupt; the default corrupts every *forwarded* message (those with a
    non-empty path — the node's own initiation stays truthful, which is
    the "node 3 tampers the relayed message" attack from Section 4's
    intuition-building example).
    """

    name = "tamper-forward"

    def __init__(
        self,
        selector: Optional[Callable[[FloodMessage, FaultSpec], bool]] = None,
    ):
        self.selector = selector

    def build(self, spec: FaultSpec) -> Protocol:
        selector = self.selector or (lambda m, s: len(m.path) > 0)

        class _Tamper(_WrapperProtocol):
            def transform(self, outbox, ctx):
                result = []
                for message, target in outbox:
                    if (
                        isinstance(message, FloodMessage)
                        and isinstance(message.payload, ValuePayload)
                        and selector(message, spec)
                    ):
                        flipped = FloodMessage(
                            message.phase,
                            ValuePayload(1 - message.payload.value),
                            message.path,
                        )
                        result.append((flipped, target))
                    else:
                        result.append((message, target))
                return result

        return _Tamper(spec.honest())


class LyingInitAdversary(Adversary):
    """Initiates flooding with the wrong value but forwards honestly.

    Distinct from :class:`WrongInputAdversary` only for protocols whose
    state evolves across phases (Algorithm 1's γ updates): this one lies
    at every initiation regardless of its current honest-protocol state.
    """

    name = "lying-init"

    def build(self, spec: FaultSpec) -> Protocol:
        class _Lie(_WrapperProtocol):
            def transform(self, outbox, ctx):
                result = []
                for message, target in outbox:
                    if (
                        isinstance(message, FloodMessage)
                        and isinstance(message.payload, ValuePayload)
                        and len(message.path) == 0
                    ):
                        flipped = FloodMessage(
                            message.phase,
                            ValuePayload(1 - message.payload.value),
                            message.path,
                        )
                        result.append((flipped, target))
                    else:
                        result.append((message, target))
                return result

        return _Lie(spec.honest())


class DropForwardAdversary(Adversary):
    """Initiates its own flooding but never forwards anyone else's
    messages — severs every path routed through it."""

    name = "drop-forward"

    def build(self, spec: FaultSpec) -> Protocol:
        class _Drop(_WrapperProtocol):
            def transform(self, outbox, ctx):
                return [
                    (m, t)
                    for m, t in outbox
                    if not (isinstance(m, FloodMessage) and len(m.path) > 0)
                ]

        return _Drop(spec.honest())


class EquivocatingAdversary(Adversary):
    """Sends value 0 to one half of its neighbors and 1 to the other.

    Only usable where the channel grants this node unicast (hybrid model
    equivocators, or the point-to-point model); under pure local
    broadcast, building this behavior raises at send time — which is
    itself a property the tests assert.
    """

    name = "equivocate"

    def __init__(self, split: Optional[Callable[[Hashable], int]] = None):
        self.split = split

    def build(self, spec: FaultSpec) -> Protocol:
        custom_split = self.split

        class _Equivocate(_WrapperProtocol):
            def transform(self, outbox, ctx):
                neighbors = sorted(ctx.graph.neighbors(ctx.node), key=repr)
                result = []
                for message, target in outbox:
                    if (
                        target is None
                        and isinstance(message, FloodMessage)
                        and isinstance(message.payload, ValuePayload)
                    ):
                        for i, nbr in enumerate(neighbors):
                            # Default: alternate by neighbor rank, which
                            # guarantees a genuine split whenever the node
                            # has at least two neighbors.
                            value = custom_split(nbr) if custom_split else i % 2
                            variant = FloodMessage(
                                message.phase, ValuePayload(value), message.path
                            )
                            result.append((variant, nbr))
                    else:
                        result.append((message, target))
                return result

        return _Equivocate(spec.honest())


class RandomAdversary(Adversary):
    """Seeded chaos within the channel's physics.

    Each outgoing flood message is independently delivered honestly,
    value-flipped, or dropped; occasionally a syntactically valid
    fabricated message (a lie about a path ending at this node) is
    broadcast.  Deterministic per (seed, node).
    """

    name = "random"

    def __init__(self, seed: int, p_flip: float = 0.4, p_drop: float = 0.2,
                 p_fabricate: float = 0.2):
        self.seed = seed
        self.p_flip = p_flip
        self.p_drop = p_drop
        self.p_fabricate = p_fabricate

    def build(self, spec: FaultSpec) -> Protocol:
        rng = random.Random((self.seed, repr(spec.node)).__repr__())
        p_flip, p_drop, p_fab = self.p_flip, self.p_drop, self.p_fabricate

        class _Chaos(_WrapperProtocol):
            def transform(self, outbox, ctx):
                result = []
                phase = None
                for message, target in outbox:
                    if isinstance(message, FloodMessage) and isinstance(
                        message.payload, ValuePayload
                    ):
                        phase = message.phase
                        roll = rng.random()
                        if roll < p_drop:
                            continue
                        if roll < p_drop + p_flip:
                            message = FloodMessage(
                                message.phase,
                                ValuePayload(1 - message.payload.value),
                                message.path,
                            )
                    result.append((message, target))
                if phase is not None and rng.random() < p_fab:
                    fake = self._fabricate(ctx, phase)
                    if fake is not None:
                        result.append((fake, None))
                return result

            @staticmethod
            def _fabricate(ctx: Context, phase) -> Optional[FloodMessage]:
                # A lie about a short path that really exists in G and ends
                # just before this node, so receivers' rule (i) accepts it.
                me = ctx.node
                nbrs = sorted(ctx.graph.neighbors(me), key=repr)
                if not nbrs:
                    return None
                first = rng.choice(nbrs)
                second_choices = [
                    w
                    for w in sorted(ctx.graph.neighbors(first), key=repr)
                    if w != me
                ]
                path: Tuple[Hashable, ...]
                if second_choices and rng.random() < 0.5:
                    path = (rng.choice(second_choices), first)
                else:
                    path = (first,)
                return FloodMessage(phase, ValuePayload(rng.randint(0, 1)), path)

        return _Chaos(spec.honest())


class ReplayAdversary(Adversary):
    """Transmits a prescribed per-round schedule, verbatim.

    This is the adversary of the impossibility proofs: "in each round, a
    faulty node broadcasts the same messages as the corresponding node in
    network 𝒢 in execution E in the same round" (Lemmas A.1/A.2/D.1/D.2).
    ``schedules[node]`` maps round → list of (message, target) pairs.
    """

    name = "replay"

    def __init__(
        self,
        schedules: Dict[Hashable, Dict[int, List[Tuple[object, Optional[Hashable]]]]],
    ):
        self.schedules = schedules

    @classmethod
    def from_transmissions(
        cls,
        per_node: Dict[Hashable, List[Transmission]],
        retarget: Optional[Callable[[Transmission], Optional[Hashable]]] = None,
    ) -> "ReplayAdversary":
        """Build schedules straight from recorded trace transmissions."""
        schedules: Dict[Hashable, Dict[int, List[Tuple[object, Optional[Hashable]]]]] = {}
        for node, txs in sorted(per_node.items(), key=lambda kv: repr(kv[0])):
            per_round: Dict[int, List[Tuple[object, Optional[Hashable]]]] = {}
            for t in txs:
                target = retarget(t) if retarget else t.target
                per_round.setdefault(t.round_no, []).append((t.message, target))
            schedules[node] = per_round
        return cls(schedules)

    def build(self, spec: FaultSpec) -> Protocol:
        schedule = self.schedules.get(spec.node, {})

        class _Replay(Protocol):
            def on_round(self, ctx: Context) -> None:
                for message, target in schedule.get(ctx.round_no, []):
                    if target is None:
                        ctx.broadcast(message)
                    else:
                        ctx.send(target, message)

            def output(self) -> Optional[int]:
                return None

            @property
            def finished(self) -> bool:
                return True

        return _Replay()


class SplitReplayAdversary(Adversary):
    """Equivocating replay: different prescribed transcripts per neighbor
    group.

    This is the faulty behavior of the hybrid-model impossibility proofs
    (Lemmas D.1/D.2): "the communication by equivocating faulty nodes in
    T to its neighbors in S is the same as that by the corresponding copy
    in T0 and to the remaining neighbors the same as that by T1."
    ``group_schedules[node]`` is a list of ``(targets, schedule)`` pairs;
    each round, every message of each schedule is unicast to the targets
    of its group (requires a channel granting this node unicast).
    """

    name = "split-replay"

    def __init__(
        self,
        group_schedules: Dict[
            Hashable,
            List[
                Tuple[
                    FrozenSet[Hashable],
                    Dict[int, List[Tuple[object, Optional[Hashable]]]],
                ]
            ],
        ],
    ):
        self.group_schedules = group_schedules

    def build(self, spec: FaultSpec) -> Protocol:
        groups = self.group_schedules.get(spec.node, [])
        neighbors = spec.graph.neighbors(spec.node)

        class _SplitReplay(Protocol):
            def on_round(self, ctx: Context) -> None:
                for targets, schedule in groups:
                    for message, _target in schedule.get(ctx.round_no, []):
                        for nbr in sorted(targets & neighbors, key=repr):
                            ctx.send(nbr, message)

            def output(self) -> Optional[int]:
                return None

            @property
            def finished(self) -> bool:
                return True

        return _SplitReplay()


class CompositeAdversary(Adversary):
    """Per-node dispatch: different faulty nodes get different behaviors.

    The impossibility executions mix plain transcript replay
    (non-equivocating faults) with split replay (equivocating faults) in
    the same run; experiments also use this to combine e.g. one silent
    and one tampering node.
    """

    name = "composite"

    def __init__(self, assignments: Dict[Hashable, Adversary],
                 default: Optional[Adversary] = None):
        self.assignments = dict(assignments)
        self.default = default

    def build(self, spec: FaultSpec) -> Protocol:
        chosen = self.assignments.get(spec.node, self.default)
        if chosen is None:
            raise ValueError(f"no behavior assigned for faulty node {spec.node!r}")
        return chosen.build(spec)


def standard_adversaries(seed: int = 7) -> list[Adversary]:
    """The battery every correctness sweep runs against."""
    return [
        SilentAdversary(),
        CrashAdversary(crash_round=2),
        WrongInputAdversary(),
        LyingInitAdversary(),
        TamperForwardAdversary(),
        DropForwardAdversary(),
        RandomAdversary(seed=seed),
    ]
