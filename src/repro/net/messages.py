"""Message types exchanged by the protocols.

All messages are small frozen dataclasses: hashable (rule (ii) of the
flooding procedure keys on them), comparable, and safe to share between
nodes (no aliasing bugs — a Byzantine node cannot mutate a message after
sending it).

The wire format of the paper's flooding step is ``(b, Π)`` — a value plus
the path it has traversed so far, *excluding* the current transmitter
(Section 5.1).  :class:`FloodMessage` generalizes ``b`` to any hashable
payload because Algorithm 2 floods reports and decisions through the same
rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Tuple

Payload = Hashable


@dataclass(frozen=True, slots=True)
class FloodMessage:
    """The paper's ``(b, Π)`` flood message.

    ``phase`` tags which flooding instance the message belongs to (Algorithm
    1 runs one flood per candidate fault set; Algorithm 2 runs three).
    ``path`` is the path traversed *before* the current transmitter — the
    receiver appends the sender itself per the ``Π - u`` rule.
    """

    phase: Hashable
    payload: Payload
    path: Tuple[Hashable, ...]

    def extended_by(self, sender: Hashable) -> Tuple[Hashable, ...]:
        """The path ``Π - u``: this message's path plus its transmitter."""
        return self.path + (sender,)


@dataclass(frozen=True, slots=True)
class ValuePayload:
    """Payload for phase (a) of Algorithms 1/3 and phase 1 of Algorithm 2:
    a node's binary state/input being flooded."""

    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError(f"binary value expected, got {self.value!r}")


@dataclass(frozen=True, slots=True)
class ReportPayload:
    """Phase 2 of Algorithm 2: node ``reporter`` attests that its neighbor
    ``subject`` transmitted flood message ``(payload, path)`` in phase 1.

    The report itself is then flooded (with its own path annotation), so
    the full on-wire shape is ``FloodMessage(phase=2,
    payload=ReportPayload(...), path=Π)``.
    """

    reporter: Hashable
    subject: Hashable
    payload: Payload
    path: Tuple[Hashable, ...]


@dataclass(frozen=True, slots=True)
class DecisionPayload:
    """Phase 3 of Algorithm 2: a type-B node floods its decision.

    The asynchronous algorithm (:mod:`repro.consensus.async_alg`) floods
    the same payload under its own phase tag when a node commits."""

    value: int


@dataclass(frozen=True, slots=True)
class VotePayload:
    """One vote of the asynchronous algorithm's quorum stage.

    ``round_no`` is a *vote* round — a message-driven counter, not a
    synchronous communication round: a node casts vote ``r + 1`` only
    after collecting a quorum of round-``r`` votes, however long their
    floods take.  Tagging the round into the payload (and into the flood
    phase) keeps each round's votes in their own equivocation-free slot
    space."""

    round_no: int
    value: int

    def __post_init__(self) -> None:
        if self.round_no < 1:
            raise ValueError(f"vote rounds start at 1, got {self.round_no!r}")
        if self.value not in (0, 1):
            raise ValueError(f"binary vote expected, got {self.value!r}")


@dataclass(frozen=True, slots=True)
class DirectMessage:
    """A non-flooded protocol message (used by the point-to-point baseline:
    EIG relay messages carry a label identifying their EIG-tree position)."""

    tag: Hashable
    payload: Payload = field(default=None)
