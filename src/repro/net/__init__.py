"""Synchronous network substrate: simulator, channels, messages, adversaries.

This subpackage implements the system model of Section 3 — synchronous
rounds over FIFO links on an undirected graph — with the three channel
models the paper studies (local broadcast, point-to-point, hybrid) and a
library of Byzantine behaviors used across every experiment.
"""

from .adversary2 import (
    DecisionForgeAdversary,
    LyingReporterAdversary,
    SilentReporterAdversary,
    algorithm2_attack_battery,
)
from .adversary import (
    Adversary,
    CrashAdversary,
    DropForwardAdversary,
    EquivocatingAdversary,
    FaultSpec,
    HonestFactory,
    LyingInitAdversary,
    RandomAdversary,
    ReplayAdversary,
    SilentAdversary,
    TamperForwardAdversary,
    WrongInputAdversary,
    standard_adversaries,
)
from .channels import (
    ChannelModel,
    EquivocationError,
    hybrid_model,
    local_broadcast_model,
    point_to_point_model,
)
from .messages import (
    DecisionPayload,
    DirectMessage,
    FloodMessage,
    ReportPayload,
    ValuePayload,
)
from .node import Context, Inbox, Outgoing, Protocol
from .simulator import SimulationError, SynchronousNetwork
from .trace import Trace, Transmission

__all__ = [
    "Adversary",
    "ChannelModel",
    "Context",
    "CrashAdversary",
    "DecisionForgeAdversary",
    "DecisionPayload",
    "DirectMessage",
    "DropForwardAdversary",
    "EquivocatingAdversary",
    "EquivocationError",
    "FaultSpec",
    "FloodMessage",
    "HonestFactory",
    "Inbox",
    "LyingInitAdversary",
    "LyingReporterAdversary",
    "Outgoing",
    "Protocol",
    "RandomAdversary",
    "ReplayAdversary",
    "ReportPayload",
    "SilentAdversary",
    "SilentReporterAdversary",
    "SimulationError",
    "SynchronousNetwork",
    "TamperForwardAdversary",
    "Trace",
    "Transmission",
    "ValuePayload",
    "WrongInputAdversary",
    "hybrid_model",
    "local_broadcast_model",
    "point_to_point_model",
    "algorithm2_attack_battery",
    "standard_adversaries",
]
