"""Network substrate: simulators, schedulers, channels, adversaries.

This subpackage implements the system model of Section 3 — synchronous
rounds over FIFO links on an undirected graph — with the three channel
models the paper studies (local broadcast, point-to-point, hybrid) and a
library of Byzantine behaviors used across every experiment.

Message *timing* is a pluggable axis: :mod:`repro.net.sched` provides an
event-driven core (:class:`EventDrivenNetwork`) whose lockstep scheduler
reproduces :class:`SynchronousNetwork` byte-for-byte, plus seeded-random
and adversarial timing models for asynchronous experiments
(arXiv:1909.02865).
"""

from .adversary2 import (
    DecisionForgeAdversary,
    LyingReporterAdversary,
    SilentReporterAdversary,
    algorithm2_attack_battery,
)
from .adversary import (
    Adversary,
    CrashAdversary,
    DropForwardAdversary,
    EquivocatingAdversary,
    FaultSpec,
    HonestFactory,
    LyingInitAdversary,
    RandomAdversary,
    ReplayAdversary,
    SilentAdversary,
    TamperForwardAdversary,
    WrongInputAdversary,
    standard_adversaries,
)
from .channels import (
    ChannelModel,
    EquivocationError,
    hybrid_model,
    local_broadcast_model,
    point_to_point_model,
)
from .messages import (
    DecisionPayload,
    DirectMessage,
    FloodMessage,
    ReportPayload,
    ValuePayload,
)
from .node import Context, Inbox, Outgoing, Protocol
from .sched import (
    AdversarialScheduler,
    EventDrivenNetwork,
    LockstepScheduler,
    Scheduler,
    SchedulerSpec,
    SchedulingError,
    SeededAsyncScheduler,
    parse_scheduler,
)
from .simulator import SimulationError, SynchronousNetwork
from .trace import Delivery, Trace, Transmission

__all__ = [
    "Adversary",
    "AdversarialScheduler",
    "ChannelModel",
    "Context",
    "CrashAdversary",
    "DecisionForgeAdversary",
    "DecisionPayload",
    "Delivery",
    "DirectMessage",
    "DropForwardAdversary",
    "EquivocatingAdversary",
    "EquivocationError",
    "EventDrivenNetwork",
    "FaultSpec",
    "FloodMessage",
    "HonestFactory",
    "Inbox",
    "LockstepScheduler",
    "LyingInitAdversary",
    "LyingReporterAdversary",
    "Outgoing",
    "Protocol",
    "RandomAdversary",
    "ReplayAdversary",
    "ReportPayload",
    "Scheduler",
    "SchedulerSpec",
    "SchedulingError",
    "SeededAsyncScheduler",
    "SilentAdversary",
    "SilentReporterAdversary",
    "SimulationError",
    "SynchronousNetwork",
    "TamperForwardAdversary",
    "Trace",
    "Transmission",
    "ValuePayload",
    "WrongInputAdversary",
    "hybrid_model",
    "local_broadcast_model",
    "point_to_point_model",
    "algorithm2_attack_battery",
    "parse_scheduler",
    "standard_adversaries",
]
