"""Execution traces: everything that went over the air, with accounting.

The trace is the simulator's ground truth.  It drives:

* complexity accounting (rounds, transmissions, deliveries) for the
  Theorem 5.6 vs Algorithm 1 cost benchmarks;
* the impossibility experiments, which record an execution ``E`` on the
  covering network and *replay* faulty nodes' transmissions into the
  executions ``E1, E2, E3`` (Appendices A and D);
* the scheduler subsystem (:mod:`repro.net.sched`), whose delivery
  events carry virtual timestamps: every :class:`Transmission` records
  the virtual time it was sent (``sent_at``) and every per-recipient
  :class:`Delivery` the virtual time it landed (``delivered_at``).
  Under the synchronous simulator virtual time coincides with the round
  number, so synchronous and lockstep event-driven traces are directly
  comparable;
* debugging: a faithful log of who said what, when, to whom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

# Both record types are constructed once per message on the simulator's
# hot path; plain slots with a generated hash keep eq/hash/repr identical
# to the frozen form at a third of the construction cost.  Nothing may
# mutate a record after it is appended to a trace.


@dataclass(slots=True, unsafe_hash=True)
class Transmission:
    """One send event.  ``target is None`` means local broadcast;
    ``recipients`` is the realized delivery set (the sender's neighbors
    for a broadcast, the single target otherwise).  ``sent_at`` is the
    virtual timestamp of the send — equal to ``round_no`` under the
    synchronous simulator and the lockstep scheduler."""

    round_no: int
    sender: Hashable
    message: object
    target: Optional[Hashable]
    recipients: Tuple[Hashable, ...]
    sent_at: Optional[int] = None


@dataclass(slots=True, unsafe_hash=True)
class Delivery:
    """One (message, recipient) delivery with its virtual timing.

    ``send_index`` is the position of the originating
    :class:`Transmission` in ``Trace.transmissions``, so a delivery can
    always be joined back to its send.  Under synchronous/lockstep
    execution ``delivered_at == sent_at + 1``; asynchronous schedulers
    assign later timestamps (bounded by their ``max_delay``)."""

    send_index: int
    sender: Hashable
    recipient: Hashable
    message: object
    sent_at: int
    delivered_at: int

    @property
    def latency(self) -> int:
        """Virtual time the message spent in flight."""
        return self.delivered_at - self.sent_at


@dataclass(slots=True)
class Trace:
    """An append-only log of transmissions plus run metadata.

    ``deliveries`` is the per-recipient view of the same traffic with
    virtual delivery timestamps; both simulators append a
    :class:`Delivery` per recipient at send time (in recipient order),
    so the two logs always line up.
    """

    transmissions: List[Transmission] = field(default_factory=list)
    deliveries: List[Delivery] = field(default_factory=list)
    rounds: int = 0

    def record(self, t: Transmission) -> None:
        self.transmissions.append(t)
        if t.round_no > self.rounds:
            self.rounds = t.round_no

    def record_delivery(self, d: Delivery) -> None:
        self.deliveries.append(d)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def transmission_count(self) -> int:
        """Number of send events (a broadcast counts once)."""
        return len(self.transmissions)

    @property
    def delivery_count(self) -> int:
        """Number of (message, recipient) deliveries."""
        return sum(len(t.recipients) for t in self.transmissions)

    def sent_by(self, node: Hashable) -> list[Transmission]:
        """All transmissions made by ``node``, in order."""
        return [t for t in self.transmissions if t.sender == node]

    def broadcasts_by(self, node: Hashable) -> list[Transmission]:
        """Broadcast transmissions by ``node`` (excludes unicasts)."""
        return [t for t in self.transmissions if t.sender == node and t.target is None]

    def received_by(self, node: Hashable) -> list[Transmission]:
        """All transmissions delivered to ``node``, in order."""
        return [t for t in self.transmissions if node in t.recipients]

    def per_round(self, round_no: int) -> list[Transmission]:
        return [t for t in self.transmissions if t.round_no == round_no]

    def deliveries_on_link(
        self, sender: Hashable, recipient: Hashable
    ) -> list[Delivery]:
        """All deliveries over one directed link, in send (FIFO) order."""
        return [
            d
            for d in self.deliveries
            if d.sender == sender and d.recipient == recipient
        ]

    @property
    def max_latency(self) -> int:
        """The largest virtual in-flight time over all deliveries
        (0 for an empty trace — and always 1 under lockstep timing)."""
        return max((d.latency for d in self.deliveries), default=0)

    def replay_schedule(self, node: Hashable) -> dict[int, list[Transmission]]:
        """``node``'s transmissions grouped by round — the exact shape a
        :class:`~repro.net.adversary.ReplayAdversary` consumes."""
        schedule: dict[int, list[Transmission]] = {}
        for t in self.sent_by(node):
            schedule.setdefault(t.round_no, []).append(t)
        return schedule
