"""Execution traces: everything that went over the air, with accounting.

The trace is the simulator's ground truth.  It drives:

* complexity accounting (rounds, transmissions, deliveries) for the
  Theorem 5.6 vs Algorithm 1 cost benchmarks;
* the impossibility experiments, which record an execution ``E`` on the
  covering network and *replay* faulty nodes' transmissions into the
  executions ``E1, E2, E3`` (Appendices A and D);
* debugging: a faithful log of who said what, when, to whom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple


@dataclass(frozen=True, slots=True)
class Transmission:
    """One send event.  ``target is None`` means local broadcast;
    ``recipients`` is the realized delivery set (the sender's neighbors
    for a broadcast, the single target otherwise)."""

    round_no: int
    sender: Hashable
    message: object
    target: Optional[Hashable]
    recipients: Tuple[Hashable, ...]


@dataclass(slots=True)
class Trace:
    """An append-only log of transmissions plus run metadata."""

    transmissions: List[Transmission] = field(default_factory=list)
    rounds: int = 0

    def record(self, t: Transmission) -> None:
        self.transmissions.append(t)
        if t.round_no > self.rounds:
            self.rounds = t.round_no

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def transmission_count(self) -> int:
        """Number of send events (a broadcast counts once)."""
        return len(self.transmissions)

    @property
    def delivery_count(self) -> int:
        """Number of (message, recipient) deliveries."""
        return sum(len(t.recipients) for t in self.transmissions)

    def sent_by(self, node: Hashable) -> list[Transmission]:
        """All transmissions made by ``node``, in order."""
        return [t for t in self.transmissions if t.sender == node]

    def broadcasts_by(self, node: Hashable) -> list[Transmission]:
        """Broadcast transmissions by ``node`` (excludes unicasts)."""
        return [t for t in self.transmissions if t.sender == node and t.target is None]

    def received_by(self, node: Hashable) -> list[Transmission]:
        """All transmissions delivered to ``node``, in order."""
        return [t for t in self.transmissions if node in t.recipients]

    def per_round(self, round_no: int) -> list[Transmission]:
        return [t for t in self.transmissions if t.round_no == round_no]

    def replay_schedule(self, node: Hashable) -> dict[int, list[Transmission]]:
        """``node``'s transmissions grouped by round — the exact shape a
        :class:`~repro.net.adversary.ReplayAdversary` consumes."""
        schedule: dict[int, list[Transmission]] = {}
        for t in self.sent_by(node):
            schedule.setdefault(t.round_no, []).append(t)
        return schedule
