"""Execution traces: everything that went over the air, with accounting.

The trace is the simulator's ground truth.  It drives:

* complexity accounting (rounds, transmissions, deliveries) for the
  Theorem 5.6 vs Algorithm 1 cost benchmarks;
* the impossibility experiments, which record an execution ``E`` on the
  covering network and *replay* faulty nodes' transmissions into the
  executions ``E1, E2, E3`` (Appendices A and D);
* the scheduler subsystem (:mod:`repro.net.sched`), whose delivery
  events carry virtual timestamps: every :class:`Transmission` records
  the virtual time it was sent (``sent_at``) and every per-recipient
  :class:`Delivery` the virtual time it landed (``delivered_at``).
  Under the synchronous simulator virtual time coincides with the round
  number, so synchronous and lockstep event-driven traces are directly
  comparable;
* debugging: a faithful log of who said what, when, to whom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

# Both record types are constructed once per message on the simulator's
# hot path; plain slots with a generated hash keep eq/hash/repr identical
# to the frozen form at a third of the construction cost.  Nothing may
# mutate a record after it is appended to a trace.


#: The three ways a send (or decision) can be caused (happened-before
#: semantics): ``"delivery"`` — emitted while processing an inbox, the
#: primary parent being the last delivery that landed this activation;
#: ``"input"`` — spontaneous at the first activation (driven by the
#: node's initial state, i.e. its input value); ``"timer"`` — spontaneous
#: at a later activation (driven by the protocol's round schedule or a
#: local patience timer, not by any arrival).
CAUSE_DELIVERY = "delivery"
CAUSE_INPUT = "input"
CAUSE_TIMER = "timer"


@dataclass(slots=True, unsafe_hash=True)
class Transmission:
    """One send event.  ``target is None`` means local broadcast;
    ``recipients`` is the realized delivery set (the sender's neighbors
    for a broadcast, the single target otherwise).  ``sent_at`` is the
    virtual timestamp of the send — equal to ``round_no`` under the
    synchronous simulator and the lockstep scheduler.

    ``cause_kind``/``cause_index`` are the happened-before parent link:
    ``cause_kind`` classifies what provoked the activation that emitted
    this send (:data:`CAUSE_DELIVERY` / :data:`CAUSE_INPUT` /
    :data:`CAUSE_TIMER`) and, for ``"delivery"``, ``cause_index`` is the
    position in ``Trace.deliveries`` of the *primary* cause — the last
    delivery that landed in the emitting activation's inbox.  The full
    parent set of a send is every delivery to its sender with
    ``delivered_at == sent_at`` (both engines drain exactly those into
    the activation's inbox), so the trace is a happened-before DAG:
    delivery → its transmission via ``send_index``, transmission → the
    deliveries of its activation via timestamps, with ``cause_index``
    as the recorded primary edge."""

    round_no: int
    sender: Hashable
    message: object
    target: Optional[Hashable]
    recipients: Tuple[Hashable, ...]
    sent_at: Optional[int] = None
    cause_kind: Optional[str] = None
    cause_index: Optional[int] = None


@dataclass(slots=True, unsafe_hash=True)
class Delivery:
    """One (message, recipient) delivery with its virtual timing.

    ``send_index`` is the position of the originating
    :class:`Transmission` in ``Trace.transmissions``, so a delivery can
    always be joined back to its send.  Under synchronous/lockstep
    execution ``delivered_at == sent_at + 1``; asynchronous schedulers
    assign later timestamps (bounded by their ``max_delay``)."""

    send_index: int
    sender: Hashable
    recipient: Hashable
    message: object
    sent_at: int
    delivered_at: int

    @property
    def latency(self) -> int:
        """Virtual time the message spent in flight."""
        return self.delivered_at - self.sent_at


@dataclass(slots=True, unsafe_hash=True)
class Decision:
    """The instant a node's ``output()`` first became non-``None``.

    ``decided_at`` is the virtual tick of the activation that produced
    the output (0 for a protocol that was already decided at
    construction).  ``cause_kind``/``cause_index`` follow the same
    happened-before convention as :class:`Transmission`: the primary
    cause of a ``"delivery"``-caused decision is the last delivery in
    the deciding activation's inbox."""

    node: Hashable
    value: int
    decided_at: int
    cause_kind: Optional[str] = None
    cause_index: Optional[int] = None


@dataclass(slots=True)
class Trace:
    """An append-only log of transmissions plus run metadata.

    ``deliveries`` is the per-recipient view of the same traffic with
    virtual delivery timestamps; both simulators append a
    :class:`Delivery` per recipient at send time (in recipient order),
    so the two logs always line up.
    """

    transmissions: List[Transmission] = field(default_factory=list)
    deliveries: List[Delivery] = field(default_factory=list)
    rounds: int = 0
    decisions: List[Decision] = field(default_factory=list)

    def record(self, t: Transmission) -> None:
        self.transmissions.append(t)
        if t.round_no > self.rounds:
            self.rounds = t.round_no

    def record_delivery(self, d: Delivery) -> None:
        self.deliveries.append(d)

    def record_decision(self, d: Decision) -> None:
        self.decisions.append(d)

    # ------------------------------------------------------------------
    # Happened-before joins
    # ------------------------------------------------------------------
    def transmission_of(self, delivery: Delivery) -> Transmission:
        """The send a delivery descends from (stable ``send_index`` join)."""
        return self.transmissions[delivery.send_index]

    def deliveries_of(self, send_index: int) -> list[Delivery]:
        """Every per-recipient delivery of one transmission, in order."""
        return [d for d in self.deliveries if d.send_index == send_index]

    def causes_of(self, transmission: Transmission) -> list[Delivery]:
        """The full happened-before parent set of one send: every
        delivery that landed in the inbox of the activation that emitted
        it (``recipient == sender`` and ``delivered_at == sent_at``).
        The recorded ``cause_index`` is always the last element (the
        primary cause) when this list is non-empty."""
        if transmission.sent_at is None:
            return []
        return [
            d
            for d in self.deliveries
            if d.recipient == transmission.sender
            and d.delivered_at == transmission.sent_at
        ]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def transmission_count(self) -> int:
        """Number of send events (a broadcast counts once)."""
        return len(self.transmissions)

    @property
    def delivery_count(self) -> int:
        """Number of (message, recipient) deliveries."""
        return sum(len(t.recipients) for t in self.transmissions)

    def sent_by(self, node: Hashable) -> list[Transmission]:
        """All transmissions made by ``node``, in order."""
        return [t for t in self.transmissions if t.sender == node]

    def broadcasts_by(self, node: Hashable) -> list[Transmission]:
        """Broadcast transmissions by ``node`` (excludes unicasts)."""
        return [t for t in self.transmissions if t.sender == node and t.target is None]

    def received_by(self, node: Hashable) -> list[Transmission]:
        """All transmissions delivered to ``node``, in order."""
        return [t for t in self.transmissions if node in t.recipients]

    def per_round(self, round_no: int) -> list[Transmission]:
        return [t for t in self.transmissions if t.round_no == round_no]

    def deliveries_on_link(
        self, sender: Hashable, recipient: Hashable
    ) -> list[Delivery]:
        """All deliveries over one directed link, in send (FIFO) order."""
        return [
            d
            for d in self.deliveries
            if d.sender == sender and d.recipient == recipient
        ]

    @property
    def max_latency(self) -> int:
        """The largest virtual in-flight time over all deliveries
        (0 for an empty trace — and always 1 under lockstep timing)."""
        return max((d.latency for d in self.deliveries), default=0)

    def replay_schedule(self, node: Hashable) -> dict[int, list[Transmission]]:
        """``node``'s transmissions grouped by round — the exact shape a
        :class:`~repro.net.adversary.ReplayAdversary` consumes."""
        schedule: dict[int, list[Transmission]] = {}
        for t in self.sent_by(node):
            schedule.setdefault(t.round_no, []).append(t)
        return schedule
