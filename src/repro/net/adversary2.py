"""Adversaries targeting Algorithm 2's report and decision phases.

The generic battery in :mod:`repro.net.adversary` attacks the value
floods.  Appendix C's algorithm has two additional attack surfaces that
deserve dedicated behaviors:

* **phase 2 reports** — a faulty reporter can lie about what its
  neighbors transmitted (framing an honest node, or whitewashing a
  faulty one);
* **phase 3 decisions** — a faulty node can flood a forged decision
  value hoping a type-A node adopts it.

Both must be survivable: false claims never reach the f+1 disjoint-path
reliability bar, and forged decisions are filtered because their origin
is localized (or their paths aren't fault-free).  The test suite runs
these against Algorithm 2 alongside the standard battery.
"""

from __future__ import annotations

from typing import Optional

from .adversary import Adversary, FaultSpec, _WrapperProtocol
from .messages import DecisionPayload, FloodMessage, ValuePayload
from .node import Protocol


class LyingReporterAdversary(Adversary):
    """Rewrites its own phase-2 report bundle to frame honest neighbors.

    Every ``ValuePayload`` inside the initiated bundle is flipped and
    the recorded rounds are shifted, so the bundle accuses each
    neighbor of having transmitted things it never did (and omits what
    it actually did).  Forwarded bundles from others pass untouched.
    """

    name = "lying-reporter"

    def build(self, spec: FaultSpec) -> Protocol:
        from ..consensus.reliable import ReportBundle

        class _LyingReporter(_WrapperProtocol):
            def transform(self, outbox, ctx):
                result = []
                for message, target in outbox:
                    if (
                        isinstance(message, FloodMessage)
                        and isinstance(message.payload, ReportBundle)
                        and len(message.path) == 0
                        and message.payload.reporter == ctx.node
                    ):
                        forged_entries = []
                        for subject, transcript in message.payload.entries:
                            forged = tuple(
                                (
                                    round_no + 1,
                                    FloodMessage(
                                        m.phase,
                                        ValuePayload(1 - m.payload.value),
                                        m.path,
                                    )
                                    if isinstance(m, FloodMessage)
                                    and isinstance(m.payload, ValuePayload)
                                    else m,
                                )
                                for round_no, m in transcript
                            )
                            forged_entries.append((subject, forged))
                        bundle = ReportBundle(ctx.node, tuple(forged_entries))
                        result.append(
                            (FloodMessage(message.phase, bundle, ()), target)
                        )
                    else:
                        result.append((message, target))
                return result

        return _LyingReporter(spec.honest())


class SilentReporterAdversary(Adversary):
    """Participates in phases 1 and 3 but never sends its phase-2 report
    (and drops forwarded reports too): starves the claim machinery."""

    name = "silent-reporter"

    def build(self, spec: FaultSpec) -> Protocol:
        from ..consensus.reliable import ReportBundle

        class _SilentReporter(_WrapperProtocol):
            def transform(self, outbox, ctx):
                return [
                    (m, t)
                    for m, t in outbox
                    if not (
                        isinstance(m, FloodMessage)
                        and isinstance(m.payload, ReportBundle)
                    )
                ]

        return _SilentReporter(spec.honest())


class DecisionForgeAdversary(Adversary):
    """Floods a forged phase-3 decision (and flips forwarded ones).

    ``value`` fixes the forged decision; default flips whatever the
    honest protocol would have decided.
    """

    name = "decision-forge"

    def __init__(self, value: Optional[int] = None):
        self.value = value

    def build(self, spec: FaultSpec) -> Protocol:
        forged_value = self.value

        class _Forge(_WrapperProtocol):
            def transform(self, outbox, ctx):
                result = []
                forged_any = False
                for message, target in outbox:
                    if isinstance(message, FloodMessage) and isinstance(
                        message.payload, DecisionPayload
                    ):
                        value = (
                            forged_value
                            if forged_value is not None
                            else 1 - message.payload.value
                        )
                        result.append(
                            (
                                FloodMessage(
                                    message.phase,
                                    DecisionPayload(value),
                                    message.path,
                                ),
                                target,
                            )
                        )
                        forged_any = forged_any or len(message.path) == 0
                    else:
                        result.append((message, target))
                if not forged_any and ctx.round_no == 2 * ctx.graph.n + 1:
                    # The honest inner protocol may be type A or B-silent;
                    # forge a decision out of thin air at phase-3 start.
                    from ..consensus.algorithm2 import Algorithm2Protocol

                    value = forged_value if forged_value is not None else 0
                    result.append(
                        (
                            FloodMessage(
                                Algorithm2Protocol.PHASE3,
                                DecisionPayload(value),
                                (),
                            ),
                            None,
                        )
                    )
                return result

        return _Forge(spec.honest())


def algorithm2_attack_battery() -> list[Adversary]:
    """The Algorithm 2-specific attacks, for sweeps and benchmarks."""
    return [
        LyingReporterAdversary(),
        SilentReporterAdversary(),
        DecisionForgeAdversary(),
        DecisionForgeAdversary(value=0),
        DecisionForgeAdversary(value=1),
    ]
