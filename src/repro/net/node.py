"""Protocol interface: what a node's state machine looks like.

Appendix A of the paper describes an algorithm as "a procedure ``A_u``
for each node ``u`` that describes state transitions of ``u``: in each
synchronous round, each node optionally sends messages to its neighbors,
receives messages from the neighbors, and then updates its state."

:class:`Protocol` is exactly that.  Once per round the simulator calls
:meth:`Protocol.on_round` with a :class:`Context` that exposes the inbox
(messages delivered this round, FIFO per sender) and the two send
primitives.  Sends take effect at the *end* of the round and are
delivered at the start of the next one.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Hashable, List, Optional, Tuple

from ..graphs import Graph
from ..obs import NULL_METRICS
from .channels import ChannelModel, EquivocationError

Inbox = List[Tuple[Hashable, object]]  # (sender, message), FIFO order


@dataclass(slots=True)
class Outgoing:
    """One queued transmission: broadcast if ``target is None``."""

    message: object
    target: Optional[Hashable] = None


@dataclass(slots=True)
class Context:
    """Per-round view a protocol gets of the world.

    ``inbox`` holds the messages delivered this round (sent by neighbors
    last round).  ``broadcast`` queues a transmission every neighbor will
    receive; ``send`` queues a private transmission — which raises
    :class:`EquivocationError` unless the channel model grants this node
    point-to-point power.  Protocols must not keep references across
    rounds; all cross-round state belongs in the protocol object.

    ``now`` is the virtual timestamp of this activation.  Under the
    synchronous simulator (and the lockstep scheduler) it equals
    ``round_no``; asynchronous schedulers may eventually decouple the
    two, so timing-aware protocols should read ``virtual_now``.

    ``metrics`` is the run's observability registry (a shared no-op
    unless the engine was built with one), so protocols instrument
    unconditionally — counting against :data:`~repro.obs.NULL_METRICS`
    costs one method call.  Wrappers that re-activate an inner protocol
    through a shadow context must propagate it.

    ``cause_kind``/``cause_index`` carry this activation's
    happened-before cause, stamped by the engine: ``"delivery"`` with
    the trace index of the last delivery that landed in this inbox, or
    ``"input"``/``"timer"`` for spontaneous activations (first tick /
    later schedule-driven ticks with an empty inbox).  Every
    transmission queued during the activation inherits this cause in
    the trace, which is what makes the recorded trace a causal DAG the
    flight recorder (:mod:`repro.obs.trace`) can replay and walk.
    Wrappers propagate both fields alongside ``metrics``.
    """

    node: Hashable
    graph: Graph
    round_no: int
    channel: ChannelModel
    inbox: Inbox
    outbox: List[Outgoing] = field(default_factory=list)
    now: Optional[int] = None
    metrics: object = NULL_METRICS
    cause_kind: Optional[str] = None
    cause_index: Optional[int] = None

    @property
    def virtual_now(self) -> int:
        """The virtual clock at this activation (``round_no`` fallback)."""
        return self.round_no if self.now is None else self.now

    def broadcast(self, message: object) -> None:
        """Queue ``message`` for delivery to *all* neighbors next round."""
        self.outbox.append(Outgoing(message))

    def send(self, target: Hashable, message: object) -> None:
        """Queue a private message to one neighbor (point-to-point power).

        Raises :class:`EquivocationError` if this node's channel does not
        permit unicast, and ``ValueError`` if ``target`` is not a
        neighbor (there is no link to deliver on).
        """
        if not self.channel.may_unicast(self.node):
            raise EquivocationError(
                f"node {self.node!r} is restricted to local broadcast"
            )
        if target not in self.graph.neighbors(self.node):
            raise ValueError(f"{target!r} is not a neighbor of {self.node!r}")
        self.outbox.append(Outgoing(message, target=target))

    def from_sender(self, sender: Hashable) -> list[object]:
        """This round's messages from one neighbor, in FIFO order."""
        return [m for s, m in self.inbox if s == sender]


class Protocol(ABC):
    """A per-node synchronous state machine.

    Subclasses implement :meth:`on_round`; the simulator stops a node's
    participation when :meth:`output` becomes non-``None`` *and* the
    protocol reports it no longer needs to run (``finished``).  Consensus
    protocols must keep forwarding messages after deciding until their
    final round, so ``finished`` is separate from having an output.
    """

    @abstractmethod
    def on_round(self, ctx: Context) -> None:
        """Handle one synchronous round (read inbox, queue sends, update state)."""

    def output(self) -> Optional[int]:
        """The decided value, or ``None`` while undecided."""
        return None

    @property
    def finished(self) -> bool:
        """True when the node will neither send nor change state again."""
        return self.output() is not None
