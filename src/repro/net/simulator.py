"""The synchronous round simulator.

Implements the system model of Section 3: a synchronous network over an
undirected graph of FIFO links where, under local broadcast, "a message
sent by any node is received identically and correctly by each of its
neighbors".

Each round proceeds in two half-steps, matching the paper's state-machine
formulation (Appendix A):

1. every node's protocol runs with the messages delivered this round and
   queues its sends;
2. all queued sends are delivered simultaneously into next round's
   inboxes (broadcasts to every neighbor, unicasts — where the channel
   model permits them — to their single target).

Determinism: nodes are stepped in sorted order and inboxes preserve
per-sender FIFO order, so a run is a pure function of (graph, protocols,
channel model, rounds).  Any randomness lives inside protocols/adversaries
behind explicit seeds.

:class:`SynchronousNetwork` is the fixed-timing special case of the
event-driven core in :mod:`repro.net.sched`: running the same protocols
on :class:`~repro.net.sched.EventDrivenNetwork` under the lockstep
scheduler produces a byte-identical trace (property-tested), while the
seeded and adversarial schedulers explore the asynchronous timings of
the follow-up paper (arXiv:1909.02865).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional

from ..graphs import Graph
from ..obs import NULL_METRICS, MetricsRegistry
from .channels import ChannelModel, local_broadcast_model
from .node import Context, Inbox, Protocol
from .trace import Delivery, Trace, Transmission


class SimulationError(RuntimeError):
    """Raised when a run cannot proceed (missing protocols, bad config)."""


class NetworkEngine:
    """State and run loop shared by both simulation engines.

    :class:`SynchronousNetwork` and
    :class:`~repro.net.sched.EventDrivenNetwork` differ only in *when*
    a queued send reaches its recipients; everything else — protocol
    coverage validation, recipient resolution with channel enforcement,
    the ``run``/``run_until_decided`` loop, output collection — lives
    here so the two engines cannot drift apart (their trace equivalence
    under lockstep timing is a tested contract).  Subclasses implement
    :meth:`step`.
    """

    def __init__(
        self,
        graph: Graph,
        protocols: Mapping[Hashable, Protocol],
        channel: Optional[ChannelModel] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        missing = graph.nodes - set(protocols)
        if missing:
            raise SimulationError(f"no protocol for nodes {sorted(missing, key=repr)}")
        extra = set(protocols) - graph.nodes
        if extra:
            raise SimulationError(f"protocols for unknown nodes {sorted(extra, key=repr)}")
        self.graph = graph
        self.protocols: Dict[Hashable, Protocol] = dict(protocols)
        self.channel = channel if channel is not None else local_broadcast_model()
        self.trace = Trace()
        self.round_no = 0
        self._order = sorted(graph.nodes, key=repr)
        self.metrics = metrics if metrics is not None else NULL_METRICS

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one round/tick.  Implemented by each engine."""
        raise NotImplementedError

    def _observe_tick(self, delivered: int, sent: int) -> None:
        """Per-tick network metrics, identical across both engines.

        ``delivered`` counts messages handed to inboxes this tick,
        ``sent`` the transmissions queued by it.  Both engines call
        this at the end of :meth:`step`, so under lockstep timing the
        full metric snapshots — not just the traces — are equal
        (property-tested).
        """
        m = self.metrics
        if not m.enabled:
            return
        in_flight = self.in_flight
        m.inc("net.ticks")
        if delivered:
            m.inc("net.deliveries", delivered)
        if sent:
            m.inc("net.transmissions", sent)
        m.observe("net.deliveries_per_tick", delivered)
        m.gauge_max("net.in_flight.max", in_flight)
        if delivered == 0 and sent == 0 and in_flight == 0:
            m.inc("net.quiescent_ticks")
        m.emit(
            "tick",
            tick=self.round_no,
            deliveries=delivered,
            sends=sent,
            in_flight=in_flight,
        )

    def _resolve_recipients(
        self, node: Hashable, target: Optional[Hashable]
    ) -> tuple:
        """The realized delivery set of one send, channel-enforced.

        Defense in depth: :meth:`Context.send` already rejects unicasts
        from broadcast-restricted nodes, but a protocol appending to the
        outbox directly must not bypass the channel model either.
        """
        if target is None:
            return self.graph.sorted_neighbors(node)
        if not self.channel.may_unicast(node):
            raise SimulationError(
                f"node {node!r} attempted unicast under "
                f"{self.channel.kind} channel"
            )
        return (target,)

    # ------------------------------------------------------------------
    def run(self, rounds: int) -> Trace:
        """Run exactly ``rounds`` rounds (protocols may finish earlier)."""
        for _ in range(rounds):
            self.step()
        return self.trace

    def run_until_decided(self, max_rounds: int, honest: Optional[set] = None) -> Trace:
        """Run until every (honest) protocol reports ``finished``.

        Raises :class:`SimulationError` if ``max_rounds`` elapse first —
        termination violations surface as errors, not hangs.
        """
        watch = set(honest) if honest is not None else set(self.protocols)
        for _ in range(max_rounds):
            if all(self.protocols[v].finished for v in watch):
                return self.trace
            self.step()
        if all(self.protocols[v].finished for v in watch):
            return self.trace
        undecided = sorted(
            (v for v in watch if not self.protocols[v].finished), key=repr
        )
        raise SimulationError(
            f"nodes {undecided} undecided after {max_rounds} rounds"
        )

    # ------------------------------------------------------------------
    def outputs(self) -> Dict[Hashable, Optional[int]]:
        """Each node's current output (``None`` while undecided)."""
        return {v: self.protocols[v].output() for v in self._order}


class SynchronousNetwork(NetworkEngine):
    """Run a set of per-node protocols in lockstep on a graph."""

    def __init__(
        self,
        graph: Graph,
        protocols: Mapping[Hashable, Protocol],
        channel: Optional[ChannelModel] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__(graph, protocols, channel, metrics)
        self._pending: Dict[Hashable, Inbox] = {v: [] for v in self._order}

    @property
    def in_flight(self) -> int:
        """Messages queued for next round's inboxes (for quiescence checks).

        Mirrors :attr:`~repro.net.sched.EventDrivenNetwork.in_flight` so
        the runner's message-driven termination accounting works on both
        engines.
        """
        return sum(len(inbox) for inbox in self._pending.values())

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one synchronous round."""
        self.round_no += 1
        inboxes, self._pending = self._pending, {v: [] for v in self._order}
        delivered = sum(len(inboxes[v]) for v in self._order)
        sent_before = len(self.trace.transmissions)
        outboxes: list[tuple[Hashable, Context]] = []
        for node in self._order:
            ctx = Context(
                node=node,
                graph=self.graph,
                round_no=self.round_no,
                channel=self.channel,
                inbox=inboxes[node],
                now=self.round_no,
                metrics=self.metrics,
            )
            self.protocols[node].on_round(ctx)
            outboxes.append((node, ctx))
        for node, ctx in outboxes:
            for out in ctx.outbox:
                recipients = self._resolve_recipients(node, out.target)
                send_index = len(self.trace.transmissions)
                self.trace.record(
                    Transmission(
                        round_no=self.round_no,
                        sender=node,
                        message=out.message,
                        target=out.target,
                        recipients=recipients,
                        sent_at=self.round_no,
                    )
                )
                for r in recipients:
                    # Synchronous delivery: into next round's inbox, so
                    # the virtual delivery timestamp is sent_at + 1 —
                    # exactly what the lockstep scheduler reproduces.
                    self.trace.record_delivery(
                        Delivery(
                            send_index=send_index,
                            sender=node,
                            recipient=r,
                            message=out.message,
                            sent_at=self.round_no,
                            delivered_at=self.round_no + 1,
                        )
                    )
                    self._pending[r].append((node, out.message))
                    # The synchronous engine *is* the unit-delay
                    # scheduler, so it reports the same delay
                    # distribution the lockstep scheduler would —
                    # keeping full metric snapshots engine-equal.
                    self.metrics.observe("sched.delay", 1)
        if self.trace.rounds < self.round_no:
            self.trace.rounds = self.round_no
        self._observe_tick(delivered, len(self.trace.transmissions) - sent_before)
