"""The synchronous round simulator.

Implements the system model of Section 3: a synchronous network over an
undirected graph of FIFO links where, under local broadcast, "a message
sent by any node is received identically and correctly by each of its
neighbors".

Each round proceeds in two half-steps, matching the paper's state-machine
formulation (Appendix A):

1. every node's protocol runs with the messages delivered this round and
   queues its sends;
2. all queued sends are delivered simultaneously into next round's
   inboxes (broadcasts to every neighbor, unicasts — where the channel
   model permits them — to their single target).

Determinism: nodes are stepped in sorted order and inboxes preserve
per-sender FIFO order, so a run is a pure function of (graph, protocols,
channel model, rounds).  Any randomness lives inside protocols/adversaries
behind explicit seeds.

:class:`SynchronousNetwork` is the fixed-timing special case of the
event-driven core in :mod:`repro.net.sched`: running the same protocols
on :class:`~repro.net.sched.EventDrivenNetwork` under the lockstep
scheduler produces a byte-identical trace (property-tested), while the
seeded and adversarial schedulers explore the asynchronous timings of
the follow-up paper (arXiv:1909.02865).
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional

from ..graphs import Graph
from ..obs import NULL_METRICS, MetricsRegistry
from .channels import ChannelModel, local_broadcast_model
from .node import Context, Inbox, Protocol
from .trace import (
    CAUSE_DELIVERY,
    CAUSE_INPUT,
    CAUSE_TIMER,
    Decision,
    Delivery,
    Trace,
    Transmission,
)


class SimulationError(RuntimeError):
    """Raised when a run cannot proceed (missing protocols, bad config)."""


class NetworkEngine:
    """State and run loop shared by both simulation engines.

    :class:`SynchronousNetwork` and
    :class:`~repro.net.sched.EventDrivenNetwork` differ only in *when*
    a queued send reaches its recipients; everything else — protocol
    coverage validation, recipient resolution with channel enforcement,
    the ``run``/``run_until_decided`` loop, output collection — lives
    here so the two engines cannot drift apart (their trace equivalence
    under lockstep timing is a tested contract).  Subclasses implement
    :meth:`step`.
    """

    def __init__(
        self,
        graph: Graph,
        protocols: Mapping[Hashable, Protocol],
        channel: Optional[ChannelModel] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        missing = graph.nodes - set(protocols)
        if missing:
            raise SimulationError(f"no protocol for nodes {sorted(missing, key=repr)}")
        extra = set(protocols) - graph.nodes
        if extra:
            raise SimulationError(f"protocols for unknown nodes {sorted(extra, key=repr)}")
        self.graph = graph
        self.protocols: Dict[Hashable, Protocol] = dict(protocols)
        self.channel = channel if channel is not None else local_broadcast_model()
        self.trace = Trace()
        self.round_no = 0
        self._order = sorted(graph.nodes, key=repr)
        self.metrics = metrics if metrics is not None else NULL_METRICS
        # Per-tick metric cells, rendered once per engine (cells create
        # no keys until first fired, so binding is snapshot-neutral).
        m = self.metrics
        self._c_ticks = m.counter_cell("net.ticks")
        self._c_deliveries = m.counter_cell("net.deliveries")
        self._c_transmissions = m.counter_cell("net.transmissions")
        self._c_quiescent = m.counter_cell("net.quiescent_ticks")
        self._h_deliveries_per_tick = m.hist_cell("net.deliveries_per_tick")
        self._g_in_flight = m.gauge_cell("net.in_flight.max")
        # Decision instants are part of the trace (the flight recorder's
        # blame analysis anchors on them).  A protocol that is already
        # decided at construction decided on its input alone, before any
        # communication — virtual time 0.
        self._undecided = set(self._order)
        for node in self._order:
            value = self.protocols[node].output()
            if value is not None:
                self._undecided.discard(node)
                self.trace.record_decision(
                    Decision(node, value, 0, CAUSE_INPUT, None)
                )

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one round/tick.  Implemented by each engine."""
        raise NotImplementedError

    def _observe_tick(self, delivered: int, sent: int) -> None:
        """Per-tick network metrics, identical across both engines.

        ``delivered`` counts messages handed to inboxes this tick,
        ``sent`` the transmissions queued by it.  Both engines call
        this at the end of :meth:`step`, so under lockstep timing the
        full metric snapshots — not just the traces — are equal
        (property-tested).
        """
        m = self.metrics
        if not m.enabled:
            return
        in_flight = self.in_flight
        self._c_ticks()
        if delivered:
            self._c_deliveries(delivered)
        if sent:
            self._c_transmissions(sent)
        self._h_deliveries_per_tick(delivered)
        self._g_in_flight(in_flight)
        if delivered == 0 and sent == 0 and in_flight == 0:
            self._c_quiescent()
        if m.events is not None:
            m.emit(
                "tick",
                tick=self.round_no,
                deliveries=delivered,
                sends=sent,
                in_flight=in_flight,
            )

    def _resolve_recipients(
        self, node: Hashable, target: Optional[Hashable]
    ) -> tuple:
        """The realized delivery set of one send, channel-enforced.

        Defense in depth: :meth:`Context.send` already rejects unicasts
        from broadcast-restricted nodes, but a protocol appending to the
        outbox directly must not bypass the channel model either.
        """
        if target is None:
            return self.graph.sorted_neighbors(node)
        if not self.channel.may_unicast(node):
            raise SimulationError(
                f"node {node!r} attempted unicast under "
                f"{self.channel.kind} channel"
            )
        return (target,)

    # ------------------------------------------------------------------
    def run(self, rounds: int) -> Trace:
        """Run exactly ``rounds`` rounds (protocols may finish earlier)."""
        for _ in range(rounds):
            self.step()
        return self.trace

    def run_until_decided(self, max_rounds: int, honest: Optional[set] = None) -> Trace:
        """Run until every (honest) protocol reports ``finished``.

        Raises :class:`SimulationError` if ``max_rounds`` elapse first —
        termination violations surface as errors, not hangs.
        """
        watch = set(honest) if honest is not None else set(self.protocols)
        watched = [self.protocols[v] for v in sorted(watch, key=repr)]
        for _ in range(max_rounds):
            if all(p.finished for p in watched):
                return self.trace
            self.step()
        if all(p.finished for p in watched):
            return self.trace
        undecided = sorted(
            (v for v in watch if not self.protocols[v].finished), key=repr
        )
        raise SimulationError(
            f"nodes {undecided} undecided after {max_rounds} rounds"
        )

    # ------------------------------------------------------------------
    def outputs(self) -> Dict[Hashable, Optional[int]]:
        """Each node's current output (``None`` while undecided)."""
        return {v: self.protocols[v].output() for v in self._order}


class SynchronousNetwork(NetworkEngine):
    """Run a set of per-node protocols in lockstep on a graph."""

    def __init__(
        self,
        graph: Graph,
        protocols: Mapping[Hashable, Protocol],
        channel: Optional[ChannelModel] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        super().__init__(graph, protocols, channel, metrics)
        self._pending: Dict[Hashable, Inbox] = {v: [] for v in self._order}
        # Messages queued into ``_pending`` by the previous step — next
        # step's delivery count, carried instead of re-summed per round.
        self._pending_count = 0
        # The inbox dict drained two steps ago, recycled as the next
        # round's pending map.  Protocols must not keep inbox references
        # across rounds (the :class:`Context` contract), so the lists
        # are free for reuse once their round has run.
        self._spare: Dict[Hashable, Inbox] = {v: [] for v in self._order}
        # Per-recipient index (into trace.deliveries) of the last
        # delivery landing in next round's inbox — the primary
        # happened-before cause of whatever that activation emits.
        self._cause: Dict[Hashable, int] = {}

    @property
    def in_flight(self) -> int:
        """Messages queued for next round's inboxes (for quiescence checks).

        Mirrors :attr:`~repro.net.sched.EventDrivenNetwork.in_flight` so
        the runner's message-driven termination accounting works on both
        engines.  ``_pending`` is only ever filled inside :meth:`step`,
        which maintains the count — no re-summing per query.
        """
        return self._pending_count

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one synchronous round.

        The loop bodies run once per message; everything reached per
        message is a hoisted local and records are appended to the trace
        lists directly (``Trace.record``'s rounds bookkeeping is
        subsumed by the unconditional update at the end of the step).
        """
        self.round_no += 1
        round_no = self.round_no
        order = self._order
        pending = self._spare
        for inbox in pending.values():  # repro: allow[REPRO001] clearing is order-blind, and the dict is keyed in sorted node order anyway
            inbox.clear()
        inboxes, self._pending = self._pending, pending
        self._spare = inboxes
        delivered = self._pending_count
        graph, channel, metrics = self.graph, self.channel, self.metrics
        protocols = self.protocols
        observe_delay = metrics.hist_cell("sched.delay")
        trace = self.trace
        transmissions = trace.transmissions
        deliveries = trace.deliveries
        sent_before = len(transmissions)
        next_round = round_no + 1
        cause_now = self._cause
        self._cause = cause_next = {}
        undecided = self._undecided
        decisions = trace.decisions
        outboxes: list[tuple[Hashable, list, Optional[str], Optional[int]]] = []
        for node in order:
            # Positional construction: the record types are built once
            # per node/message on this loop, where kwarg binding is
            # measurable overhead.  Field order is part of their API.
            outbox: list = []
            ci = cause_now.get(node)
            ck = (
                CAUSE_DELIVERY
                if ci is not None
                else (CAUSE_INPUT if round_no == 1 else CAUSE_TIMER)
            )
            ctx = Context(
                node, graph, round_no, channel, inboxes[node], outbox,
                round_no, metrics, ck, ci,
            )
            protocols[node].on_round(ctx)
            if node in undecided:
                value = protocols[node].output()
                if value is not None:
                    undecided.discard(node)
                    decisions.append(Decision(node, value, round_no, ck, ci))
            outboxes.append((node, outbox, ck, ci))
        sorted_neighbors = graph.sorted_neighbors
        queued = 0
        for node, outbox, ck, ci in outboxes:
            if not outbox:
                continue
            # The broadcast recipient set is per-node, not per-message;
            # unicasts still go through the channel-enforcing resolver.
            nbrs = sorted_neighbors(node)
            for out in outbox:
                message = out.message
                target = out.target
                recipients = (
                    nbrs
                    if target is None
                    else self._resolve_recipients(node, target)
                )
                send_index = len(transmissions)
                transmissions.append(
                    Transmission(
                        round_no, node, message, target, recipients, round_no,
                        ck, ci,
                    )
                )
                for r in recipients:
                    # Synchronous delivery: into next round's inbox, so
                    # the virtual delivery timestamp is sent_at + 1 —
                    # exactly what the lockstep scheduler reproduces.
                    cause_next[r] = len(deliveries)
                    deliveries.append(
                        Delivery(
                            send_index, node, r, message, round_no, next_round
                        )
                    )
                    pending[r].append((node, message))
                queued += len(recipients)
        # The synchronous engine *is* the unit-delay scheduler, so it
        # reports the same delay distribution the lockstep scheduler
        # would — keeping full metric snapshots engine-equal.  Every
        # delivery has delay exactly 1, so one bulk observation per
        # round covers them all (``n = 0`` records nothing, not even an
        # empty bucket).
        observe_delay(1, queued)
        self._pending_count = queued
        if trace.rounds < round_no:
            trace.rounds = round_no
        self._observe_tick(delivered, len(transmissions) - sent_before)
