"""Requirement curves: the paper's quantitative comparison content.

Section 1's punchline is that local broadcast *lowers* the network
requirements relative to point-to-point:

=================  =======================  ====================
quantity            point-to-point           local broadcast
=================  =======================  ====================
connectivity        ``2f + 1``               ``⌊3f/2⌋ + 1``
node count          ``n ≥ 3f + 1``           ``n ≥ 2f + 1``  (*)
degree              (implied by κ)           ``≥ 2f``
=================  =======================  ====================

(*) the smallest feasible graph in each model is the complete graph on
that many nodes; under local broadcast ``K_{2f+1}`` satisfies Theorem
5.1, matching the Rabin/Ben-Or global-broadcast bound ``n ≥ 2f + 1``.

Theorem 6.1 interpolates: with ``t`` equivocating faults the
connectivity requirement is ``⌊3(f − t)/2⌋ + 2t + 1``, sweeping from the
local-broadcast to the point-to-point figure as ``t`` goes ``0 → f``.
This module computes those curves and the tables the benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..consensus.conditions import (
    check_hybrid,
    check_local_broadcast,
    check_point_to_point,
    hybrid_threshold_connectivity,
    local_broadcast_threshold_connectivity,
)
from ..graphs import Graph, complete_graph


@dataclass(frozen=True, slots=True)
class RequirementRow:
    """One row of the model-comparison table for a given ``f``."""

    f: int
    lb_connectivity: int
    p2p_connectivity: int
    lb_min_nodes: int
    p2p_min_nodes: int
    lb_min_degree: int

    @property
    def connectivity_saving(self) -> int:
        return self.p2p_connectivity - self.lb_connectivity

    @property
    def node_saving(self) -> int:
        return self.p2p_min_nodes - self.lb_min_nodes


def requirement_table(max_f: int) -> List[RequirementRow]:
    """Local-broadcast vs point-to-point requirements for f = 1..max_f."""
    rows = []
    for f in range(1, max_f + 1):
        rows.append(
            RequirementRow(
                f=f,
                lb_connectivity=local_broadcast_threshold_connectivity(f),
                p2p_connectivity=2 * f + 1,
                lb_min_nodes=smallest_feasible_complete_graph(f, "local-broadcast"),
                p2p_min_nodes=smallest_feasible_complete_graph(f, "point-to-point"),
                lb_min_degree=2 * f,
            )
        )
    return rows


def smallest_feasible_complete_graph(f: int, model: str) -> int:
    """The least ``n`` for which ``K_n`` satisfies the model's conditions.

    Computed by actually running the condition checkers, not from the
    closed form — so the table is an *output* of the library, checkable
    against the paper's ``2f + 1`` vs ``3f + 1``.
    """
    check = {
        "local-broadcast": lambda g: check_local_broadcast(g, f).feasible,
        "point-to-point": lambda g: check_point_to_point(g, f).feasible,
    }[model]
    n = max(f + 1, 1)
    while not check(complete_graph(n)):
        n += 1
    return n


@dataclass(frozen=True, slots=True)
class HybridRow:
    """One row of the Theorem 6.1 trade-off table for fixed ``f``."""

    f: int
    t: int
    connectivity_required: int
    set_neighbor_requirement: Optional[int]  # 2f+1 for t>0, None at t=0
    min_degree_requirement: Optional[int]  # 2f at t=0, None for t>0


def hybrid_tradeoff_table(f: int) -> List[HybridRow]:
    """Connectivity (and auxiliary) requirements as ``t`` sweeps 0..f."""
    rows = []
    for t in range(0, f + 1):
        rows.append(
            HybridRow(
                f=f,
                t=t,
                connectivity_required=hybrid_threshold_connectivity(f, t),
                set_neighbor_requirement=(2 * f + 1) if t > 0 else None,
                min_degree_requirement=(2 * f) if t == 0 else None,
            )
        )
    return rows


def feasibility_matrix(
    graph: Graph, max_f: int
) -> List[Tuple[int, bool, bool, List[bool]]]:
    """Per ``f``: (f, lb-feasible, p2p-feasible, [hybrid feasible for t=0..f]).

    The shape the characterization benchmarks print: on which graphs and
    for which fault budgets does each model declare consensus possible.
    """
    out = []
    for f in range(1, max_f + 1):
        lb = check_local_broadcast(graph, f).feasible
        p2p = check_point_to_point(graph, f).feasible
        hybrid = [check_hybrid(graph, f, t).feasible for t in range(0, f + 1)]
        out.append((f, lb, p2p, hybrid))
    return out


def equivocation_price(f: int) -> List[Tuple[int, int]]:
    """``(t, extra connectivity vs local broadcast)`` for ``t = 0..f`` —
    the marginal network cost of each equivocating fault."""
    base = local_broadcast_threshold_connectivity(f)
    return [
        (t, hybrid_threshold_connectivity(f, t) - base) for t in range(0, f + 1)
    ]
