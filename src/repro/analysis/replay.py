"""Re-execute flight recordings and verify byte-identity.

A :class:`~repro.obs.FlightRecord` header carries a *recipe*, not
pickled objects: the graph as an adjacency list, the honest factory as
its ``flight_spec()`` dict, the adversary by battery name, the scheduler
as its frozen spec fields, and the resolved round budget.  This module
owns the inverse direction — rebuilding live objects from that recipe
and running :func:`~repro.consensus.runner.run_consensus` again with
``flight=True``, so the replay produces a second recording that can be
byte-compared with the first.  Recipes instead of pickles keep flight
blobs worker-count-invariant (pickled oracles embed cache warmth) and
keep the file format inspectable and diffable.

``replay_flight`` is the determinism audit in one call: *any* byte of
divergence between the original and the re-execution — one message, one
timestamp, one cause link — is a reproducibility bug, and the first
differing line localizes it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from ..consensus.algorithm1 import Algorithm1Factory
from ..consensus.algorithm2 import Algorithm2Factory
from ..consensus.algorithm3 import Algorithm3Factory
from ..consensus.async_alg import AsyncFactory
from ..consensus.baselines import DolevEIGFactory, EIGFactory
from ..consensus.runner import ConsensusResult, run_consensus
from ..consensus.synchronizer import SynchronizedFactory
from ..graphs import Digraph, Graph
from ..net import EquivocatingAdversary
from ..net.adversary import Adversary, CrashAdversary, standard_adversaries
from ..net.channels import ChannelModel
from ..net.sched import SchedulerSpec
from ..obs import FlightRecord, FlightReplayError, decode_label


def graph_from_flight(header: dict) -> Graph:
    """Rebuild the run's graph from the header's node/edge lists.

    Headers carrying ``"directed": true`` reconstruct a :class:`Digraph`
    whose edge list is read as ordered arcs; legacy headers (no flag)
    reconstruct the symmetric :class:`Graph` exactly as before.
    """
    spec = header.get("graph") or {}
    nodes = [decode_label(enc) for enc in spec.get("nodes", [])]
    edges = [
        (decode_label(u), decode_label(v)) for u, v in spec.get("edges", [])
    ]
    if spec.get("directed"):
        return Digraph(nodes, edges)
    return Graph(nodes, edges)


def factory_from_flight(graph: Graph, spec: dict):
    """Rebuild the honest-protocol factory from its ``flight_spec()``."""
    kind = spec.get("kind")
    if kind == "algorithm1":
        return Algorithm1Factory(graph, spec["f"])
    if kind == "algorithm2":
        return Algorithm2Factory(graph, spec["f"])
    if kind == "algorithm3":
        return Algorithm3Factory(graph, spec["f"], spec["t"])
    if kind == "async":
        return AsyncFactory(graph, spec["f"], patience=spec.get("patience"))
    if kind == "eig":
        return EIGFactory(graph, spec["f"])
    if kind == "dolev-eig":
        return DolevEIGFactory(graph, spec["f"])
    if kind == "synchronized":
        return SynchronizedFactory(
            factory_from_flight(graph, spec["inner"]),
            window=spec["window"],
            mode=spec["mode"],
            f=spec["f"],
            ack_timeout=spec["ack_timeout"],
        )
    if kind == "opaque":
        raise FlightReplayError(
            f"factory {spec.get('repr', '?')} was recorded without a "
            "flight_spec(); the flight is analyzable but not replayable"
        )
    raise FlightReplayError(f"unknown factory kind {kind!r}")


def adversary_from_flight(spec: Optional[dict]) -> Optional[Adversary]:
    """Rebuild the adversary by battery name (plus recorded knobs)."""
    if spec is None:
        return None
    name = spec["name"]
    if name == "crash" and spec.get("crash_round") is not None:
        return CrashAdversary(spec["crash_round"])
    seed = spec.get("seed")
    battery: List[Adversary] = standard_adversaries(
        seed if seed is not None else 7
    )
    battery.append(EquivocatingAdversary())
    for adversary in battery:
        if adversary.name == name:
            return adversary
    raise FlightReplayError(
        f"no adversary named {name!r} in the standard battery"
    )


def channel_from_flight(spec: dict) -> ChannelModel:
    return ChannelModel(
        spec["kind"],
        frozenset(decode_label(enc) for enc in spec.get("equivocators", [])),
    )


def scheduler_from_flight(spec: Optional[dict]) -> Optional[SchedulerSpec]:
    return None if spec is None else SchedulerSpec(**spec)


@dataclass
class ReplayOutcome:
    """The verdict of one replay: the re-run, its recording, and whether
    the recording matches the original byte for byte."""

    result: ConsensusResult
    record: FlightRecord
    identical: bool
    #: First divergence, as ``line N: <original> != <replayed>`` — the
    #: forensic entry point when ``identical`` is False.
    diff: Optional[str] = None


def replay_flight(record: FlightRecord) -> ReplayOutcome:
    """Re-execute a recording and byte-compare the new flight to it.

    Raises :class:`~repro.obs.FlightReplayError` when the recording is
    not replayable (opaque factory, display-only labels, unknown
    adversary).  Otherwise the run itself always completes; a
    non-identical outcome is reported, not raised — disagreement between
    record and replay is a *finding*.
    """
    header = record.header
    graph = graph_from_flight(header)
    factory = factory_from_flight(graph, header.get("factory") or {})
    inputs: Dict[Hashable, int] = {
        decode_label(enc): value for enc, value in header.get("inputs", [])
    }
    result = run_consensus(
        graph,
        factory,
        inputs,
        f=header["f"],
        faulty=[decode_label(enc) for enc in header.get("faulty", [])],
        adversary=adversary_from_flight(header.get("adversary")),
        channel=channel_from_flight(header.get("channel") or {}),
        scheduler=scheduler_from_flight(header.get("scheduler")),
        max_rounds=header["max_rounds"],
        metrics=bool(header.get("metered")),
        flight=True,
        run_spec=header.get("spec") or None,
    )
    assert result.flight is not None
    original = record.to_ndjson()
    replayed = result.flight.to_ndjson()
    diff = None
    if original != replayed:
        diff = _first_divergence(original, replayed)
    return ReplayOutcome(
        result=result,
        record=result.flight,
        identical=original == replayed,
        diff=diff,
    )


def _first_divergence(original: str, replayed: str) -> str:
    a_lines, b_lines = original.splitlines(), replayed.splitlines()
    for i, (a, b) in enumerate(zip(a_lines, b_lines)):
        if a != b:
            return f"line {i + 1}: {a[:120]!r} != {b[:120]!r}"
    return (
        f"line counts differ: {len(a_lines)} recorded vs "
        f"{len(b_lines)} replayed"
    )
