"""Analysis layer: requirement curves, cost models, experiment sweeps."""

from .metrics import (
    CostModel,
    expected_flood_deliveries,
    expected_wheel_deliveries_at_rim,
    phase_count_table,
    predicted_costs,
)
from .requirements import (
    HybridRow,
    RequirementRow,
    equivocation_price,
    feasibility_matrix,
    hybrid_tradeoff_table,
    requirement_table,
    smallest_feasible_complete_graph,
)
from .replay import (
    ReplayOutcome,
    adversary_from_flight,
    channel_from_flight,
    factory_from_flight,
    graph_from_flight,
    replay_flight,
    scheduler_from_flight,
)
from .sweep import (
    HybridEquivocatorPolicy,
    SweepRecord,
    SweepReport,
    SweepTask,
    consensus_sweep,
    fault_subsets,
    input_patterns,
    sweep_tasks,
)

__all__ = [
    "CostModel",
    "HybridEquivocatorPolicy",
    "HybridRow",
    "ReplayOutcome",
    "RequirementRow",
    "SweepRecord",
    "SweepReport",
    "SweepTask",
    "adversary_from_flight",
    "channel_from_flight",
    "consensus_sweep",
    "factory_from_flight",
    "graph_from_flight",
    "replay_flight",
    "scheduler_from_flight",
    "equivocation_price",
    "expected_flood_deliveries",
    "expected_wheel_deliveries_at_rim",
    "fault_subsets",
    "feasibility_matrix",
    "hybrid_tradeoff_table",
    "input_patterns",
    "phase_count_table",
    "predicted_costs",
    "requirement_table",
    "smallest_feasible_complete_graph",
    "sweep_tasks",
]
