"""Analysis layer: requirement curves, cost models, experiment sweeps."""

from .metrics import (
    CostModel,
    expected_flood_deliveries,
    expected_wheel_deliveries_at_rim,
    phase_count_table,
    predicted_costs,
)
from .requirements import (
    HybridRow,
    RequirementRow,
    equivocation_price,
    feasibility_matrix,
    hybrid_tradeoff_table,
    requirement_table,
    smallest_feasible_complete_graph,
)
from .sweep import (
    HybridEquivocatorPolicy,
    SweepRecord,
    SweepReport,
    SweepTask,
    consensus_sweep,
    fault_subsets,
    input_patterns,
    sweep_tasks,
)

__all__ = [
    "CostModel",
    "HybridEquivocatorPolicy",
    "HybridRow",
    "RequirementRow",
    "SweepRecord",
    "SweepReport",
    "SweepTask",
    "consensus_sweep",
    "equivocation_price",
    "expected_flood_deliveries",
    "expected_wheel_deliveries_at_rim",
    "fault_subsets",
    "feasibility_matrix",
    "hybrid_tradeoff_table",
    "input_patterns",
    "phase_count_table",
    "predicted_costs",
    "requirement_table",
    "smallest_feasible_complete_graph",
    "sweep_tasks",
]
