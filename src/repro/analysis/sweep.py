"""Deterministic experiment sweeps: families × fault sets × adversaries.

The characterization experiments need a *universal* quantifier made
concrete: "consensus holds for every fault placement and every adversary
we model".  :func:`consensus_sweep` enumerates fault subsets (all of
them, or a seeded sample) and runs the full adversary battery on each,
collecting a single verdict plus per-run records for reporting.

The sweep is organized as a flat, canonically ordered work-list of
``(faulty, scheduler, adversary, pattern)`` tasks (:func:`sweep_tasks`).
Each task is a pure function of its inputs, so the engine can execute
them in any order — serially (``workers=1``, the default) or fanned out
across a seeded :class:`~concurrent.futures.ProcessPoolExecutor`
(``workers=N``) — and still assemble a **byte-identical**
:class:`SweepReport`: tasks are submitted in contiguous chunks (to
amortize IPC on 10k+-task sweeps), results stream back as workers
finish, and every record is slotted into the canonical position its
task index dictates.

The ``schedulers`` axis multiplies every ``(faulty, adversary,
pattern)`` scenario by a timing model: ``None`` (the synchronous fast
path) and/or any :class:`~repro.net.sched.SchedulerSpec` — so one sweep
can quantify how an algorithm behaves when message timing, not just
fault placement, is adversarial.

Cross-process determinism rests on two properties the library maintains
deliberately: every run-affecting iteration is ``repr``-sorted (never
raw set order, which would leak each worker's ``PYTHONHASHSEED``), and
all randomness is seeded per task, never drawn from shared mutable
state.  Contexts that cannot be pickled (e.g. an ad-hoc adversary built
around a lambda) fall back to the serial path with a warning rather than
failing — the report is identical either way.
"""

from __future__ import annotations

import json
import pickle
import random
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from itertools import combinations
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..consensus.runner import OUTCOME_DECIDED, run_consensus
from ..net.adversary import Adversary, HonestFactory, standard_adversaries
from ..net.channels import ChannelModel, hybrid_model
from ..net.sched import SchedulerSpec
from ..graphs import Graph
from ..obs import Stopwatch, merge_snapshots

#: A scheduler-axis entry: ``None`` is the synchronous fast path.
SchedulerAxisEntry = Optional[SchedulerSpec]

#: Record label for the ``None`` (SynchronousNetwork) axis entry.
_SYNC_NAME = "sync"


def _scheduler_name(spec: SchedulerAxisEntry) -> str:
    return _SYNC_NAME if spec is None else spec.name


@dataclass(frozen=True)
class SweepRecord:
    """One (fault set, scheduler, adversary, input pattern) run.

    ``outcome`` carries the runner's verdict (``"decided"`` /
    ``"disagreed"`` / ``"budget_exhausted"`` / ``"stalled"`` — the last
    only from message-driven protocols whose run went quiescent), so
    asynchronous sweeps can tell a genuine safety failure from a run
    that merely ran out of virtual time or provably never would have
    progressed.
    """

    faulty: Tuple[Hashable, ...]
    adversary: str
    inputs_name: str
    consensus: bool
    agreement: bool
    validity: bool
    rounds: int
    transmissions: int
    decision: Optional[int]
    scheduler: str = _SYNC_NAME
    outcome: str = OUTCOME_DECIDED
    #: Canonical per-run metrics snapshot (metered sweeps only).
    #: Content data — virtual time only; participates in byte-identity.
    metrics: Optional[dict] = None
    #: Whether the swept graph was a true digraph.  Dropped from the
    #: serialized record when False so undirected report JSON keeps its
    #: historical bytes.
    directed: bool = False


@dataclass
class SweepReport:
    """Aggregate of a full sweep.

    ``metrics`` (metered sweeps) is the canonical merge of every
    record's snapshot — computed from the slotted record list, i.e. the
    same canonical order :attr:`outcomes` counts over, so it is
    byte-identical at any worker count.  ``timings`` is the quarantined
    wall-clock section: real durations, excluded (via
    :func:`repro.obs.strip_timings`) from every determinism comparison.
    """

    records: List[SweepRecord] = field(default_factory=list)
    metrics: Optional[dict] = None
    timings: Optional[dict] = None
    #: Captured flight recordings (``capture=`` sweeps only), keyed by
    #: canonical task index — the same key at any worker count.  Carried
    #: *outside* :meth:`to_dict` deliberately: the report JSON keeps its
    #: historical shape, and flight blobs are written to their own files
    #: by the CLI.
    flights: Dict[int, str] = field(default_factory=dict)

    @property
    def runs(self) -> int:
        return len(self.records)

    @property
    def all_consensus(self) -> bool:
        return all(r.consensus for r in self.records)

    @property
    def failures(self) -> List[SweepRecord]:
        return [r for r in self.records if not r.consensus]

    @property
    def max_transmissions(self) -> int:
        return max((r.transmissions for r in self.records), default=0)

    @property
    def max_rounds(self) -> int:
        return max((r.rounds for r in self.records), default=0)

    @property
    def outcomes(self) -> Dict[str, int]:
        """Record count per outcome, in canonical (sorted) key order."""
        counts: Dict[str, int] = {}
        for r in self.records:
            counts[r.outcome] = counts.get(r.outcome, 0) + 1
        return {k: counts[k] for k in sorted(counts)}

    def to_dict(self) -> dict:
        """A JSON-ready summary plus every record (canonical order).

        Un-metered reports keep their historical shape: the optional
        ``metrics``/``timings`` keys (and each record's ``metrics``)
        appear only when the sweep was metered.
        """
        payload = {
            "runs": self.runs,
            "all_consensus": self.all_consensus,
            "failures": len(self.failures),
            "outcomes": self.outcomes,
            "max_rounds": self.max_rounds,
            "max_transmissions": self.max_transmissions,
            "records": [self._record_dict(r) for r in self.records],
        }
        if self.metrics is not None:
            payload["metrics"] = self.metrics
        if self.timings is not None:
            payload["timings"] = self.timings
        return payload

    @staticmethod
    def _record_dict(record: SweepRecord) -> dict:
        d = asdict(record)
        if d.get("metrics") is None:
            d.pop("metrics", None)
        if not d.get("directed"):
            d.pop("directed", None)
        return d

    def to_json(self, indent: Optional[int] = 2, **extra) -> str:
        """Serialize :meth:`to_dict`; non-JSON node labels fall back to
        ``repr`` so any hashable node type survives the round trip.
        ``extra`` keys (e.g. the CLI's graph spec and worker count) are
        merged into the payload so every producer shares one policy."""
        payload = {**self.to_dict(), **extra}
        return json.dumps(payload, indent=indent, sort_keys=True, default=repr)


def input_patterns(graph: Graph) -> Dict[str, Dict[Hashable, int]]:
    """The canonical input assignments every sweep exercises."""
    nodes = sorted(graph.nodes, key=repr)
    half = len(nodes) // 2
    return {
        "all-zero": {v: 0 for v in nodes},
        "all-one": {v: 1 for v in nodes},
        "alternating": {v: i % 2 for i, v in enumerate(nodes)},
        "split": {v: (0 if i < half else 1) for i, v in enumerate(nodes)},
    }


def fault_subsets(
    graph: Graph,
    f: int,
    limit: Optional[int] = None,
    seed: int = 0,
    include_empty: bool = False,
) -> List[Tuple[Hashable, ...]]:
    """Subsets of size ≤ f to place faults on (exactly-f subsets first).

    With ``limit`` set, a seeded sample keeps sweeps tractable on larger
    graphs while staying reproducible.
    """
    nodes = sorted(graph.nodes, key=repr)
    sizes = range(0 if include_empty else 1, f + 1)
    subsets: List[Tuple[Hashable, ...]] = []
    for size in sorted(sizes, reverse=True):
        subsets.extend(combinations(nodes, size))
    if limit is not None and len(subsets) > limit:
        rng = random.Random(seed)
        subsets = rng.sample(subsets, limit)
        subsets.sort(key=repr)
    return subsets


# ---------------------------------------------------------------------------
# The work-list engine
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work, addressed by its canonical ``index``.

    Deliberately tiny and picklable: the heavyweight, shared inputs
    (graph, factory, adversary battery, patterns, scheduler axis)
    travel to each worker exactly once via the pool initializer; tasks
    only name which combination to run.
    """

    index: int
    faulty: Tuple[Hashable, ...]
    adversary_index: int
    inputs_name: str
    scheduler_index: int = 0


@dataclass(frozen=True)
class HybridEquivocatorPolicy:
    """Per-task hybrid channel: the first ``t`` faulty nodes equivocate.

    The hybrid model (Section 6) grants point-to-point power to at most
    ``t`` *faulty* nodes — so the channel depends on each task's fault
    placement and cannot be one fixed :class:`ChannelModel` for a whole
    sweep.  This policy rebuilds it per task from the canonically sorted
    fault tuple, mirroring what ``python -m repro run --t`` does for a
    single run.  Frozen and picklable, so parallel sweeps ship it to
    workers unchanged.
    """

    t: int

    def __post_init__(self) -> None:
        if self.t < 0:
            raise ValueError("t must be >= 0")

    def __call__(self, faulty: Tuple[Hashable, ...]) -> ChannelModel:
        chosen = sorted(faulty, key=repr)[: self.t]
        return hybrid_model(frozenset(chosen))


#: Maps one task's fault tuple to the channel model of that run.
ChannelPolicy = Callable[[Tuple[Hashable, ...]], ChannelModel]


@dataclass(frozen=True)
class _SweepContext:
    """Everything a worker needs to execute any task of one sweep."""

    graph: Graph
    honest_factory: HonestFactory
    f: int
    adversaries: Tuple[Adversary, ...]
    patterns: Dict[str, Dict[Hashable, int]]
    channel: Optional[ChannelModel]
    schedulers: Tuple[SchedulerAxisEntry, ...] = (None,)
    channel_policy: Optional[ChannelPolicy] = None
    #: Metered sweep: every task runs with a fresh metrics registry and
    #: its snapshot rides the record back to the parent.
    metered: bool = False
    #: Flight capture policy: ``None`` (off), ``"anomalies"`` (retain a
    #: recording only for tasks that did not decide cleanly), or
    #: ``"all"``.  Recordings are keyed by canonical task index, so the
    #: captured set is worker-count-invariant.
    capture: Optional[str] = None


def sweep_tasks(
    graph: Graph,
    f: int,
    adversaries: Sequence[Adversary],
    patterns: Dict[str, Dict[Hashable, int]],
    fault_limit: Optional[int] = None,
    seed: int = 0,
    schedulers: Sequence[SchedulerAxisEntry] = (None,),
) -> List[SweepTask]:
    """The canonical work-list: faults × schedulers × adversaries × patterns.

    The nesting order (faults outermost, patterns innermost) is the
    report's record order — a pure function of the arguments, never of
    execution schedule.
    """
    tasks: List[SweepTask] = []
    for faulty in fault_subsets(graph, f, limit=fault_limit, seed=seed):
        for scheduler_index in range(len(schedulers)):
            for adversary_index in range(len(adversaries)):
                # repro: allow[REPRO001] pattern order IS the canonical
                # record order: input_patterns builds this dict in a fixed
                # literal order and CLI subsets preserve it.
                for name in patterns:
                    tasks.append(
                        SweepTask(
                            len(tasks),
                            tuple(faulty),
                            adversary_index,
                            name,
                            scheduler_index,
                        )
                    )
    return tasks


def _execute_task(
    context: _SweepContext, task: SweepTask
) -> Tuple[SweepRecord, Optional[str]]:
    """Run one task (pure given its inputs).

    Returns the :class:`SweepRecord` plus — on capturing sweeps, per the
    context's ``capture`` policy — the run's flight recording as an
    NDJSON blob.  The blob's header provenance is the canonical task
    index, never anything execution-dependent, so capture output is
    byte-identical at any worker count.
    """
    adversary = context.adversaries[task.adversary_index]
    scheduler = context.schedulers[task.scheduler_index]
    channel = context.channel
    if context.channel_policy is not None:
        channel = context.channel_policy(task.faulty)
    capture = context.capture
    result = run_consensus(
        context.graph,
        context.honest_factory,
        context.patterns[task.inputs_name],
        f=context.f,
        faulty=task.faulty,
        adversary=adversary,
        channel=channel,
        scheduler=scheduler,
        metrics=context.metered,
        flight=capture is not None,
        run_spec={"task": task.index} if capture is not None else None,
    )
    blob = None
    if capture is not None and (
        capture == "all" or result.outcome != OUTCOME_DECIDED
    ):
        assert result.flight is not None
        blob = result.flight.to_ndjson()
    record = SweepRecord(
        faulty=task.faulty,
        adversary=adversary.name,
        inputs_name=task.inputs_name,
        consensus=result.consensus,
        agreement=result.agreement,
        validity=result.validity,
        rounds=result.rounds,
        transmissions=result.transmissions,
        decision=result.decision,
        scheduler=_scheduler_name(scheduler),
        outcome=result.outcome,
        metrics=result.metrics,
        directed=context.graph.directed,
    )
    return record, blob


# Per-worker context, installed once by the pool initializer so each chunk
# submission only ships SweepTasks.  (Module-level state is required for
# ProcessPoolExecutor initializers; it is only ever set in workers.)
_WORKER_CONTEXT: Optional[_SweepContext] = None

# Chunks per worker: enough slack for load balancing across uneven task
# costs, few enough futures to amortize IPC on 10k+-task sweeps.
_CHUNKS_PER_WORKER = 4


def _worker_init(payload: bytes) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = pickle.loads(payload)


def _worker_run_chunk(
    tasks: Sequence[SweepTask],
) -> Tuple[
    List[Tuple[int, SweepRecord, Optional[str], Optional[float]]],
    Optional[float],
]:
    """Execute one chunk; returns slotted entries plus the chunk's wall time.

    Each entry is ``(index, record, flight_blob, seconds)``: the flight
    blob (capturing sweeps only) rides next to — never inside — the
    record, and per-task/per-chunk wall seconds are measured only on
    metered sweeps; both stay out of the canonical report body.
    """
    assert _WORKER_CONTEXT is not None, "worker used before initialization"
    metered = _WORKER_CONTEXT.metered
    chunk_watch = Stopwatch() if metered else None
    entries: List[Tuple[int, SweepRecord, Optional[str], Optional[float]]] = []
    for task in tasks:
        task_watch = Stopwatch() if metered else None
        record, blob = _execute_task(_WORKER_CONTEXT, task)
        entries.append(
            (
                task.index,
                record,
                blob,
                task_watch.elapsed() if task_watch else None,
            )
        )
    return entries, chunk_watch.elapsed() if chunk_watch else None


def _chunked(tasks: List[SweepTask], n_workers: int) -> List[List[SweepTask]]:
    """Contiguous chunks of the canonical work-list (IPC amortization)."""
    size = max(1, -(-len(tasks) // (n_workers * _CHUNKS_PER_WORKER)))
    return [tasks[i : i + size] for i in range(0, len(tasks), size)]


def consensus_sweep(
    graph: Graph,
    honest_factory: HonestFactory,
    f: int,
    adversaries: Optional[Sequence[Adversary]] = None,
    channel: Optional[ChannelModel] = None,
    fault_limit: Optional[int] = None,
    patterns: Optional[Iterable[str]] = None,
    seed: int = 0,
    workers: int = 1,
    schedulers: Optional[Sequence[SchedulerAxisEntry]] = None,
    channel_policy: Optional[ChannelPolicy] = None,
    metrics: bool = False,
    capture: Optional[str] = None,
) -> SweepReport:
    """Run the full battery and report whether consensus *always* held.

    ``workers=1`` (default) executes the work-list serially in canonical
    order.  ``workers=N`` fans the same work-list out across ``N``
    processes in contiguous chunks and streams the records back into
    canonical slots — the returned report is record-for-record identical
    to the serial one.

    ``schedulers`` is the timing axis: each entry is ``None`` (the
    synchronous fast path) or a :class:`~repro.net.sched.SchedulerSpec`;
    every ``(faulty, adversary, pattern)`` scenario runs once per entry.
    Defaults to ``(None,)`` — existing sweeps are unchanged.

    ``channel_policy`` (exclusive with ``channel``) derives each task's
    channel model from its fault tuple — required by the hybrid model,
    where the equivocator set *is* a subset of the faulty set (see
    :class:`HybridEquivocatorPolicy`).

    ``metrics=True`` meters every task: each record carries its run's
    canonical snapshot, the report carries their canonical merge
    (computed from the slotted record list — byte-identical at any
    worker count), and a separate quarantined ``timings`` section
    carries per-task/per-chunk wall time and worker utilization.

    ``capture`` turns on the flight recorder: ``"anomalies"`` retains a
    replayable :class:`~repro.obs.FlightRecord` NDJSON blob for every
    task whose outcome was not ``"decided"`` (the forensic default —
    disagreements, stalls and budget exhaustions arrive with their full
    causal history attached); ``"all"`` retains every task's recording.
    Blobs land on :attr:`SweepReport.flights` keyed by canonical task
    index — the keys and the bytes are identical at any worker count —
    and never enter the report JSON.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if capture not in (None, "anomalies", "all"):
        raise ValueError(
            f"capture must be None, 'anomalies' or 'all', not {capture!r}"
        )
    if channel is not None and channel_policy is not None:
        raise ValueError("pass either channel or channel_policy, not both")
    adversaries = (
        list(adversaries) if adversaries is not None else standard_adversaries(seed)
    )
    scheduler_axis: Tuple[SchedulerAxisEntry, ...] = (
        tuple(schedulers) if schedulers is not None else (None,)
    )
    if not scheduler_axis:
        raise ValueError("schedulers must contain at least one entry")
    all_patterns = input_patterns(graph)
    chosen = (
        {k: all_patterns[k] for k in patterns} if patterns is not None else all_patterns
    )
    tasks = sweep_tasks(
        graph,
        f,
        adversaries,
        chosen,
        fault_limit=fault_limit,
        seed=seed,
        schedulers=scheduler_axis,
    )
    context = _SweepContext(
        graph=graph,
        honest_factory=honest_factory,
        f=f,
        adversaries=tuple(adversaries),
        patterns=chosen,
        channel=channel,
        schedulers=scheduler_axis,
        channel_policy=channel_policy,
        metered=metrics,
        capture=capture,
    )

    payload: Optional[bytes] = None
    if workers > 1 and tasks:
        try:
            payload = pickle.dumps(context)
        except Exception as exc:  # lambda-laden adversaries, ad-hoc factories
            warnings.warn(
                f"sweep context is not picklable ({exc!r}); "
                "falling back to the serial path",
                RuntimeWarning,
                stacklevel=2,
            )

    total_watch = Stopwatch() if metrics else None
    task_seconds: List[Optional[float]] = [None] * len(tasks)
    chunk_stats: List[dict] = []

    flights: Dict[int, str] = {}
    if payload is None:
        records = []
        for t in tasks:
            task_watch = Stopwatch() if metrics else None
            record, blob = _execute_task(context, t)
            records.append(record)
            if blob is not None:
                flights[t.index] = blob
            if task_watch is not None:
                task_seconds[t.index] = task_watch.elapsed()
        return _assemble_report(
            records, metrics, 1, total_watch, task_seconds, chunk_stats,
            flights,
        )

    slots: List[Optional[SweepRecord]] = [None] * len(tasks)
    n_workers = min(workers, len(tasks))
    with ProcessPoolExecutor(
        max_workers=n_workers,
        initializer=_worker_init,
        initargs=(payload,),
    ) as pool:
        futures = [
            pool.submit(_worker_run_chunk, chunk)
            for chunk in _chunked(tasks, n_workers)
        ]
        for future in as_completed(futures):
            entries, chunk_wall = future.result()
            for index, record, blob, seconds in entries:
                slots[index] = record
                if blob is not None:
                    flights[index] = blob
                task_seconds[index] = seconds
            if chunk_wall is not None:
                chunk_stats.append({"tasks": len(entries), "seconds": chunk_wall})
    assert all(r is not None for r in slots)
    return _assemble_report(
        list(slots), metrics, n_workers, total_watch, task_seconds,
        chunk_stats, flights,
    )  # type: ignore[arg-type]


def _assemble_report(
    records: List[SweepRecord],
    metered: bool,
    n_workers: int,
    total_watch: Optional[Stopwatch],
    task_seconds: List[Optional[float]],
    chunk_stats: List[dict],
    flights: Optional[Dict[int, str]] = None,
) -> SweepReport:
    """Slot-ordered records → report, with the canonical metrics merge.

    Both :attr:`SweepReport.outcomes` and the metrics merge consume the
    same slotted list — the canonical task order — so neither can drift
    from the other or double-count under any worker count.  All wall
    numbers go to the quarantined ``timings`` section only; flight
    blobs (already keyed by canonical index) attach as-is.
    """
    flights = flights or {}
    if not metered:
        return SweepReport(records=records, flights=flights)
    merged = merge_snapshots([r.metrics for r in records])
    measured = [s for s in task_seconds if s is not None]
    total_s = total_watch.elapsed() if total_watch is not None else 0.0
    timings = {
        "total_s": total_s,
        "workers": n_workers,
        "tasks_s": task_seconds,
        "tasks_sum_s": sum(measured),
        "chunks": chunk_stats,
        "utilization": (
            sum(measured) / (n_workers * total_s) if total_s > 0 else None
        ),
    }
    return SweepReport(
        records=records, metrics=merged, timings=timings, flights=flights
    )
