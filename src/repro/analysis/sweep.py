"""Deterministic experiment sweeps: families × fault sets × adversaries.

The characterization experiments need a *universal* quantifier made
concrete: "consensus holds for every fault placement and every adversary
we model".  :func:`consensus_sweep` enumerates fault subsets (all of
them, or a seeded sample) and runs the full adversary battery on each,
collecting a single verdict plus per-run records for reporting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from ..consensus.runner import run_consensus
from ..net.adversary import Adversary, standard_adversaries
from ..net.channels import ChannelModel
from ..graphs import Graph

HonestFactory = callable


@dataclass(frozen=True)
class SweepRecord:
    """One (fault set, adversary, input pattern) run."""

    faulty: Tuple[Hashable, ...]
    adversary: str
    inputs_name: str
    consensus: bool
    agreement: bool
    validity: bool
    rounds: int
    transmissions: int
    decision: Optional[int]


@dataclass
class SweepReport:
    """Aggregate of a full sweep."""

    records: List[SweepRecord] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.records)

    @property
    def all_consensus(self) -> bool:
        return all(r.consensus for r in self.records)

    @property
    def failures(self) -> List[SweepRecord]:
        return [r for r in self.records if not r.consensus]

    @property
    def max_transmissions(self) -> int:
        return max((r.transmissions for r in self.records), default=0)

    @property
    def max_rounds(self) -> int:
        return max((r.rounds for r in self.records), default=0)


def input_patterns(graph: Graph) -> Dict[str, Dict[Hashable, int]]:
    """The canonical input assignments every sweep exercises."""
    nodes = sorted(graph.nodes, key=repr)
    half = len(nodes) // 2
    return {
        "all-zero": {v: 0 for v in nodes},
        "all-one": {v: 1 for v in nodes},
        "alternating": {v: i % 2 for i, v in enumerate(nodes)},
        "split": {v: (0 if i < half else 1) for i, v in enumerate(nodes)},
    }


def fault_subsets(
    graph: Graph,
    f: int,
    limit: Optional[int] = None,
    seed: int = 0,
    include_empty: bool = False,
) -> List[Tuple[Hashable, ...]]:
    """Subsets of size ≤ f to place faults on (exactly-f subsets first).

    With ``limit`` set, a seeded sample keeps sweeps tractable on larger
    graphs while staying reproducible.
    """
    nodes = sorted(graph.nodes, key=repr)
    sizes = range(0 if include_empty else 1, f + 1)
    subsets: List[Tuple[Hashable, ...]] = []
    for size in sorted(sizes, reverse=True):
        subsets.extend(combinations(nodes, size))
    if limit is not None and len(subsets) > limit:
        rng = random.Random(seed)
        subsets = rng.sample(subsets, limit)
        subsets.sort(key=repr)
    return subsets


def consensus_sweep(
    graph: Graph,
    honest_factory,
    f: int,
    adversaries: Optional[Sequence[Adversary]] = None,
    channel: Optional[ChannelModel] = None,
    fault_limit: Optional[int] = None,
    patterns: Optional[Iterable[str]] = None,
    seed: int = 0,
) -> SweepReport:
    """Run the full battery and report whether consensus *always* held."""
    adversaries = (
        list(adversaries) if adversaries is not None else standard_adversaries(seed)
    )
    all_patterns = input_patterns(graph)
    chosen = (
        {k: all_patterns[k] for k in patterns} if patterns is not None else all_patterns
    )
    report = SweepReport()
    for faulty in fault_subsets(graph, f, limit=fault_limit, seed=seed):
        for adversary in adversaries:
            for name, inputs in chosen.items():
                result = run_consensus(
                    graph,
                    honest_factory,
                    inputs,
                    f=f,
                    faulty=faulty,
                    adversary=adversary,
                    channel=channel,
                )
                report.records.append(
                    SweepRecord(
                        faulty=tuple(faulty),
                        adversary=adversary.name,
                        inputs_name=name,
                        consensus=result.consensus,
                        agreement=result.agreement,
                        validity=result.validity,
                        rounds=result.rounds,
                        transmissions=result.transmissions,
                        decision=result.decision,
                    )
                )
    return report
