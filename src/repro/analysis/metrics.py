"""Complexity accounting: rounds, phases, messages.

The paper's efficiency story (Sections 5.3, 7):

* Algorithm 1/3 run one flood per candidate fault set — the *phase
  count* is ``Σ_{k ≤ f} C(n, k)`` (resp. the (F, T)-pair count), i.e.
  exponential in ``f``; each phase costs ``n`` rounds;
* Algorithm 2 runs exactly ``3n`` rounds — ``O(n)`` — whenever the graph
  is 2f-connected (Theorem 5.6);
* flooding message counts are driven by simple-path counts (each
  accepted path-annotated message corresponds to a simple path), which
  is the honest cost of the path-annotation defense.

These helpers compute the closed forms the cost benchmarks compare
against measured traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Dict

from ..consensus.algorithm1 import phase_count
from ..graphs import Graph, count_simple_paths


@dataclass(frozen=True, slots=True)
class CostModel:
    """Predicted costs for one (graph, f, t) instance."""

    n: int
    f: int
    t: int
    phases: int
    rounds_algorithm1: int
    rounds_algorithm2: int

    @property
    def round_blowup(self) -> float:
        """Algorithm 1 rounds / Algorithm 2 rounds."""
        return self.rounds_algorithm1 / self.rounds_algorithm2


def predicted_costs(graph: Graph, f: int, t: int = 0) -> CostModel:
    """Closed-form round/phase predictions for the exact and efficient
    algorithms on ``graph``."""
    n = graph.n
    phases = phase_count(n, f, t)
    return CostModel(
        n=n,
        f=f,
        t=t,
        phases=phases,
        rounds_algorithm1=phases * n,
        rounds_algorithm2=3 * n,
    )


def expected_flood_deliveries(graph: Graph) -> int:
    """Accepted messages in one fault-free flood phase: every ordered
    pair's simple paths each deliver exactly once, plus each node's own
    trivial path."""
    total = graph.n  # the trivial own-value paths
    nodes = sorted(graph.nodes, key=repr)
    for u in nodes:
        for v in nodes:
            if u != v:
                total += count_simple_paths(graph, u, v)
    return total


def expected_wheel_deliveries_at_rim(m: int) -> int:
    """Fault-free flood deliveries at one *rim* node of the wheel with
    ``m`` rim nodes (``wheel_graph(m + 1)``): the trivial own path plus
    one delivery per simple path from every other node.

    Closed form (receiver ``v`` on the rim, hub ``h``): the hub reaches
    ``v`` directly, via either arc to any of the ``m − 1`` other rim
    nodes' spokes... — enumerated by where each path leaves the rim for
    the hub (if at all).  ``2m − 1`` paths originate at the hub; a rim
    origin at rim-distance ``d`` from ``v`` contributes

    * 2 pure-rim paths (one per arc),
    * ``m − 1`` paths hopping straight to the hub and descending,
    * one path per proper rim-walk before or after the hub hop
      (``Σ_{t<m−d} (m−1−t) + Σ_{s<d} (m−1−s)``).

    Validated against :func:`count_simple_paths` for every wheel up to
    nine nodes; used by the ``--flood-receipt`` profile as the
    delivery-count check on wheels too large to cross-enumerate.
    """
    if m < 3:
        raise ValueError("a wheel needs at least three rim nodes")
    total = 1 + (2 * m - 1)
    for d in range(1, m):
        count = 2 + (m - 1)
        count += sum((m - 1 - t) for t in range(1, m - d))
        count += sum((m - 1 - s) for s in range(1, d))
        total += count
    return total


def phase_count_table(n: int, max_f: int) -> Dict[int, int]:
    """``f → Σ_{k ≤ f} C(n, k)`` — how fast Algorithm 1's phase count
    explodes on an ``n``-node graph."""
    return {f: sum(comb(n, k) for k in range(f + 1)) for f in range(max_f + 1)}
