"""Impossibility reproductions: covering networks and projected executions.

Executable versions of the necessity proofs (Lemmas A.1, A.2, D.1, D.2 /
Figures 2-5): build the covering network, run the algorithm on it, replay
the transcripts into three real executions, and watch consensus break on
any graph that violates the paper's conditions.
"""

from .constructions import (
    ExecutionSpec,
    ImpossibilityScenario,
    connectivity_scenario,
    degree_scenario,
    hybrid_connectivity_scenario,
    hybrid_neighborhood_scenario,
)
from .covering import CopyId, CopyTranscript, CoveringNetwork, CoveringSimulator
from .indistinguishability import ExecutionReport, ScenarioReport, run_scenario

__all__ = [
    "CopyId",
    "CopyTranscript",
    "CoveringNetwork",
    "CoveringSimulator",
    "ExecutionReport",
    "ExecutionSpec",
    "ImpossibilityScenario",
    "ScenarioReport",
    "connectivity_scenario",
    "degree_scenario",
    "hybrid_connectivity_scenario",
    "hybrid_neighborhood_scenario",
    "run_scenario",
]
