"""Covering networks 𝒢 for the state-machine impossibility proofs.

The necessity proofs (Lemmas A.1, A.2, D.1, D.2) all follow the same
recipe: build a network ``𝒢`` containing one or two *copies* of each node
of ``G``, wired so that **for each edge ``uv`` of ``G``, every copy of
``u`` receives messages from exactly one copy of ``v``**.  Each copy runs
the unmodified per-node procedure ``A_u`` of the algorithm under test —
a copy cannot tell it is not the real ``u`` in the real ``G``.

Running one execution ``E`` on ``𝒢`` then yields, by projection, several
executions ``E1, E2, E3`` of the *real* graph in which the faulty nodes
replay copy transcripts.  Validity forces the outputs in ``E1`` and
``E3``; the projection forces a contradiction in ``E2``.

:class:`CoveringNetwork` stores the copy structure and the listen map;
:class:`CoveringSimulator` runs protocols on it, giving every copy a
:class:`~repro.net.node.Context` that looks exactly like running on
``G`` (same graph object, same node name, local-broadcast channel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..graphs import Graph, GraphError
from ..net.channels import local_broadcast_model
from ..net.node import Context, Protocol

CopyId = Tuple[Hashable, int]  # (original node, copy index)


@dataclass(frozen=True)
class CoveringNetwork:
    """The copy structure of a network ``𝒢`` over a base graph ``G``.

    ``copies[u]`` lists the copy indices of ``u`` (``(0,)`` for single,
    ``(0, 1)`` for doubled).  ``listen[(u, i)][v]`` names the copy index
    of neighbor ``v`` whose transmissions copy ``(u, i)`` receives.
    """

    base: Graph
    copies: Mapping[Hashable, Tuple[int, ...]]
    listen: Mapping[CopyId, Mapping[Hashable, int]]

    def __post_init__(self) -> None:
        for u in self.base.nodes:
            if u not in self.copies or not self.copies[u]:
                raise GraphError(f"node {u!r} has no copies")
        for u in self.base.nodes:
            for i in self.copies[u]:
                cid = (u, i)
                if cid not in self.listen:
                    raise GraphError(f"copy {cid!r} has no listen map")
                lmap = self.listen[cid]
                for v in self.base.neighbors(u):
                    if v not in lmap:
                        raise GraphError(f"copy {cid!r} ignores neighbor {v!r}")
                    if lmap[v] not in self.copies[v]:
                        raise GraphError(
                            f"copy {cid!r} listens to missing copy of {v!r}"
                        )

    def all_copies(self) -> List[CopyId]:
        return [
            (u, i)
            for u in sorted(self.base.nodes, key=repr)
            for i in self.copies[u]
        ]

    def listeners_of(self, speaker: CopyId) -> List[CopyId]:
        """Every copy that receives ``speaker``'s transmissions."""
        v, j = speaker
        out = []
        for u in sorted(self.base.neighbors(v), key=repr):
            for i in self.copies[u]:
                if self.listen[(u, i)][v] == j:
                    out.append((u, i))
        return out

    def check_edge_property(self) -> None:
        """Assert the proofs' invariant: per ``G``-edge ``uv``, each copy
        of ``u`` listens to exactly one copy of ``v`` (by construction of
        the listen map) — and conversely every copy pair is consistent.
        Raises :class:`GraphError` on violation."""
        for u in self.base.nodes:
            for i in self.copies[u]:
                lmap = self.listen[(u, i)]
                extra = set(lmap) - set(self.base.neighbors(u))
                if extra:
                    raise GraphError(
                        f"copy {(u, i)!r} listens to non-neighbors {extra!r}"
                    )


@dataclass
class CopyTranscript:
    """What one copy transmitted, per round (all sends are broadcasts —
    honest protocols under local broadcast never unicast)."""

    messages: Dict[int, List[object]] = field(default_factory=dict)

    def record(self, round_no: int, message: object) -> None:
        self.messages.setdefault(round_no, []).append(message)

    def as_schedule(self) -> Dict[int, List[Tuple[object, Optional[Hashable]]]]:
        """The shape :class:`~repro.net.adversary.ReplayAdversary` expects."""
        return {
            r: [(m, None) for m in msgs] for r, msgs in self.messages.items()
        }


class CoveringSimulator:
    """Run per-node protocols on a covering network.

    Every copy ``(u, i)`` runs a protocol built for node ``u`` on the
    *base* graph: the context it receives is indistinguishable from a
    real execution on ``G``.  Delivery follows the listen map; inbox
    order is deterministic (senders sorted, FIFO per sender).
    """

    def __init__(
        self,
        network: CoveringNetwork,
        protocols: Mapping[CopyId, Protocol],
    ):
        missing = set(network.all_copies()) - set(protocols)
        if missing:
            raise GraphError(f"no protocol for copies {sorted(missing)}")
        self.network = network
        self.protocols = dict(protocols)
        self.round_no = 0
        self.transcripts: Dict[CopyId, CopyTranscript] = {
            c: CopyTranscript() for c in network.all_copies()
        }
        self._pending: Dict[CopyId, List[Tuple[Hashable, object]]] = {
            c: [] for c in network.all_copies()
        }
        self._order = network.all_copies()
        self._channel = local_broadcast_model()

    def step(self) -> None:
        self.round_no += 1
        inboxes, self._pending = self._pending, {c: [] for c in self._order}
        contexts: List[Tuple[CopyId, Context]] = []
        for cid in self._order:
            u, _i = cid
            ctx = Context(
                node=u,
                graph=self.network.base,
                round_no=self.round_no,
                channel=self._channel,
                inbox=inboxes[cid],
            )
            self.protocols[cid].on_round(ctx)
            contexts.append((cid, ctx))
        for cid, ctx in contexts:
            listeners = self.network.listeners_of(cid)
            u, _i = cid
            for out in ctx.outbox:
                if out.target is not None:
                    raise GraphError(
                        "covering executions model local broadcast only"
                    )
                self.transcripts[cid].record(self.round_no, out.message)
                for lid in listeners:
                    self._pending[lid].append((u, out.message))

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.step()

    def outputs(self) -> Dict[CopyId, Optional[int]]:
        return {c: p.output() for c, p in self.protocols.items()}
