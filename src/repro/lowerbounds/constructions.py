"""Builders for the impossibility scenarios of Figures 2–5.

Each builder takes a *condition-violating* graph and produces an
:class:`ImpossibilityScenario`: the covering network ``𝒢``, the inputs of
the execution ``E`` on it, and the three projected executions
``E1, E2, E3`` with their fault sets, replay sources and (where validity
pins them down) forced outputs.

The listen maps are transcribed from the proofs:

* **Figure 2 / Lemma A.1** (min degree < 2f): a node ``z`` with at most
  ``2f - 1`` neighbors, split ``(F¹, F²)``; ``W = V − N(z) − {z}``
  doubled.
* **Figure 3 / Lemma A.2** (connectivity ≤ ⌊3f/2⌋): a cut partition
  ``(A, B, C)`` with ``C = C¹ ∪ C² ∪ C³``; ``A`` and ``B`` doubled.
* **Figure 4 / Lemma D.1** (hybrid: some ``S``, ``|S| ≤ t``, with ≤ 2f
  neighbors): ``N(S)`` split ``(F¹, F², R, T)``; ``W`` and ``T``
  doubled; ``T`` equivocates in ``E2``.
* **Figure 5 / Lemma D.2** (hybrid connectivity ≤ ⌊3(f−t)/2⌋ + 2t):
  cut partition with ``C = C¹ ∪ C² ∪ C³ ∪ R ∪ T``; ``A, B, R, T``
  doubled; ``T`` equivocates in ``E1``/``E3`` and ``R`` in ``E2``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from ..graphs import (
    Graph,
    GraphError,
    find_cut_partition,
    min_set_neighborhood,
    neighbors_of_set,
    split_into_parts,
)
from .covering import CopyId, CoveringNetwork


@dataclass(frozen=True)
class ExecutionSpec:
    """One projected execution ``Ei`` of the real graph ``G``."""

    name: str
    faulty: FrozenSet[Hashable]
    equivocators: FrozenSet[Hashable]
    inputs: Dict[Hashable, int]
    # Non-equivocating faulty node -> the 𝒢-copy whose transcript it replays.
    replay_map: Dict[Hashable, CopyId]
    # Equivocating faulty node -> [(target set, copy to replay to them)].
    split_replay: Dict[Hashable, List[Tuple[FrozenSet[Hashable], CopyId]]]
    # Honest node -> the copy that models it (for indistinguishability checks).
    honest_model: Dict[Hashable, CopyId]
    # Output forced by validity (all honest inputs equal), or None for the
    # middle execution where the contradiction appears.
    forced_output: Optional[int]


@dataclass(frozen=True)
class ImpossibilityScenario:
    """A complete Figure-2/3/4/5 instance ready to run."""

    kind: str
    graph: Graph
    f: int
    t: int
    network: CoveringNetwork
    copy_inputs: Dict[CopyId, int]
    executions: Tuple[ExecutionSpec, ...]
    notes: Dict[str, object] = field(default_factory=dict)


def _single(nodes) -> Dict[Hashable, Tuple[int, ...]]:
    return {v: (0,) for v in nodes}


# ---------------------------------------------------------------------------
# Figure 2 — Lemma A.1 (degree necessity)
# ---------------------------------------------------------------------------


def degree_scenario(
    graph: Graph, f: int, z: Optional[Hashable] = None
) -> ImpossibilityScenario:
    """Build the Figure 2 scenario around a node of degree < 2f."""
    if f < 1:
        raise GraphError("degree necessity requires f >= 1")
    if z is None:
        z = min(graph.nodes, key=lambda v: (graph.degree(v), repr(v)))
    if graph.degree(z) >= 2 * f:
        raise GraphError(f"node {z!r} has degree >= 2f; no scenario exists")
    if graph.degree(z) < 1:
        raise GraphError("z needs at least one neighbor")
    nbrs = sorted(graph.neighbors(z), key=repr)
    # |F2| <= f and non-empty; |F1| <= f - 1.  deg(z) <= 2f - 1 makes this fit.
    f2_size = min(f, len(nbrs))
    f2 = set(nbrs[:f2_size])
    f1 = set(nbrs[f2_size:])
    if len(f1) > f - 1:
        raise GraphError("internal error: |F1| exceeds f - 1")
    w_set = graph.nodes - f1 - f2 - {z}

    copies: Dict[Hashable, Tuple[int, ...]] = _single(graph.nodes)
    for w in w_set:
        copies[w] = (0, 1)

    def listen_for(u: Hashable, i: int) -> Dict[Hashable, int]:
        lmap: Dict[Hashable, int] = {}
        for v in graph.neighbors(u):
            if v in w_set:
                if u in w_set:
                    lmap[v] = i  # W-W edges stay within the same copy layer
                elif u in f1:
                    lmap[v] = 0  # F1 exchanges with W0; W1 only overhears F1
                elif u in f2:
                    lmap[v] = 1  # F2 exchanges with W1; W0 only overhears F2
                else:  # u == z: z has no W neighbors by construction
                    raise GraphError("z unexpectedly adjacent to W")
            else:
                lmap[v] = 0  # single copies
        return lmap

    listen = {
        (u, i): listen_for(u, i) for u in graph.nodes for i in copies[u]
    }
    network = CoveringNetwork(graph, copies, listen)

    copy_inputs: Dict[CopyId, int] = {}
    for u in graph.nodes:
        for i in copies[u]:
            if u in w_set:
                copy_inputs[(u, i)] = 0 if i == 0 else 1
            elif u in f1 or u == z:
                copy_inputs[(u, i)] = 0
            else:  # F2
                copy_inputs[(u, i)] = 1

    def spec(name, faulty, inputs, model, forced) -> ExecutionSpec:
        return ExecutionSpec(
            name=name,
            faulty=frozenset(faulty),
            equivocators=frozenset(),
            inputs=inputs,
            replay_map={x: (x, 0) for x in faulty},
            split_replay={},
            honest_model=model,
            forced_output=forced,
        )

    all_zero = {v: 0 for v in graph.nodes}
    all_one = {v: 1 for v in graph.nodes}
    e2_inputs = {v: (0 if v == z else 1) for v in graph.nodes}

    def model_for(faulty, w_copy) -> Dict[Hashable, CopyId]:
        return {
            v: ((v, w_copy) if v in w_set else (v, 0))
            for v in graph.nodes - set(faulty)
        }

    executions = (
        spec("E1", f2, all_zero, model_for(f2, 0), 0),
        spec("E2", f1, e2_inputs, model_for(f1, 1), None),
        spec("E3", f1 | {z}, all_one, model_for(f1 | {z}, 1), 1),
    )
    return ImpossibilityScenario(
        kind="degree",
        graph=graph,
        f=f,
        t=0,
        network=network,
        copy_inputs=copy_inputs,
        executions=executions,
        notes={"z": z, "F1": frozenset(f1), "F2": frozenset(f2), "W": frozenset(w_set)},
    )


# ---------------------------------------------------------------------------
# Figure 3 — Lemma A.2 (connectivity necessity)
# ---------------------------------------------------------------------------


def connectivity_scenario(graph: Graph, f: int) -> ImpossibilityScenario:
    """Build the Figure 3 scenario around a vertex cut of size ≤ ⌊3f/2⌋."""
    if f < 1:
        raise GraphError("connectivity necessity requires f >= 1")
    max_cut = (3 * f) // 2
    parts = find_cut_partition(graph, max_cut)
    if parts is None:
        raise GraphError(
            f"graph is ({max_cut + 1})-connected; no Figure 3 scenario exists"
        )
    a_side, b_side, cut = parts
    c1, c2, c3 = (
        set(p) for p in split_into_parts(cut, [f // 2, f // 2, (f + 1) // 2])
    )

    copies: Dict[Hashable, Tuple[int, ...]] = _single(graph.nodes)
    for v in a_side | b_side:
        copies[v] = (0, 1)

    def cut_listen(u: Hashable) -> Tuple[int, int]:
        """(copy of A heard, copy of B heard) for a cut node."""
        if u in c1:
            return 0, 0
        if u in c2:
            return 0, 1
        return 1, 1  # C3

    def listen_for(u: Hashable, i: int) -> Dict[Hashable, int]:
        lmap: Dict[Hashable, int] = {}
        for v in graph.neighbors(u):
            if u in a_side or u in b_side:
                # Same-side edges stay in-layer; cut nodes are single.
                lmap[v] = i if (v in a_side or v in b_side) else 0
            else:  # u in the cut
                if v in a_side:
                    lmap[v] = cut_listen(u)[0]
                elif v in b_side:
                    lmap[v] = cut_listen(u)[1]
                else:
                    lmap[v] = 0
        return lmap

    listen = {(u, i): listen_for(u, i) for u in graph.nodes for i in copies[u]}
    network = CoveringNetwork(graph, copies, listen)

    copy_inputs: Dict[CopyId, int] = {}
    for u in graph.nodes:
        for i in copies[u]:
            if u in a_side or u in b_side:
                copy_inputs[(u, i)] = i
            else:
                copy_inputs[(u, i)] = 0 if u in c1 else 1

    def spec(name, faulty, inputs, model, forced) -> ExecutionSpec:
        return ExecutionSpec(
            name=name,
            faulty=frozenset(faulty),
            equivocators=frozenset(),
            inputs=inputs,
            replay_map={x: (x, 0) for x in faulty},
            split_replay={},
            honest_model=model,
            forced_output=forced,
        )

    def model(a_copy: int, b_copy: int, faulty) -> Dict[Hashable, CopyId]:
        out: Dict[Hashable, CopyId] = {}
        for v in graph.nodes - set(faulty):
            if v in a_side:
                out[v] = (v, a_copy)
            elif v in b_side:
                out[v] = (v, b_copy)
            else:
                out[v] = (v, 0)
        return out

    all_zero = {v: 0 for v in graph.nodes}
    all_one = {v: 1 for v in graph.nodes}
    e2_inputs = {v: (0 if v in a_side else 1) for v in graph.nodes}

    executions = (
        spec("E1", c2 | c3, all_zero, model(0, 0, c2 | c3), 0),
        spec("E2", c1 | c3, e2_inputs, model(0, 1, c1 | c3), None),
        spec("E3", c1 | c2, all_one, model(1, 1, c1 | c2), 1),
    )
    return ImpossibilityScenario(
        kind="connectivity",
        graph=graph,
        f=f,
        t=0,
        network=network,
        copy_inputs=copy_inputs,
        executions=executions,
        notes={
            "A": frozenset(a_side),
            "B": frozenset(b_side),
            "C1": frozenset(c1),
            "C2": frozenset(c2),
            "C3": frozenset(c3),
        },
    )


# ---------------------------------------------------------------------------
# Figure 4 — Lemma D.1 (hybrid set-neighborhood necessity)
# ---------------------------------------------------------------------------


def hybrid_neighborhood_scenario(
    graph: Graph, f: int, t: int, s_set: Optional[FrozenSet[Hashable]] = None
) -> ImpossibilityScenario:
    """Build the Figure 4 scenario around a set ``S`` with ≤ 2f neighbors."""
    if not 0 < t <= f:
        raise GraphError("hybrid neighborhood necessity requires 0 < t <= f")
    phi = f - t
    if s_set is None:
        value, witness = min_set_neighborhood(graph, t)
        if value > 2 * f:
            raise GraphError("every small set has > 2f neighbors; no scenario")
        s_set = witness
    s_set = frozenset(s_set)
    nbrs = neighbors_of_set(graph, s_set)
    if not nbrs:
        raise GraphError("S needs at least one neighbor")
    if len(nbrs) > 2 * f:
        raise GraphError("S has more than 2f neighbors")
    # Partition N(S) = (R_head, F1, F2, T, R_rest); R non-empty by giving it
    # the first node.  Capacities: 1 + phi + phi + t + (t - 1) = 2f.
    r_head, f1, f2, t_set, r_rest = (
        set(p)
        for p in split_into_parts(nbrs, [1, phi, phi, t, t - 1])
    )
    r_set = r_head | r_rest
    w_set = graph.nodes - s_set - nbrs

    copies: Dict[Hashable, Tuple[int, ...]] = _single(graph.nodes)
    for v in w_set | t_set:
        copies[v] = (0, 1)

    def listen_for(u: Hashable, i: int) -> Dict[Hashable, int]:
        lmap: Dict[Hashable, int] = {}
        for v in graph.neighbors(u):
            if v in t_set or v in w_set:
                if u in s_set or u in f1:
                    lmap[v] = 0  # S and F1 live on layer 0 of T/W
                elif u in f2 or u in r_set:
                    lmap[v] = 1  # F2 and R live on layer 1
                else:  # u in T or W: stay in-layer
                    lmap[v] = i
            else:
                lmap[v] = 0  # S, F1, F2, R are single
        return lmap

    listen = {(u, i): listen_for(u, i) for u in graph.nodes for i in copies[u]}
    network = CoveringNetwork(graph, copies, listen)

    copy_inputs: Dict[CopyId, int] = {}
    for u in graph.nodes:
        for i in copies[u]:
            if u in w_set or u in t_set:
                copy_inputs[(u, i)] = i
            elif u in s_set or u in f1:
                copy_inputs[(u, i)] = 0
            else:  # F2, R
                copy_inputs[(u, i)] = 1

    def model(layer: int, faulty) -> Dict[Hashable, CopyId]:
        return {
            v: ((v, layer) if v in w_set | t_set else (v, 0))
            for v in graph.nodes - set(faulty)
        }

    all_zero = {v: 0 for v in graph.nodes}
    all_one = {v: 1 for v in graph.nodes}
    e2_inputs = {v: (0 if v in s_set else 1) for v in graph.nodes}

    e1 = ExecutionSpec(
        name="E1",
        faulty=frozenset(f2 | r_set),
        equivocators=frozenset(),
        inputs=all_zero,
        replay_map={x: (x, 0) for x in f2 | r_set},
        split_replay={},
        honest_model=model(0, f2 | r_set),
        forced_output=0,
    )
    # E2: T equivocates — S-neighbors hear layer 0's transcript, everyone
    # else layer 1's.
    rest = frozenset(graph.nodes - s_set)
    e2 = ExecutionSpec(
        name="E2",
        faulty=frozenset(f1 | t_set),
        equivocators=frozenset(t_set),
        inputs=e2_inputs,
        replay_map={x: (x, 0) for x in f1},
        split_replay={
            x: [(frozenset(s_set), (x, 0)), (rest, (x, 1))] for x in t_set
        },
        honest_model=model(1, f1 | t_set),
        forced_output=None,
    )
    e3 = ExecutionSpec(
        name="E3",
        faulty=frozenset(f1 | s_set),
        equivocators=frozenset(),
        inputs=all_one,
        replay_map={x: (x, 0) for x in f1 | s_set},
        split_replay={},
        honest_model=model(1, f1 | s_set),
        forced_output=1,
    )
    return ImpossibilityScenario(
        kind="hybrid-neighborhood",
        graph=graph,
        f=f,
        t=t,
        network=network,
        copy_inputs=copy_inputs,
        executions=(e1, e2, e3),
        notes={
            "S": s_set,
            "F1": frozenset(f1),
            "F2": frozenset(f2),
            "R": frozenset(r_set),
            "T": frozenset(t_set),
            "W": frozenset(w_set),
        },
    )


# ---------------------------------------------------------------------------
# Figure 5 — Lemma D.2 (hybrid connectivity necessity)
# ---------------------------------------------------------------------------


def hybrid_connectivity_scenario(
    graph: Graph, f: int, t: int
) -> ImpossibilityScenario:
    """Build the Figure 5 scenario around a cut of size ≤ ⌊3(f−t)/2⌋ + 2t."""
    if not 0 < t <= f:
        raise GraphError("use connectivity_scenario for t = 0")
    phi = f - t
    max_cut = (3 * phi) // 2 + 2 * t
    parts = find_cut_partition(graph, max_cut)
    if parts is None:
        raise GraphError(
            f"graph is ({max_cut + 1})-connected; no Figure 5 scenario exists"
        )
    a_side, b_side, cut = parts
    c1, c2, c3, r_set, t_set = (
        set(p)
        for p in split_into_parts(
            cut, [phi // 2, phi // 2, (phi + 1) // 2, t, t]
        )
    )

    copies: Dict[Hashable, Tuple[int, ...]] = _single(graph.nodes)
    for v in a_side | b_side | r_set | t_set:
        copies[v] = (0, 1)

    def listen_for(u: Hashable, i: int) -> Dict[Hashable, int]:
        lmap: Dict[Hashable, int] = {}
        for v in graph.neighbors(u):
            if u in a_side:
                if v in a_side or v in r_set:
                    lmap[v] = i
                elif v in t_set:
                    lmap[v] = 1 - i  # A0 hears T1, A1 hears T0
                else:
                    lmap[v] = 0
            elif u in b_side:
                if v in a_side or v in b_side or v in r_set or v in t_set:
                    lmap[v] = i
                else:
                    lmap[v] = 0
            elif u in r_set:
                if v in a_side or v in b_side or v in r_set:
                    lmap[v] = i
                elif v in t_set:
                    lmap[v] = 0  # both R copies hear T0
                else:
                    lmap[v] = 0
            elif u in t_set:
                if i == 1:
                    # T1 models honest T in E2: hears A0, B1, R1, T1.
                    if v in a_side:
                        lmap[v] = 0
                    elif v in b_side or v in r_set or v in t_set:
                        lmap[v] = 1
                    else:
                        lmap[v] = 0
                else:
                    # T0 is never honest in a projected execution; mirror.
                    if v in a_side:
                        lmap[v] = 1
                    elif v in b_side or v in r_set or v in t_set:
                        lmap[v] = 0
                    else:
                        lmap[v] = 0
            elif u in c1:
                lmap[v] = 0  # C1 models honest only in E1: all layer 0
            elif u in c2:
                if v in a_side:
                    lmap[v] = 0
                elif v in b_side or v in r_set or v in t_set:
                    lmap[v] = 1
                else:
                    lmap[v] = 0
            else:  # u in c3
                if v in t_set:
                    lmap[v] = 0
                elif v in a_side or v in b_side or v in r_set:
                    lmap[v] = 1
                else:
                    lmap[v] = 0
        return lmap

    listen = {(u, i): listen_for(u, i) for u in graph.nodes for i in copies[u]}
    network = CoveringNetwork(graph, copies, listen)

    copy_inputs: Dict[CopyId, int] = {}
    for u in graph.nodes:
        for i in copies[u]:
            if u in a_side | b_side | r_set | t_set:
                copy_inputs[(u, i)] = i
            else:
                copy_inputs[(u, i)] = 0 if u in c1 else 1

    doubled = a_side | b_side | r_set | t_set

    def model(a_c, b_c, r_c, t_c, faulty) -> Dict[Hashable, CopyId]:
        out: Dict[Hashable, CopyId] = {}
        for v in graph.nodes - set(faulty):
            if v in a_side:
                out[v] = (v, a_c)
            elif v in b_side:
                out[v] = (v, b_c)
            elif v in r_set:
                out[v] = (v, r_c)
            elif v in t_set:
                out[v] = (v, t_c)
            else:
                out[v] = (v, 0)
        return out

    all_zero = {v: 0 for v in graph.nodes}
    all_one = {v: 1 for v in graph.nodes}
    e2_inputs = {v: (0 if v in a_side else 1) for v in graph.nodes}
    a_frozen = frozenset(a_side)
    b_frozen = frozenset(b_side)
    not_a = frozenset(graph.nodes - a_side)
    not_b = frozenset(graph.nodes - b_side)

    e1 = ExecutionSpec(
        name="E1",
        faulty=frozenset(c2 | c3 | t_set),
        equivocators=frozenset(t_set),
        inputs=all_zero,
        replay_map={x: (x, 0) for x in c2 | c3},
        split_replay={
            x: [(a_frozen, (x, 1)), (not_a, (x, 0))] for x in t_set
        },
        honest_model=model(0, 0, 0, None, c2 | c3 | t_set),
        forced_output=0,
    )
    e2 = ExecutionSpec(
        name="E2",
        faulty=frozenset(c1 | c3 | r_set),
        equivocators=frozenset(r_set),
        inputs=e2_inputs,
        replay_map={x: (x, 0) for x in c1 | c3},
        split_replay={
            x: [(a_frozen, (x, 0)), (not_a, (x, 1))] for x in r_set
        },
        honest_model=model(0, 1, None, 1, c1 | c3 | r_set),
        forced_output=None,
    )
    e3 = ExecutionSpec(
        name="E3",
        faulty=frozenset(c1 | c2 | t_set),
        equivocators=frozenset(t_set),
        inputs=all_one,
        replay_map={x: (x, 0) for x in c1 | c2},
        split_replay={
            x: [(b_frozen, (x, 1)), (not_b, (x, 0))] for x in t_set
        },
        honest_model=model(1, 1, 1, None, c1 | c2 | t_set),
        forced_output=1,
    )
    return ImpossibilityScenario(
        kind="hybrid-connectivity",
        graph=graph,
        f=f,
        t=t,
        network=network,
        copy_inputs=copy_inputs,
        executions=(e1, e2, e3),
        notes={
            "A": frozenset(a_side),
            "B": frozenset(b_side),
            "C1": frozenset(c1),
            "C2": frozenset(c2),
            "C3": frozenset(c3),
            "R": frozenset(r_set),
            "T": frozenset(t_set),
        },
    )
