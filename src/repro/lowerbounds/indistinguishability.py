"""Run an impossibility scenario end to end and report the violation.

The pipeline mirrors the proofs exactly:

1. run execution ``E`` on the covering network ``𝒢`` — every copy runs
   the honest per-node procedure with the construction's inputs;
2. project: build the real executions ``E1, E2, E3`` where the faulty
   nodes *replay* their copies' transcripts (equivocating faults replay
   two copies, one per neighbor group, which requires hybrid-channel
   unicast power);
3. verify **indistinguishability**: each honest node of ``Ei`` behaves
   exactly like the copy that models it, so its output equals that
   copy's output in ``E``;
4. verdict: if the graph truly violates the condition, at least one
   execution must break agreement or validity — for a correct-under-the-
   conditions algorithm like Algorithm 1, validity pins ``E1 → 0`` and
   ``E3 → 1`` and the contradiction surfaces as an agreement violation
   in ``E2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..consensus.runner import ConsensusResult, run_consensus
from ..net.adversary import (
    Adversary,
    CompositeAdversary,
    ReplayAdversary,
    SplitReplayAdversary,
)
from ..net.channels import hybrid_model, local_broadcast_model
from ..net.node import Protocol
from .constructions import ExecutionSpec, ImpossibilityScenario
from .covering import CopyId, CoveringSimulator

HonestFactory = Callable[[Hashable, int], Protocol]


@dataclass(frozen=True)
class ExecutionReport:
    """Outcome of one projected execution."""

    name: str
    result: ConsensusResult
    forced_output: Optional[int]
    indistinguishable: bool
    model_mismatches: Tuple[Hashable, ...]

    @property
    def violated(self) -> bool:
        """Did this execution break agreement or validity?"""
        return not (self.result.agreement and self.result.validity)

    @property
    def respected_forced_output(self) -> bool:
        if self.forced_output is None:
            return True
        return all(
            self.result.outputs[v] == self.forced_output
            for v in self.result.honest
        )


@dataclass(frozen=True)
class ScenarioReport:
    """The full verdict for one Figure-2/3/4/5 scenario."""

    scenario: ImpossibilityScenario
    copy_outputs: Dict[CopyId, Optional[int]]
    executions: Tuple[ExecutionReport, ...]

    @property
    def violation_demonstrated(self) -> bool:
        """At least one projected execution breaks consensus — the
        empirical content of the necessity lemmas."""
        return any(e.violated for e in self.executions)

    @property
    def fully_indistinguishable(self) -> bool:
        """Every honest node of every execution matched its model copy."""
        return all(e.indistinguishable for e in self.executions)

    def summary(self) -> str:
        lines = [
            f"scenario {self.scenario.kind} (f={self.scenario.f}, "
            f"t={self.scenario.t}) on n={self.scenario.graph.n}"
        ]
        for e in self.executions:
            verdict = "VIOLATED" if e.violated else "consensus ok"
            lines.append(
                f"  {e.name}: faulty={sorted(e.result.faulty, key=repr)} "
                f"agreement={e.result.agreement} validity={e.result.validity} "
                f"[{verdict}]"
            )
        lines.append(
            "  => violation demonstrated"
            if self.violation_demonstrated
            else "  => NO violation (unexpected for a deficient graph)"
        )
        return "\n".join(lines)


def _adversary_for(spec: ExecutionSpec, sim: CoveringSimulator) -> Adversary:
    """Replay behaviors for one projected execution, from 𝒢 transcripts."""
    assignments: Dict[Hashable, Adversary] = {}
    plain_schedules = {
        node: sim.transcripts[copy].as_schedule()
        for node, copy in spec.replay_map.items()
    }
    if plain_schedules:
        replay = ReplayAdversary(plain_schedules)
        for node in plain_schedules:
            assignments[node] = replay
    if spec.split_replay:
        group_schedules = {
            node: [
                (targets, sim.transcripts[copy].as_schedule())
                for targets, copy in groups
            ]
            for node, groups in spec.split_replay.items()
        }
        split = SplitReplayAdversary(group_schedules)
        for node in spec.split_replay:
            assignments[node] = split
    return CompositeAdversary(assignments)


def run_scenario(
    scenario: ImpossibilityScenario,
    honest_factory: HonestFactory,
    rounds: Optional[int] = None,
) -> ScenarioReport:
    """Execute the scenario: ``E`` on ``𝒢``, then ``E1, E2, E3`` on ``G``."""
    protocols = {
        copy: honest_factory(copy[0], value)
        for copy, value in scenario.copy_inputs.items()
    }
    if rounds is None:
        budgets = [getattr(p, "total_rounds", None) for p in protocols.values()]
        known = [b for b in budgets if isinstance(b, int)]
        if not known:
            raise ValueError("rounds required: protocols expose no budget")
        rounds = max(known)
    sim = CoveringSimulator(scenario.network, protocols)
    sim.run(rounds)
    copy_outputs = sim.outputs()

    reports: List[ExecutionReport] = []
    for spec in scenario.executions:
        adversary = _adversary_for(spec, sim)
        channel = (
            hybrid_model(spec.equivocators)
            if spec.equivocators
            else local_broadcast_model()
        )
        result = run_consensus(
            scenario.graph,
            honest_factory,
            spec.inputs,
            f=scenario.f,
            faulty=spec.faulty,
            adversary=adversary,
            channel=channel,
            max_rounds=rounds,
        )
        mismatches = tuple(
            v
            for v, copy in sorted(spec.honest_model.items(), key=lambda kv: repr(kv[0]))
            if result.outputs[v] != copy_outputs[copy]
        )
        reports.append(
            ExecutionReport(
                name=spec.name,
                result=result,
                forced_output=spec.forced_output,
                indistinguishable=not mismatches,
                model_mismatches=mismatches,
            )
        )
    return ScenarioReport(
        scenario=scenario,
        copy_outputs=copy_outputs,
        executions=tuple(reports),
    )
