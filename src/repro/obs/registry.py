"""The deterministic metrics registry.

Three metric kinds, all with canonical snapshots:

* **counters** — monotone integer totals (``inc``);
* **gauges** — running maxima (``gauge_max``; the only gauge fold the
  sweep merge can make order-independent, which is why it is the only
  one offered);
* **histograms** — exact value→count maps (``observe``), not bucketed
  approximations: the quantities measured here (delays in ticks,
  path-set sizes, deliveries per tick) are small integers, so exact
  distributions cost little and merge losslessly.

Metric identity is ``name{label=value,...}`` with labels sorted and
rendered via ``repr`` for non-strings — the same convention the rest
of the repo uses for canonical node ordering.  ``snapshot`` emits
every section in sorted-key order, so *equal metric states always
serialize identically*; :func:`merge_snapshots` folds per-run
snapshots (counters sum, gauges max, histograms union, spans to
duration histograms) commutatively, so a sweep's merged metrics are a
pure function of the canonical record list regardless of how many
workers produced it.

Everything here is virtual-time/content data.  Wall-clock numbers
live in :mod:`repro.obs.timings` and are stripped by
:func:`strip_timings` before any byte-identity comparison.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .events import EventLog
from .spans import SpanTracer


def _label_text(value: object) -> str:
    return value if isinstance(value, str) else repr(value)


#: Rendered-key memo: metric call sites use a small fixed vocabulary of
#: (name, labels) pairs but fire per message, so the sort/format work is
#: paid once per distinct key.  Unhashable label values fall through to
#: direct rendering.
_KEY_CACHE: Dict[tuple, str] = {}


def render_key(name: str, labels: Dict[str, object]) -> str:
    """Canonical ``name{k=v,...}`` metric key (labels repr-sorted)."""
    if not labels:
        return name
    try:
        cache_key = (name, *sorted(labels.items()))
        key = _KEY_CACHE.get(cache_key)
    except TypeError:
        cache_key = None
        key = None
    if key is None:
        inner = ",".join(
            f"{k}={_label_text(labels[k])}" for k in sorted(labels)
        )
        key = f"{name}{{{inner}}}"
        if cache_key is not None:
            _KEY_CACHE[cache_key] = key
    return key


def _hist_snapshot(bucket: Dict[float, int]) -> dict:
    """Canonical view of one exact-value histogram."""
    pairs = sorted(bucket.items())
    return {
        "count": sum(c for _, c in pairs),
        "sum": sum(v * c for v, c in pairs),
        "min": pairs[0][0] if pairs else None,
        "max": pairs[-1][0] if pairs else None,
        "values": [[v, c] for v, c in pairs],
    }


class MetricsRegistry:
    """Counters, max-gauges, exact histograms, spans, and event passthrough."""

    #: Instrumentation sites may branch on this to skip building labels.
    enabled = True

    def __init__(self, events: Optional[EventLog] = None):
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, Dict[float, int]] = {}
        self.spans = SpanTracer()
        self.events = events

    # -- writers -------------------------------------------------------
    def inc(self, name: str, n: int = 1, **labels: object) -> None:
        """Add ``n`` to a counter."""
        key = render_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + n

    def gauge_max(self, name: str, value: float, **labels: object) -> None:
        """Raise a high-water-mark gauge to ``value`` if it is larger."""
        key = render_key(name, labels)
        prev = self._gauges.get(key)
        if prev is None or value > prev:
            self._gauges[key] = value

    def observe(
        self, name: str, value: float, n: int = 1, **labels: object
    ) -> None:
        """Count ``n`` observations of ``value`` in an exact histogram.

        ``n = 0`` records nothing at all — not even an empty bucket, so
        a guarded bulk observation can never add a histogram key that
        the one-call-per-observation form would not have created
        (snapshot identity is byte-level).
        """
        if n <= 0:
            return
        bucket = self._hists.setdefault(render_key(name, labels), {})
        bucket[value] = bucket.get(value, 0) + n

    # -- pre-rendered hot-path cells -----------------------------------
    def counter_cell(self, name: str, **labels: object):
        """A bound incrementer for one counter key.

        Hot paths (the flooding rules fire per message) render the
        ``name{labels}`` key once and call the returned closure with
        just the increment, skipping the kwargs/sort/format work of
        :meth:`inc`.  The key is *not* created until the first call, so
        handing out a cell never changes a snapshot by itself.
        """
        key = render_key(name, labels)
        counters = self._counters

        def add(n: int = 1) -> None:
            counters[key] = counters.get(key, 0) + n

        return add

    def gauge_cell(self, name: str, **labels: object):
        """A bound high-water-mark setter for one gauge key (same
        contract as :meth:`counter_cell`: no key until the first call)."""
        key = render_key(name, labels)
        gauges = self._gauges

        def raise_to(value: float) -> None:
            prev = gauges.get(key)
            if prev is None or value > prev:
                gauges[key] = value

        return raise_to

    def hist_cell(self, name: str, **labels: object):
        """A bound observer for one histogram key (same contract as
        :meth:`counter_cell`: no key until the first call, and — like
        :meth:`observe` — ``n <= 0`` records nothing at all)."""
        key = render_key(name, labels)
        hists = self._hists

        def observe_value(value: float, n: int = 1) -> None:
            if n <= 0:
                return
            bucket = hists.get(key)
            if bucket is None:
                bucket = hists[key] = {}
            bucket[value] = bucket.get(value, 0) + n

        return observe_value

    def span(self, name: str, start: int, end: int, **labels: object) -> None:
        """Record a closed virtual-time span (and emit it as an event)."""
        self.spans.record(name, start, end, **labels)
        self.emit("span", name=name, start=start, end=end, **labels)

    def emit(self, kind: str, **fields: object) -> None:
        """Forward one NDJSON event if an :class:`EventLog` is attached."""
        if self.events is not None:
            self.events.emit(kind, **fields)

    # -- readers -------------------------------------------------------
    def counter(self, name: str, **labels: object) -> int:
        """Current value of one counter (0 if never incremented)."""
        return self._counters.get(render_key(name, labels), 0)

    def snapshot(self) -> dict:
        """Canonical content snapshot (sorted keys, no wall-clock data)."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: _hist_snapshot(self._hists[k]) for k in sorted(self._hists)
            },
            "spans": self.spans.snapshot(),
        }


def _null_cell(*args: object) -> None:
    """Shared no-op closure handed out by :class:`NullMetrics` cells."""


class NullMetrics:
    """No-op registry: the default so call sites never branch.

    Every writer is a ``pass``; readers report emptiness.  A single
    shared instance (:data:`NULL_METRICS`) is used everywhere metrics
    are off, so the instrumented hot paths cost one attribute check.
    """

    enabled = False
    events = None

    def inc(self, name: str, n: int = 1, **labels: object) -> None:
        pass

    def gauge_max(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe(
        self, name: str, value: float, n: int = 1, **labels: object
    ) -> None:
        pass

    def counter_cell(self, name: str, **labels: object):
        return _null_cell

    def gauge_cell(self, name: str, **labels: object):
        return _null_cell

    def hist_cell(self, name: str, **labels: object):
        return _null_cell

    def span(self, name: str, start: int, end: int, **labels: object) -> None:
        pass

    def emit(self, kind: str, **fields: object) -> None:
        pass

    def counter(self, name: str, **labels: object) -> int:
        return 0

    def snapshot(self) -> dict:
        return {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<NullMetrics>"


#: Shared no-op instance: the default value of ``Context.metrics``.
NULL_METRICS = NullMetrics()


def merge_snapshots(snapshots: Iterable[Optional[dict]]) -> dict:
    """Fold per-run snapshots into one canonical aggregate.

    Counters sum, gauges take the max, histograms union their exact
    value maps, and spans collapse into ``span.<name>.ticks`` duration
    histograms (per-run span lists would bloat a sweep report; their
    distributions are what the profile reader wants).  Every fold is
    commutative and associative, but the sweep engine still calls this
    on the canonically ordered record list — by task slot, never by
    completion order — so the merged section is byte-identical at any
    worker count by construction, not by luck.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    hists: Dict[str, Dict[float, int]] = {}
    runs = 0
    for snap in snapshots:
        if not snap:
            continue
        runs += 1
        src_counters = snap.get("counters", {})
        for key in sorted(src_counters):
            counters[key] = counters.get(key, 0) + src_counters[key]
        src_gauges = snap.get("gauges", {})
        for key in sorted(src_gauges):
            value = src_gauges[key]
            prev = gauges.get(key)
            if prev is None or value > prev:
                gauges[key] = value
        src_hists = snap.get("histograms", {})
        for key in sorted(src_hists):
            bucket = hists.setdefault(key, {})
            for value, count in src_hists[key].get("values", ()):
                bucket[value] = bucket.get(value, 0) + count
        for span in snap.get("spans", ()):
            key = render_key(f"span.{span['name']}.ticks", span["labels"])
            bucket = hists.setdefault(key, {})
            ticks = span["end"] - span["start"]
            bucket[ticks] = bucket.get(ticks, 0) + 1
    return {
        "runs": runs,
        "counters": {k: counters[k] for k in sorted(counters)},
        "gauges": {k: gauges[k] for k in sorted(gauges)},
        "histograms": {k: _hist_snapshot(hists[k]) for k in sorted(hists)},
    }


def strip_timings(payload: object) -> object:
    """A deep copy of ``payload`` with every ``"timings"`` key removed.

    This is the determinism quarantine in executable form: comparing
    ``strip_timings(a) == strip_timings(b)`` (or their sorted-key JSON)
    checks exactly the content sections the byte-identity invariant
    covers.
    """
    if isinstance(payload, dict):
        return {
            key: strip_timings(payload[key])
            for key in sorted(payload, key=repr)
            if key != "timings"
        }
    if isinstance(payload, (list, tuple)):
        return [strip_timings(item) for item in payload]
    return payload
