"""Quarantined wall-clock timing.

This is the **only** module in the package that reads a wall clock,
and it uses exactly the one entropy source the determinism lint
exempts: ``time.perf_counter`` (REPRO002).  Everything measured here
is real-machine noise — it varies run to run, machine to machine —
so it must never enter the content sections of a report.  The sweep
engine and the CLI place these numbers under a dedicated ``timings``
key, and :func:`repro.obs.strip_timings` removes that key wholesale
before any byte-identity comparison.

The quarantine rule, stated once: **virtual time is content,
wall-clock time is commentary.**
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator


class Stopwatch:
    """Elapsed wall seconds since construction (monotonic)."""

    __slots__ = ("_started",)

    def __init__(self) -> None:
        self._started = perf_counter()

    def elapsed(self) -> float:
        return perf_counter() - self._started


class WallTimings:
    """Accumulates named wall-clock durations with call counts.

    ``snapshot`` returns ``{name: {"seconds": total, "calls": n}}``
    in sorted-name order — canonical in *shape* so diffs of two
    timing sections line up, even though the values never will.
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._calls: Dict[str, int] = {}

    def add(self, name: str, seconds: float) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + 1

    @contextmanager
    def time(self, name: str) -> Iterator[None]:
        """Context manager timing one block under ``name``."""
        watch = Stopwatch()
        try:
            yield
        finally:
            self.add(name, watch.elapsed())

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"seconds": self._seconds[name], "calls": self._calls[name]}
            for name in sorted(self._seconds)
        }
