"""The causal flight recorder: happened-before traces as replayable files.

A *flight recording* is one run of either simulation engine serialized
as canonical NDJSON: a header line (everything needed to re-execute the
run — graph, inputs, fault wiring, scheduler, factory recipe), one line
per event (sends, per-recipient deliveries, decision instants) in a
canonical total order, and an outcome line.  Because every event carries
the happened-before links the engines stamp
(:data:`~repro.net.trace.CAUSE_DELIVERY` /
:data:`~repro.net.trace.CAUSE_INPUT` /
:data:`~repro.net.trace.CAUSE_TIMER` plus the ``send_index`` join), the
event stream *is* a happened-before DAG:

* ``deliver`` → the ``send`` it descends from (``send`` field);
* ``send``/``decide`` → every ``deliver`` that landed in the emitting
  activation's inbox (same node, same tick), with the recorded primary
  cause being the last delivery drained;
* roots are spontaneous events (``input`` at the first activation,
  ``timer`` later).

On top of that DAG this module implements the forensic analyses the
``python -m repro trace`` CLI exposes: per-node :func:`summarize`
timelines, the :func:`critical_path` into a decision (checked against
tick accounting: the causal chain's delivery latencies must sum exactly
to its time span), :func:`blame` (walk back from divergent or stalled
decisions to the earliest fault-attributable frontier), and
:func:`export_chrome` (Chrome trace-event / Perfetto JSON).

Import discipline: like the rest of :mod:`repro.obs`, this module
imports nothing from ``repro.net`` / ``repro.consensus`` /
``repro.analysis``.  :func:`flight_from_trace` duck-types the trace
object (``transmissions`` / ``deliveries`` / ``decisions`` attribute
access only); the cause-kind strings are re-declared here and their
equality with the engine constants is pinned by tests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

#: Must equal ``repro.net.trace.CAUSE_*`` (asserted by the test suite);
#: re-declared so the obs layer stays import-pure.
CAUSE_DELIVERY = "delivery"
CAUSE_INPUT = "input"
CAUSE_TIMER = "timer"

#: Flight-file format version this module reads and writes.
FLIGHT_VERSION = 1

#: Canonical order of same-tick events: everything due at tick ``t``
#: lands first (rank 0), then the sends the activations of tick ``t``
#: emit (rank 1), then the decisions they reach (rank 2).  Within one
#: rank the record index — itself deterministic — breaks ties, so the
#: order is total and every happened-before edge points strictly
#: backwards in it (acyclicity by construction; re-checked by
#: :meth:`CausalDag.check`).
_RANK = {"deliver": 0, "send": 1, "decide": 2}


class FlightError(ValueError):
    """A flight file is malformed or internally inconsistent."""


class FlightReplayError(FlightError):
    """A flight recording cannot be re-executed (opaque labels/factory)."""


# ---------------------------------------------------------------------------
# Canonical JSON encoding
# ---------------------------------------------------------------------------


def canonical_json(obj: object) -> str:
    """Sorted-key, compact JSON — the one serialization flights use.

    ``default=repr`` is a deterministic last resort for exotic values
    (e.g. span label objects); node labels never rely on it — they go
    through :func:`encode_label` so tuples survive the round trip.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=repr)


def encode_label(label: object) -> object:
    """Node label → JSON value.  ``int``/``str``/``bool``/``None`` pass
    through; tuples become ``{"__t": [...]}`` (replayable); anything
    else becomes ``{"__r": repr(...)}`` (display-only — replay refuses)."""
    if label is None or isinstance(label, (bool, int, str)):
        return label
    if isinstance(label, tuple):
        return {"__t": [encode_label(x) for x in label]}
    return {"__r": repr(label)}


def decode_label(obj: object) -> object:
    """Inverse of :func:`encode_label`; raises
    :class:`FlightReplayError` on display-only (``__r``) labels."""
    if isinstance(obj, dict):
        if "__t" in obj:
            return tuple(decode_label(x) for x in obj["__t"])
        if "__r" in obj:
            raise FlightReplayError(
                f"label {obj['__r']} was recorded by repr only and cannot "
                "be reconstructed for replay"
            )
        raise FlightError(f"unrecognized label encoding {obj!r}")
    return obj


def label_key(enc: object) -> str:
    """Canonical string identity of one *encoded* label — used as a
    dict key and sort key throughout the analyses (total order over
    mixed label types, independent of hash seeds)."""
    return canonical_json(enc)


def label_text(enc: object) -> str:
    """Human-facing form of one encoded label (CLI tables, track names)."""
    if isinstance(enc, str):
        return enc
    return canonical_json(enc)


def event_order(event: dict) -> Tuple[int, int, int]:
    """The canonical total order of the event stream (see :data:`_RANK`)."""
    return (event["t"], _RANK[event["type"]], event["i"])


# ---------------------------------------------------------------------------
# The record
# ---------------------------------------------------------------------------


@dataclass
class FlightRecord:
    """One recorded run: header + canonical event stream + outcome.

    ``header`` and ``outcome`` are plain JSON-ready dicts (labels
    pre-encoded via :func:`encode_label`, messages as ``repr`` strings);
    ``events`` is the stream in :func:`event_order`.  Serialization is
    canonical, so byte-comparing two recordings *is* comparing the runs.
    """

    header: dict
    events: List[dict] = field(default_factory=list)
    outcome: dict = field(default_factory=dict)

    # -- views ---------------------------------------------------------
    def of_type(self, kind: str) -> List[dict]:
        return [e for e in self.events if e["type"] == kind]

    @property
    def sends(self) -> List[dict]:
        return self.of_type("send")

    @property
    def delivers(self) -> List[dict]:
        return self.of_type("deliver")

    @property
    def decides(self) -> List[dict]:
        return self.of_type("decide")

    # -- serialization -------------------------------------------------
    def lines(self) -> Iterator[str]:
        yield canonical_json(self.header)
        for event in self.events:
            yield canonical_json(event)
        yield canonical_json(self.outcome)

    def to_ndjson(self) -> str:
        return "\n".join(self.lines()) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_ndjson())

    @classmethod
    def loads(cls, text: str) -> "FlightRecord":
        rows = [json.loads(line) for line in text.splitlines() if line.strip()]
        if len(rows) < 2:
            raise FlightError("flight file needs at least header and outcome")
        header, outcome = rows[0], rows[-1]
        if header.get("type") != "header":
            raise FlightError("first line is not a flight header")
        if outcome.get("type") != "outcome":
            raise FlightError("last line is not a flight outcome")
        version = header.get("version")
        if version != FLIGHT_VERSION:
            raise FlightError(
                f"unsupported flight version {version!r} "
                f"(this reader speaks {FLIGHT_VERSION})"
            )
        events = rows[1:-1]
        for event in events:
            if event.get("type") not in _RANK:
                raise FlightError(f"unknown event type {event.get('type')!r}")
        return cls(header=header, events=events, outcome=outcome)

    @classmethod
    def load(cls, path: str) -> "FlightRecord":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.loads(handle.read())


def flight_from_trace(trace: object, header: dict, outcome: dict) -> FlightRecord:
    """Serialize one engine trace into a :class:`FlightRecord`.

    ``trace`` is duck-typed (``transmissions`` / ``deliveries`` /
    ``decisions`` lists with the :mod:`repro.net.trace` field names);
    ``header``/``outcome`` are pre-built by the caller (the runner owns
    the run's configuration — this layer owns only the event stream).
    """
    events: List[dict] = []
    for i, t in enumerate(trace.transmissions):
        sent_at = t.sent_at if t.sent_at is not None else t.round_no
        events.append(
            {
                "type": "send",
                "i": i,
                "t": sent_at,
                "node": encode_label(t.sender),
                "target": None if t.target is None else encode_label(t.target),
                "to": [encode_label(r) for r in t.recipients],
                "msg": repr(t.message),
                "cause": {"kind": t.cause_kind, "i": t.cause_index},
            }
        )
    for i, d in enumerate(trace.deliveries):
        events.append(
            {
                "type": "deliver",
                "i": i,
                "t": d.delivered_at,
                "sent": d.sent_at,
                "send": d.send_index,
                "from": encode_label(d.sender),
                "to": encode_label(d.recipient),
                "msg": repr(d.message),
            }
        )
    for i, dec in enumerate(trace.decisions):
        events.append(
            {
                "type": "decide",
                "i": i,
                "t": dec.decided_at,
                "node": encode_label(dec.node),
                "value": dec.value,
                "cause": {"kind": dec.cause_kind, "i": dec.cause_index},
            }
        )
    events.sort(key=event_order)
    return FlightRecord(header=dict(header), events=events, outcome=dict(outcome))


# ---------------------------------------------------------------------------
# The happened-before DAG
# ---------------------------------------------------------------------------


def _eid(event: dict) -> Tuple[str, int]:
    return (event["type"], event["i"])


class CausalDag:
    """Happened-before structure over one :class:`FlightRecord`.

    Parent edges (cause → effect read backwards):

    * a ``deliver``'s parent is its originating ``send``;
    * a ``send``/``decide``'s parents are the ``deliver`` events to the
      same node at the same tick — exactly the activation inbox both
      engines drain — with the stamped ``cause.i`` as the primary
      parent (the last delivery drained);
    * events with cause ``input``/``timer`` are roots.

    These message edges are what :meth:`critical_path` measures — along
    them, only delivery hops advance virtual time, which is what makes
    the span-equals-latency-sum accounting check possible.  The *full*
    Lamport happened-before relation additionally orders each node's own
    events (state carries causality across ticks); :meth:`process_parent`
    exposes that edge, and :meth:`ancestors` includes it on request —
    ``blame`` needs it, because a timer-driven decision causally depends
    on everything its node ever received, not just its last inbox.
    """

    def __init__(self, record: FlightRecord):
        self.record = record
        self.send_by_i: Dict[int, dict] = {}
        self.deliver_by_i: Dict[int, dict] = {}
        self.decide_by_i: Dict[int, dict] = {}
        #: (label_key(node), tick) → the deliveries drained into that
        #: activation's inbox, in drain order (record-index ascending).
        self.inbox: Dict[Tuple[str, int], List[dict]] = {}
        #: event id → the same node's previous event in canonical order
        #: (the Lamport process edge); roots have no entry.
        self._process_prev: Dict[Tuple[str, int], dict] = {}
        last_at_node: Dict[str, dict] = {}
        for event in record.events:
            kind = event["type"]
            if kind == "send":
                self.send_by_i[event["i"]] = event
            elif kind == "deliver":
                self.deliver_by_i[event["i"]] = event
                key = (label_key(event["to"]), event["t"])
                self.inbox.setdefault(key, []).append(event)
            else:
                self.decide_by_i[event["i"]] = event
            node_key = label_key(
                event["to"] if kind == "deliver" else event["node"]
            )
            if node_key in last_at_node:
                self._process_prev[_eid(event)] = last_at_node[node_key]
            last_at_node[node_key] = event

    # -- structure -----------------------------------------------------
    def parents(self, event: dict) -> List[dict]:
        if event["type"] == "deliver":
            send = self.send_by_i.get(event["send"])
            return [send] if send is not None else []
        return list(self.inbox.get((label_key(event["node"]), event["t"]), ()))

    def process_parent(self, event: dict) -> Optional[dict]:
        """The same node's previous event, or ``None`` at its first."""
        return self._process_prev.get(_eid(event))

    def primary_parent(self, event: dict) -> Optional[dict]:
        cause = event.get("cause")
        if cause and cause.get("kind") == CAUSE_DELIVERY:
            return self.deliver_by_i.get(cause.get("i"))
        if event["type"] == "deliver":
            return self.send_by_i.get(event["send"])
        return None

    def ancestors(
        self, seeds: List[dict], process: bool = False
    ) -> Dict[Tuple[str, int], dict]:
        """Every event causally before (or equal to) any seed.

        With ``process=True`` the walk follows the full happened-before
        relation (message edges plus each node's local event order);
        the default is message edges only.
        """
        seen: Dict[Tuple[str, int], dict] = {}
        stack = list(seeds)
        while stack:
            event = stack.pop()
            eid = _eid(event)
            if eid in seen:
                continue
            seen[eid] = event
            stack.extend(self.parents(event))
            if process:
                prev = self.process_parent(event)
                if prev is not None:
                    stack.append(prev)
        return seen

    # -- validation ----------------------------------------------------
    def check(self) -> List[str]:
        """Structural violations (empty list = a well-formed causal DAG).

        Every parent edge must point strictly backwards in the canonical
        event order — which simultaneously proves acyclicity (the order
        is a topological witness) and the timestamp law
        ``cause.t < effect.t`` for cross-tick (delivery) edges.
        """
        problems: List[str] = []
        events = self.record.events
        for prev, event in zip(events, events[1:]):
            if event_order(prev) >= event_order(event):
                problems.append(
                    f"event stream out of canonical order at {_eid(event)}"
                )
        for event in events:
            kind = event["type"]
            if kind == "deliver":
                send = self.send_by_i.get(event["send"])
                if send is None:
                    problems.append(f"deliver {event['i']} orphaned: no send "
                                    f"{event['send']}")
                    continue
                if send["t"] != event["sent"]:
                    problems.append(
                        f"deliver {event['i']} disagrees with its send on "
                        f"the send instant ({event['sent']} vs {send['t']})"
                    )
                if event["t"] <= send["t"]:
                    problems.append(
                        f"deliver {event['i']} at t={event['t']} not after "
                        f"its send at t={send['t']}"
                    )
                if send["node"] != event["from"]:
                    problems.append(
                        f"deliver {event['i']} names sender {event['from']!r} "
                        f"but send {send['i']} was by {send['node']!r}"
                    )
                if event["to"] not in send["to"]:
                    problems.append(
                        f"deliver {event['i']} recipient {event['to']!r} not "
                        f"in send {send['i']}'s recipient set"
                    )
                continue
            cause = event.get("cause") or {}
            ck, ci = cause.get("kind"), cause.get("i")
            inbox = self.parents(event)
            if ck == CAUSE_DELIVERY:
                primary = self.deliver_by_i.get(ci)
                if primary is None:
                    problems.append(
                        f"{kind} {event['i']} cites missing delivery {ci}"
                    )
                    continue
                if (
                    label_key(primary["to"]) != label_key(event["node"])
                    or primary["t"] != event["t"]
                ):
                    problems.append(
                        f"{kind} {event['i']} cites delivery {ci}, which "
                        "landed on a different node or tick"
                    )
                if not inbox or inbox[-1]["i"] != ci:
                    problems.append(
                        f"{kind} {event['i']}'s primary cause {ci} is not "
                        "the last delivery of its activation inbox"
                    )
            elif ck in (CAUSE_INPUT, CAUSE_TIMER):
                if inbox:
                    problems.append(
                        f"{kind} {event['i']} claims a spontaneous "
                        f"({ck}) cause but its activation inbox at "
                        f"t={event['t']} is non-empty"
                    )
                if ck == CAUSE_INPUT and event["t"] > 1:
                    problems.append(
                        f"{kind} {event['i']} claims an input cause at "
                        f"t={event['t']} > 1"
                    )
                if ck == CAUSE_TIMER and event["t"] <= 1:
                    problems.append(
                        f"{kind} {event['i']} claims a timer cause at "
                        f"t={event['t']} <= 1"
                    )
            else:
                problems.append(f"{kind} {event['i']} has no cause link")
            for parent in inbox:
                if event_order(parent) >= event_order(event):
                    problems.append(
                        f"edge {_eid(parent)} -> {_eid(event)} does not "
                        "point backwards in canonical order"
                    )
        return problems

    # -- longest causal chain ------------------------------------------
    def critical_path(self, target: Optional[dict] = None) -> dict:
        """The longest happened-before chain into ``target``.

        ``target`` defaults to the latest decision (by canonical order),
        or — for runs that never decided — the latest event of any kind,
        so stalls still yield the chain that got the run furthest.

        The result carries a built-in accounting check: along the chain
        only delivery edges advance virtual time (sends and decisions
        happen *at* the tick of their causing delivery), so the chain's
        time span must equal the sum of its delivery latencies exactly
        (``consistent``).  Under lockstep timing every latency is 1 and
        the span equals the number of delivery hops.
        """
        events = self.record.events
        if not events:
            return {
                "target": None, "length": 0, "span": 0,
                "latency_sum": 0, "consistent": True, "hops": [],
            }
        depth: Dict[Tuple[str, int], int] = {}
        pred: Dict[Tuple[str, int], Optional[dict]] = {}
        for event in events:  # canonical order is topological
            best: Optional[dict] = None
            best_rank = (-1, (-1, -1, -1))
            for parent in self.parents(event):
                rank = (depth[_eid(parent)], event_order(parent))
                if rank > best_rank:
                    best, best_rank = parent, rank
            eid = _eid(event)
            depth[eid] = best_rank[0] + 1 if best is not None else 0
            pred[eid] = best
        if target is None:
            decides = self.record.decides
            target = decides[-1] if decides else events[-1]
        chain: List[dict] = []
        cursor: Optional[dict] = target
        while cursor is not None:
            chain.append(cursor)
            cursor = pred[_eid(cursor)]
        chain.reverse()
        hops = [self._hop(event) for event in chain]
        latency_sum = sum(
            e["t"] - e["sent"] for e in chain if e["type"] == "deliver"
        )
        span = chain[-1]["t"] - chain[0]["t"]
        return {
            "target": self._hop(target),
            "length": depth[_eid(target)],
            "span": span,
            "latency_sum": latency_sum,
            "consistent": span == latency_sum,
            "root_cause": (chain[0].get("cause") or {}).get("kind"),
            "hops": hops,
        }

    @staticmethod
    def _hop(event: dict) -> dict:
        brief = {"type": event["type"], "i": event["i"], "t": event["t"]}
        if event["type"] == "deliver":
            brief["from"] = event["from"]
            brief["to"] = event["to"]
            brief["latency"] = event["t"] - event["sent"]
        else:
            brief["node"] = event["node"]
            brief["cause"] = (event.get("cause") or {}).get("kind")
        if event["type"] == "decide":
            brief["value"] = event["value"]
        else:
            brief["msg"] = _clip(event["msg"])
        return brief


def _clip(text: str, width: int = 64) -> str:
    return text if len(text) <= width else text[: width - 1] + "…"


# ---------------------------------------------------------------------------
# Analyses
# ---------------------------------------------------------------------------


def summarize(record: FlightRecord) -> dict:
    """Per-node timelines plus a run digest (the ``trace summary`` view)."""
    header = record.header
    faulty_keys = {label_key(x) for x in header.get("faulty", [])}
    rows: Dict[str, dict] = {}
    for enc in header.get("graph", {}).get("nodes", []):
        rows[label_key(enc)] = {
            "node": enc,
            "faulty": label_key(enc) in faulty_keys,
            "sends": 0,
            "deliveries": 0,
            "first_send": None,
            "last_send": None,
            "last_delivery": None,
            "decided_at": None,
            "decision": None,
            "decision_cause": None,
            "causes": {CAUSE_DELIVERY: 0, CAUSE_INPUT: 0, CAUSE_TIMER: 0},
        }

    def row(enc: object) -> dict:
        return rows.setdefault(
            label_key(enc),
            {
                "node": enc, "faulty": label_key(enc) in faulty_keys,
                "sends": 0, "deliveries": 0, "first_send": None,
                "last_send": None, "last_delivery": None,
                "decided_at": None, "decision": None,
                "decision_cause": None,
                "causes": {CAUSE_DELIVERY: 0, CAUSE_INPUT: 0, CAUSE_TIMER: 0},
            },
        )

    for event in record.events:
        if event["type"] == "send":
            r = row(event["node"])
            r["sends"] += 1
            if r["first_send"] is None:
                r["first_send"] = event["t"]
            r["last_send"] = event["t"]
            kind = (event.get("cause") or {}).get("kind")
            if kind in r["causes"]:
                r["causes"][kind] += 1
        elif event["type"] == "deliver":
            r = row(event["to"])
            r["deliveries"] += 1
            r["last_delivery"] = event["t"]
        else:
            r = row(event["node"])
            r["decided_at"] = event["t"]
            r["decision"] = event["value"]
            r["decision_cause"] = (event.get("cause") or {}).get("kind")

    dag = CausalDag(record)
    return {
        "run": {
            "outcome": record.outcome.get("outcome"),
            "rounds": record.outcome.get("rounds"),
            "n": len(header.get("graph", {}).get("nodes", [])),
            "f": header.get("f"),
            "faulty": header.get("faulty", []),
            "scheduler": header.get("scheduler"),
            "factory": header.get("factory", {}).get("kind"),
            "adversary": (header.get("adversary") or {}).get("name"),
            "sends": len(record.sends),
            "deliveries": len(record.delivers),
            "decisions": len(record.decides),
            "causal_violations": len(dag.check()),
        },
        "nodes": [rows[k] for k in sorted(rows)],
    }


def critical_path(record: FlightRecord) -> dict:
    """Longest causal chain into the (latest) decision; see
    :meth:`CausalDag.critical_path` for the accounting check."""
    return CausalDag(record).critical_path()


def blame(record: FlightRecord) -> dict:
    """Forensics for a run that lost consensus or never finished.

    Walks backwards from the *divergence anchors* — the honest decision
    events when the run disagreed, the undecided honest nodes' last
    activity when it stalled — through the happened-before DAG, and
    reports the **frontier**: the earliest transmissions by faulty nodes
    that are ancestors of the anchors and have no faulty transmission in
    their own past.  Faulty nodes that went quiet (never sent, or
    stopped before every honest node did) are reported as omission
    suspects — a silent fault leaves no commission frontier to find.

    By construction ``blamed`` only ever names faulty nodes; an honest
    node can appear in the causal walk but never at the frontier.  The
    verdict is three-valued (the CLI's exit-code contract):

    * ``"attributed"`` — anomalous run, non-empty ``blamed`` (exit 0);
    * ``"clean"`` — the run decided with agreement and validity, there
      is nothing to blame (exit 1);
    * ``"unattributed"`` — anomalous run but no fault-attributable
      cause (e.g. a fault-free run broken by timing alone); the report
      then carries the highest-latency ancestor deliveries as timing
      suspects (exit 2).
    """
    header = record.header
    outcome = record.outcome.get("outcome")
    faulty_enc = {label_key(x): x for x in header.get("faulty", [])}
    node_enc = {label_key(x): x for x in header.get("graph", {}).get("nodes", [])}
    honest_keys = sorted(k for k in node_enc if k not in faulty_enc)
    decides = record.decides
    honest_decides = [
        e for e in decides if label_key(e["node"]) not in faulty_enc
    ]

    report = {
        "outcome": outcome,
        "faulty": [faulty_enc[k] for k in sorted(faulty_enc)],
        "anchors": [],
        "frontier": [],
        "omissions": [],
        "timing_suspects": [],
        "blamed": [],
        "reason": "",
        "verdict": "clean",
    }
    if outcome == "decided":
        report["reason"] = "run decided with agreement and validity"
        return report

    dag = CausalDag(record)
    anchors: List[dict] = []
    if outcome == "disagreed":
        values = sorted({e["value"] for e in honest_decides}, key=repr)
        honest_inputs = {
            value
            for enc, value in header.get("inputs", [])
            if label_key(enc) not in faulty_enc
        }
        invalid = [
            e for e in honest_decides if e["value"] not in honest_inputs
        ]
        if len(values) > 1:
            anchors = honest_decides
            report["reason"] = (
                f"honest nodes decided conflicting values {values}"
            )
        elif invalid:
            anchors = invalid
            report["reason"] = (
                "honest nodes decided a value no honest node proposed"
            )
        else:
            anchors = honest_decides
            report["reason"] = "run recorded as disagreed"
    else:  # stalled / budget_exhausted
        decided_keys = {label_key(e["node"]) for e in decides}
        undecided = [k for k in honest_keys if k not in decided_keys]
        last_activity: Dict[str, dict] = {}
        for event in record.events:
            if event["type"] == "send":
                last_activity[label_key(event["node"])] = event
            elif event["type"] == "deliver":
                last_activity[label_key(event["to"])] = event
        anchors = [last_activity[k] for k in undecided if k in last_activity]
        report["reason"] = (
            f"honest nodes {[label_text(node_enc[k]) for k in undecided]} "
            f"undecided ({outcome})"
        )

    # The walk follows the full happened-before relation (message edges
    # plus process order): a decision made on a timer causally depends
    # on every delivery its node ever drained, not just its last inbox.
    ancestry = dag.ancestors(anchors, process=True)

    def is_faulty_send(event: dict) -> bool:
        return (
            event["type"] == "send"
            and label_key(event["node"]) in faulty_enc
        )

    def upstream_tainted(event: dict, tainted) -> bool:
        prev = dag.process_parent(event)
        if prev is not None and tainted[_eid(prev)]:
            return True
        for parent in dag.parents(event):
            if tainted[_eid(parent)]:
                return True
        return False

    # Taint propagation in canonical (topological) order: an event is
    # tainted iff a faulty transmission lies in its causal past.  The
    # frontier is then every faulty send among the anchors' ancestors
    # whose own past is clean — the *earliest* fault-attributable acts.
    tainted: Dict[Tuple[str, int], bool] = {}
    for event in record.events:
        tainted[_eid(event)] = (
            upstream_tainted(event, tainted) or is_faulty_send(event)
        )
    frontier = sorted(
        (
            e
            for eid, e in ancestry.items()
            if is_faulty_send(e) and not upstream_tainted(e, tainted)
        ),
        key=event_order,
    )

    # Omission forensics: commission analysis cannot see a fault that
    # consists of *not* sending.  A faulty node is suspect if it never
    # transmitted at all, or fell silent while every honest node was
    # still talking.
    send_count: Dict[str, int] = {}
    last_send: Dict[str, int] = {}
    for event in record.sends:
        k = label_key(event["node"])
        send_count[k] = send_count.get(k, 0) + 1
        last_send[k] = event["t"]
    honest_horizon = min(
        (last_send[k] for k in honest_keys if k in last_send), default=None
    )
    omissions = []
    for k in sorted(faulty_enc):
        sends = send_count.get(k, 0)
        if sends == 0:
            omissions.append(
                {"node": faulty_enc[k], "sends": 0, "last_send": None,
                 "kind": "silent"}
            )
        elif honest_horizon is not None and last_send[k] < honest_horizon:
            omissions.append(
                {"node": faulty_enc[k], "sends": sends,
                 "last_send": last_send[k], "kind": "withheld"}
            )

    blamed_keys = sorted(
        {label_key(e["node"]) for e in frontier}
        | {label_key(o["node"]) for o in omissions}
    )
    report["anchors"] = [CausalDag._hop(e) for e in sorted(anchors, key=event_order)]
    report["frontier"] = [CausalDag._hop(e) for e in frontier]
    report["omissions"] = omissions
    report["blamed"] = [faulty_enc[k] for k in blamed_keys]
    if blamed_keys:
        report["verdict"] = "attributed"
    else:
        report["verdict"] = "unattributed"
        slow = sorted(
            (e for e in ancestry.values() if e["type"] == "deliver"),
            key=lambda e: (-(e["t"] - e["sent"]),) + event_order(e),
        )[:5]
        report["timing_suspects"] = [CausalDag._hop(e) for e in slow]
        if not report["reason"]:
            report["reason"] = "no fault-attributable cause found"
    return report


# ---------------------------------------------------------------------------
# Chrome trace-event export
# ---------------------------------------------------------------------------

#: Microseconds per virtual tick in the exported timeline.
_TICK_US = 1000


def export_chrome(record: FlightRecord) -> dict:
    """Chrome trace-event (Perfetto-loadable) JSON for one flight.

    One thread track per node (canonical label order), each send and
    delivery as a small slice with a flow arrow connecting them, each
    decision as a thread-scoped instant.  When the recording carries
    span data (metered runs), the spans are overlaid as slices on the
    track of the node they name — or a dedicated ``spans`` track.
    """
    nodes = record.header.get("graph", {}).get("nodes", [])
    keys = sorted(label_key(enc) for enc in nodes)
    tids = {k: i for i, k in enumerate(keys)}
    by_key = {label_key(enc): enc for enc in nodes}
    events: List[dict] = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": "repro flight"}},
    ]
    for k in keys:
        name = label_text(by_key[k])
        if k in {label_key(x) for x in record.header.get("faulty", [])}:
            name += " (faulty)"
        events.append(
            {"ph": "M", "pid": 0, "tid": tids[k], "name": "thread_name",
             "args": {"name": f"node {name}"}}
        )
    for event in record.events:
        ts = event["t"] * _TICK_US
        if event["type"] == "send":
            events.append(
                {
                    "ph": "X", "pid": 0,
                    "tid": tids.get(label_key(event["node"]), len(keys)),
                    "ts": ts, "dur": _TICK_US // 4,
                    "name": f"send {_clip(event['msg'], 40)}",
                    "cat": "send",
                    "args": {"i": event["i"], "cause": event.get("cause")},
                }
            )
        elif event["type"] == "deliver":
            src = tids.get(label_key(event["from"]), len(keys))
            dst = tids.get(label_key(event["to"]), len(keys))
            events.append(
                {
                    "ph": "X", "pid": 0, "tid": dst, "ts": ts,
                    "dur": _TICK_US // 4,
                    "name": f"recv {_clip(event['msg'], 40)}",
                    "cat": "deliver",
                    "args": {"i": event["i"], "latency": event["t"] - event["sent"]},
                }
            )
            events.append(
                {"ph": "s", "pid": 0, "tid": src, "ts": event["sent"] * _TICK_US,
                 "id": event["i"], "name": "flight", "cat": "flow"}
            )
            events.append(
                {"ph": "f", "bp": "e", "pid": 0, "tid": dst, "ts": ts,
                 "id": event["i"], "name": "flight", "cat": "flow"}
            )
        else:
            events.append(
                {
                    "ph": "i", "pid": 0,
                    "tid": tids.get(label_key(event["node"]), len(keys)),
                    "ts": ts, "s": "t",
                    "name": f"decide {event['value']}",
                    "cat": "decide",
                    "args": {"cause": (event.get("cause") or {}).get("kind")},
                }
            )
    spans = record.header.get("spans") or []
    if spans:
        events.append(
            {"ph": "M", "pid": 0, "tid": len(keys), "name": "thread_name",
             "args": {"name": "spans"}}
        )
    for span in spans:
        labels = span.get("labels") or {}
        owner = None
        for field_name in ("origin", "node"):
            if field_name in labels:
                owner = tids.get(label_key(encode_label(labels[field_name])))
                if owner is not None:
                    break
        start, end = span.get("start", 0), span.get("end", 0)
        events.append(
            {
                "ph": "X", "pid": 0,
                "tid": owner if owner is not None else len(keys),
                "ts": start * _TICK_US,
                "dur": max((end - start) * _TICK_US, 1),
                "name": span.get("name", "span"),
                "cat": "span",
                "args": {"labels": labels},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
