"""NDJSON event emission: one JSON object per line, append-only.

An :class:`EventLog` is a thin sink the metrics registry (and any
layer holding one) writes structured events into — per-tick network
summaries, protocol decisions, span completions, sweep records.  The
format is newline-delimited JSON with sorted keys and ``repr``
fallback for non-JSON values (node ids, phase tags), so a log is
diffable and a pure function of the run it describes: no timestamps,
pids, or hostnames are ever added implicitly.  Wall-clock data may be
carried only under an explicit ``timings`` field by callers that are
themselves quarantined (the sweep executor, the profile CLI).
"""

from __future__ import annotations

import json
from typing import IO, Optional


class EventLog:
    """Writes NDJSON events to a text stream.

    Use :meth:`open` for a file path (the log then owns and closes the
    handle) or pass any text stream — ``sys.stdout``, an ``io.StringIO``
    in tests — to the constructor.
    """

    def __init__(self, stream: IO[str], owns_stream: bool = False):
        self._stream: Optional[IO[str]] = stream
        self._owns = owns_stream
        #: Events written so far (for tests and the CLI summary line).
        self.count = 0

    @classmethod
    def open(cls, path: str) -> "EventLog":
        """An event log appending to ``path`` (created/truncated)."""
        return cls(open(path, "w", encoding="utf-8"), owns_stream=True)

    def emit(self, kind: str, **fields: object) -> None:
        """Write one ``{"event": kind, ...fields}`` line."""
        if self._stream is None:
            raise ValueError("event log is closed")
        record = {"event": kind}
        record.update(fields)
        self._stream.write(
            json.dumps(record, sort_keys=True, default=repr) + "\n"
        )
        self.count += 1

    def close(self) -> None:
        if self._stream is not None and self._owns:
            self._stream.close()
        self._stream = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
