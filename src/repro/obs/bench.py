"""Standardized ``BENCH_<name>.json`` performance records.

Every benchmark and the ``profile`` CLI emit the same record shape, so
the repo accumulates a *perf trajectory*: each future optimization PR
regenerates the records and diffs them against the committed baseline.

Record layout (``schema`` versions the shape)::

    {
      "bench": "<name>",
      "schema": 1,
      "spec":        {...}   # what was run (graph, f, workers, ...)
      "predictions": {...}   # closed forms from analysis.metrics
      "measured":    {...}   # content measurements (virtual time)
      "checks":      [...]   # measured-vs-predicted comparisons
      "metrics":     {...}   # registry snapshot / canonical merge
      "timings":     {...}   # QUARANTINED wall-clock data
    }

Everything except ``timings`` is deterministic content: regenerating a
record on any machine must reproduce it byte-for-byte once ``timings``
is stripped (:func:`repro.obs.strip_timings`).  Machine-speed claims
live only under ``timings`` and are never asserted on in CI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional

BENCH_SCHEMA = 1


def check(name: str, expected: object, actual: object) -> dict:
    """One measured-vs-predicted comparison row."""
    return {
        "name": name,
        "expected": expected,
        "actual": actual,
        "ok": expected == actual,
    }


def bench_record(
    name: str,
    spec: dict,
    predictions: Optional[dict] = None,
    measured: Optional[dict] = None,
    checks: Optional[List[dict]] = None,
    metrics: Optional[dict] = None,
    timings: Optional[dict] = None,
) -> dict:
    """Assemble one standardized benchmark record."""
    return {
        "bench": name,
        "schema": BENCH_SCHEMA,
        "spec": spec,
        "predictions": predictions if predictions is not None else {},
        "measured": measured if measured is not None else {},
        "checks": checks if checks is not None else [],
        "metrics": metrics if metrics is not None else {},
        "timings": timings if timings is not None else {},
    }


def bench_json(record: dict) -> str:
    """Canonical JSON rendering (sorted keys, ``repr`` fallback)."""
    return json.dumps(record, indent=2, sort_keys=True, default=repr)


def bench_path(name: str, directory: str = ".") -> Path:
    return Path(directory) / f"BENCH_{name}.json"


def write_bench(record: dict, directory: str = ".") -> Path:
    """Write ``BENCH_<name>.json`` into ``directory``; returns the path."""
    path = bench_path(record["bench"], directory)
    path.write_text(bench_json(record) + "\n", encoding="utf-8")
    return path
