"""Deterministic observability: metrics, spans, events, quarantined timings.

The package splits measurement into two regimes the rest of the repo
must never mix:

* **content** — counters/gauges/histograms/spans over *virtual* time
  (simulator ticks, message counts, cache hits).  Pure functions of a
  run; included in reports; covered by the byte-identical-reports
  invariant.
* **timings** — wall-clock durations via ``time.perf_counter`` (the
  one REPRO002-exempt clock), confined to :mod:`repro.obs.timings`
  and to a ``timings`` section that :func:`strip_timings` removes
  before any determinism comparison.

Import discipline: this package imports nothing from ``repro.net`` /
``repro.consensus`` / ``repro.analysis``; those layers import the
:data:`NULL_METRICS` default (and registry types) from here.
"""

from .bench import BENCH_SCHEMA, bench_json, bench_path, bench_record, check, write_bench
from .events import EventLog
from .registry import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
    merge_snapshots,
    render_key,
    strip_timings,
)
from .spans import SpanTracer
from .timings import Stopwatch, WallTimings
from .trace import (
    CausalDag,
    FlightError,
    FlightRecord,
    FlightReplayError,
    blame,
    canonical_json,
    critical_path,
    decode_label,
    encode_label,
    export_chrome,
    flight_from_trace,
    label_key,
    summarize,
)

__all__ = [
    "BENCH_SCHEMA",
    "CausalDag",
    "EventLog",
    "FlightError",
    "FlightRecord",
    "FlightReplayError",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetrics",
    "SpanTracer",
    "Stopwatch",
    "WallTimings",
    "bench_json",
    "bench_path",
    "bench_record",
    "blame",
    "canonical_json",
    "check",
    "critical_path",
    "decode_label",
    "encode_label",
    "export_chrome",
    "flight_from_trace",
    "label_key",
    "merge_snapshots",
    "render_key",
    "strip_timings",
    "summarize",
    "write_bench",
]
