"""Virtual-time span tracing anchored to simulator ticks.

A *span* is a named interval ``[start, end]`` of virtual time — the
simulator's tick counter, never a wall clock — with a small set of
labels (origin node, round number, …).  Protocols use spans to expose
latency structure the closed forms in :mod:`repro.analysis.metrics`
do not capture: how long each origin's flood took to certify, when a
vote fired relative to the flood completing, how late the decide came.

Because spans carry only virtual timestamps, they are part of the
*content* of a run: two engines producing byte-identical traces must
produce identical span lists (property-tested against the lockstep
scheduler), and span data participates in the byte-identical-reports
invariant of the sweep engine.  Wall-clock durations never belong
here — they live in :mod:`repro.obs.timings`, quarantined from all
determinism comparisons.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


def _canonical_labels(labels: Dict[str, object]) -> Dict[str, object]:
    """Labels re-keyed in sorted order so snapshots are canonical."""
    return {k: labels[k] for k in sorted(labels)}


def _sort_key(span: dict) -> Tuple[str, str, int, int]:
    return (span["name"], repr(span["labels"]), span["start"], span["end"])


class SpanTracer:
    """Records closed spans; optionally tracks open ones for nesting.

    Two usage styles:

    * :meth:`record` — the protocol already knows both endpoints
      (it tracked the start tick in its own state) and reports the
      finished interval in one call;
    * :meth:`open` / :meth:`close` — token-based, for callers that
      want the tracer to hold the start tick.  Tokens nest freely;
      :attr:`depth` exposes the current open-span depth.

    ``snapshot`` returns a canonically sorted list of plain dicts, so
    equal span sets always serialize identically regardless of the
    order they were recorded in.
    """

    def __init__(self) -> None:
        self._spans: List[dict] = []
        self._active: Dict[int, Tuple[str, int, Dict[str, object]]] = {}
        self._next_token = 0

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def depth(self) -> int:
        """Number of currently open (un-closed) spans."""
        return len(self._active)

    def record(self, name: str, start: int, end: int, **labels: object) -> None:
        """Record one finished span ``[start, end]`` in virtual ticks."""
        if end < start:
            raise ValueError(f"span {name!r} ends at {end} before start {start}")
        self._spans.append(
            {
                "name": name,
                "start": int(start),
                "end": int(end),
                "labels": _canonical_labels(labels),
            }
        )

    def open(self, name: str, at: int, **labels: object) -> int:
        """Open a span at virtual tick ``at``; returns a close token."""
        token = self._next_token
        self._next_token += 1
        self._active[token] = (name, int(at), _canonical_labels(labels))
        return token

    def close(self, token: int, at: int) -> None:
        """Close the span behind ``token`` at virtual tick ``at``."""
        name, start, labels = self._active.pop(token)
        self.record(name, start, at, **labels)

    def snapshot(self) -> List[dict]:
        """All closed spans, canonically sorted."""
        return sorted((dict(s) for s in self._spans), key=_sort_key)
