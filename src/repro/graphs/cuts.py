"""Set neighborhoods, vertex-cut partitions, and Theorem 6.1(iii) checks.

Two structural quantities beyond plain connectivity matter in the paper:

* the *neighborhood of a set* ``S`` — nodes outside ``S`` adjacent to some
  node of ``S`` (Section 3).  Theorem 6.1 condition (iii) requires every
  non-empty ``S`` with ``|S| ≤ t`` to have at least ``2f + 1`` neighbors;
* *cut partitions* ``(A, B, C)`` — a vertex cut ``C`` splitting the rest
  into non-adjacent non-empty sides ``A`` and ``B``, which the
  impossibility constructions of Lemmas A.2 / D.2 consume directly.
"""

from __future__ import annotations

from collections.abc import Iterable
from itertools import combinations

from .connectivity import minimum_vertex_cut, vertex_connectivity
from .graph import Graph, GraphError, Node


def neighbors_of_set(graph: Graph, s: Iterable[Node]) -> set[Node]:
    """Nodes outside ``S`` that have an edge into ``S`` (paper, Section 3).

    On a :class:`~repro.graphs.graph.Digraph` this is the *out*-
    neighborhood of ``S`` — the nodes that hear some member of ``S`` —
    matching the repo-wide ``neighbors = who hears v`` convention.  The
    hybrid Theorem 6.1 machinery that consumes it remains specified on
    undirected graphs only.
    """
    s_set = set(s)
    out: set[Node] = set()
    # repro: allow[REPRO001] set union is commutative — the visiting
    # order cannot affect the result.
    for v in s_set:
        out |= graph.neighbors(v)
    return out - s_set


def min_set_neighborhood(
    graph: Graph, max_size: int
) -> tuple[int, frozenset[Node]]:
    """Minimize ``|N(S)|`` over non-empty ``S`` with ``|S| ≤ max_size``.

    Returns ``(value, witness_set)``.  Brute force over subsets — Theorem
    6.1 only needs ``max_size = t ≤ f``, which is small in every instance
    this library runs, and the search short-circuits on singletons first
    (the minimizer is usually a single low-degree vertex or a tight
    clique-like cluster).
    """
    if max_size < 1:
        raise GraphError("max_size must be at least 1")
    if graph.n == 0:
        raise GraphError("empty graph has no non-empty subsets")
    best: tuple[int, frozenset[Node]] | None = None
    nodes = sorted(graph.nodes, key=repr)
    for size in range(1, min(max_size, graph.n) + 1):
        for combo in combinations(nodes, size):
            value = len(neighbors_of_set(graph, combo))
            if best is None or value < best[0]:
                best = (value, frozenset(combo))
    assert best is not None
    return best


def every_small_set_has_neighbors(graph: Graph, max_size: int, threshold: int) -> bool:
    """Theorem 6.1(iii): every ``S`` with ``0 < |S| ≤ max_size`` has
    at least ``threshold`` neighbors."""
    if max_size < 1:
        return True
    value, _ = min_set_neighborhood(graph, max_size)
    return value >= threshold


def cut_partition(
    graph: Graph, cut: Iterable[Node]
) -> tuple[set[Node], set[Node]]:
    """Split ``V - C`` into two non-adjacent halves ``(A, B)`` for a cut ``C``.

    ``A`` is one connected component of ``G - C``; ``B`` is everything
    else outside the cut.  Raises if ``C`` is not actually a cut.
    """
    cut_set = set(cut)
    rest = graph.remove_nodes(cut_set)
    if rest.n == 0:
        raise GraphError("cut removes every node")
    components = rest.connected_components()
    if len(components) < 2:
        raise GraphError("given set is not a vertex cut")
    a = components[0]
    b = set().union(*components[1:])
    return a, b


def find_cut_partition(
    graph: Graph, max_cut_size: int
) -> tuple[set[Node], set[Node], set[Node]] | None:
    """Find ``(A, B, C)`` with ``|C| ≤ max_cut_size``, A/B non-empty and
    non-adjacent — the shape consumed by Lemma A.2's construction.

    Returns ``None`` when the graph is ``(max_cut_size + 1)``-connected
    (no such cut exists).  For complete graphs there is never a cut.
    """
    if graph.n == 0:
        return None
    if not graph.is_connected():
        a = graph.connected_components()[0]
        return a, graph.nodes - a, set()
    kappa = vertex_connectivity(graph)
    if kappa > max_cut_size or kappa == graph.n - 1:
        return None
    cut = minimum_vertex_cut(graph)
    a, b = cut_partition(graph, cut)
    return a, b, set(cut)


def split_into_parts(
    items: Iterable[Node], sizes: list[int]
) -> list[list[Node]]:
    """Deterministically split ``items`` into consecutive parts of ≤ given sizes.

    Used by the impossibility constructions, which need partitions like
    ``(C1, C2, C3)`` with ``|C1|,|C2| ≤ ⌊f/2⌋`` and ``|C3| ≤ ⌈f/2⌉``.
    All items must fit (``sum(sizes) ≥ len(items)``); parts may end up
    empty, mirroring the paper's convention that partitions may have
    empty parts.
    """
    pool = sorted(items, key=repr)
    if sum(sizes) < len(pool):
        raise GraphError("part sizes cannot accommodate all items")
    parts: list[list[Node]] = []
    idx = 0
    for size in sizes:
        parts.append(pool[idx : idx + size])
        idx += size
    return parts
