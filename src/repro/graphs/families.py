"""Graph families used by the experiments, examples, and benchmarks.

Includes the graphs the paper draws (Figure 1), the classical families
that hit the theorems' bounds tightly (complete graphs ``K_{2f+1}``,
circulants, Harary graphs), and deliberately *deficient* graphs that
violate exactly one condition — those drive the impossibility
reproductions (Figures 2–5).
"""

from __future__ import annotations

import random

from .graph import Digraph, Graph, GraphError

# ---------------------------------------------------------------------------
# Classical families
# ---------------------------------------------------------------------------


def path_graph(n: int) -> Graph:
    """P_n: nodes 0..n-1 in a line.  Degree 1 at the ends, κ = 1."""
    if n < 1:
        raise GraphError("path graph needs at least one node")
    return Graph(range(n), [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> Graph:
    """C_n: the n-cycle.  Degree 2 everywhere, κ = 2 (for n ≥ 3)."""
    if n < 3:
        raise GraphError("cycle graph needs at least three nodes")
    return Graph(range(n), [(i, (i + 1) % n) for i in range(n)])


def complete_graph(n: int) -> Graph:
    """K_n.  Degree n-1, κ = n-1.  K_{2f+1} is the smallest graph
    satisfying the paper's local-broadcast conditions for a given f."""
    if n < 1:
        raise GraphError("complete graph needs at least one node")
    return Graph(range(n), [(i, j) for i in range(n) for j in range(i + 1, n)])


def complete_bipartite(a: int, b: int) -> Graph:
    """K_{a,b} with parts 0..a-1 and a..a+b-1.  κ = min(a, b)."""
    if a < 1 or b < 1:
        raise GraphError("both parts must be non-empty")
    return Graph(range(a + b), [(i, a + j) for i in range(a) for j in range(b)])


def star_graph(leaves: int) -> Graph:
    """K_{1,leaves}: hub 0 plus leaves.  Min degree 1, κ = 1."""
    return complete_bipartite(1, leaves)


def wheel_graph(n: int) -> Graph:
    """W_n: cycle C_{n-1} (nodes 1..n-1) plus hub 0.  κ = 3 for n ≥ 5."""
    if n < 4:
        raise GraphError("wheel graph needs at least four nodes")
    rim = [(i, i % (n - 1) + 1) for i in range(1, n)]
    spokes = [(0, i) for i in range(1, n)]
    return Graph(range(n), rim + spokes)


def circulant_graph(n: int, offsets: list[int]) -> Graph:
    """C_n(offsets): node i adjacent to i ± d (mod n) for each offset d.

    Circulant graphs with offsets 1..k are 2k-regular and 2k-connected —
    they are the canonical tight examples for the paper's conditions
    (min degree 2f, κ ≥ ⌊3f/2⌋+1) with offsets 1..f.
    """
    if n < 3:
        raise GraphError("circulant graph needs at least three nodes")
    edges = []
    for d in offsets:
        if not 0 < d <= n // 2:
            raise GraphError(f"offset {d} out of range for n={n}")
        edges.extend((i, (i + d) % n) for i in range(n))
    return Graph(range(n), edges)


def harary_graph(k: int, n: int) -> Graph:
    """Harary graph H_{k,n}: the k-connected graph on n nodes with the
    fewest edges (⌈kn/2⌉).

    Standard construction: circulant with offsets 1..⌊k/2⌋; for odd k on
    even n add diameters i ↔ i + n/2; for odd k and odd n add the
    half-skip edges from the classical definition.
    """
    if k >= n:
        raise GraphError("Harary graph requires k < n")
    if k < 1:
        raise GraphError("Harary graph requires k >= 1")
    if k == 1:
        return path_graph(n)
    half = k // 2
    edges = [(i, (i + d) % n) for d in range(1, half + 1) for i in range(n)]
    if k % 2 == 1:
        if n % 2 == 0:
            edges.extend((i, i + n // 2) for i in range(n // 2))
        else:
            edges.extend((i, (i + (n - 1) // 2) % n) for i in range((n + 1) // 2))
    return Graph(range(n), edges)


def grid_graph(rows: int, cols: int) -> Graph:
    """rows × cols grid.  Corner degree 2, κ = 2 for non-trivial grids."""
    if rows < 1 or cols < 1:
        raise GraphError("grid needs positive dimensions")
    nodes = [(r, c) for r in range(rows) for c in range(cols)]
    edges = []
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                edges.append(((r, c), (r + 1, c)))
            if c + 1 < cols:
                edges.append(((r, c), (r, c + 1)))
    return Graph(nodes, edges)


def petersen_graph() -> Graph:
    """The Petersen graph: 3-regular, κ = 3.  Satisfies the f = 1
    local-broadcast conditions (degree 3 ≥ 2, κ = 3 ≥ 2) with slack."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, 5 + i) for i in range(5)]
    return Graph(range(10), outer + inner + spokes)


# ---------------------------------------------------------------------------
# Paper figures
# ---------------------------------------------------------------------------


def paper_figure_1a() -> Graph:
    """Figure 1(a): the 5-cycle, satisfying the f = 1 conditions
    (min degree 2 = 2f, κ = 2 = ⌊3f/2⌋ + 1)."""
    return cycle_graph(5)


def paper_figure_1b() -> Graph:
    """Figure 1(b): an f = 2 example.

    The paper shows a drawing without an explicit edge list; any graph
    with min degree ≥ 4 and κ ≥ 4 fits the claim.  We use the circulant
    C_8(1, 2): 8 nodes, 4-regular, 4-connected — exactly tight for
    f = 2 (min degree 4 = 2f, κ = 4 ≥ ⌊3f/2⌋ + 1 = 4).  Documented as a
    substitution in DESIGN.md.
    """
    return circulant_graph(8, [1, 2])


def tight_local_broadcast_graph(f: int, n: int | None = None) -> Graph:
    """A graph meeting the Theorem 5.1 conditions for ``f`` as tightly as
    the circulant family allows: C_n(1..f) has min degree 2f and κ = 2f
    ≥ ⌊3f/2⌋ + 1 (for f ≥ 1, with equality of the theorem bound at
    f ∈ {1, 2}).
    """
    if f < 1:
        raise GraphError("f must be at least 1")
    if n is None:
        n = 2 * f + 2
    if n < 2 * f + 1:
        raise GraphError("need n ≥ 2f + 1 for degree 2f")
    return circulant_graph(n, list(range(1, f + 1)))


# ---------------------------------------------------------------------------
# Deliberately deficient graphs (drive the impossibility experiments)
# ---------------------------------------------------------------------------


def degree_deficient_graph(f: int) -> Graph:
    """Connected, well-connected except one node of degree 2f - 1.

    Take K_{4f+1} and attach node ``4f+1`` to only ``2f - 1`` clique
    nodes: the single low-degree vertex violates Theorem 4.1(i) while
    the rest of the graph is highly connected.
    """
    if f < 1:
        raise GraphError("f must be at least 1")
    base = complete_graph(4 * f + 1)
    z = 4 * f + 1
    extra = [(z, i) for i in range(2 * f - 1)]
    return base.add_nodes([z]).add_edges(extra)


def low_connectivity_graph(f: int, side: int | None = None) -> Graph:
    """Two cliques joined through a cut of exactly ⌊3f/2⌋ nodes.

    Violates Theorem 4.1(ii) (needs ⌊3f/2⌋ + 1) while keeping min degree
    ≥ 2f, so only the connectivity condition fails.  Node layout:
    clique A = 0..side-1, cut = side..side+c-1, clique B = the rest; every
    cut node is adjacent to all of A and all of B.
    """
    if f < 1:
        raise GraphError("f must be at least 1")
    cut_size = (3 * f) // 2
    if side is None:
        side = max(2 * f + 1 - cut_size, 2)
    a_nodes = list(range(side))
    c_nodes = list(range(side, side + cut_size))
    b_nodes = list(range(side + cut_size, 2 * side + cut_size))
    edges = []
    for group in (a_nodes + c_nodes, b_nodes + c_nodes):
        edges.extend(
            (group[i], group[j])
            for i in range(len(group))
            for j in range(i + 1, len(group))
        )
    return Graph(a_nodes + c_nodes + b_nodes, edges)


def hybrid_neighborhood_deficient_graph(f: int, t: int) -> Graph:
    """A graph where some set S, |S| ≤ t, has only 2f neighbors.

    Construction: a K_{4f+2} "world" plus a clique S of size t whose
    members all attach to the same 2f world nodes.  Violates Theorem
    6.1(iii) while the world itself stays richly connected.
    """
    if not 0 < t <= f:
        raise GraphError("need 0 < t <= f")
    world = complete_graph(4 * f + 2)
    s_nodes = [f"s{i}" for i in range(t)]
    edges = [(a, b) for i, a in enumerate(s_nodes) for b in s_nodes[i + 1 :]]
    edges += [(s, w) for s in s_nodes for w in range(2 * f)]
    return world.add_nodes(s_nodes).add_edges(edges)


def random_connected_graph(n: int, extra_edges: int, seed: int) -> Graph:
    """A connected random graph: a random spanning tree plus extra edges.

    Deterministic for a fixed ``seed`` — experiment sweeps stay
    reproducible.
    """
    if n < 1:
        raise GraphError("need at least one node")
    rng = random.Random(seed)
    nodes = list(range(n))
    edges: set[tuple[int, int]] = set()
    shuffled = nodes[:]
    rng.shuffle(shuffled)
    for i in range(1, n):
        j = rng.randrange(i)
        a, b = sorted((shuffled[i], shuffled[j]))
        edges.add((a, b))
    candidates = [
        (i, j) for i in range(n) for j in range(i + 1, n) if (i, j) not in edges
    ]
    rng.shuffle(candidates)
    edges.update(candidates[:extra_edges])
    return Graph(nodes, edges)


def random_regular_graph(n: int, d: int, seed: int = 0) -> Graph:
    """A uniform-ish random ``d``-regular graph on ``n`` nodes (seeded).

    Pairing/configuration model with rejection: shuffle ``n·d`` stubs,
    pair them up, and retry whenever a self-loop or parallel edge
    appears.  For the modest degrees the experiments use, rejection
    succeeds within a handful of attempts; the whole procedure is a pure
    function of ``(n, d, seed)`` so sweeps stay reproducible.

    Regular graphs are the natural random workload for the paper's
    conditions: ``d ≥ 2f`` gives every node the required degree, and
    random regular graphs are a.a.s. ``d``-connected, so they exercise
    the ``κ ≥ ⌊3f/2⌋ + 1`` condition with high probability.
    """
    if n < 1:
        raise GraphError("need at least one node")
    if not 0 <= d < n:
        raise GraphError("need 0 <= d < n for a simple d-regular graph")
    if (n * d) % 2 != 0:
        raise GraphError("n * d must be even for a d-regular graph")
    rng = random.Random(seed)
    stubs = [v for v in range(n) for _ in range(d)]
    for _ in range(1000):
        rng.shuffle(stubs)
        pairs = [
            tuple(sorted((stubs[i], stubs[i + 1])))
            for i in range(0, len(stubs), 2)
        ]
        if any(a == b for a, b in pairs):
            continue
        if len(set(pairs)) != len(pairs):
            continue
        return Graph(range(n), pairs)
    raise GraphError(
        f"could not sample a simple {d}-regular graph on {n} nodes "
        f"(seed {seed}); try another seed"
    )


def gnp_supercritical_graph(n: int, c: float = 2.0, seed: int = 0) -> Graph:
    """Erdős–Rényi ``G(n, p)`` with ``p = c/n`` in the supercritical
    regime ``c > 1`` (a giant component exists a.a.s.).

    Deterministic for fixed ``(n, c, seed)``: edge slots are visited in
    lexicographic order, each kept with one seeded coin flip.  Isolated
    nodes and small components are retained — sweeps over this family
    deliberately include graphs that *fail* the paper's conditions, which
    is exactly what a universal-claim stress test wants.
    """
    if n < 1:
        raise GraphError("need at least one node")
    if c <= 1:
        raise GraphError("supercritical regime requires c > 1")
    p = min(1.0, c / n)
    rng = random.Random(seed)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < p
    ]
    return Graph(range(n), edges)


# ----------------------------------------------------------------------
# Directed families (arXiv:1911.07298 workload axis)
# ----------------------------------------------------------------------
def random_digraph(n: int, p: float, seed: int = 0) -> Digraph:
    """Seeded directed Erdős–Rényi ``D(n, p)``: every ordered pair
    ``(i, j)``, ``i ≠ j``, becomes an arc with one seeded coin flip.

    Arc slots are visited in lexicographic order, so the digraph is a
    pure function of ``(n, p, seed)`` and sweeps stay reproducible.
    Asymmetric links appear with probability ``2p(1 - p)`` per pair —
    the regime where the directed feasibility checkers genuinely differ
    from the symmetric-closure verdicts.
    """
    if n < 1:
        raise GraphError("need at least one node")
    if not 0.0 <= p <= 1.0:
        raise GraphError("arc probability must lie in [0, 1]")
    rng = random.Random(seed)
    arcs = [
        (i, j)
        for i in range(n)
        for j in range(n)
        if i != j and rng.random() < p
    ]
    return Digraph(range(n), arcs)


def oneway_ring(n: int, k: int = 1) -> Digraph:
    """Radio-style one-way circulant: station ``i`` reaches
    ``(i + 1) .. (i + k) mod n`` but is not heard back.

    Models directional radio links (a high-power transmitter heard by
    low-power stations that cannot answer).  Every node has in-degree
    and out-degree ``k`` and the digraph is strongly connected, yet its
    symmetric closure is the circulant ``C_n(1..k)`` with degree ``2k``
    — so the directed max-``f`` verdict drops below the undirected one
    (in-degree ``k`` supports at most ``f = k/2`` instead of ``k``),
    which is exactly the feasibility gap the directed sweep battery
    demonstrates.
    """
    if n < 3:
        raise GraphError("need at least three nodes for a one-way ring")
    if not 1 <= k < n:
        raise GraphError("need 1 <= k < n one-way offsets")
    arcs = [(i, (i + d) % n) for i in range(n) for d in range(1, k + 1)]
    return Digraph(range(n), arcs)


FAMILY_BUILDERS = {
    "path": path_graph,
    "cycle": cycle_graph,
    "complete": complete_graph,
    "wheel": wheel_graph,
    "petersen": lambda: petersen_graph(),
    "figure_1a": lambda: paper_figure_1a(),
    "figure_1b": lambda: paper_figure_1b(),
    "random_regular": random_regular_graph,
    "gnp_supercritical": gnp_supercritical_graph,
    "random_digraph": random_digraph,
    "oneway": oneway_ring,
}
"""Registry used by sweeps and examples to name graphs in reports."""
